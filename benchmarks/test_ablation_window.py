"""Ablation: wavefront in-flight memory-instruction window depth.

The paper's execution model stalls a wavefront on each memory
instruction (its Fig 4 pairs every ``load`` with an immediate ``use``) —
a window of 1.  Deeper windows raise request interleaving but break the
premise that one instruction's last walk gates wavefront progress, which
erodes (and can invert) per-instruction SJF's benefit.  This bench
records that interaction.
"""

from dataclasses import replace

from repro.config import baseline_config
from repro.experiments.runner import compare_schedulers

from benchmarks.conftest import BENCH, run_once


def run_windows(workload="MVT"):
    out = {}
    for window in (1, 2, 4):
        config = baseline_config()
        config = replace(
            config, gpu=replace(config.gpu, max_outstanding_memops=window)
        )
        results = compare_schedulers(
            workload, schedulers=("fcfs", "simt"), config=config, **BENCH
        )
        out[window] = {
            "speedup": results["simt"].speedup_over(results["fcfs"]),
            "fcfs_interleaved": results["fcfs"].interleaved_fraction,
        }
    return out


def test_ablation_window_depth(benchmark):
    data = run_once(benchmark, run_windows)
    print()
    print("Ablation: in-flight window depth on MVT")
    for window, row in data.items():
        print(
            f"  window={window} simt/fcfs={row['speedup']:.3f} "
            f"fcfs interleaved={row['fcfs_interleaved']:.2f}"
        )
    # The paper's model (window 1) shows the full win.
    assert data[1]["speedup"] > 1.10
    # Deeper windows overlap instruction bursts: interleaving rises.
    assert data[4]["fcfs_interleaved"] >= data[1]["fcfs_interleaved"]
    # And per-instruction SJF loses traction as the premise erodes.
    assert data[4]["speedup"] < data[1]["speedup"]
