"""Fig 13: sensitivity to GPU L2 TLB size and walker count.

Paper: the win over FCFS shrinks as translation resources grow —
30% baseline → 25% with a 1024-entry L2 TLB (13a) → 8.4% with 16
walkers (13b) → 5.3% with both (13c) — but stays positive everywhere.
"""

import pytest

from repro.experiments import figures, report

from benchmarks.conftest import BENCH, run_once

#: Collected per-variant means, so the cross-variant ordering assertion
#: can run after all three variants have been benchmarked.
_means = {}


@pytest.mark.parametrize(
    "variant",
    ["a_1024tlb_8walkers", "b_512tlb_16walkers", "c_1024tlb_16walkers"],
)
def test_fig13_sensitivity(benchmark, variant):
    data = run_once(benchmark, figures.fig13_sensitivity, variant, **BENCH)
    _means[variant] = data["Mean"]
    print()
    print(
        report.render_series(
            f"Fig 13{variant[0]}: SIMT-aware speedup over FCFS ({variant[2:]})",
            data,
            value_label="speedup",
        )
    )
    # The win survives every resource increase.
    assert data["Mean"] > 1.0


def test_fig13_win_shrinks_with_resources(benchmark):
    """More translation resources leave less headroom (needs the three
    parametrised benchmarks above to have run first)."""
    if len(_means) < 3:
        pytest.skip("variant benchmarks did not all run")
    baseline = run_once(
        benchmark, lambda: figures.fig8_speedup(**BENCH)["Mean(irregular)"]
    )
    assert _means["b_512tlb_16walkers"] < baseline
    assert _means["c_1024tlb_16walkers"] < baseline
