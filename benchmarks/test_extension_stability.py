"""Extension: seed-robustness of the headline result.

A reproduction resting on one synthetic trace would be fragile.  This
bench re-runs the headline comparison across several seeds — each seed
regenerates the workload's trace — and checks that the SIMT-aware win
is consistently present, not a artefact of one address sequence.
"""

from repro.experiments.stability import seed_stability

from benchmarks.conftest import BENCH, run_once

SEEDS = (0, 1, 2)


def run_study():
    return {
        workload: seed_stability(
            workload,
            seeds=SEEDS,
            num_wavefronts=BENCH["num_wavefronts"],
            scale=BENCH["scale"],
        )
        for workload in ("MVT", "GEV")
    }


def test_extension_seed_stability(benchmark):
    reports = run_once(benchmark, run_study)
    print()
    print(f"Extension: headline stability across seeds {SEEDS}")
    for report in reports.values():
        print(" ", report.summary())
    for workload, report in reports.items():
        # Every seed lands on the winning side...
        assert report.consistent_direction(threshold=1.0), workload
        assert min(report.speedups) > 1.05, workload
        # ...and the mean matches the single-seed headline ballpark.
        assert report.mean > 1.15, workload
