"""Extension: sequential next-page TLB prefetching at the IOMMU.

The paper's related work (inter-core cooperative TLB prefetchers) asks
whether prefetching, rather than scheduling, could absorb translation
overheads.  Our opportunistic next-page prefetcher answers: it helps
*streaming* workloads (BCK's unit-stride sweep makes page p+1 a certain
future demand) but is inert on the divergent irregular group — their
walkers never idle, so there is no spare bandwidth to prefetch with, and
their next-page locality is poor anyway.  Scheduling and prefetching are
therefore complementary, not alternatives.
"""

from dataclasses import replace

from repro.config import baseline_config
from repro.experiments.runner import compare_schedulers

from benchmarks.conftest import BENCH, run_once


def run_study():
    out = {}
    for workload in ("BCK", "MVT"):
        for prefetch in (False, True):
            config = baseline_config()
            config = replace(
                config, iommu=replace(config.iommu, prefetch_next_page=prefetch)
            )
            results = compare_schedulers(
                workload, schedulers=("fcfs", "simt"), config=config, **BENCH
            )
            fcfs = results["fcfs"]
            out[(workload, prefetch)] = {
                "fcfs_cycles": fcfs.total_cycles,
                "demand_walks": fcfs.walks_dispatched,
                "prefetch_walks": fcfs.detail["iommu"]["prefetch_walks"],
                "simt_speedup": results["simt"].speedup_over(fcfs),
            }
    return out


def test_extension_tlb_prefetch(benchmark):
    data = run_once(benchmark, run_study)
    print()
    print("Extension: next-page TLB prefetch")
    for (workload, prefetch), row in data.items():
        label = "prefetch" if prefetch else "baseline"
        print(
            f"  {workload}/{label:<8} fcfs={row['fcfs_cycles']:>9,} "
            f"demand walks={row['demand_walks']:>6,} "
            f"prefetches={row['prefetch_walks']:>6,} "
            f"simt/fcfs={row['simt_speedup']:.3f}"
        )
    # Streaming workload: prefetch converts demand walks into hits.
    assert data[("BCK", True)]["demand_walks"] < data[("BCK", False)]["demand_walks"]
    assert data[("BCK", True)]["fcfs_cycles"] <= data[("BCK", False)]["fcfs_cycles"]
    # Divergent workload: no idle walker bandwidth — prefetch is inert
    # and, crucially, does not erode the scheduler's win.
    assert data[("MVT", True)]["prefetch_walks"] < 100
    assert data[("MVT", True)]["simt_speedup"] > 1.10
