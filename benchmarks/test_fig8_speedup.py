"""Fig 8: speedup of the SIMT-aware scheduler over FCFS (all 12 apps).

Paper: +30% geometric-mean speedup on the six irregular applications
(up to +41%), with the six regular applications essentially unchanged.
"""

from repro.experiments import figures, report
from repro.workloads.registry import IRREGULAR_WORKLOADS, REGULAR_WORKLOADS

from benchmarks.conftest import BENCH, run_once


def test_fig8_speedup(benchmark):
    data = run_once(benchmark, figures.fig8_speedup, **BENCH)
    print()
    print(
        report.render_series(
            "Fig 8: speedup of SIMT-aware over FCFS", data, value_label="speedup"
        )
    )
    # Headline: large irregular win, regular untouched.
    assert data["Mean(irregular)"] > 1.15
    assert 0.95 <= data["Mean(regular)"] <= 1.05
    # Every irregular workload individually benefits.
    for workload in IRREGULAR_WORKLOADS:
        assert data[workload] > 1.0, workload
    # No regular workload is materially hurt.
    for workload in REGULAR_WORKLOADS:
        assert data[workload] > 0.95, workload
