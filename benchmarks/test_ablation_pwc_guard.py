"""Ablation: the 2-bit saturating PWC counter guard (paper §IV).

The guard protects PWC entries that pending requests were scored
against, keeping the arrival-time score estimates honest by the time the
walk is serviced.  Disabling it must not crash anything and should not
improve the scheduler; this bench records the delta.
"""

from dataclasses import replace

from repro.config import baseline_config
from repro.experiments.runner import compare_schedulers

from benchmarks.conftest import BENCH, run_once


def run_guard(workload="GEV"):
    out = {}
    for guard in (True, False):
        config = baseline_config()
        config = replace(
            config,
            iommu=replace(
                config.iommu, pwc=replace(config.iommu.pwc, counter_guard=guard)
            ),
        )
        results = compare_schedulers(
            workload, schedulers=("fcfs", "simt"), config=config, **BENCH
        )
        out[guard] = results["simt"].speedup_over(results["fcfs"])
    return out


def test_ablation_pwc_counter_guard(benchmark):
    data = run_once(benchmark, run_guard)
    print()
    print("Ablation: PWC counter guard on GEV")
    for guard, speedup in data.items():
        print(f"  guard={'on' if guard else 'off':<4} simt/fcfs={speedup:.3f}")
    # The scheduler keeps working either way; the guard is a refinement,
    # not a correctness requirement.
    assert data[True] > 1.0
    assert data[False] > 1.0
