"""Fig 9: GPU execution-stage stall cycles, SIMT-aware over FCFS.

Paper: the SIMT-aware scheduler reduces CU stall cycles by 23% on
average (up to 29%) for irregular applications; regular applications'
stalls are essentially unchanged.
"""

from repro.experiments import figures, report
from repro.stats.metrics import geometric_mean
from repro.workloads.registry import IRREGULAR_WORKLOADS, REGULAR_WORKLOADS

from benchmarks.conftest import BENCH, run_once


def test_fig9_stall_cycles(benchmark):
    data = run_once(benchmark, figures.fig9_stall_cycles, **BENCH)
    print()
    print(
        report.render_series(
            "Fig 9: CU stall cycles, SIMT-aware normalised to FCFS",
            data,
            value_label="ratio",
        )
    )
    assert data["Mean(irregular)"] < 0.95
    assert 0.90 <= data["Mean(regular)"] <= 1.10
    for workload in IRREGULAR_WORKLOADS:
        assert data[workload] < 1.0, workload
