"""Fig 2: performance impact of page-walk scheduling policy.

Paper: Random / FCFS / SIMT-aware on MVT, ATX, BIC, GEV, normalised to
Random.  Performance differs by more than 2.1× across schedules; FCFS
sits between Random and SIMT-aware.
"""

from repro.experiments import figures, report
from repro.stats.metrics import geometric_mean

from benchmarks.conftest import BENCH, run_once


def test_fig2_scheduler_impact(benchmark):
    data = run_once(benchmark, figures.fig2_scheduler_impact, **BENCH)
    print()
    print(
        report.render_grouped(
            "Fig 2: speedup over the random scheduler",
            data,
            columns=("random", "fcfs", "simt"),
        )
    )
    simt = [row["simt"] for row in data.values()]
    fcfs = [row["fcfs"] for row in data.values()]
    # SIMT-aware must dominate both baselines on these four workloads.
    assert geometric_mean(simt) > geometric_mean(fcfs) > 1.0
    # The paper reports >2.1× spread between best and worst schedule;
    # our lower-fidelity substrate must still show a wide spread.
    assert max(simt) > 1.5
