"""Table II: the twelve benchmarks and their memory footprints."""

from repro.experiments import figures, report
from repro.workloads.registry import IRREGULAR_WORKLOADS, REGULAR_WORKLOADS

from benchmarks.conftest import run_once


def test_table2_workloads(benchmark):
    rows = run_once(benchmark, figures.table2_workloads)
    print()
    print(report.render_table2(rows))
    assert len(rows) == 12
    by_abbrev = {row["abbrev"]: row for row in rows}
    # Irregular group flagged as in the paper.
    for abbrev in IRREGULAR_WORKLOADS:
        assert by_abbrev[abbrev]["irregular"] is True
    for abbrev in REGULAR_WORKLOADS:
        assert by_abbrev[abbrev]["irregular"] is False
    # Modelled footprints track the paper within 8% (row padding).
    for row in rows:
        ratio = row["modelled_footprint_mb"] / row["paper_footprint_mb"]
        assert 0.92 <= ratio <= 1.08, row["abbrev"]
