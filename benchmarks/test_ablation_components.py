"""Ablation: the SIMT-aware scheduler's two ideas in isolation.

DESIGN.md §6: key idea 1 (shortest-job-first on instruction scores) and
key idea 2 (batching to the last-dispatched instruction) are implemented
as standalone policies.  The combined scheduler should not be weaker
than FCFS, and each component contributes on the workloads its idea
targets: SJF needs job-length variance (MVT's bimodal sweep), batching
needs interleaving.
"""

from repro.experiments.runner import compare_schedulers
from repro.stats.metrics import geometric_mean

from benchmarks.conftest import BENCH, run_once

WORKLOADS = ("MVT", "ATX")
POLICIES = ("fcfs", "batch", "sjf", "simt")


def run_ablation():
    speedups = {policy: [] for policy in POLICIES if policy != "fcfs"}
    for workload in WORKLOADS:
        results = compare_schedulers(workload, schedulers=POLICIES, **BENCH)
        for policy in speedups:
            speedups[policy].append(
                results[policy].speedup_over(results["fcfs"])
            )
    return {policy: geometric_mean(values) for policy, values in speedups.items()}


def test_ablation_scheduler_components(benchmark):
    means = run_once(benchmark, run_ablation)
    print()
    print("Ablation: geomean speedup over FCFS (MVT+ATX)")
    for policy, value in means.items():
        print(f"  {policy:<6} {value:6.3f}")
    # The combined scheduler must beat FCFS decisively...
    assert means["simt"] > 1.10
    # ...and at least match the better of its two halves (within noise).
    assert means["simt"] >= max(means["batch"], means["sjf"]) - 0.08
    # Batching alone must never hurt: it only reorders within arrivals.
    assert means["batch"] > 0.95
