"""Fig 6: latency of the first- vs last-completed walk per instruction.

Paper: under FCFS the last-completed walk of an instruction often takes
2-3× the latency of its first-completed walk — the stall the batching
idea attacks.  Our model's gap is smaller (≈1.3-1.4×) because its
interleaving is milder (see Fig 5 notes in EXPERIMENTS.md), but it must
be material on every motivation workload.
"""

from repro.experiments import figures, report

from benchmarks.conftest import BENCH, run_once


def test_fig6_first_last_latency(benchmark):
    data = run_once(benchmark, figures.fig6_first_last_latency, **BENCH)
    print()
    print(
        report.render_grouped(
            "Fig 6: normalised latency of first- and last-completed walk (FCFS)",
            data,
            columns=("first_completed", "last_completed"),
        )
    )
    for workload, row in data.items():
        assert row["first_completed"] == 1.0
        # A material gap must exist on every motivation workload.
        assert row["last_completed"] > 1.2, workload
    assert max(row["last_completed"] for row in data.values()) > 1.3
