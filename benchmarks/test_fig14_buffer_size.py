"""Fig 14: sensitivity to the IOMMU buffer size (scheduler lookahead).

Paper: with a 128-entry buffer the speedup drops to 13%; with a
512-entry buffer it jumps to 50%.  The buffer bounds how far the
scheduler can look ahead, so the win must grow monotonically with it.
"""

import pytest

from repro.experiments import figures, report

from benchmarks.conftest import BENCH, run_once

_means = {}


@pytest.mark.parametrize("buffer_entries", [128, 512])
def test_fig14_buffer_size(benchmark, buffer_entries):
    data = run_once(benchmark, figures.fig14_buffer_size, buffer_entries, **BENCH)
    _means[buffer_entries] = data["Mean"]
    print()
    print(
        report.render_series(
            f"Fig 14: SIMT-aware speedup over FCFS ({buffer_entries}-entry buffer)",
            data,
            value_label="speedup",
        )
    )
    assert data["Mean"] > 1.0


def test_fig14_lookahead_scales_the_win(benchmark):
    if len(_means) < 2:
        pytest.skip("buffer benchmarks did not all run")
    baseline = run_once(
        benchmark, lambda: figures.fig8_speedup(**BENCH)["Mean(irregular)"]
    )
    # Paper ordering: 128-entry < 256-entry (baseline) < 512-entry.
    assert _means[128] < baseline < _means[512]
