"""Fig 12: distinct wavefronts touching the GPU L2 TLB per epoch.

Paper: the SIMT-aware scheduler reduces the number of distinct
wavefronts accessing the shared L2 TLB within a 1024-access epoch by
42% on average — the mechanism behind Fig 11's walk reduction (less
inter-wavefront contention in the TLB).
"""

from repro.experiments import figures, report

from benchmarks.conftest import BENCH, run_once


def test_fig12_active_wavefronts(benchmark):
    data = run_once(benchmark, figures.fig12_active_wavefronts, **BENCH)
    print()
    print(
        report.render_series(
            "Fig 12: distinct wavefronts per L2-TLB epoch, SIMT over FCFS",
            data,
            value_label="ratio",
        )
    )
    assert data["Mean"] < 1.0
    # The strongest concentration effect should be pronounced.
    assert min(v for k, v in data.items() if k != "Mean") < 0.9
