"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's tables or figures at the
*benchmark scale* below, prints the resulting rows/series in the paper's
shape, and asserts the qualitative claims (who wins, directionality).

Simulation results are memoised process-wide (``repro.experiments.
figures._run``), so figures that share runs — Figs 8-12 all reuse the
same FCFS/SIMT pairs — only pay for them once per session.  Each
benchmark is timed with ``benchmark.pedantic(rounds=1)``: the quantity
of interest is the figure's regeneration cost, not statistical timing
noise, and a second round would be served from the cache anyway.
"""

from __future__ import annotations

import pytest

#: Run size used by every figure benchmark: half-length traces over two
#: waves of the baseline GPU's 32 wavefront slots.  This is the scale at
#: which EXPERIMENTS.md's paper-vs-measured numbers were recorded.
BENCH = dict(scale=0.5, num_wavefronts=64)


@pytest.fixture
def bench_params():
    return dict(BENCH)


def run_once(benchmark, func, *args, **kwargs):
    """Execute ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
