"""Attribution bench: blame reports must stay deterministic and cheap.

The attribution layer (:mod:`repro.obs.attrib`) makes three promises
this bench pins into ``BENCH_attrib.json``:

* **Determinism** — the rendered blame report of a fixed sweep is
  byte-identical between ``jobs=1`` and ``jobs=2`` workers, and the
  attributed walk count is an exact, committed number.
* **Reconciliation** — every attributed walk's stage breakdown sums
  exactly to its end-to-end latency: zero failures, always.
* **Analysis cost** — attributing a trace is a cheap post-processing
  pass; the events-per-CPU-second rate is recorded with a loose
  ``higher`` gate so a pathological slowdown of the single-pass matcher
  fails CI.

The *hot-path* cost of the stage-boundary emitters when tracing is off
is deliberately NOT re-measured here: those emitters sit behind the
same ``tracer is None`` / category guards as every other emitter, so
the existing ``tracing_overhead`` bench's ≤3% inert gate already covers
them.

The sweep spec is identical for ``--quick`` and full runs (it is tiny
either way) so the exact-valued metrics compare cleanly against the
committed baseline; only the timing-loop round count differs.

Usage::

    PYTHONPATH=src python benchmarks/perf/attrib_overhead.py [--quick]
        [--output F] [--no-check]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.config import baseline_config
from repro.experiments.runner import run_many
from repro.obs.attrib import (
    attribute_walks,
    blame_sweep_report,
    blame_sweep_specs,
    render_blame_report,
)
from repro.stats.export import write_bench_report

#: Minimum attribution throughput guard is applied via the regress
#: gate's relative threshold, not an absolute floor here — shared CI
#: machines are too variable for absolute rates.

SWEEP = dict(
    workloads=["MVT"],
    schedulers=["fcfs", "simt"],
    seeds=[1],
    num_wavefronts=8,
    scale=0.1,
)


def _median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def measure(rounds):
    specs = blame_sweep_specs(config=baseline_config(), **SWEEP)

    rendered = {}
    for jobs in (1, 2):
        results = run_many(specs, jobs=jobs)
        rendered[jobs] = render_blame_report(
            blame_sweep_report(specs, results)
        )
    report = json.loads(rendered[1])

    # Throughput of the single-pass matcher over the sweep's combined
    # event stream, median of per-round rates (interpreter warmed by
    # the identity runs above).
    events = []
    results = run_many(specs, jobs=1)
    for result in results:
        events.extend(result.detail["trace"]["events"])
    rates = []
    walks = 0
    for _ in range(rounds):
        cpu_start = time.process_time()
        attribution = attribute_walks(events)
        elapsed = time.process_time() - cpu_start
        walks = len(attribution.walks)
        rates.append(len(events) / elapsed if elapsed > 0 else float("inf"))

    return {
        "sweep": {**SWEEP, "specs": len(specs)},
        "rounds": rounds,
        "determinism": {
            "identical_blame_across_jobs": rendered[1] == rendered[2],
        },
        "attribution": {
            "walks_attributed": report["reconciliation"]["checked"],
            "reconciliation_failures": report["reconciliation"]["failures"],
            "events_dropped": report["events_dropped"],
            "jobs_analyzed": sum(
                run["critical_path"]["jobs_analyzed"]
                for run in report["runs"]
            ),
        },
        "analysis": {
            "trace_events": len(events),
            "walks_per_pass": walks,
            "events_per_cpu_sec": round(_median(rates)),
        },
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="fewer timing rounds for CI"
    )
    parser.add_argument(
        "--output",
        default=str(
            Path(__file__).resolve().parents[2] / "BENCH_attrib.json"
        ),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--no-check", action="store_true",
        help="record without asserting invariants",
    )
    args = parser.parse_args(argv)

    report = {
        "measurement": measure(rounds=3 if args.quick else 5),
        "params": {"quick": args.quick},
    }
    document = write_bench_report("attrib", report, args.output)
    print(json.dumps(document, indent=2))

    if args.no_check:
        return 0
    failures = []
    measurement = report["measurement"]
    if not measurement["determinism"]["identical_blame_across_jobs"]:
        failures.append("blame report differs between jobs=1 and jobs=2")
    if measurement["attribution"]["reconciliation_failures"]:
        failures.append(
            f"{measurement['attribution']['reconciliation_failures']} "
            "walk(s) failed stage reconciliation"
        )
    if measurement["attribution"]["events_dropped"]:
        failures.append("blame sweep overflowed its trace ring")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
