"""Event-core microbenchmark: calendar queue ops and batch dispatch.

Two measurements, written to a JSON report (default
``BENCH_event_core.json`` in the repository root):

* **queue ops** — steady-state push/pop churn through the calendar
  :class:`~repro.engine.event_queue.EventQueue` against a plain
  ``heapq`` reference twin (the pre-PR-6 implementation), under two
  time distributions: *dense* (many same-cycle ties, the GPU-model
  regime) and *sparse* (mostly distinct times, the queue's worst case);
* **dispatch** — events/second through ``Simulator.run`` on a
  same-cycle-heavy synthetic stream, with and without a batch handler
  registered for the hot kind, plus the same stream on a singleton
  (no-ties) schedule to pin the scalar fast path.

Usage::

    PYTHONPATH=src python benchmarks/perf/event_core.py [--quick]
        [--output F] [--no-check]

The thresholds asserted here guard the calendar queue against losing to
the heap it replaced on the tie-heavy regime, and batched dispatch
against losing to the scalar loop it shortcuts; ``--no-check`` records
without asserting.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from heapq import heappop, heappush
from pathlib import Path

from repro.engine.event_queue import EventQueue
from repro.engine.simulator import Simulator
from repro.stats.export import write_bench_report


class _HeapReference:
    """The pre-calendar event queue: one binary heap of tagged tuples."""

    def __init__(self):
        self._heap = []
        self._sequence = 0

    def push(self, time_, kind, payload=()):
        heappush(self._heap, (time_, self._sequence, kind, payload))
        self._sequence += 1

    def pop(self):
        return heappop(self._heap)


#: Delay distributions for the churn loop.  ``dense`` mirrors the GPU
#: model (most completions land within a few cycles of each other, with
#: heavy same-cycle collision); ``sparse`` spreads times out so almost
#: every push opens a fresh bucket.
DISTRIBUTIONS = {
    "dense": (0, 0, 0, 1, 1, 2, 3, 5),
    "sparse": tuple(range(1, 257, 2)),
}


def measure_queue_ops(queue_factory, delays, occupancy, ops, seed=0):
    """Push/pop pairs per second at steady-state ``occupancy``."""
    rng = random.Random(seed)
    queue = queue_factory()
    now = 0
    for i in range(occupancy):
        queue.push(rng.choice(delays), "k", (i,))
    choices = [rng.choice(delays) for _ in range(ops)]
    start = time.process_time()
    for delay in choices:
        now = queue.pop()[0]
        queue.push(now + delay, "k", ())
    elapsed = time.process_time() - start
    return ops / elapsed if elapsed > 0 else float("inf")


def bench_queue(occupancy, ops, repeats):
    rows = {}
    for name, delays in DISTRIBUTIONS.items():
        calendar, heap = 0.0, 0.0
        # Interleaved best-of-``repeats``: contention only slows a run,
        # so each implementation's maximum is its cleanest estimate.
        for _ in range(repeats):
            calendar = max(
                calendar,
                measure_queue_ops(EventQueue, delays, occupancy, ops),
            )
            heap = max(
                heap,
                measure_queue_ops(_HeapReference, delays, occupancy, ops),
            )
        rows[name] = {
            "calendar_ops_per_sec": round(calendar),
            "heap_ops_per_sec": round(heap),
            "speedup": round(calendar / heap, 2),
        }
    return rows


def _run_dispatch(events_per_cycle, cycles, batched):
    """Events/second through Simulator.run on a synthetic stream."""
    sim = Simulator()
    sink = []

    def scalar(index):
        sink.append(index)

    def batch(payloads):
        extend = sink.extend
        for payload in payloads:
            extend(payload)

    sim.register("ev", scalar)
    if batched:
        sim.register_batch("ev", batch)
    for cycle in range(1, cycles + 1):
        for index in range(events_per_cycle):
            sim.post_at(cycle, "ev", index)
    total = events_per_cycle * cycles
    start = time.process_time()
    sim.run()
    elapsed = time.process_time() - start
    assert len(sink) == total
    return total / elapsed if elapsed > 0 else float("inf")


def bench_dispatch(events_per_cycle, cycles, repeats):
    scalar, batched, singleton = 0.0, 0.0, 0.0
    for _ in range(repeats):
        scalar = max(scalar, _run_dispatch(events_per_cycle, cycles, False))
        batched = max(batched, _run_dispatch(events_per_cycle, cycles, True))
        # One event per cycle: run length 1, so batching cannot engage
        # and this pins the scalar fast-path rate.
        singleton = max(
            singleton, _run_dispatch(1, events_per_cycle * cycles, True)
        )
    return {
        "events_per_cycle": events_per_cycle,
        "cycles": cycles,
        "scalar_events_per_sec": round(scalar),
        "batched_events_per_sec": round(batched),
        "singleton_events_per_sec": round(singleton),
        "batch_speedup": round(batched / scalar, 2),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="smaller run for CI smoke testing"
    )
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parents[2] / "BENCH_event_core.json"),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--no-check", action="store_true", help="record without asserting thresholds"
    )
    args = parser.parse_args(argv)

    if args.quick:
        occupancy, ops, repeats = 256, 20_000, 1
        dispatch = dict(events_per_cycle=32, cycles=500, repeats=1)
    else:
        occupancy, ops, repeats = 256, 200_000, 3
        dispatch = dict(events_per_cycle=32, cycles=2_000, repeats=3)

    report = {
        "queue_ops": bench_queue(occupancy, ops, repeats),
        "dispatch": bench_dispatch(**dispatch),
        "params": {
            "occupancy": occupancy,
            "ops_per_point": ops,
            "quick": args.quick,
        },
    }
    document = write_bench_report("event_core", report, args.output)
    print(json.dumps(document, indent=2))

    if args.no_check:
        return 0
    failures = []
    dense = report["queue_ops"]["dense"]
    if dense["speedup"] < 1.0:
        failures.append(
            f"calendar queue lost to the heap on dense ties "
            f"({dense['speedup']} < 1.0)"
        )
    if report["dispatch"]["batch_speedup"] < 1.2:
        failures.append(
            f"batch dispatch speedup {report['dispatch']['batch_speedup']} < 1.2"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
