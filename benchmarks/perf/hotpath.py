"""Scheduler hot-path microbenchmark: indexed buffer vs linear scans.

Two measurements, written to a JSON report (default
``BENCH_hotpath.json`` in the repository root):

* **select throughput** — steady-state ``select → remove → refill``
  churn at fixed buffer occupancy, comparing the indexed SIMT-aware
  scheduler against its naive reference twin (the pre-optimisation
  linear-scan hot path, run against a buffer with index maintenance
  disabled so it pays exactly the old costs);
* **end-to-end** — a full simulation of an irregular workload with a
  256-entry walk buffer, comparing simulated events per wall-clock
  second and asserting the two runs produce bit-identical results.

Usage::

    PYTHONPATH=src python benchmarks/perf/hotpath.py [--quick] [--output F]

The thresholds asserted here (3x select throughput at 256-entry
occupancy, 1.5x end-to-end) guard against future regressions of the
indexed hot path; ``--no-check`` records without asserting.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

from repro.config import baseline_config
from repro.core.buffer import PendingWalkBuffer
from repro.core.reference import make_reference_scheduler
from repro.core.request import TranslationRequest
from repro.core.schedulers import make_scheduler
from repro.experiments.runner import run_simulation
from repro.stats.export import write_bench_report

#: Instruction pool for the churn loop: large enough that per-instruction
#: queues stay short, small enough that batching sometimes hits.
INSTRUCTION_POOL = 32


def _fill(buffer, rng, occupancy):
    for _ in range(occupancy):
        _refill(buffer, rng)


def _refill(buffer, rng):
    iid = rng.randrange(INSTRUCTION_POOL)
    request = TranslationRequest(
        vpn=rng.randrange(1 << 20),
        instruction_id=iid,
        wavefront_id=0,
        cu_id=0,
        issue_time=0,
    )
    buffer.add(request, arrival_time=0, estimated_accesses=rng.randrange(1, 5))


def measure_select_throughput(scheduler, occupancy, selects, track_scores, seed=0):
    """Selects/second of a steady-state select→remove→refill churn."""
    rng = random.Random(seed)
    buffer = PendingWalkBuffer(occupancy, track_scores=track_scores)
    _fill(buffer, rng, occupancy)
    start = time.process_time()
    for _ in range(selects):
        choice = scheduler.select(buffer)
        scheduler.note_dispatch(choice)
        buffer.remove(choice)
        buffer.complete_walk(choice.instruction_id)
        _refill(buffer, rng)
    elapsed = time.process_time() - start
    return selects / elapsed if elapsed > 0 else float("inf")


def bench_select(occupancies, selects, repeats):
    rows = {}
    for occupancy in occupancies:
        indexed, naive = 0.0, 0.0
        # Interleaved best-of-``repeats``: contention only slows a run,
        # so each implementation's maximum is its cleanest estimate.
        for _ in range(repeats):
            indexed = max(
                indexed,
                measure_select_throughput(
                    make_scheduler("simt"), occupancy, selects, track_scores=True
                ),
            )
            # The naive twin scans the buffer linearly; disabling index
            # maintenance makes it pay exactly the pre-optimisation costs.
            naive = max(
                naive,
                measure_select_throughput(
                    make_reference_scheduler("simt"),
                    occupancy,
                    selects,
                    track_scores=False,
                ),
            )
        rows[f"occupancy_{occupancy}"] = {
            "indexed_selects_per_sec": round(indexed),
            "naive_selects_per_sec": round(naive),
            "speedup": round(indexed / naive, 2),
        }
    return rows


#: End-to-end scenario: a scheduler-stress machine — large lookahead
#: (the Fig 14 buffer-size axis, continued) with the Fig 13 sensitivity
#: studies' 16 walkers, so selects are frequent and the buffer stays
#: occupied.  This is where the pre-change O(n) hot path hurt most.
E2E_BUFFER = 1024
E2E_WALKERS = 16


def bench_end_to_end(workload, scale, num_wavefronts, repeats):
    config = (
        baseline_config().with_iommu_buffer(E2E_BUFFER).with_walkers(E2E_WALKERS)
    )
    rates = {"indexed": [], "naive": []}
    results = {}
    # Interleave the two implementations and keep each one's best rate.
    # Rates are events per *CPU* second (process time), so background
    # load on the machine doesn't masquerade as a regression; what load
    # remains (cache pollution) only ever slows a run down, so the
    # per-implementation maximum is the least-contended estimate.
    for _ in range(repeats):
        for label, scheduler in (
            ("indexed", make_scheduler("simt")),
            ("naive", make_reference_scheduler("simt")),
        ):
            cpu_start = time.process_time()
            result = run_simulation(
                workload,
                config=config,
                scheduler=scheduler,
                num_wavefronts=num_wavefronts,
                scale=scale,
            )
            cpu_seconds = time.process_time() - cpu_start
            rates[label].append(
                result.detail["engine"]["events_processed"] / cpu_seconds
            )
            results[label] = result
    identical = all(
        getattr(results["indexed"], f) == getattr(results["naive"], f)
        for f in ("total_cycles", "stall_cycles", "walks_dispatched")
    )
    indexed, naive = max(rates["indexed"]), max(rates["naive"])
    return {
        "workload": workload,
        "scheduler": "simt",
        "buffer_entries": E2E_BUFFER,
        "num_walkers": E2E_WALKERS,
        "scale": scale,
        "num_wavefronts": num_wavefronts,
        "repeats": repeats,
        "indexed_events_per_cpu_sec": round(indexed),
        "naive_events_per_cpu_sec": round(naive),
        "speedup": round(indexed / naive, 2),
        "identical_results": identical,
    }


def bench_phase_profile(workload, scale, num_wavefronts):
    """Where the wall time goes: one profiled run's phase breakdown.

    Informational (no threshold): tells the next optimisation pass
    whether the event loop, the scheduler's select or the memory model
    dominates before any code is touched.
    """
    config = (
        baseline_config().with_iommu_buffer(E2E_BUFFER).with_walkers(E2E_WALKERS)
    )
    result = run_simulation(
        workload,
        config=config,
        scheduler="simt",
        num_wavefronts=num_wavefronts,
        scale=scale,
        profile=True,
    )
    profile = result.detail["profile"]
    return {
        "workload": workload,
        "total_wall_seconds": round(profile["total_wall_seconds"], 4),
        "phases": {
            phase: {
                "seconds": round(data["seconds"], 4),
                "calls": data["calls"],
                "fraction": round(data["fraction"], 4),
            }
            for phase, data in profile["phases"].items()
        },
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="smaller run for CI smoke testing"
    )
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parents[2] / "BENCH_hotpath.json"),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--no-check", action="store_true", help="record without asserting thresholds"
    )
    args = parser.parse_args(argv)

    if args.quick:
        occupancies, selects, repeats = (64, 256), 2_000, 1
        e2e = dict(workload="XSB", scale=0.1, num_wavefronts=8, repeats=1)
    else:
        occupancies, selects, repeats = (64, 128, 256), 20_000, 3
        e2e = dict(workload="XSB", scale=0.3, num_wavefronts=32, repeats=3)

    select_rows = bench_select(occupancies, selects, repeats)
    end_to_end = bench_end_to_end(**e2e)
    phase_profile = bench_phase_profile(
        e2e["workload"], e2e["scale"], e2e["num_wavefronts"]
    )
    report = {
        "select_throughput": select_rows,
        "end_to_end": end_to_end,
        "phase_profile": phase_profile,
        "params": {"selects_per_point": selects, "quick": args.quick},
    }
    document = write_bench_report("hotpath", report, args.output)
    print(json.dumps(document, indent=2))

    if args.no_check:
        return 0
    failures = []
    at_256 = select_rows.get("occupancy_256")
    if at_256 and at_256["speedup"] < 3.0:
        failures.append(f"select speedup at 256 entries {at_256['speedup']} < 3.0")
    if not end_to_end["identical_results"]:
        failures.append("end-to-end results differ between indexed and naive")
    if not args.quick and end_to_end["speedup"] < 1.5:
        failures.append(f"end-to-end speedup {end_to_end['speedup']} < 1.5")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
