"""Zoo bench: the scheduler zoo vs the paper's policies, numbers fixed.

Three measurements, written to ``BENCH_zoo.json`` in the unified
envelope (:func:`repro.stats.export.write_bench_report`):

* **sweep** — a fixed workload × scheduler × seed sweep covering the
  paper's policies (``fcfs``/``sjf``/``batch``/``simt``) and the zoo
  families (``wasp``/``iru``/``mosaic``), aggregated by
  :func:`~repro.obs.aggregate.fleet_report`.  Every number here is
  deterministic — the regression gate (``python -m repro bench-check``)
  holds the per-group cycle counts to *exact* equality and the zoo
  geomean speedups to tight thresholds: any drift is a behaviour
  change in a policy, not noise.
* **sms** — the staged-batch DRAM controller compared against the
  default reservation model on the paper's scheduler, plus the SMS
  walk-read QoS accounting.  Cycle counts are exact-gated too.
* **figures** — the zoo sweep pushed through the figure registry's
  comparison charts (``fig8_speedup``, ``scheduler_comparison``,
  ``zoo_walk_traffic``); row counts are exact-gated so the charts
  cannot silently lose a policy.

Usage::

    PYTHONPATH=src python benchmarks/perf/zoo.py [--quick]
        [--output F] [--no-check]

``--quick`` is accepted for CLI symmetry with the other benches but
changes nothing: the whole bench is one deterministic sweep.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.config import SystemConfig
from repro.experiments.runner import run_many
from repro.obs.aggregate import fleet_report, sweep_specs
from repro.obs.figures import CampaignData, build_figures
from repro.stats.export import write_bench_report

#: The fixed comparison sweep.  Two irregular workloads, the paper's
#: four policies plus the three zoo families, two seeds each.
SWEEP_WORKLOADS = ("MVT", "XSB")
SWEEP_SCHEDULERS = (
    "fcfs", "sjf", "batch", "simt",  # the paper's ladder
    "wasp", "iru", "mosaic",         # the zoo
)
SWEEP_SEEDS = range(2)
SWEEP_SCALE = 0.1
SWEEP_WAVEFRONTS = 8

#: DRAM controllers the SMS section compares, on the paper's scheduler.
SMS_CONTROLLERS = ("reservation", "sms")

#: Comparison charts the figure section must be able to build from the
#: zoo sweep alone (no --metrics, no blame sweep attached).
ZOO_FIGURES = ("fig8_speedup", "scheduler_comparison", "zoo_walk_traffic")


def _sweep_report():
    specs = sweep_specs(
        SWEEP_WORKLOADS,
        SWEEP_SCHEDULERS,
        SWEEP_SEEDS,
        scale=SWEEP_SCALE,
        num_wavefronts=SWEEP_WAVEFRONTS,
    )
    outcomes = run_many(specs, return_outcomes=True)
    return fleet_report(specs, outcomes, baseline_scheduler="fcfs")


def measure_sweep(report):
    """The deterministic zoo-vs-paper aggregate the gate pins."""
    return {
        "workloads": list(SWEEP_WORKLOADS),
        "schedulers": list(SWEEP_SCHEDULERS),
        "seeds": len(SWEEP_SEEDS),
        "scale": SWEEP_SCALE,
        "num_wavefronts": SWEEP_WAVEFRONTS,
        "speedup_vs_fcfs": report["speedup_vs_baseline"],
        "total_cycles_by_group": {
            group: entry["total_cycles"]["mean"]
            for group, entry in sorted(report["groups"].items())
        },
        "walk_accesses_by_group": {
            group: entry["walk_memory_accesses"]["mean"]
            for group, entry in sorted(report["groups"].items())
        },
    }


def measure_sms():
    """Reservation vs SMS DRAM model under the paper's scheduler."""
    cycles = {}
    walk_reads = {}
    for controller in SMS_CONTROLLERS:
        config = SystemConfig().with_dram_controller(controller)
        specs = sweep_specs(
            SWEEP_WORKLOADS,
            ("simt",),
            SWEEP_SEEDS,
            config=config,
            scale=SWEEP_SCALE,
            num_wavefronts=SWEEP_WAVEFRONTS,
        )
        results = run_many(specs)
        for spec, result in zip(specs, results):
            key = f"{spec['workload']}/{controller}"
            cycles[key] = cycles.get(key, 0) + result.total_cycles
            if controller == "sms":
                walk_reads[spec["workload"]] = walk_reads.get(
                    spec["workload"], 0
                ) + result.detail["memory"]["dram"]["walk_reads"]
    return {
        "controllers": list(SMS_CONTROLLERS),
        "scheduler": "simt",
        "total_cycles_by_case": dict(sorted(cycles.items())),
        "sms_walk_reads_by_workload": dict(sorted(walk_reads.items())),
    }


def measure_figures(report):
    """The zoo comparison charts, built from the sweep's fleet report."""
    data = CampaignData.from_reports([("zoo", report)])
    figures, skipped = build_figures(data, names=ZOO_FIGURES)
    for name in ZOO_FIGURES:
        if name in skipped:
            raise AssertionError(
                f"zoo figure {name!r} skipped: {skipped[name]}"
            )
    return {
        "figures": list(ZOO_FIGURES),
        "rows_by_figure": {
            figure.name: len(figure.rows) for figure in figures
        },
        "schedulers_plotted": data.schedulers(),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="accepted for symmetry; the sweep is already CI-sized",
    )
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parents[2] / "BENCH_zoo.json"),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--no-check", action="store_true",
        help="record without asserting invariants",
    )
    args = parser.parse_args(argv)

    fleet = _sweep_report()
    report = {
        "sweep": measure_sweep(fleet),
        "sms": measure_sms(),
        "figures": measure_figures(fleet),
        "params": {"quick": args.quick},
    }
    document = write_bench_report("zoo", report, args.output)
    print(json.dumps(document, indent=2))

    if args.no_check:
        return 0
    failures = []
    speedups = report["sweep"]["speedup_vs_fcfs"]
    for family in ("wasp", "iru", "mosaic"):
        if family not in speedups:
            failures.append(f"zoo family {family!r} missing from the sweep")
    if report["sweep"]["total_cycles_by_group"].keys() != (
        report["sweep"]["walk_accesses_by_group"].keys()
    ):
        failures.append("cycle and walk-traffic groups disagree")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
