"""Tracing overhead guard: the disabled path must stay (nearly) free.

The observability layer promises zero overhead when off: every hot-path
emitter is a single ``tracer is not None`` guard.  This benchmark pins
that promise with three interleaved measurements of the same spec:

* **untraced** — ``trace=None``; the hooks are literally absent.
* **inert** — ``TraceConfig(categories=frozenset())``; a tracer object
  is wired through every model but no category is enabled, so every
  emitter early-returns.  This is the worst case of the *disabled*
  path: all the guards are paid, nothing is recorded.
* **full** — all categories recording into the default ring; reported
  informationally (recording is expected to cost real time).

The guard asserts the inert configuration is at most 3% slower than
untraced (median of per-round paired CPU-time ratios, so machine-speed
drift cannot fake a regression), and that all three runs produce
bit-identical simulation results.

Usage::

    PYTHONPATH=src python benchmarks/perf/tracing_overhead.py [--quick]
        [--output F] [--no-check]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.config import baseline_config
from repro.experiments.runner import run_simulation
from repro.obs.trace import TraceConfig
from repro.stats.export import write_bench_report

#: Maximum tolerated slowdown of the wired-but-disabled tracer relative
#: to the untraced fast path (1.03 == 3%).
MAX_DISABLED_OVERHEAD = 1.03

MODES = {
    "untraced": None,
    "inert": TraceConfig(categories=frozenset()),
    "full": TraceConfig(),
}


def _median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def measure(workload, scale, num_wavefronts, rounds):
    """Median paired slowdown of each traced mode vs untraced.

    Shared CI machines drift (frequency scaling, cgroup throttling):
    back-to-back runs of *identical* code can differ by 20%+, which
    drowns a 3% guard measured as best-of-N absolute rates.  Instead
    each round runs all three modes back-to-back — so they share the
    machine's momentary speed — and produces one *paired* slowdown
    ratio per traced mode; the guard checks the median ratio across
    rounds.  Mode order rotates per round so no mode systematically
    inherits the warmer slot.
    """
    config = baseline_config()
    mode_items = list(MODES.items())
    cpu_seconds = {mode: [] for mode in MODES}
    rates = {mode: [] for mode in MODES}
    results = {}
    # Warm the interpreter (bytecode caches, allocator pools) before
    # measuring, so the first round doesn't absorb the cold-start cost.
    run_simulation(
        workload, config=config, scheduler="simt",
        num_wavefronts=num_wavefronts, scale=scale,
    )
    for round_index in range(rounds):
        rotation = (
            mode_items[round_index % len(mode_items):]
            + mode_items[:round_index % len(mode_items)]
        )
        for mode, trace in rotation:
            cpu_start = time.process_time()
            result = run_simulation(
                workload,
                config=config,
                scheduler="simt",
                num_wavefronts=num_wavefronts,
                scale=scale,
                trace=trace,
            )
            elapsed = time.process_time() - cpu_start
            cpu_seconds[mode].append(elapsed)
            rates[mode].append(
                result.detail["engine"]["events_processed"] / elapsed
                if elapsed > 0 else float("inf")
            )
            results[mode] = result
    identical = all(
        getattr(results[mode], field) == getattr(results["untraced"], field)
        for mode in MODES
        for field in ("total_cycles", "stall_cycles", "walks_dispatched")
    )
    slowdown = {
        mode: round(
            _median(
                [
                    traced / untraced
                    for traced, untraced in zip(
                        cpu_seconds[mode], cpu_seconds["untraced"]
                    )
                ]
            ),
            4,
        )
        for mode in MODES
        if mode != "untraced"
    }
    return {
        "workload": workload,
        "scheduler": "simt",
        "scale": scale,
        "num_wavefronts": num_wavefronts,
        "rounds": rounds,
        "events_per_cpu_sec": {
            mode: round(max(samples)) for mode, samples in rates.items()
        },
        # Median paired slowdown vs untraced: >1.0 means slower.
        "slowdown_vs_untraced": slowdown,
        "identical_results": identical,
        "trace_events_emitted": results["full"].detail["trace"][
            "events_emitted"
        ],
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="smaller run for CI smoke testing"
    )
    parser.add_argument(
        "--output",
        default=str(
            Path(__file__).resolve().parents[2] / "BENCH_tracing_overhead.json"
        ),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--no-check", action="store_true", help="record without asserting thresholds"
    )
    args = parser.parse_args(argv)

    # Even the quick runs must last long enough that process_time's
    # resolution and interpreter warmup cannot masquerade as overhead —
    # a sub-100ms measurement can misreport the guard by 20%.
    if args.quick:
        spec = dict(workload="XSB", scale=0.3, num_wavefronts=16, rounds=5)
    else:
        spec = dict(workload="XSB", scale=0.5, num_wavefronts=32, rounds=7)

    report = {
        "max_disabled_overhead": MAX_DISABLED_OVERHEAD,
        "measurement": measure(**spec),
        "params": {"quick": args.quick},
    }
    document = write_bench_report("tracing_overhead", report, args.output)
    print(json.dumps(document, indent=2))

    if args.no_check:
        return 0
    failures = []
    measurement = report["measurement"]
    inert = measurement["slowdown_vs_untraced"]["inert"]
    if inert > MAX_DISABLED_OVERHEAD:
        failures.append(
            f"disabled-tracer slowdown {inert} exceeds the "
            f"{MAX_DISABLED_OVERHEAD} guard"
        )
    if not measurement["identical_results"]:
        failures.append("traced and untraced runs produced different results")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
