"""Fleet bench: telemetry must stay (nearly) free, sweep numbers fixed.

Two measurements, written to ``BENCH_fleet.json`` in the unified
envelope (:func:`repro.stats.export.write_bench_report`):

* **overhead** — the same :func:`~repro.experiments.runner.run_many`
  sweep run with and without a :class:`~repro.obs.fleet.FleetTelemetry`
  collector (JSONL log enabled, so the realistic cost is paid).  The
  guard asserts the telemetry-on sweep is at most 3% slower (median of
  per-round paired CPU-time ratios — the same machine-drift-proof
  protocol as ``tracing_overhead.py``) and that both sides produce
  bit-identical simulation results.  Telemetry events are per-spec,
  never per-cycle, so anything above noise here means an emitter leaked
  into the simulation hot path.
* **sweep** — a fixed workload × scheduler × seed sweep aggregated by
  :func:`~repro.obs.aggregate.fleet_report`.  Its geomean speedups and
  per-group cycle counts are *deterministic* — ``--quick`` shrinks only
  the overhead rounds, never this sweep — so the regression gate
  (``python -m repro bench-check``) holds them to exact/tight
  thresholds: any drift is a real behaviour change, not noise.

Usage::

    PYTHONPATH=src python benchmarks/perf/fleet_overhead.py [--quick]
        [--output F] [--no-check]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.experiments.runner import run_many
from repro.obs.aggregate import fleet_report, sweep_specs
from repro.obs.fleet import FleetTelemetry
from repro.stats.export import write_bench_report

#: Maximum tolerated slowdown of a telemetry-on sweep relative to the
#: telemetry-off sweep (1.03 == 3%).
MAX_TELEMETRY_OVERHEAD = 1.03

#: The fixed sweep both measurements run.  Small enough for CI, large
#: enough that per-spec telemetry cost would register if it scaled with
#: anything but the spec count.
SWEEP_WORKLOADS = ("MVT", "XSB")
SWEEP_SCHEDULERS = ("fcfs", "simt")
SWEEP_SEEDS = range(2)
SWEEP_SCALE = 0.1
SWEEP_WAVEFRONTS = 8


def _sweep():
    return sweep_specs(
        SWEEP_WORKLOADS,
        SWEEP_SCHEDULERS,
        SWEEP_SEEDS,
        scale=SWEEP_SCALE,
        num_wavefronts=SWEEP_WAVEFRONTS,
    )


def _fingerprint(results):
    return [
        (r.workload, r.scheduler, r.total_cycles, r.stall_cycles,
         r.walks_dispatched, r.walk_memory_accesses)
        for r in results
    ]


#: Telemetry events the serial sweep path emits per spec (spec_started
#: + spec_finished; retries would add more, and the benchmark sweep has
#: none).  Kept explicit so the implied-overhead arithmetic below is
#: auditable against :mod:`repro.obs.fleet`.
EVENTS_PER_SPEC = 2

#: Events timed by the emit microbenchmark.
EMIT_SAMPLES = 5_000


def measure_emit_cost():
    """Per-event CPU cost of a log-writing emit, in seconds.

    This is the *entire* per-spec telemetry cost on the serial sweep
    path: one in-memory append, one ``json.dumps``, one flushed JSONL
    line.  Unlike the end-to-end ratio below, a microbenchmark of 5 000
    emits is long enough to time and short enough that machine drift
    within it is negligible — so this number is stable where the ratio
    is not.
    """
    with tempfile.NamedTemporaryFile(suffix=".jsonl") as log:
        telemetry = FleetTelemetry(log_path=log.name)
        try:
            # Warm the emit path, then time it.
            for _ in range(100):
                telemetry.emit(
                    "spec_finished", index=0, spec="warmup", status="ok",
                    attempts=1, elapsed_seconds=0.0, events_per_sec=0,
                )
            cpu_start = time.process_time()
            for index in range(EMIT_SAMPLES):
                telemetry.emit(
                    "spec_finished", index=index, spec="bench spec",
                    status="ok", attempts=1, elapsed_seconds=1.234,
                    events_per_sec=50_000,
                )
            elapsed = time.process_time() - cpu_start
        finally:
            telemetry.close()
    return elapsed / EMIT_SAMPLES


def measure_overhead(rounds):
    """Telemetry cost of a sweep: implied fraction + end-to-end ratio.

    The guard needs "telemetry costs ≤3% of :func:`run_many`", but this
    class of shared machine drifts ±20% between *identical* back-to-back
    runs, so no end-to-end protocol (paired medians, best-of-N) can
    resolve 3%.  Instead the guarded number is *implied* from two stable
    measurements: the microbenchmarked per-emit cost
    (:func:`measure_emit_cost`) times the serial path's
    :data:`EVENTS_PER_SPEC`, over the best observed per-spec sweep time
    — a conservative bound, since the best sweep time is the *smallest*
    denominator observed.  The raw end-to-end ratio is still recorded
    (``slowdown_end_to_end``) for eyeballing, with its per-round samples.

    Correctness is absolute either way: both variants' results must be
    bit-identical.
    """
    specs = _sweep()
    cpu_seconds = {"off": [], "on": []}
    fingerprints = {}
    # Warm the interpreter before measuring.
    run_many(specs)
    log_dir = tempfile.mkdtemp(prefix="fleet_bench_")
    try:
        for round_index in range(rounds):
            order = ("off", "on") if round_index % 2 == 0 else ("on", "off")
            for variant in order:
                telemetry = None
                if variant == "on":
                    telemetry = FleetTelemetry(
                        log_path=os.path.join(
                            log_dir, f"round_{round_index}.jsonl"
                        )
                    )
                cpu_start = time.process_time()
                try:
                    results = run_many(specs, telemetry=telemetry)
                finally:
                    if telemetry is not None:
                        telemetry.close()
                cpu_seconds[variant].append(
                    time.process_time() - cpu_start
                )
                fingerprints[variant] = _fingerprint(results)
    finally:
        for name in os.listdir(log_dir):
            os.unlink(os.path.join(log_dir, name))
        os.rmdir(log_dir)
    emit_seconds = measure_emit_cost()
    best_spec_seconds = min(cpu_seconds["off"]) / len(specs)
    implied = (EVENTS_PER_SPEC * emit_seconds) / best_spec_seconds
    return {
        "specs": len(specs),
        "rounds": rounds,
        "events_per_spec": EVENTS_PER_SPEC,
        "emit_microseconds": round(emit_seconds * 1e6, 2),
        # The guarded number: telemetry cost as a fraction of the
        # fastest observed per-spec run time, expressed as a slowdown
        # ratio so the gate reads it like the tracing guard.
        "slowdown_with_telemetry": round(1.0 + implied, 4),
        "slowdown_end_to_end": round(
            min(cpu_seconds["on"]) / min(cpu_seconds["off"]), 4
        ),
        "identical_results": fingerprints["on"] == fingerprints["off"],
        "cpu_seconds_off": [round(s, 4) for s in cpu_seconds["off"]],
        "cpu_seconds_on": [round(s, 4) for s in cpu_seconds["on"]],
    }


def measure_sweep():
    """The deterministic sweep aggregate the gate pins exactly."""
    specs = _sweep()
    outcomes = run_many(specs, return_outcomes=True)
    report = fleet_report(specs, outcomes, baseline_scheduler="fcfs")
    return {
        "workloads": list(SWEEP_WORKLOADS),
        "schedulers": list(SWEEP_SCHEDULERS),
        "seeds": len(SWEEP_SEEDS),
        "scale": SWEEP_SCALE,
        "num_wavefronts": SWEEP_WAVEFRONTS,
        "speedup_vs_fcfs": report["speedup_vs_baseline"],
        "total_cycles_by_group": {
            group: entry["total_cycles"]["mean"]
            for group, entry in sorted(report["groups"].items())
        },
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="fewer overhead rounds for CI smoke testing "
             "(the sweep measurement never changes)",
    )
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parents[2] / "BENCH_fleet.json"),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--no-check", action="store_true",
        help="record without asserting thresholds",
    )
    args = parser.parse_args(argv)

    rounds = 3 if args.quick else 7
    report = {
        "max_telemetry_overhead": MAX_TELEMETRY_OVERHEAD,
        "overhead": measure_overhead(rounds),
        "sweep": measure_sweep(),
        "params": {"quick": args.quick},
    }
    document = write_bench_report("fleet", report, args.output)
    print(json.dumps(document, indent=2))

    if args.no_check:
        return 0
    failures = []
    overhead = report["overhead"]
    if overhead["slowdown_with_telemetry"] > MAX_TELEMETRY_OVERHEAD:
        failures.append(
            f"telemetry slowdown {overhead['slowdown_with_telemetry']} "
            f"exceeds the {MAX_TELEMETRY_OVERHEAD} guard"
        )
    if not overhead["identical_results"]:
        failures.append(
            "telemetry-on and telemetry-off sweeps produced different results"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
