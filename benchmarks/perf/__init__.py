"""Performance-regression microbenchmarks (not pytest-collected).

Run ``python benchmarks/perf/hotpath.py`` with ``src`` on PYTHONPATH;
see ``docs/PERFORMANCE.md``.
"""
