"""Figure pipeline bench: determinism across worker counts + throughput.

The figure registry's contract is that the rendered artifacts are a
pure function of the sweep definition — the worker count, scheduling
order, and merge path must never leak into a byte.  This bench runs
the same fixed sweep at ``jobs=1`` and ``jobs=2``, pushes both reports
through ``fleet_report → emit_figures → build_report_html``, and
records, in ``BENCH_figures.json`` (unified envelope from
:mod:`repro.stats.export`):

* **determinism** — ``identical_figures_across_jobs`` /
  ``identical_html_across_jobs`` booleans, compared byte-for-byte
  across every emitted spec, CSV and manifest.  The regression gate
  (``python -m repro bench-check``) holds both to ``exact``.
* **registry** — ``figure_count`` (exact-gated: the registry must not
  silently shrink) and how many figures were skipped on this sweep.
* **render** — wall-clock cost of one full build+emit+HTML pass,
  reported for trend-watching but not gated (render time is noise-
  dominated at this scale; the determinism booleans are the contract).

Usage::

    PYTHONPATH=src python benchmarks/perf/figures_pipeline.py [--quick]
        [--output F] [--no-check]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.experiments.runner import run_many_resilient
from repro.obs.aggregate import fleet_report, sweep_specs
from repro.obs.figures import CampaignData, build_figures, emit_figures, figure_names
from repro.obs.report import build_report_html
from repro.stats.export import write_bench_report

#: The fixed sweep.  --metrics on, so the latency-CDF figure (the only
#: conditional one) is exercised and counted.
SWEEP_WORKLOADS = ("MVT", "XSB")
SWEEP_SCHEDULERS = ("fcfs", "simt")
SWEEP_SEEDS = range(2)
SWEEP_SCALE = 0.1
SWEEP_WAVEFRONTS = 8


def _sweep_report(jobs):
    specs = sweep_specs(
        SWEEP_WORKLOADS,
        SWEEP_SCHEDULERS,
        SWEEP_SEEDS,
        scale=SWEEP_SCALE,
        num_wavefronts=SWEEP_WAVEFRONTS,
        metrics=True,
    )
    outcomes = run_many_resilient(specs, jobs=jobs)
    return fleet_report(specs, outcomes)


def _emit_all(report, out_dir):
    """One full pipeline pass; returns (artifact bytes, html, seconds)."""
    started = time.perf_counter()
    data = CampaignData.from_reports([("bench", report)])
    manifest = emit_figures(data, out_dir)
    figures, skipped = build_figures(data)
    html = build_report_html([("bench", report)], figures, skipped)
    elapsed = time.perf_counter() - started
    artifacts = {
        path.name: path.read_bytes() for path in sorted(Path(out_dir).iterdir())
    }
    return artifacts, html, elapsed, manifest, skipped


def measure(quick):
    reports = {jobs: _sweep_report(jobs) for jobs in (1, 2)}
    outputs = {}
    render_seconds = []
    with tempfile.TemporaryDirectory() as tmp:
        for jobs, report in reports.items():
            out_dir = Path(tmp) / f"jobs{jobs}"
            artifacts, html, elapsed, manifest, skipped = _emit_all(
                report, out_dir
            )
            outputs[jobs] = (artifacts, html)
            render_seconds.append(elapsed)
            last_manifest, last_skipped = manifest, skipped

    identical_figures = outputs[1][0] == outputs[2][0]
    identical_html = outputs[1][1] == outputs[2][1]
    return {
        "determinism": {
            "identical_figures_across_jobs": identical_figures,
            "identical_html_across_jobs": identical_html,
        },
        "registry": {
            "figure_count": len(figure_names()),
            "figures_emitted": len(last_manifest["figures"]),
            "figures_skipped": len(last_skipped),
        },
        "render": {
            "seconds_per_pass": round(
                sum(render_seconds) / len(render_seconds), 4
            ),
            "html_bytes": len(outputs[1][1]),
        },
        "params": {
            "workloads": list(SWEEP_WORKLOADS),
            "schedulers": list(SWEEP_SCHEDULERS),
            "seeds": len(SWEEP_SEEDS),
            "scale": SWEEP_SCALE,
            "num_wavefronts": SWEEP_WAVEFRONTS,
            "quick": quick,
        },
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="accepted for CLI symmetry with the other benches; the "
             "determinism sweep is already CI-sized and never shrinks",
    )
    parser.add_argument(
        "--output",
        default=str(
            Path(__file__).resolve().parents[2] / "BENCH_figures.json"
        ),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--no-check", action="store_true",
        help="record without asserting the determinism booleans",
    )
    args = parser.parse_args(argv)

    report = measure(args.quick)
    document = write_bench_report("figures", report, args.output)
    print(json.dumps(document, indent=2))

    if args.no_check:
        return 0
    failures = []
    determinism = report["determinism"]
    if not determinism["identical_figures_across_jobs"]:
        failures.append("figure artifacts differ between jobs=1 and jobs=2")
    if not determinism["identical_html_across_jobs"]:
        failures.append("HTML report differs between jobs=1 and jobs=2")
    if report["registry"]["figures_emitted"] < 8:
        failures.append(
            f"only {report['registry']['figures_emitted']} figures emitted "
            "(acceptance floor is 8)"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
