"""Fig 11: number of page-table walks, SIMT-aware normalised to FCFS.

Paper: the scheduler reduces the number of walks (TLB misses) by 21% on
average (up to 30%) — deferring translation-heavy instructions keeps
them from thrashing the TLBs, so low-overhead instructions hit more.
"""

from repro.experiments import figures, report

from benchmarks.conftest import BENCH, run_once


def test_fig11_walk_count(benchmark):
    data = run_once(benchmark, figures.fig11_walk_count, **BENCH)
    print()
    print(
        report.render_series(
            "Fig 11: page walks, SIMT-aware normalised to FCFS",
            data,
            value_label="ratio",
        )
    )
    # Walk count must shrink in aggregate and never grow materially.
    assert data["Mean"] < 1.0
    for workload, ratio in data.items():
        assert ratio < 1.08, workload
    # At least one workload shows a pronounced thrash reduction.
    assert min(v for k, v in data.items() if k != "Mean") < 0.85
