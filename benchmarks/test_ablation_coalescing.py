"""Ablation: IOMMU same-page walk coalescing mode.

The paper does not describe MSHR-style walk merging; our IOMMU supports
three modes (DESIGN.md §6).  ``full`` coalescing disproportionately
benefits slow schedulers — a walk that waits longer captures more
same-page sharers — so it *narrows* the SIMT-over-FCFS win on workloads
with cross-instruction page sharing (XSB's hot search pages).
"""

from dataclasses import replace

from repro.config import baseline_config
from repro.experiments.runner import compare_schedulers

from benchmarks.conftest import BENCH, run_once


def run_modes(workload="XSB"):
    out = {}
    for mode in ("off", "inflight", "full"):
        config = baseline_config()
        config = replace(config, iommu=replace(config.iommu, coalesce_walks=mode))
        results = compare_schedulers(
            workload, schedulers=("fcfs", "simt"), config=config, **BENCH
        )
        out[mode] = {
            "speedup": results["simt"].speedup_over(results["fcfs"]),
            "fcfs_walks": results["fcfs"].walks_dispatched,
            "simt_walks": results["simt"].walks_dispatched,
        }
    return out


def test_ablation_coalescing_mode(benchmark):
    data = run_once(benchmark, run_modes)
    print()
    print("Ablation: walk-coalescing mode on XSB")
    for mode, row in data.items():
        print(
            f"  {mode:<9} simt/fcfs={row['speedup']:.3f} "
            f"walks fcfs={row['fcfs_walks']} simt={row['simt_walks']}"
        )
    # Dedup removes walks: fewer dispatches with coalescing than without.
    assert data["inflight"]["fcfs_walks"] <= data["off"]["fcfs_walks"]
    assert data["full"]["fcfs_walks"] <= data["inflight"]["fcfs_walks"]
    # Full pending-merge narrows the scheduler win vs in-flight dedup.
    assert data["full"]["speedup"] <= data["inflight"]["speedup"] + 0.02
