"""Fig 10: first/last walk latency gap, SIMT-aware normalised to FCFS.

Paper: batching reduces the gap by 37% on average on the irregular
applications.  In our reproduction the gap shrinks on the workloads
whose jobs are strongly bimodal, but SJF's deferral of heavy
instructions stretches the mean gap on the most uniform ones (XSB, NW)
— see EXPERIMENTS.md for the per-workload discussion.  The benchmark
therefore asserts the *aggregate* claim only loosely: the geometric-mean
normalised gap must not explode, and at least half of the workloads must
see their gap shrink or hold.
"""

from repro.experiments import figures, report

from benchmarks.conftest import BENCH, run_once


def test_fig10_latency_gap(benchmark):
    data = run_once(benchmark, figures.fig10_latency_gap, **BENCH)
    print()
    print(
        report.render_series(
            "Fig 10: first/last walk latency gap, SIMT normalised to FCFS",
            data,
            value_label="ratio",
        )
    )
    per_workload = {k: v for k, v in data.items() if k != "Mean"}
    improved_or_held = sum(1 for v in per_workload.values() if v <= 1.2)
    assert improved_or_held >= len(per_workload) // 2
    assert data["Mean"] < 2.0
