"""Ablation: interaction with memory-controller scheduling (paper §VI).

The paper argues the page-walk scheduler "is unlikely to have
significant interactions with the memory schedulers".  Running the same
workload over three DRAM front ends — the lightweight reservation
model, a queued FCFS controller, and a queued FR-FCFS controller — we
find the claim *mostly* holds: the SIMT-aware win survives every
policy.  But FR-FCFS is not fully orthogonal in our model: by batching
row hits it accelerates the FCFS walk baseline itself (page-table reads
of TLB-missing neighbours share table pages), absorbing part — not all —
of the scheduling headroom.  EXPERIMENTS.md records the numbers.
"""

from dataclasses import replace

from repro.config import baseline_config
from repro.experiments.runner import compare_schedulers

from benchmarks.conftest import BENCH, run_once

POLICIES = ("reservation", "fcfs", "frfcfs")


def run_study(workload="MVT"):
    out = {}
    for policy in POLICIES:
        config = baseline_config()
        config = replace(config, dram=replace(config.dram, controller=policy))
        results = compare_schedulers(
            workload, schedulers=("fcfs", "simt"), config=config, **BENCH
        )
        out[policy] = {
            "fcfs_cycles": results["fcfs"].total_cycles,
            "speedup": results["simt"].speedup_over(results["fcfs"]),
        }
    return out


def test_ablation_dram_scheduling_policy(benchmark):
    data = run_once(benchmark, run_study)
    print()
    print("Ablation: DRAM controller policy under MVT")
    for policy, row in data.items():
        print(
            f"  {policy:<12} fcfs={row['fcfs_cycles']:>10,} "
            f"simt/fcfs={row['speedup']:.3f}"
        )
    speedups = [row["speedup"] for row in data.values()]
    # The walk-scheduling win survives every memory-controller policy —
    # the substance of the paper's no-interaction claim — even though
    # FR-FCFS absorbs part of the headroom by speeding up FCFS itself.
    assert min(speedups) > 1.10
