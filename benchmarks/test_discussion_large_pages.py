"""§VI Discussion: "Why not large pages?"

The paper argues large pages are not a panacea: they help only while a
workload's footprint fits the large-page TLB reach, and "as memory
footprints continue to grow, today's large page effectively becomes
tomorrow's small page".  This bench reproduces both halves:

1. On a Table II-sized workload (MVT, 128 MB = 64 × 2 MB regions), 2 MB
   pages collapse the walk count and make scheduling irrelevant.
2. On a future-sized workload (4 GB footprint, low locality — more 2 MB
   regions than the shared L2 TLB has entries), walks return at the
   large-page granularity and SIMT-aware scheduling wins again.
"""

from repro.config import baseline_config
from repro.experiments.runner import compare_schedulers
from repro.workloads.synthetic import ParametricWorkload

from benchmarks.conftest import BENCH, run_once


def run_study():
    out = {}
    # (1) Paper-sized workload: large pages fix translation outright.
    for page in ("4K", "2M"):
        config = baseline_config().with_page_size(page)
        results = compare_schedulers(
            "MVT", schedulers=("fcfs", "simt"), config=config, **BENCH
        )
        out[f"MVT/{page}"] = {
            "fcfs_walks": results["fcfs"].walks_dispatched,
            "speedup": results["simt"].speedup_over(results["fcfs"]),
        }
    # (2) Future-sized workload: 4 GB, low-locality gathers — 2048
    # large-page regions against a 512-entry L2 TLB, with the bimodal
    # light/heavy structure of the Table II irregular group.
    def big_workload():
        return ParametricWorkload(
            pages_pattern=[64, 2, 2, 2],
            instructions_per_wavefront=20,
            reuse_window=4,
            footprint_mb=4096.0,
        )

    for page in ("4K", "2M"):
        config = baseline_config().with_page_size(page)
        results = compare_schedulers(
            big_workload(), schedulers=("fcfs", "simt"), config=config,
            num_wavefronts=BENCH["num_wavefronts"],
        )
        out[f"BIG/{page}"] = {
            "fcfs_walks": results["fcfs"].walks_dispatched,
            "speedup": results["simt"].speedup_over(results["fcfs"]),
        }
    return out


def test_discussion_large_pages(benchmark):
    data = run_once(benchmark, run_study)
    print()
    print("§VI: large pages vs page-walk scheduling")
    for label, row in data.items():
        print(
            f"  {label:<8} fcfs walks={row['fcfs_walks']:>7,} "
            f"simt/fcfs={row['speedup']:.3f}"
        )
    # Half 1: within TLB reach, large pages erase the translation
    # bottleneck and the scheduler is neutral.
    assert data["MVT/2M"]["fcfs_walks"] < data["MVT/4K"]["fcfs_walks"] / 20
    assert 0.95 <= data["MVT/2M"]["speedup"] <= 1.05
    # Half 2: beyond TLB reach, page-table walks return in volume even at
    # 2 MB granularity — "today's large page becomes tomorrow's small
    # page" — so a walk-scheduling mechanism stays relevant (and must at
    # minimum do no harm while the bottleneck rebuilds).
    assert data["BIG/2M"]["fcfs_walks"] > data["MVT/2M"]["fcfs_walks"] * 10
    assert data["BIG/2M"]["speedup"] > 0.97
