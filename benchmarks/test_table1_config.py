"""Table I: the baseline system configuration."""

from repro.experiments import figures, report

from benchmarks.conftest import run_once


def test_table1_configuration(benchmark):
    rows = run_once(benchmark, figures.table1_configuration)
    print()
    print(report.render_table1(rows))
    # The paper's Table I rows, verbatim-checkable fragments.
    assert "2GHz, 8 CUs" in rows["GPU"]
    assert "64 threads per wavefront" in rows["GPU"]
    assert rows["L1 Data Cache"].startswith("32KB, 16-way")
    assert rows["L2 Data Cache"].startswith("4MB, 16-way")
    assert rows["L1 TLB"] == "32 entries, Fully-associative"
    assert rows["L2 TLB"] == "512 entries, 16-way set associative"
    assert "256 buffer entries" in rows["IOMMU"]
    assert "8 page table walkers" in rows["IOMMU"]
    assert "32/256 entries" in rows["IOMMU"]
    assert "FCFS scheduling" in rows["IOMMU"]
    assert "DDR3-1600" in rows["DRAM"]
