"""Extension: multi-application page-walk scheduling for QoS.

The paper's conclusion invites follow-on work exploring walk scheduling
"for both performance and QoS" (citing ATLAS/STFM/PAR-BS).  This bench
co-runs two irregular applications on one GPU and compares three walk
schedulers on the standard multi-programme metrics:

* FCFS — the baseline, obliviously unfair;
* SIMT-aware — the paper's policy, best raw throughput;
* fair-share — our least-attained-service extension: best fairness.
"""

from repro.experiments.multitenancy import qos_comparison

from benchmarks.conftest import run_once

CO_RUN = ("MVT", "GEV")


def run_study():
    return qos_comparison(CO_RUN, wavefronts_per_app=32, scale=0.5)


def test_extension_multiapp_qos(benchmark):
    results = run_once(benchmark, run_study)
    print()
    print(f"Multi-app QoS study: {' + '.join(CO_RUN)} sharing the GPU")
    for result in results.values():
        print(" ", result.summary())
    fcfs, simt, fair = results["fcfs"], results["simt"], results["fairshare"]
    # The paper's scheduler helps even in a multi-tenant setting.
    assert simt.total_cycles < fcfs.total_cycles
    # The fairness extension improves the min/max slowdown ratio over
    # the oblivious baseline...
    assert fair.fairness > fcfs.fairness
    # ...and is at least as fair as plain SIMT-aware.
    assert fair.fairness >= simt.fairness - 0.02
