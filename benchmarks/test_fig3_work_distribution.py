"""Fig 3: distribution of per-instruction page-walk memory accesses.

Paper: 27-61% of walk-generating instructions need 1-16 accesses while
33-70% need 49+, i.e. the distribution is strongly bimodal — the
variance that makes shortest-job-first scheduling worthwhile.
"""

from repro.experiments import figures, report

from benchmarks.conftest import BENCH, run_once

LIGHT = "1-16"
HEAVY = ("49-64", "65-80", "81-256")


def test_fig3_work_distribution(benchmark):
    data = run_once(benchmark, figures.fig3_walk_work_distribution, **BENCH)
    print()
    print(
        report.render_grouped(
            "Fig 3: fraction of SIMD instructions per page-walk work bucket",
            data,
        )
    )
    for workload, row in data.items():
        light = row[LIGHT]
        heavy = sum(row[bucket] for bucket in HEAVY)
        # Bimodal: both a light population and a heavy population exist.
        assert light > 0.05, f"{workload} lacks light instructions"
        assert heavy > 0.20, f"{workload} lacks heavy instructions"
