"""Ablation: scheduler scan latency (paper §IV "Design Subtleties").

The paper argues that scanning the pending-walk buffer when a walker
frees up "adds little additional delay": every buffered request already
missed the whole TLB hierarchy and faces a walk of hundreds of cycles.
We charge the SIMT-aware scheduler a flat scan cost per selection
(FIFO-style policies pop a queue head and pay nothing) and verify the
win is insensitive to realistic values.  In practice a small scan delay
can even *help* slightly: dispatch decisions made a few cycles later see
a fuller buffer — more lookahead per selection.
"""

from dataclasses import replace

from repro.config import baseline_config
from repro.experiments.runner import compare_schedulers

from benchmarks.conftest import BENCH, run_once

SCAN_LATENCIES = (0, 4, 16)


def run_study(workload="MVT"):
    out = {}
    for scan in SCAN_LATENCIES:
        config = baseline_config()
        config = replace(
            config, iommu=replace(config.iommu, scan_latency_cycles=scan)
        )
        results = compare_schedulers(
            workload, schedulers=("fcfs", "simt"), config=config, **BENCH
        )
        out[scan] = results["simt"].speedup_over(results["fcfs"])
    return out


def test_ablation_scan_latency(benchmark):
    data = run_once(benchmark, run_study)
    print()
    print("Ablation: scheduler scan latency on MVT")
    for scan, speedup in data.items():
        print(f"  scan={scan:>2} cycles  simt/fcfs={speedup:.3f}")
    # The win survives a realistic scan cost...
    assert data[4] > 1.10
    # ...and even a pessimistic 16-cycle scan keeps most of it
    # (paper: scanning is not on the critical path).
    assert data[16] > data[0] - 0.15
