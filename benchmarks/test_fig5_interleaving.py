"""Fig 5: fraction of instructions whose walks interleave (FCFS).

Paper: 45-77% of multi-walk instructions have their page-walk requests
interleaved with other instructions' requests under FCFS.  Our model's
request streams multiplex only through the shared L2 TLB port, so the
measured fractions are lower, but interleaving must be present on every
motivation workload.
"""

from repro.experiments import figures, report

from benchmarks.conftest import BENCH, run_once


def test_fig5_interleaving(benchmark):
    data = run_once(benchmark, figures.fig5_interleaving, **BENCH)
    print()
    print(
        report.render_series(
            "Fig 5: fraction of multi-walk instructions interleaved (FCFS)",
            data,
            value_label="fraction",
        )
    )
    for workload, fraction in data.items():
        assert 0.0 < fraction < 1.0, workload
    assert max(data.values()) > 0.15
