"""§I motivation: irregular GPU applications bottleneck on translation.

The paper opens from the observation (Vesely et al., ISPASS 2016) that
divergent memory accesses can slow an irregular GPU application down by
up to 3.7-4× from address-translation overheads alone.  This bench
measures each workload's FCFS runtime against an oracle MMU (free,
never-missing translation): the irregular group must show multi-×
overheads, the regular group near-none — the asymmetry every other
result in the paper rests on.
"""

from repro.experiments import figures, report
from repro.stats.metrics import geometric_mean
from repro.workloads.registry import IRREGULAR_WORKLOADS, REGULAR_WORKLOADS

from benchmarks.conftest import BENCH, run_once


def test_motivation_translation_overhead(benchmark):
    data = run_once(benchmark, figures.translation_overhead, **BENCH)
    print()
    print(
        report.render_series(
            "§I motivation: slowdown from address translation (FCFS vs oracle MMU)",
            data,
            value_label="slowdown",
        )
    )
    irregular = [data[w] for w in IRREGULAR_WORKLOADS]
    regular = [data[w] for w in REGULAR_WORKLOADS]
    # Irregular applications suffer materially from translation...
    assert geometric_mean(irregular) > 1.5
    assert max(irregular) > 2.0
    # ...while regular applications barely notice it.
    assert geometric_mean(regular) < 1.35
    # The asymmetry itself (the paper's premise).
    assert geometric_mean(irregular) > geometric_mean(regular) + 0.4
