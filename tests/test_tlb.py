"""Unit tests for the generic TLB model."""

import pytest

from repro.config import TLBConfig
from repro.mmu.tlb import TLB


def make_tlb(entries=4, associativity=None):
    return TLB(TLBConfig(entries=entries, associativity=associativity))


class TestBasicOperation:
    def test_miss_on_empty(self):
        tlb = make_tlb()
        assert tlb.lookup(1) is None
        assert tlb.misses == 1

    def test_hit_after_insert(self):
        tlb = make_tlb()
        tlb.insert(1, 100)
        assert tlb.lookup(1) == 100
        assert tlb.hits == 1

    def test_insert_updates_existing(self):
        tlb = make_tlb()
        tlb.insert(1, 100)
        tlb.insert(1, 200)
        assert tlb.lookup(1) == 200
        assert tlb.occupancy == 1

    def test_invalidate(self):
        tlb = make_tlb()
        tlb.insert(1, 100)
        assert tlb.invalidate(1) is True
        assert tlb.lookup(1) is None
        assert tlb.invalidate(1) is False

    def test_flush(self):
        tlb = make_tlb()
        for vpn in range(4):
            tlb.insert(vpn, vpn + 100)
        tlb.flush()
        assert tlb.occupancy == 0

    def test_probe_is_side_effect_free(self):
        tlb = make_tlb()
        tlb.insert(1, 100)
        hits, misses = tlb.hits, tlb.misses
        assert tlb.probe(1) is True
        assert tlb.probe(2) is False
        assert (tlb.hits, tlb.misses) == (hits, misses)


class TestLRUReplacement:
    def test_lru_victim_is_least_recent(self):
        tlb = make_tlb(entries=2)
        tlb.insert(1, 101)
        tlb.insert(2, 102)
        tlb.lookup(1)  # 2 is now LRU
        tlb.insert(3, 103)
        assert tlb.probe(2) is False
        assert tlb.probe(1) and tlb.probe(3)
        assert tlb.evictions == 1

    def test_insert_refreshes_lru(self):
        tlb = make_tlb(entries=2)
        tlb.insert(1, 101)
        tlb.insert(2, 102)
        tlb.insert(1, 101)  # refresh
        tlb.insert(3, 103)  # evicts 2
        assert tlb.probe(1) is True
        assert tlb.probe(2) is False


class TestSetAssociativity:
    def test_set_isolation(self):
        # 4 entries, 2-way: two sets; even vpns map to set 0, odd to set 1.
        tlb = make_tlb(entries=4, associativity=2)
        tlb.insert(0, 100)
        tlb.insert(2, 102)
        tlb.insert(4, 104)  # evicts 0 (same set), not the odd set
        tlb.insert(1, 101)
        assert tlb.probe(0) is False
        assert tlb.probe(2) and tlb.probe(4) and tlb.probe(1)

    def test_fully_associative_uses_whole_capacity(self):
        tlb = make_tlb(entries=4)
        for vpn in (0, 4, 8, 12):  # would collide in a set-assoc design
            tlb.insert(vpn, vpn)
        assert tlb.occupancy == 4
        assert all(tlb.probe(v) for v in (0, 4, 8, 12))

    def test_occupancy_capped_at_entries(self):
        tlb = make_tlb(entries=4, associativity=2)
        for vpn in range(100):
            tlb.insert(vpn, vpn)
        assert tlb.occupancy <= 4


class TestStatistics:
    def test_hit_rate(self):
        tlb = make_tlb()
        tlb.insert(1, 100)
        tlb.lookup(1)
        tlb.lookup(2)
        assert tlb.hit_rate == 0.5
        assert tlb.accesses == 2

    def test_hit_rate_empty(self):
        assert make_tlb().hit_rate == 0.0

    def test_stats_dict(self):
        tlb = make_tlb()
        tlb.insert(1, 100)
        tlb.lookup(1)
        stats = tlb.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 0
