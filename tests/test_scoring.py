"""Unit tests for the per-instruction score table."""

import pytest

from repro.core.scoring import ScoreTable


def test_score_accumulates_per_instruction():
    table = ScoreTable()
    assert table.add(1, 4) == 4
    assert table.add(1, 3) == 7
    assert table.score_of(1) == 7


def test_instructions_are_independent():
    table = ScoreTable()
    table.add(1, 4)
    table.add(2, 1)
    assert table.score_of(1) == 4
    assert table.score_of(2) == 1


def test_score_persists_across_partial_completion():
    # The score must NOT drop while the instruction still has active
    # walks — otherwise an instruction briefly looks like a short job
    # every time its buffered requests drain (LIFO degeneration).
    table = ScoreTable()
    table.add(1, 4)
    table.add(1, 4)
    table.complete(1)
    assert table.score_of(1) == 8


def test_score_released_after_last_walk():
    table = ScoreTable()
    table.add(1, 4)
    table.add(1, 2)
    table.complete(1)
    table.complete(1)
    assert table.score_of(1) == 0
    assert len(table) == 0


def test_complete_unknown_instruction_raises():
    with pytest.raises(KeyError):
        ScoreTable().complete(99)


def test_negative_estimate_rejected():
    with pytest.raises(ValueError):
        ScoreTable().add(1, -1)


def test_active_walk_accounting():
    table = ScoreTable()
    table.add(1, 4)
    table.add(1, 4)
    assert table.active_walks(1) == 2
    table.complete(1)
    assert table.active_walks(1) == 1
    assert table.active_walks(2) == 0


def test_score_range_matches_paper():
    # 64 workitems × 4 accesses each = 256, the paper's maximum score.
    table = ScoreTable()
    for _ in range(64):
        table.add(7, 4)
    assert table.score_of(7) == 256


def test_reuse_of_id_after_release_starts_fresh():
    table = ScoreTable()
    table.add(1, 4)
    table.complete(1)
    table.add(1, 2)
    assert table.score_of(1) == 2
