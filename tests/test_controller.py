"""Tests for the queued DRAM controller (FCFS / FR-FCFS / SMS)."""

import pytest

from repro.config import DRAMConfig
from repro.engine.simulator import Simulator
from repro.memory.controller import (
    SOURCE_DATA,
    SOURCE_WALK,
    QueuedMemoryController,
)


def make_controller(policy="frfcfs", banks=2, sms_batch_cap=4):
    sim = Simulator()
    config = DRAMConfig(
        channels=1,
        ranks_per_channel=1,
        banks_per_rank=banks,
        row_size_bytes=2048,
        t_cas=30,
        t_rcd=30,
        t_rp=30,
        t_burst=8,
        sms_batch_cap=sms_batch_cap,
    )
    return sim, QueuedMemoryController(sim, config, policy=policy)


def completion_recorder(sim, order):
    def make(tag):
        return lambda: order.append((tag, sim.now))

    return make


def test_unknown_policy_rejected():
    with pytest.raises(ValueError):
        make_controller(policy="lifo")


def test_single_read_completes_with_activate_latency():
    sim, ctrl = make_controller()
    order = []
    ctrl.read(0, completion_recorder(sim, order)("a"))
    sim.run()
    assert order == [("a", 90)]
    assert ctrl.row_conflicts == 1


def test_same_bank_reads_serialise():
    sim, ctrl = make_controller()
    order = []
    rec = completion_recorder(sim, order)
    ctrl.read(0, rec("a"))
    ctrl.read(128, rec("b"))  # same bank (2 banks stripe by line), same row
    sim.run()
    assert [tag for tag, _ in order] == ["a", "b"]
    # b waits for a's burst, then row-hits.
    assert order[1][1] == 90 + 8 + 30


def test_different_banks_overlap():
    sim, ctrl = make_controller()
    order = []
    rec = completion_recorder(sim, order)
    ctrl.read(0, rec("a"))
    ctrl.read(64, rec("b"))  # other bank
    sim.run()
    assert order[0][1] == order[1][1] == 90


def test_frfcfs_promotes_row_hits():
    sim, ctrl = make_controller(policy="frfcfs")
    order = []
    rec = completion_recorder(sim, order)
    far_row = 2048 * 2 * 4  # same bank, different row
    ctrl.read(0, rec("open_row_first"))
    ctrl.read(far_row, rec("conflict"))
    ctrl.read(128, rec("row_hit"))  # arrives later but hits the open row
    sim.run()
    assert [tag for tag, _ in order] == ["open_row_first", "row_hit", "conflict"]
    assert ctrl.row_hits == 1


def test_fcfs_preserves_arrival_order():
    sim, ctrl = make_controller(policy="fcfs")
    order = []
    rec = completion_recorder(sim, order)
    far_row = 2048 * 2 * 4
    ctrl.read(0, rec("first"))
    ctrl.read(far_row, rec("second"))
    ctrl.read(128, rec("third"))
    sim.run()
    assert [tag for tag, _ in order] == ["first", "second", "third"]


def test_frfcfs_achieves_higher_row_hit_rate_than_fcfs():
    def run(policy):
        sim, ctrl = make_controller(policy=policy)
        far_row = 2048 * 2 * 4
        # Alternate rows in arrival order: FCFS ping-pongs the row
        # buffer; FR-FCFS batches same-row requests.
        for i in range(8):
            address = (far_row if i % 2 else 0) + 128 * (i // 2)
            ctrl.read(address, lambda: None)
        sim.run()
        return ctrl.row_hit_rate

    assert run("frfcfs") > run("fcfs")


def test_queue_depth_tracked():
    sim, ctrl = make_controller()
    for i in range(5):
        ctrl.read(0, lambda: None)
    assert ctrl.peak_queue_depth >= 4
    sim.run()
    assert ctrl.queued_requests == 0


def test_stats_shape():
    sim, ctrl = make_controller()
    ctrl.read(0, lambda: None)
    sim.run()
    stats = ctrl.stats()
    assert stats["reads"] == 1
    assert stats["policy"] == "frfcfs"


# ----------------------------------------------------------------------
# SMS: staged batch former with page-walk QoS
# ----------------------------------------------------------------------


def test_sms_prioritises_walk_batch_over_data():
    # The first data read issues and commits the bank to a data batch
    # (cap 4).  Once its credits run out, re-arbitration must form a
    # walk batch ahead of the remaining data read, even though every
    # data read arrived earlier.
    sim, ctrl = make_controller(policy="sms")
    order = []
    rec = completion_recorder(sim, order)
    ctrl.read(0, rec("data0"), source=SOURCE_DATA)  # issues immediately
    for i in range(4):
        ctrl.read(128 * (i + 1), rec(f"data{i + 1}"), source=SOURCE_DATA)
    ctrl.read(128 * 5, rec("walk"), source=SOURCE_WALK)
    sim.run()
    tags = [tag for tag, _ in order]
    assert tags == ["data0", "data1", "data2", "data3", "walk", "data4"]
    assert ctrl.stats()["walk_reads"] == 1


def test_sms_batch_cap_bounds_source_runs():
    # Identical arrival stream, two caps.  Cap 2 exhausts the data
    # batch after data1, so the walk preempts data2 at the batch
    # boundary; cap 4 keeps the bank committed to data through data2.
    def run(cap):
        sim, ctrl = make_controller(policy="sms", sms_batch_cap=cap)
        order = []
        rec = completion_recorder(sim, order)
        ctrl.read(0, rec("data0"), source=SOURCE_DATA)
        ctrl.read(128, rec("data1"), source=SOURCE_DATA)
        ctrl.read(256, rec("data2"), source=SOURCE_DATA)
        ctrl.read(384, rec("walk"), source=SOURCE_WALK)
        sim.run()
        return [tag for tag, _ in order]

    assert run(2) == ["data0", "data1", "walk", "data2"]
    assert run(4) == ["data0", "data1", "data2", "walk"]


def test_sms_sticks_with_batch_for_row_hits():
    # Within a committed batch, first-ready ordering still applies.
    sim, ctrl = make_controller(policy="sms")
    order = []
    rec = completion_recorder(sim, order)
    far_row = 2048 * 2 * 4
    ctrl.read(0, rec("open_row_first"), source=SOURCE_WALK)
    ctrl.read(far_row, rec("conflict"), source=SOURCE_WALK)
    ctrl.read(128, rec("row_hit"), source=SOURCE_WALK)
    sim.run()
    assert [tag for tag, _ in order] == [
        "open_row_first", "row_hit", "conflict",
    ]


def test_sms_source_defaults_to_data():
    sim, ctrl = make_controller(policy="sms")
    ctrl.read(0, lambda: None)
    sim.run()
    assert ctrl.walk_reads == 0
    assert ctrl.stats()["walk_reads"] == 0


def test_sms_snapshot_restores_batch_state():
    sim, ctrl = make_controller(policy="sms")
    ctrl.read(0, lambda: None, source=SOURCE_WALK)
    ctrl.read(128, lambda: None, source=SOURCE_WALK)
    # Mid-flight: bank busy, batch committed to the walk source.
    state = ctrl.snapshot()
    sim2, ctrl2 = make_controller(policy="sms")
    ctrl2.restore(state)
    assert ctrl2._sms_batch == ctrl._sms_batch
    assert ctrl2.walk_reads == ctrl.walk_reads
