"""Scheduler-zoo tests: WaSP / IRU / Mosaic policies and the
stale-batch-pointer regression.

Three groups:

* **Registry and knobs** — the zoo self-registers; per-family knob
  overrides flow through ``make_scheduler`` and invalid knobs raise.
* **Stale batch-pointer regression** — the bugfix this PR ships:
  ``_last_instruction`` must retire when the batched instruction's last
  buffered walk drains, so a later walk reusing the same 20-bit
  instruction tag cannot inherit batch priority (paper §IV: a batch
  lasts exactly as long as its instruction has pending walks).
  Exercised on the optimized policies and their naive twins alike.
* **Family behaviour + snapshot fuzz** — each family's mechanism is
  observable on a real run (prefetch walks, pending coalesces, region
  promotions), and every registered policy survives a mid-stream
  snapshot/restore with bit-identical subsequent selections.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.core.buffer import PendingWalkBuffer
from repro.core.reference import (
    NaiveBatchScheduler,
    NaiveSIMTAwareScheduler,
)
from repro.core.request import TranslationRequest
from repro.core.schedulers import (
    BatchScheduler,
    SIMTAwareScheduler,
    available_schedulers,
    make_scheduler,
)
from repro.core.zoo import (
    IRUScheduler,
    MosaicScheduler,
    WaSPScheduler,
)
from repro.experiments.runner import run_simulation
from tests.conftest import tiny_config

RUN_KWARGS = dict(num_wavefronts=8, scale=0.05, seed=0)


def _run(scheduler, workload="MVT", config=None, **kwargs):
    return run_simulation(
        workload,
        config=config or tiny_config(scheduler),
        **{**RUN_KWARGS, **kwargs},
    )


def add(buffer, vpn, instruction_id, estimate=0, app_id=0):
    request = TranslationRequest(
        vpn=vpn, instruction_id=instruction_id, wavefront_id=0, cu_id=0,
        issue_time=0, app_id=app_id,
    )
    return buffer.add(request, arrival_time=0, estimated_accesses=estimate)


# ----------------------------------------------------------------------
# Registry and knobs
# ----------------------------------------------------------------------


class TestZooRegistry:
    def test_zoo_registered(self):
        names = set(available_schedulers())
        assert {"wasp", "iru", "mosaic"} <= names

    def test_factory_types(self):
        assert isinstance(make_scheduler("wasp"), WaSPScheduler)
        assert isinstance(make_scheduler("iru"), IRUScheduler)
        assert isinstance(make_scheduler("mosaic"), MosaicScheduler)

    def test_knob_overrides(self):
        assert make_scheduler("wasp", prefetch_distance=9).prefetch_distance == 9
        assert make_scheduler("iru", reorder_window=3).reorder_window_cycles == 3
        mosaic = make_scheduler(
            "mosaic", promote_threshold=2, region_tlb_entries=4
        )
        assert mosaic.promote_threshold == 2
        assert mosaic.region_tlb_entries == 4

    def test_aging_threshold_forwarded(self):
        assert make_scheduler("wasp", aging_threshold=7).aging.threshold == 7
        assert make_scheduler("iru", aging_threshold=7).aging.threshold == 7

    def test_invalid_knobs_raise(self):
        with pytest.raises(ValueError):
            WaSPScheduler(prefetch_distance=-1)
        with pytest.raises(ValueError):
            IRUScheduler(reorder_window=0)
        with pytest.raises(ValueError):
            MosaicScheduler(promote_threshold=0)
        with pytest.raises(ValueError):
            MosaicScheduler(region_tlb_entries=0)

    def test_defaults_disabled_on_baseline_policies(self):
        # The baseline policies must not accidentally enable any zoo
        # mechanism — their goldens depend on it.
        for name in ("fcfs", "random", "sjf", "batch", "simt", "fairshare"):
            scheduler = make_scheduler(name)
            assert scheduler.prefetch_distance == 0
            assert scheduler.reorder_window_cycles == 0
            assert scheduler.coalesce_pending is False
            assert scheduler.promote_threshold == 0


# ----------------------------------------------------------------------
# Stale batch-pointer regression (the bugfix)
# ----------------------------------------------------------------------


class TestStaleBatchPointer:
    @pytest.mark.parametrize(
        "factory", [BatchScheduler, NaiveBatchScheduler], ids=["fast", "ref"]
    )
    def test_batch_pointer_retires_when_instruction_drains(self, factory):
        scheduler = factory()
        buffer = PendingWalkBuffer(8)
        first = add(buffer, vpn=1, instruction_id=7)
        older_other = add(buffer, vpn=2, instruction_id=3)
        assert scheduler.select(buffer) is first  # pointer -> 7
        buffer.remove(first)
        scheduler.resync(buffer)  # instruction 7 has drained
        assert scheduler._last_instruction is None
        # A much later walk reuses tag 7.  Pre-fix, the stale pointer
        # would batch-prioritise it past the older instruction-3 walk.
        late_reuse = add(buffer, vpn=9, instruction_id=7)
        assert scheduler.select(buffer) is older_other
        buffer.remove(older_other)
        scheduler.resync(buffer)
        assert scheduler.select(buffer) is late_reuse

    @pytest.mark.parametrize(
        "factory",
        [SIMTAwareScheduler, NaiveSIMTAwareScheduler],
        ids=["fast", "ref"],
    )
    def test_simt_pointer_retires_when_instruction_drains(self, factory):
        scheduler = factory(aging_threshold=1_000)
        buffer = PendingWalkBuffer(8, track_scores=True)
        # Instruction 7's walk is cheap, instruction 3's cheaper still —
        # after 7 drains the SJF stage must win, not a stale batch hit.
        first = add(buffer, vpn=1, instruction_id=7, estimate=2)
        cheapest = add(buffer, vpn=2, instruction_id=3, estimate=1)
        assert scheduler.select(buffer) is cheapest  # SJF; pointer -> 3
        buffer.remove(cheapest)
        scheduler.resync(buffer)
        assert scheduler._last_instruction is None
        late_reuse = add(buffer, vpn=9, instruction_id=3, estimate=4)
        # Pre-fix: stale pointer 3 would batch-hit the expensive
        # late_reuse walk ahead of instruction 7's cheaper one.
        assert scheduler.select(buffer) is first
        assert late_reuse in list(buffer)

    def test_pointer_survives_while_instruction_pending(self):
        # resync must NOT clear the pointer while the batched
        # instruction still has buffered walks.
        scheduler = BatchScheduler()
        buffer = PendingWalkBuffer(8)
        a1 = add(buffer, vpn=1, instruction_id=7)
        add(buffer, vpn=2, instruction_id=3)
        a2 = add(buffer, vpn=3, instruction_id=7)
        assert scheduler.select(buffer) is a1
        buffer.remove(a1)
        scheduler.resync(buffer)
        assert scheduler._last_instruction == 7
        assert scheduler.select(buffer) is a2  # batching continues


# ----------------------------------------------------------------------
# Family behaviour on real runs
# ----------------------------------------------------------------------


class TestFamilyBehaviour:
    def test_wasp_issues_distance_ahead_prefetches(self):
        result = _run("wasp", workload="XSB")
        assert result.detail["iommu"]["prefetch_walks"] > 0

    def test_iru_coalesces_pending_walks(self):
        # The reorder unit merges same-page requests that plain SJF
        # (inflight-only coalescing) keeps as separate jobs.
        iru = _run("iru", workload="XSB").detail["iommu"]
        sjf = _run("sjf", workload="XSB").detail["iommu"]
        assert iru["coalesced"] > sjf["coalesced"]

    def test_mosaic_promotes_and_hits_regions(self):
        detail = _run("mosaic").detail["iommu"]
        assert detail["mosaic"]["promotions"] > 0
        assert detail["mosaic"]["region_hits"] > 0
        assert (
            detail["mosaic"]["region_tlb_occupancy"]
            <= make_scheduler("mosaic").region_tlb_entries
        )

    def test_mosaic_demotes_under_capacity_pressure(self):
        config = tiny_config("mosaic")
        scheduler_stats = _run(
            "mosaic", workload="XSB", config=config, scale=0.1,
        ).detail["iommu"]["mosaic"]
        assert (
            scheduler_stats["region_tlb_occupancy"]
            + scheduler_stats["demotions"]
            == scheduler_stats["promotions"]
        )

    def test_mosaic_disabled_on_large_pages(self):
        # With 2 MB base pages there is nothing to promote: the region
        # machinery must be off and the stats key absent.
        config = tiny_config("mosaic").with_page_size("2M")
        detail = _run("mosaic", config=config).detail["iommu"]
        assert "mosaic" not in detail

    def test_baseline_stats_shape_unchanged(self):
        # No zoo keys leak into non-zoo runs (goldens pin this dict).
        detail = _run("simt").detail["iommu"]
        assert "mosaic" not in detail

    def test_zoo_runs_conserve_walks(self):
        for name in ("wasp", "iru", "mosaic"):
            result = _run(name, workload="XSB")
            iommu = result.detail["iommu"]
            assert iommu["walks_dispatched"] + iommu["prefetch_walks"] == (
                iommu["walks_completed"]
            )


# ----------------------------------------------------------------------
# Snapshot/restore round-trip fuzz (unit level, every policy)
# ----------------------------------------------------------------------


def _ops(rng, count):
    ops = []
    for _ in range(count):
        if rng.random() < 0.55:
            ops.append(
                (
                    "add",
                    (
                        rng.randrange(64),
                        rng.randrange(6),
                        rng.randrange(1, 5),
                        rng.randrange(2),
                    ),
                )
            )
        else:
            ops.append(("select", None))
    return ops


def _drive(scheduler, buffer, ops):
    picks = []
    for op, payload in ops:
        if op == "add":
            if buffer.is_full:
                continue
            vpn, iid, estimate, app = payload
            entry = add(
                buffer, vpn=vpn, instruction_id=iid, estimate=estimate,
                app_id=app,
            )
            scheduler.on_arrival(entry, buffer)
        else:
            if buffer.is_empty:
                continue
            entry = scheduler.select(buffer)
            if entry is None:
                continue
            buffer.remove(entry)
            scheduler.resync(buffer)
            picks.append((entry.arrival_seq, entry.vpn, entry.instruction_id))
    return picks


@pytest.mark.parametrize("name", sorted(available_schedulers()))
@pytest.mark.parametrize("fuzz_seed", [0, 1, 2])
def test_snapshot_roundtrip_preserves_selections(name, fuzz_seed):
    """Snapshot mid-stream, restore into a *fresh* scheduler+buffer
    (deep-copied through pickle, as real checkpoints are), and the
    restored pair must make bit-identical selections thereafter —
    including the random policy's Mersenne Twister stream."""
    rng = random.Random(1_000 * fuzz_seed + sum(map(ord, name)))
    warmup, tail = _ops(rng, 120), _ops(rng, 120)

    scheduler = make_scheduler(name, seed=11, aging_threshold=6)
    buffer = PendingWalkBuffer(32, track_scores=scheduler.needs_scores)
    _drive(scheduler, buffer, warmup)

    frozen = pickle.dumps(
        {"buffer": buffer.snapshot(), "scheduler": scheduler.snapshot()}
    )
    state = pickle.loads(frozen)
    # Deliberately different seed: restore must overwrite it.
    twin = make_scheduler(name, seed=999, aging_threshold=6)
    twin_buffer = PendingWalkBuffer(32, track_scores=twin.needs_scores)
    twin_buffer.restore(state["buffer"])
    twin.restore(state["scheduler"])

    assert _drive(scheduler, buffer, tail) == _drive(twin, twin_buffer, tail)
