"""Unit tests for the text renderers."""

from repro.experiments import figures, report


def test_render_series_aligns_rows():
    text = report.render_series("Fig X", {"MVT": 1.234, "ATX": 0.9})
    assert "Fig X" in text
    assert "MVT" in text and "1.234" in text


def test_render_series_handles_long_keys():
    text = report.render_series("T", {"Mean(irregular)": 1.3})
    assert "Mean(irregular)" in text


def test_render_series_bars_scale_to_peak():
    text = report.render_series(
        "T", {"a": 2.0, "b": 1.0}, bars=True, bar_width=10
    )
    rows = text.splitlines()[3:]
    assert rows[0].count("█") == 10
    assert rows[1].count("█") == 5


def test_render_series_bars_handle_zero_peak():
    text = report.render_series("T", {"a": 0.0}, bars=True)
    assert "█" not in text


def test_render_grouped_uses_columns():
    data = {"MVT": {"fcfs": 1.0, "simt": 1.3}}
    text = report.render_grouped("Fig", data, columns=("fcfs", "simt"))
    assert "fcfs" in text and "simt" in text and "1.300" in text


def test_render_grouped_empty():
    assert "(no data)" in report.render_grouped("Fig", {})


def test_render_grouped_infers_columns():
    data = {"MVT": {"a": 1.0}}
    assert "a" in report.render_grouped("Fig", data)


def test_render_table1():
    text = report.render_table1(figures.table1_configuration())
    assert "Table I" in text
    assert "IOMMU" in text


def test_render_table2():
    text = report.render_table2(figures.table2_workloads(scale=0.05))
    assert "Table II" in text
    assert "XSB" in text and "HOT" in text
