"""Unit tests for virtual-address arithmetic."""

import pytest

from repro.config import PAGE_SIZE
from repro.mmu.address import (
    MAX_VPN,
    PAGE_SHIFT,
    PTE_SIZE,
    level_index,
    page_offset,
    pte_address,
    vpn_of,
    vpn_prefix,
)


def test_page_shift_matches_page_size():
    assert 1 << PAGE_SHIFT == PAGE_SIZE


def test_vpn_of_page_boundaries():
    assert vpn_of(0) == 0
    assert vpn_of(PAGE_SIZE - 1) == 0
    assert vpn_of(PAGE_SIZE) == 1
    assert vpn_of(10 * PAGE_SIZE + 123) == 10


def test_vpn_of_rejects_negative():
    with pytest.raises(ValueError):
        vpn_of(-1)


def test_page_offset():
    assert page_offset(0) == 0
    assert page_offset(PAGE_SIZE + 17) == 17
    assert page_offset(PAGE_SIZE - 1) == PAGE_SIZE - 1


def test_level_index_extracts_nine_bit_fields():
    # vpn with distinct 9-bit fields: level1=1, level2=2, level3=3, level4=4.
    vpn = 1 | (2 << 9) | (3 << 18) | (4 << 27)
    assert level_index(vpn, 1) == 1
    assert level_index(vpn, 2) == 2
    assert level_index(vpn, 3) == 3
    assert level_index(vpn, 4) == 4


def test_level_index_bounds():
    with pytest.raises(ValueError):
        level_index(0, 0)
    with pytest.raises(ValueError):
        level_index(0, 5)


def test_vpn_prefix_sharing():
    # Two vpns in the same 2 MB region share the level-2 prefix but not
    # the full vpn.
    a, b = 0x12345, 0x12345 ^ 0x1  # differ only in level-1 index bits
    assert vpn_prefix(a, 2) == vpn_prefix(b, 2)
    assert vpn_prefix(a, 1) != vpn_prefix(b, 1)


def test_vpn_prefix_level_4_is_coarsest():
    vpn = MAX_VPN
    assert vpn_prefix(vpn, 4) == vpn >> 27
    assert vpn_prefix(vpn, 1) == vpn


def test_vpn_prefix_bounds():
    with pytest.raises(ValueError):
        vpn_prefix(0, 5)


def test_pte_address_layout():
    assert pte_address(0x1000, 0) == 0x1000
    assert pte_address(0x1000, 1) == 0x1000 + PTE_SIZE
    assert pte_address(0x1000, 511) == 0x1000 + 511 * PTE_SIZE
