"""Smoke tests for the §I-motivation translation-overhead figure."""

import pytest

from repro.experiments import figures


@pytest.fixture(autouse=True)
def fresh_cache():
    figures.clear_run_cache()
    yield


def test_overhead_is_at_least_one():
    data = figures.translation_overhead(
        scale=0.05, num_wavefronts=4, workloads=("MVT", "KMN")
    )
    for workload, overhead in data.items():
        assert overhead >= 1.0, workload


def test_divergent_workload_suffers_more_than_regular():
    # Needs enough concurrent wavefronts for walker contention to form;
    # at very small scales MVT's overhead has not materialised yet.
    data = figures.translation_overhead(
        scale=0.25, num_wavefronts=16, workloads=("MVT", "HOT")
    )
    assert data["MVT"] > data["HOT"]


def test_requested_workloads_only():
    data = figures.translation_overhead(
        scale=0.05, num_wavefronts=4, workloads=("KMN",)
    )
    assert set(data) == {"KMN"}
