"""Tests for trace serialisation."""

import json

import pytest

from repro.workloads.registry import get_workload
from repro.workloads.trace_io import load_meta, load_trace, save_trace


def test_round_trip_preserves_trace(tmp_path):
    workload = get_workload("MVT", scale=0.05)
    trace = workload.build_trace(num_wavefronts=2, wavefront_size=16)
    path = tmp_path / "mvt.trace.json"
    save_trace(trace, path, meta={"workload": "MVT", "seed": 0})
    assert load_trace(path) == trace


def test_meta_round_trip(tmp_path):
    path = tmp_path / "t.json"
    save_trace([[[1, 2, 3]]], path, meta={"workload": "SYN", "scale": 0.5})
    meta = load_meta(path)
    assert meta == {"workload": "SYN", "scale": 0.5}


def test_empty_instruction_round_trips(tmp_path):
    path = tmp_path / "t.json"
    save_trace([[[]]], path)
    assert load_trace(path) == [[[]]]


def test_delta_encoding_is_compact(tmp_path):
    # Coalesced 8-byte-stride lanes should serialise as small deltas.
    trace = [[[0x10000000 + 8 * lane for lane in range(64)]]]
    path = tmp_path / "t.json"
    save_trace(trace, path)
    document = json.loads(path.read_text())
    encoded = document["wavefronts"][0][0]
    assert encoded[0] == 0x10000000
    assert set(encoded[1:]) == {8}


def test_rejects_foreign_file(tmp_path):
    path = tmp_path / "other.json"
    path.write_text(json.dumps({"format": "something-else"}))
    with pytest.raises(ValueError):
        load_trace(path)
    with pytest.raises(ValueError):
        load_meta(path)


def test_rejects_future_version(tmp_path):
    path = tmp_path / "future.json"
    path.write_text(
        json.dumps({"format": "repro-trace", "version": 99, "wavefronts": []})
    )
    with pytest.raises(ValueError):
        load_trace(path)


def test_loaded_trace_runs(tmp_path):
    """A persisted trace drives the simulator like a fresh one."""
    from repro.experiments.runner import build_system
    from tests.conftest import tiny_config

    workload = get_workload("KMN", scale=0.05)
    trace = workload.build_trace(num_wavefronts=2, wavefront_size=16)
    path = tmp_path / "kmn.json"
    save_trace(trace, path)

    system = build_system(tiny_config())
    system.gpu.dispatch(load_trace(path))
    system.simulator.run()
    assert system.gpu.finished
