"""Unit tests for the page-walk scheduling policies."""

import pytest

from repro.core.buffer import PendingWalkBuffer
from repro.core.request import TranslationRequest
from repro.core.schedulers import (
    BatchScheduler,
    FCFSScheduler,
    RandomScheduler,
    SIMTAwareScheduler,
    SJFScheduler,
    available_schedulers,
    make_scheduler,
)


def add(buffer, vpn, instruction_id, estimate=0):
    request = TranslationRequest(
        vpn=vpn, instruction_id=instruction_id, wavefront_id=0, cu_id=0, issue_time=0
    )
    return buffer.add(request, arrival_time=0, estimated_accesses=estimate)


class TestRegistry:
    def test_all_policies_registered(self):
        assert set(available_schedulers()) == {
            "fcfs",
            "random",
            "sjf",
            "batch",
            "simt",
            "fairshare",
            # The scheduler zoo (core/zoo.py) self-registers.
            "wasp",
            "iru",
            "mosaic",
        }

    def test_make_scheduler_by_name(self):
        assert make_scheduler("fcfs").name == "fcfs"
        assert make_scheduler("simt").name == "simt"

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            make_scheduler("sjf2")

    def test_kwargs_forwarded(self):
        scheduler = make_scheduler("simt", aging_threshold=5)
        assert scheduler.aging.threshold == 5

    def test_irrelevant_kwargs_ignored(self):
        make_scheduler("fcfs", seed=3, aging_threshold=5)  # must not raise


class TestFCFS:
    def test_selects_oldest(self):
        buffer = PendingWalkBuffer(8)
        first = add(buffer, 1, 1)
        add(buffer, 2, 2)
        assert FCFSScheduler().select(buffer) is first

    def test_empty_buffer_returns_none(self):
        assert FCFSScheduler().select(PendingWalkBuffer(4)) is None


class TestRandom:
    def test_deterministic_with_seed(self):
        picks_a, picks_b = [], []
        for picks, seed in ((picks_a, 42), (picks_b, 42)):
            scheduler = RandomScheduler(seed=seed)
            buffer = PendingWalkBuffer(16)
            entries = [add(buffer, v, v) for v in range(10)]
            for _ in range(5):
                entry = scheduler.select(buffer)
                picks.append(entry.vpn)
                buffer.remove(entry)
        assert picks_a == picks_b

    def test_different_seeds_differ(self):
        def picks(seed):
            scheduler = RandomScheduler(seed=seed)
            buffer = PendingWalkBuffer(64)
            [add(buffer, v, v) for v in range(32)]
            out = []
            for _ in range(10):
                entry = scheduler.select(buffer)
                out.append(entry.vpn)
                buffer.remove(entry)
            return out

        assert picks(1) != picks(2)

    def test_empty_buffer_returns_none(self):
        assert RandomScheduler().select(PendingWalkBuffer(4)) is None

    def test_selection_is_from_buffer(self):
        scheduler = RandomScheduler(seed=0)
        buffer = PendingWalkBuffer(8)
        entries = {add(buffer, v, v) for v in range(5)}
        assert scheduler.select(buffer) in entries


class TestSJF:
    def test_prefers_lowest_score(self):
        buffer = PendingWalkBuffer(8)
        add(buffer, 1, 1, estimate=4)
        add(buffer, 2, 1, estimate=4)  # instruction 1 score: 8
        light = add(buffer, 3, 2, estimate=1)  # instruction 2 score: 1
        assert SJFScheduler().select(buffer) is light

    def test_tie_breaks_by_age(self):
        buffer = PendingWalkBuffer(8)
        first = add(buffer, 1, 1, estimate=2)
        add(buffer, 2, 2, estimate=2)
        assert SJFScheduler().select(buffer) is first

    def test_aging_overrides_score(self):
        scheduler = SJFScheduler(aging_threshold=2)
        buffer = PendingWalkBuffer(8)
        heavy = add(buffer, 1, 1, estimate=200)
        heavy.bypass_count = 2
        add(buffer, 2, 2, estimate=1)
        assert scheduler.select(buffer) is heavy

    def test_bypasses_recorded_on_selection(self):
        scheduler = SJFScheduler()
        buffer = PendingWalkBuffer(8)
        old_heavy = add(buffer, 1, 1, estimate=100)
        light = add(buffer, 2, 2, estimate=1)
        chosen = scheduler.select(buffer)
        assert chosen is light
        buffer.remove(light)  # the IOMMU removes a selected entry
        # Bypass counts are derived incrementally, not stored per entry.
        assert scheduler.aging.bypass_count_of(old_heavy, buffer) == 1


class TestBatch:
    def test_prefers_last_dispatched_instruction(self):
        scheduler = BatchScheduler()
        buffer = PendingWalkBuffer(8)
        add(buffer, 1, 1)
        mate = add(buffer, 2, 2)
        later_mate = add(buffer, 3, 2)
        buffer.remove(mate)  # dispatched to a walker
        scheduler.note_dispatch(mate)
        assert scheduler.select(buffer) is later_mate

    def test_falls_back_to_fcfs(self):
        scheduler = BatchScheduler()
        buffer = PendingWalkBuffer(8)
        first = add(buffer, 1, 1)
        add(buffer, 2, 2)
        assert scheduler.select(buffer) is first

    def test_selection_updates_batching_state(self):
        scheduler = BatchScheduler()
        buffer = PendingWalkBuffer(8)
        a1 = add(buffer, 1, 1)
        add(buffer, 2, 2)
        a2 = add(buffer, 3, 1)
        assert scheduler.select(buffer) is a1
        buffer.remove(a1)
        assert scheduler.select(buffer) is a2  # batch continues


class TestSIMTAware:
    def test_batching_beats_score(self):
        scheduler = SIMTAwareScheduler()
        buffer = PendingWalkBuffer(8)
        heavy_mate = add(buffer, 1, 1, estimate=200)
        add(buffer, 2, 2, estimate=1)
        scheduler.note_dispatch(heavy_mate)
        assert scheduler.select(buffer) is heavy_mate
        assert scheduler.batch_hits == 1

    def test_score_used_when_no_batch_match(self):
        scheduler = SIMTAwareScheduler()
        buffer = PendingWalkBuffer(8)
        add(buffer, 1, 1, estimate=10)
        light = add(buffer, 2, 2, estimate=1)
        assert scheduler.select(buffer) is light
        assert scheduler.sjf_picks == 1

    def test_aging_beats_batching(self):
        scheduler = SIMTAwareScheduler(aging_threshold=1)
        buffer = PendingWalkBuffer(8)
        starving = add(buffer, 1, 1, estimate=200)
        starving.bypass_count = 5
        mate = add(buffer, 2, 2, estimate=1)
        scheduler.note_dispatch(mate)
        assert scheduler.select(buffer) is starving

    def test_oldest_of_batch_selected(self):
        scheduler = SIMTAwareScheduler()
        buffer = PendingWalkBuffer(8)
        older = add(buffer, 1, 7)
        add(buffer, 2, 7)
        scheduler.note_dispatch(older)
        assert scheduler.select(buffer) is older

    def test_empty_buffer_returns_none(self):
        assert SIMTAwareScheduler().select(PendingWalkBuffer(4)) is None

    def test_selection_sequence_batches_then_switches(self):
        scheduler = SIMTAwareScheduler()
        buffer = PendingWalkBuffer(8)
        a1 = add(buffer, 1, 1, estimate=1)
        b1 = add(buffer, 2, 2, estimate=4)
        a2 = add(buffer, 3, 1, estimate=1)
        first = scheduler.select(buffer)  # SJF pick: instruction 1
        assert first is a1
        buffer.remove(a1)
        second = scheduler.select(buffer)  # batch continuation
        assert second is a2
        buffer.remove(a2)
        third = scheduler.select(buffer)  # only b1 left
        assert third is b1
