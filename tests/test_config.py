"""Unit tests for configuration dataclasses (paper Table I defaults)."""

import pytest

from repro.config import (
    CacheConfig,
    DRAMConfig,
    GPUConfig,
    IOMMUConfig,
    PWCConfig,
    SystemConfig,
    TLBConfig,
    baseline_config,
)


class TestTableIDefaults:
    """The default SystemConfig must match the paper's Table I."""

    def test_gpu_clock_and_cus(self):
        gpu = SystemConfig().gpu
        assert gpu.clock_ghz == 2.0
        assert gpu.num_cus == 8
        assert gpu.simd_units_per_cu == 4
        assert gpu.simd_width == 16
        assert gpu.wavefront_size == 64

    def test_l1_data_cache(self):
        l1 = SystemConfig().l1_cache
        assert l1.size_bytes == 32 * 1024
        assert l1.associativity == 16
        assert l1.line_size == 64

    def test_l2_data_cache(self):
        l2 = SystemConfig().l2_cache
        assert l2.size_bytes == 4 * 1024 * 1024
        assert l2.associativity == 16

    def test_gpu_l1_tlb_fully_associative(self):
        tlb = SystemConfig().gpu_l1_tlb
        assert tlb.entries == 32
        assert tlb.associativity is None
        assert tlb.num_sets == 1

    def test_gpu_l2_tlb(self):
        tlb = SystemConfig().gpu_l2_tlb
        assert tlb.entries == 512
        assert tlb.associativity == 16
        assert tlb.num_sets == 32

    def test_iommu(self):
        iommu = SystemConfig().iommu
        assert iommu.buffer_entries == 256
        assert iommu.num_walkers == 8
        assert iommu.l1_tlb.entries == 32
        assert iommu.l2_tlb.entries == 256
        assert iommu.scheduler == "fcfs"

    def test_dram(self):
        dram = SystemConfig().dram
        assert dram.channels == 2
        assert dram.ranks_per_channel == 2
        assert dram.banks_per_rank == 16
        assert dram.total_banks == 64


class TestValidation:
    def test_cache_rejects_zero_size(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=0, associativity=4)

    def test_cache_rejects_non_line_multiple(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=100, associativity=4)

    def test_cache_rejects_zero_ways(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1024, associativity=0)

    def test_tlb_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            TLBConfig(entries=0)

    def test_tlb_rejects_uneven_sets(self):
        with pytest.raises(ValueError):
            TLBConfig(entries=30, associativity=4)

    def test_pwc_rejects_uneven_sets(self):
        with pytest.raises(ValueError):
            PWCConfig(entries_per_level=10, associativity=4)


class TestDerivedProperties:
    def test_cache_num_sets(self):
        cache = CacheConfig(size_bytes=32 * 1024, associativity=16)
        assert cache.num_lines == 512
        assert cache.num_sets == 32

    def test_total_wavefront_slots(self):
        gpu = GPUConfig(num_cus=8, wavefront_slots_per_cu=4)
        assert gpu.total_wavefront_slots == 32

    def test_fully_associative_tlb_single_set(self):
        assert TLBConfig(entries=32).num_sets == 1


class TestConfigHelpers:
    def test_with_scheduler_replaces_policy(self):
        config = baseline_config().with_scheduler("simt")
        assert config.iommu.scheduler == "simt"
        # Original default untouched (dataclass replace semantics).
        assert baseline_config().iommu.scheduler == "fcfs"

    def test_with_scheduler_sets_seed(self):
        config = baseline_config().with_scheduler("random", seed=7)
        assert config.iommu.scheduler_seed == 7

    def test_with_l2_tlb_entries(self):
        config = baseline_config().with_l2_tlb_entries(1024)
        assert config.gpu_l2_tlb.entries == 1024
        assert config.gpu_l2_tlb.associativity == 16

    def test_with_walkers(self):
        assert baseline_config().with_walkers(16).iommu.num_walkers == 16

    def test_with_iommu_buffer(self):
        assert baseline_config().with_iommu_buffer(512).iommu.buffer_entries == 512

    def test_helpers_compose(self):
        config = (
            baseline_config()
            .with_l2_tlb_entries(1024)
            .with_walkers(16)
            .with_scheduler("simt")
        )
        assert config.gpu_l2_tlb.entries == 1024
        assert config.iommu.num_walkers == 16
        assert config.iommu.scheduler == "simt"

    def test_baseline_config_scheduler_argument(self):
        assert baseline_config("simt").iommu.scheduler == "simt"
