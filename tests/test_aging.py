"""Unit tests for the starvation-avoidance aging policy."""

import pytest

from repro.core.aging import AgingPolicy
from repro.core.request import TranslationRequest, WalkBufferEntry


def make_entry(seq, vpn=None):
    request = TranslationRequest(
        vpn=vpn if vpn is not None else seq,
        instruction_id=seq,
        wavefront_id=0,
        cu_id=0,
        issue_time=0,
    )
    return WalkBufferEntry(request, arrival_seq=seq, arrival_time=0)


def test_threshold_must_be_positive():
    with pytest.raises(ValueError):
        AgingPolicy(0)


def test_bypass_credits_only_older_entries():
    policy = AgingPolicy(10)
    entries = [make_entry(0), make_entry(1), make_entry(2)]
    policy.record_bypasses(entries, dispatched=entries[1])
    assert entries[0].bypass_count == 1
    assert entries[1].bypass_count == 0
    assert entries[2].bypass_count == 0


def test_no_starving_below_threshold():
    policy = AgingPolicy(3)
    entries = [make_entry(0), make_entry(1)]
    entries[0].bypass_count = 2
    assert policy.starving(entries) is None


def test_starving_entry_detected_at_threshold():
    policy = AgingPolicy(3)
    entry = make_entry(0)
    entry.bypass_count = 3
    assert policy.starving([entry]) is entry
    assert policy.promotions == 1


def test_oldest_starving_entry_wins():
    policy = AgingPolicy(2)
    older, newer = make_entry(0), make_entry(5)
    older.bypass_count = 2
    newer.bypass_count = 9
    assert policy.starving([newer, older]) is older


def test_repeated_dispatches_age_the_passed_over():
    policy = AgingPolicy(3)
    waiting = make_entry(0)
    for seq in range(1, 4):
        policy.record_bypasses([waiting], dispatched=make_entry(seq))
    assert policy.starving([waiting]) is waiting


def make_buffer_with(vpn_by_instruction):
    from repro.core.buffer import PendingWalkBuffer

    buffer = PendingWalkBuffer(16)
    entries = []
    for instruction_id, vpn in vpn_by_instruction:
        request = TranslationRequest(
            vpn=vpn,
            instruction_id=instruction_id,
            wavefront_id=0,
            cu_id=0,
            issue_time=0,
        )
        entries.append(buffer.add(request, arrival_time=0))
    return buffer, entries


def test_incremental_path_promotes_oldest_after_threshold_dispatches():
    policy = AgingPolicy(2)
    buffer, entries = make_buffer_with([(1, 1), (2, 2), (3, 3)])
    waiting = entries[0]
    for younger in entries[1:]:
        assert policy.starving(buffer) is None
        policy.record_dispatch(younger)
        buffer.remove(younger)
    # Bypassed twice — exactly at threshold.
    assert policy.starving(buffer) is waiting
    assert policy.promotions == 1


def test_direct_dispatches_do_not_age_anyone():
    policy = AgingPolicy(1)
    buffer, entries = make_buffer_with([(1, 1)])
    direct = make_entry(0)
    direct.arrival_seq = -1  # bypassed the buffer entirely
    policy.record_dispatch(direct)
    assert policy.starving(buffer) is None


def test_bypass_count_of_matches_recorded_history():
    policy = AgingPolicy(10)
    buffer, entries = make_buffer_with([(1, 1), (2, 2), (3, 3)])
    oldest, middle, newest = entries
    policy.record_dispatch(middle)
    buffer.remove(middle)
    assert policy.bypass_count_of(oldest, buffer) == 1
    assert policy.bypass_count_of(newest, buffer) == 0
