"""Tests for the seed-stability harness."""

import pytest

from repro.experiments.stability import StabilityReport, seed_stability
from repro.workloads.synthetic import ParametricWorkload
from tests.conftest import tiny_config


class TestStabilityReport:
    def test_mean_and_stdev(self):
        report = StabilityReport("MVT", "simt", "fcfs", [1.0, 1.2, 1.4])
        assert report.mean == pytest.approx(1.2)
        assert report.stdev == pytest.approx(0.2)
        assert report.spread == pytest.approx(0.4)

    def test_single_sample_stdev_zero(self):
        assert StabilityReport("X", "a", "b", [1.3]).stdev == 0.0

    def test_consistent_direction(self):
        assert StabilityReport("X", "a", "b", [1.1, 1.2]).consistent_direction()
        assert StabilityReport("X", "a", "b", [0.8, 0.9]).consistent_direction()
        assert not StabilityReport("X", "a", "b", [0.9, 1.1]).consistent_direction()

    def test_summary_format(self):
        text = StabilityReport("MVT", "simt", "fcfs", [1.0, 1.2]).summary()
        assert "MVT" in text and "±" in text and "n=2" in text


class TestSeedStability:
    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            seed_stability("MVT", seeds=())

    def test_runs_across_seeds(self):
        workload_factory = lambda: ParametricWorkload(
            pages_per_instruction=8,
            instructions_per_wavefront=4,
            footprint_mb=16.0,
        )
        report = seed_stability(
            workload_factory(),
            seeds=(0, 1),
            config=tiny_config(),
            num_wavefronts=4,
            scale=1.0,
        )
        assert len(report.speedups) == 2
        assert all(s > 0 for s in report.speedups)
        assert report.workload == "SYN"

    def test_seed_changes_trace(self):
        # Different seeds must actually produce different runs.
        report = seed_stability(
            "XSB",
            seeds=(0, 1),
            config=tiny_config(),
            num_wavefronts=4,
            scale=0.05,
        )
        # Not identical to machine precision (different traces).
        assert report.spread > 0 or report.stdev == 0.0
