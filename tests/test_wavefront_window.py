"""Tests for the wavefront in-flight window (issue-ahead) mechanics."""

from dataclasses import replace

import pytest

from repro.config import PAGE_SIZE
from repro.experiments.runner import build_system
from tests.conftest import tiny_config


def window_config(depth):
    config = tiny_config()
    return replace(config, gpu=replace(config.gpu, max_outstanding_memops=depth))


def run_trace(trace, depth):
    system = build_system(window_config(depth))
    system.gpu.dispatch([trace])
    system.simulator.run()
    assert system.gpu.finished
    return system


def divergent(base, pages=8, lanes=16):
    return [base + (lane % pages) * PAGE_SIZE for lane in range(lanes)]


def test_window_one_serialises_instructions():
    trace = [divergent(0x100000), divergent(0x200000), divergent(0x300000)]
    system = run_trace(trace, depth=1)
    records = system.gpu.instruction_records
    for earlier, later in zip(records, records[1:]):
        assert later.issue_time >= earlier.complete_time


def test_deeper_window_overlaps_instructions():
    trace = [divergent(0x100000 + i * (1 << 22)) for i in range(4)]
    system = run_trace(trace, depth=4)
    records = system.gpu.instruction_records
    # At least one instruction must issue before its predecessor retires.
    overlapped = any(
        later.issue_time < earlier.complete_time
        for earlier, later in zip(records, records[1:])
    )
    assert overlapped


def test_window_limit_caps_overlap():
    trace = [divergent(0x100000 + i * (1 << 22)) for i in range(8)]
    system = run_trace(trace, depth=2)
    records = sorted(system.gpu.instruction_records, key=lambda r: r.issue_time)
    # At any issue instant, at most 2 earlier instructions are unretired.
    for index, record in enumerate(records):
        in_flight = sum(
            1
            for other in records[:index]
            if other.complete_time is not None
            and other.complete_time > record.issue_time
        )
        assert in_flight <= 2


def coalesced(base, lanes=16):
    return [base + lane * 8 for lane in range(lanes)]


def test_deeper_window_hides_latency_when_bandwidth_allows():
    # Light (single-walk) instructions are latency-bound: issuing ahead
    # overlaps their walks and must finish sooner.  (Divergent traces are
    # walker-bandwidth-bound, where overlap cannot help — that regime is
    # exercised by the window-depth ablation bench.)
    trace = [coalesced(0x100000 + i * (1 << 22)) for i in range(6)]
    serial = run_trace(trace, depth=1).gpu.completion_time
    overlapped = run_trace(trace, depth=4).gpu.completion_time
    assert overlapped < serial


def test_all_instructions_retire_under_every_depth():
    trace = [divergent(0x100000 + i * (1 << 22)) for i in range(5)]
    for depth in (1, 2, 3, 8):
        system = run_trace(trace, depth)
        assert all(
            record.complete_time is not None
            for record in system.gpu.instruction_records
        )
