"""Lifecycle tracing: ring semantics, determinism, export validity.

The load-bearing guarantees, each pinned here:

* ``build_tracer(None)`` is None and the untraced fast path is the
  pre-observability behaviour (golden equivalence covers the cycle
  counts; here we pin the API contract).
* Tracing never mutates simulation state — a fully-traced run and an
  untraced run of the same spec produce identical results.
* Timestamps are simulation cycles, so the JSONL export is
  byte-identical across runs of the same spec.
* The Chrome export passes its own schema validator, and the job spans
  carry enough data to rebuild the paper's Fig 3 buckets from a trace
  alone.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.runner import build_system, collect_result, run_simulation
from repro.obs.trace import (
    DEFAULT_RING_SIZE,
    PID_GPU,
    PID_IOMMU,
    TRACE_CATEGORIES,
    TraceConfig,
    Tracer,
    build_tracer,
    validate_chrome_trace,
)
from repro.resilience.faults import FaultEvent, FaultPlan
from repro.stats.counters import BucketHistogram
from repro.stats.export import result_to_dict
from repro.stats.metrics import FIG3_BUCKETS, instruction_walk_histogram
from repro.workloads.registry import get_workload

from tests.conftest import tiny_config


RUN_KWARGS = dict(num_wavefronts=8, scale=0.05, seed=1)


def _traced_run(trace=None, workload="MVT", **kwargs):
    """build_system + dispatch + run, returning (result, system)."""
    config = kwargs.pop("config", tiny_config())
    bench = get_workload(workload, scale=0.05, seed=1)
    system = build_system(config, trace=trace)
    traces = bench.build_trace(
        num_wavefronts=8, wavefront_size=config.gpu.wavefront_size
    )
    system.gpu.dispatch(traces)
    system.simulator.run()
    assert system.gpu.finished
    return collect_result(system, bench), system


class TestTraceConfig:
    def test_defaults(self):
        config = TraceConfig()
        assert config.categories == TRACE_CATEGORIES
        assert config.ring_size == DEFAULT_RING_SIZE

    def test_list_categories_coerced(self):
        config = TraceConfig(categories=["walk", "job"])
        assert config.categories == frozenset({"walk", "job"})

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError, match="unknown trace categories"):
            TraceConfig(categories={"walk", "bogus"})

    def test_nonpositive_ring_rejected(self):
        with pytest.raises(ValueError, match="ring_size"):
            TraceConfig(ring_size=0)

    def test_picklable(self):
        import pickle

        config = TraceConfig(categories={"walk"}, ring_size=128)
        assert pickle.loads(pickle.dumps(config)) == config


class TestBuildTracer:
    def test_none_in_none_out(self):
        assert build_tracer(None) is None

    def test_config_yields_tracer(self):
        tracer = build_tracer(TraceConfig())
        assert isinstance(tracer, Tracer)
        assert tracer.enabled

    def test_empty_categories_inert(self):
        tracer = build_tracer(TraceConfig(categories=frozenset()))
        assert not tracer.enabled
        tracer.walk_created(0, 1, 2, 3)
        tracer.job_retired(10, 0, 2, 3, 0, 4, 1, 1)
        assert tracer.events_emitted == 0


class TestRing:
    def test_ring_drops_oldest(self):
        tracer = Tracer(TraceConfig(categories={"walk"}, ring_size=4))
        for i in range(10):
            tracer.walk_created(i, i, i, 0)
        assert tracer.events_emitted == 10
        assert tracer.events_recorded == 4
        assert tracer.events_dropped == 6
        # The survivors are the newest four, in order.
        assert [e["ts"] for e in tracer.events()] == [6, 7, 8, 9]

    def test_tail(self):
        tracer = Tracer(TraceConfig(categories={"walk"}, ring_size=16))
        for i in range(5):
            tracer.walk_created(i, i, i, 0)
        assert [e["ts"] for e in tracer.tail(2)] == [3, 4]
        assert len(tracer.tail(100)) == 5
        assert tracer.tail(0) == []

    def test_category_gating(self):
        tracer = Tracer(TraceConfig(categories={"walk"}))
        tracer.tlb_lookup(0, "iommu_l1", 1, True)
        tracer.cu_stall(0, 0, 10)
        tracer.counter(0, "depth", 3)
        assert tracer.events_emitted == 0
        tracer.walk_created(0, 1, 2, 3)
        assert tracer.events_emitted == 1


class TestValidator:
    def test_accepts_real_trace(self):
        tracer = Tracer(TraceConfig())
        tracer.walk_created(0, 1, 2, 3)
        tracer.walk_span(0, 10, 1, 1, 2, 4)
        assert validate_chrome_trace(tracer.to_chrome()) >= 2

    def test_rejects_non_object(self):
        with pytest.raises(ValueError, match="JSON object"):
            validate_chrome_trace([])

    def test_rejects_missing_trace_events(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({})

    def test_rejects_missing_keys(self):
        with pytest.raises(ValueError, match="missing 'ts'"):
            validate_chrome_trace(
                {"traceEvents": [{"name": "x", "ph": "i", "pid": 0, "tid": 0}]}
            )

    def test_rejects_bad_phase_and_negative_duration(self):
        bad = {
            "traceEvents": [
                {"name": "a", "ph": "Z", "ts": 0, "pid": 0, "tid": 0},
                {"name": "b", "ph": "X", "ts": 0, "dur": -5, "pid": 0, "tid": 0},
            ]
        }
        with pytest.raises(ValueError) as excinfo:
            validate_chrome_trace(bad)
        message = str(excinfo.value)
        assert "unknown phase" in message
        assert "dur >= 0" in message

    def test_accepts_exactly_decomposed_walk_read(self):
        good = {
            "traceEvents": [{
                "name": "walk_read", "ph": "X", "ts": 10, "dur": 9,
                "pid": 2, "tid": 0, "cat": "walk",
                "args": {"level": 1, "bank": 3, "bank_queue": 2,
                         "row_access": 5, "fault_pad": 2, "row_hit": False},
            }]
        }
        assert validate_chrome_trace(good) == 1

    def test_rejects_walk_read_stage_sum_mismatch(self):
        bad = {
            "traceEvents": [{
                "name": "walk_read", "ph": "X", "ts": 10, "dur": 9,
                "pid": 2, "tid": 0, "cat": "walk",
                "args": {"level": 1, "bank": 3, "bank_queue": 2,
                         "row_access": 5, "fault_pad": 0, "row_hit": False},
            }]
        }
        with pytest.raises(ValueError, match="stages sum to 7, dur is 9"):
            validate_chrome_trace(bad)

    def test_rejects_walk_read_missing_stage_args(self):
        bad = {
            "traceEvents": [{
                "name": "walk_read", "ph": "X", "ts": 10, "dur": 9,
                "pid": 2, "tid": 0, "cat": "walk",
                "args": {"level": 1, "bank": 3},
            }]
        }
        with pytest.raises(ValueError, match="walk_read args missing"):
            validate_chrome_trace(bad)

    def test_rejects_walk_read_without_args(self):
        bad = {
            "traceEvents": [{
                "name": "walk_read", "ph": "X", "ts": 10, "dur": 9,
                "pid": 2, "tid": 0,
            }]
        }
        with pytest.raises(ValueError, match="walk_read needs args"):
            validate_chrome_trace(bad)


class TestTracedRuns:
    def test_traced_result_identical_to_untraced(self):
        untraced, _ = _traced_run(trace=None)
        traced, system = _traced_run(trace=TraceConfig())
        assert system.tracer is not None
        assert system.tracer.events_emitted > 0
        assert result_to_dict(traced) == result_to_dict(untraced)

    def test_inert_tracer_result_identical_to_untraced(self):
        untraced, _ = _traced_run(trace=None)
        inert, system = _traced_run(trace=TraceConfig(categories=frozenset()))
        assert system.tracer is not None
        assert system.tracer.events_emitted == 0
        assert result_to_dict(inert) == result_to_dict(untraced)

    def test_jsonl_byte_identical_across_runs(self, tmp_path):
        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        for path in paths:
            run_simulation(
                "MVT", config=tiny_config(), trace=TraceConfig(),
                trace_jsonl_path=str(path), **RUN_KWARGS,
            )
        assert paths[0].read_bytes() == paths[1].read_bytes()
        assert paths[0].stat().st_size > 0

    def test_chrome_export_validates_and_has_tracks(self, tmp_path):
        path = tmp_path / "trace.json"
        result = run_simulation(
            "MVT", config=tiny_config(), trace=TraceConfig(),
            trace_path=str(path), **RUN_KWARGS,
        )
        document = json.loads(path.read_text())
        count = validate_chrome_trace(document)
        assert count == len(document["traceEvents"])
        names = {
            e["args"]["name"]
            for e in document["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert {"GPU", "IOMMU", "Walkers", "Memory"} <= names
        summary = result.detail["trace"]
        assert summary["chrome_path"] == str(path)
        assert summary["events_emitted"] > 0

    def test_job_spans_reproduce_fig3_buckets(self):
        result, system = _traced_run(trace=TraceConfig(categories={"job"}))
        job_spans = [
            e for e in system.tracer.events()
            if e["name"] == "job" and e["pid"] == PID_GPU
        ]
        assert job_spans, "traced run emitted no job spans"
        from_trace = BucketHistogram(FIG3_BUCKETS)
        for span in job_spans:
            accesses = span["args"]["walk_accesses"]
            if accesses > 0:
                from_trace.add(accesses)
        from_records = instruction_walk_histogram(
            system.gpu.instruction_records
        )
        assert from_trace.counts() == from_records.counts()
        assert from_trace.total == from_records.total

    def test_walk_lifecycle_events_present(self):
        _, system = _traced_run(trace=TraceConfig(categories={"walk"}))
        names = {e["name"] for e in system.tracer.events()}
        assert {"walk_created", "queued", "walk", "walk_completed"} <= names
        # Every queued span sits on the IOMMU track with non-negative wait.
        for event in system.tracer.events():
            if event["name"] == "queued":
                assert event["pid"] == PID_IOMMU
                assert event["dur"] >= 0

    def test_walk_read_spans_decompose_in_real_traces(self):
        _, system = _traced_run(trace=TraceConfig(categories={"walk"}))
        reads = [
            e for e in system.tracer.events() if e["name"] == "walk_read"
        ]
        assert reads, "traced run emitted no walk_read spans"
        levels = set()
        for event in reads:
            args = event["args"]
            levels.add(args["level"])
            assert args["bank_queue"] + args["row_access"] + args["fault_pad"] \
                == event["dur"]
            assert args["bank_queue"] >= 0 and args["fault_pad"] >= 0
        # A 4-level radix walk touches every level at least once.
        assert levels == {1, 2, 3, 4}
        # The whole export — including the new stage-boundary spans —
        # still passes the Chrome validator.
        assert validate_chrome_trace(system.tracer.to_chrome()) > 0

    def test_queued_controller_emits_dram_service_spans(self):
        import dataclasses

        config = tiny_config()
        config = dataclasses.replace(
            config, dram=dataclasses.replace(config.dram, controller="frfcfs")
        )
        _, system = _traced_run(
            trace=TraceConfig(categories={"memory"}), config=config
        )
        names = {e["name"] for e in system.tracer.events()}
        assert "dram_service" in names
        assert "dram_read" in names
        service = [
            e for e in system.tracer.events() if e["name"] == "dram_service"
        ]
        for event in service:
            assert event["dur"] >= 0
            assert "bank" in event["args"]
        assert validate_chrome_trace(system.tracer.to_chrome()) > 0

    def test_fault_injections_become_instant_events(self):
        plan = FaultPlan(events=(
            FaultEvent("flush_tlb", at_cycle=1_000, site="iommu_l2"),
            FaultEvent("flush_pwc", at_cycle=2_000),
        ))
        config = tiny_config().with_faults(plan)
        result = run_simulation(
            "MVT", config=config, trace=TraceConfig(embed_events=True),
            **RUN_KWARGS,
        )
        faults = [
            e for e in result.detail["trace"]["events"]
            if e["cat"] == "fault"
        ]
        assert {e["name"] for e in faults} == {
            "fault:flush_tlb", "fault:flush_pwc"
        }
        assert all(e["ph"] == "i" and e["s"] == "g" for e in faults)
        by_name = {e["name"]: e["ts"] for e in faults}
        assert by_name["fault:flush_tlb"] == 1_000
        assert by_name["fault:flush_pwc"] == 2_000

    def test_embed_events_off_by_default(self):
        result = run_simulation(
            "MVT", config=tiny_config(), trace=TraceConfig(), **RUN_KWARGS
        )
        assert "events" not in result.detail["trace"]

    def test_trace_path_without_trace_config_rejected(self):
        with pytest.raises(ValueError, match="trace_path"):
            run_simulation(
                "MVT", config=tiny_config(), trace_path="/tmp/nope.json",
                **RUN_KWARGS,
            )
