"""Integration tests for the experiment runner."""

import pytest

from repro.experiments.runner import (
    build_system,
    compare_schedulers,
    run_many,
    run_simulation,
)
from repro.workloads.synthetic import ParametricWorkload
from tests.conftest import tiny_config


def tiny_workload(pages=8, seed=0):
    return ParametricWorkload(
        pages_per_instruction=pages,
        instructions_per_wavefront=6,
        footprint_mb=16.0,
        scale=1.0,
        seed=seed,
    )


class TestBuildSystem:
    def test_components_wired(self):
        system = build_system(tiny_config())
        assert system.gpu.iommu is system.iommu
        assert system.gpu.memory is system.memory
        assert len(system.gpu.cus) == tiny_config().gpu.num_cus
        assert len(system.iommu.walkers) == tiny_config().iommu.num_walkers

    def test_default_config_is_baseline(self):
        system = build_system()
        assert system.config.iommu.scheduler == "fcfs"


class TestRunSimulation:
    def test_returns_populated_result(self):
        result = run_simulation(
            tiny_workload(), config=tiny_config(), num_wavefronts=4
        )
        assert result.workload == "SYN"
        assert result.scheduler == "fcfs"
        assert result.total_cycles > 0
        assert result.instructions == 4 * 6
        assert result.wavefronts == 4
        assert result.walks_dispatched > 0
        assert len(result.walk_work_fractions) == 6

    def test_scheduler_override(self):
        result = run_simulation(
            tiny_workload(), config=tiny_config(), scheduler="simt", num_wavefronts=4
        )
        assert result.scheduler == "simt"

    def test_workload_by_name(self):
        result = run_simulation(
            "KMN", config=tiny_config(), num_wavefronts=2, scale=0.1
        )
        assert result.workload == "KMN"

    def test_deadlock_guard(self):
        with pytest.raises(RuntimeError):
            run_simulation(
                tiny_workload(), config=tiny_config(), num_wavefronts=4, max_cycles=10
            )

    def test_deterministic(self):
        kwargs = dict(config=tiny_config(), num_wavefronts=4)
        a = run_simulation(tiny_workload(), **kwargs)
        b = run_simulation(tiny_workload(), **kwargs)
        assert a.total_cycles == b.total_cycles
        assert a.walks_dispatched == b.walks_dispatched

    def test_engine_throughput_recorded(self):
        result = run_simulation(
            tiny_workload(), config=tiny_config(), num_wavefronts=4
        )
        engine = result.detail["engine"]
        assert engine["events_processed"] > 0
        assert engine["wall_seconds"] > 0
        assert engine["events_per_sec"] > 0


def _strip_timing(result):
    """Deterministic fields only: drop wall-clock throughput numbers."""
    detail = dict(result.detail)
    engine = dict(detail["engine"])
    engine.pop("wall_seconds")
    engine.pop("events_per_sec")
    detail["engine"] = engine
    return {**{f: getattr(result, f) for f in (
        "workload", "scheduler", "total_cycles", "instructions",
        "wavefronts", "stall_cycles", "walks_dispatched",
        "walk_memory_accesses", "interleaved_fraction",
        "first_walk_latency", "last_walk_latency",
        "wavefronts_per_epoch", "walk_work_fractions",
    )}, "detail": detail}


class TestRunMany:
    def specs(self):
        return [
            {
                "workload": "KMN",
                "config": tiny_config(name),
                "scheduler": name,
                "num_wavefronts": 2,
                "scale": 0.1,
            }
            for name in ("fcfs", "simt", "sjf")
        ]

    def test_serial_matches_individual_runs(self):
        results = run_many(self.specs())
        assert [r.scheduler for r in results] == ["fcfs", "simt", "sjf"]
        solo = run_simulation(**self.specs()[1])
        assert _strip_timing(results[1]) == _strip_timing(solo)

    def test_parallel_identical_to_serial(self):
        serial = run_many(self.specs(), jobs=1)
        parallel = run_many(self.specs(), jobs=2)
        assert [_strip_timing(r) for r in parallel] == [
            _strip_timing(r) for r in serial
        ]


class TestCompareSchedulersParallel:
    def test_jobs_identical_to_serial(self):
        kwargs = dict(
            schedulers=("fcfs", "random", "simt"),
            config=tiny_config(),
            num_wavefronts=4,
        )
        serial = compare_schedulers(tiny_workload(), **kwargs)
        parallel = compare_schedulers(tiny_workload(), jobs=3, **kwargs)
        assert list(parallel) == list(serial)
        for name in serial:
            assert _strip_timing(parallel[name]) == _strip_timing(serial[name])


class TestCompareSchedulers:
    def test_runs_every_policy(self):
        results = compare_schedulers(
            tiny_workload(),
            schedulers=("fcfs", "random", "simt"),
            config=tiny_config(),
            num_wavefronts=4,
        )
        assert set(results) == {"fcfs", "random", "simt"}
        assert all(r.total_cycles > 0 for r in results.values())

    def test_same_workload_different_policies(self):
        results = compare_schedulers(
            tiny_workload(),
            schedulers=("fcfs", "simt"),
            config=tiny_config(),
            num_wavefronts=4,
        )
        assert results["fcfs"].instructions == results["simt"].instructions
