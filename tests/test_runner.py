"""Integration tests for the experiment runner."""

import pytest

from repro.experiments.runner import build_system, compare_schedulers, run_simulation
from repro.workloads.synthetic import ParametricWorkload
from tests.conftest import tiny_config


def tiny_workload(pages=8, seed=0):
    return ParametricWorkload(
        pages_per_instruction=pages,
        instructions_per_wavefront=6,
        footprint_mb=16.0,
        scale=1.0,
        seed=seed,
    )


class TestBuildSystem:
    def test_components_wired(self):
        system = build_system(tiny_config())
        assert system.gpu.iommu is system.iommu
        assert system.gpu.memory is system.memory
        assert len(system.gpu.cus) == tiny_config().gpu.num_cus
        assert len(system.iommu.walkers) == tiny_config().iommu.num_walkers

    def test_default_config_is_baseline(self):
        system = build_system()
        assert system.config.iommu.scheduler == "fcfs"


class TestRunSimulation:
    def test_returns_populated_result(self):
        result = run_simulation(
            tiny_workload(), config=tiny_config(), num_wavefronts=4
        )
        assert result.workload == "SYN"
        assert result.scheduler == "fcfs"
        assert result.total_cycles > 0
        assert result.instructions == 4 * 6
        assert result.wavefronts == 4
        assert result.walks_dispatched > 0
        assert len(result.walk_work_fractions) == 6

    def test_scheduler_override(self):
        result = run_simulation(
            tiny_workload(), config=tiny_config(), scheduler="simt", num_wavefronts=4
        )
        assert result.scheduler == "simt"

    def test_workload_by_name(self):
        result = run_simulation(
            "KMN", config=tiny_config(), num_wavefronts=2, scale=0.1
        )
        assert result.workload == "KMN"

    def test_deadlock_guard(self):
        with pytest.raises(RuntimeError):
            run_simulation(
                tiny_workload(), config=tiny_config(), num_wavefronts=4, max_cycles=10
            )

    def test_deterministic(self):
        kwargs = dict(config=tiny_config(), num_wavefronts=4)
        a = run_simulation(tiny_workload(), **kwargs)
        b = run_simulation(tiny_workload(), **kwargs)
        assert a.total_cycles == b.total_cycles
        assert a.walks_dispatched == b.walks_dispatched


class TestCompareSchedulers:
    def test_runs_every_policy(self):
        results = compare_schedulers(
            tiny_workload(),
            schedulers=("fcfs", "random", "simt"),
            config=tiny_config(),
            num_wavefronts=4,
        )
        assert set(results) == {"fcfs", "random", "simt"}
        assert all(r.total_cycles > 0 for r in results.values())

    def test_same_workload_different_policies(self):
        results = compare_schedulers(
            tiny_workload(),
            schedulers=("fcfs", "simt"),
            config=tiny_config(),
            num_wavefronts=4,
        )
        assert results["fcfs"].instructions == results["simt"].instructions
