"""Fault injection: plan validation, determinism, golden equivalence."""

from __future__ import annotations

import pytest

from repro.config_io import config_from_dict, config_to_dict
from repro.experiments.runner import run_simulation
from repro.resilience.campaign import campaign_cases, generate_plan, run_campaign
from repro.resilience.faults import (
    SAFE_KINDS,
    FaultEvent,
    FaultPlan,
    build_injector,
)

from tests.conftest import tiny_config

#: Watchdog budget used throughout: huge next to tiny-config runtimes
#: (~60k cycles) but tiny next to the 2e9-cycle safety valve.
WATCHDOG = 5_000_000


def _tiny_run(plan=None, workload="MVT", scheduler="fcfs", **kwargs):
    config = tiny_config(scheduler)
    if plan is not None:
        config = config.with_faults(plan)
    return run_simulation(
        workload, config=config, num_wavefronts=8, scale=0.05, seed=1, **kwargs
    )


def _fingerprint(result):
    """Everything deterministic about a run (timing fields excluded)."""
    return (
        result.workload,
        result.scheduler,
        result.total_cycles,
        result.instructions,
        result.stall_cycles,
        result.walks_dispatched,
        result.walk_memory_accesses,
        result.first_walk_latency,
        result.last_walk_latency,
    )


# ----------------------------------------------------------------------
# Plan validation
# ----------------------------------------------------------------------


def test_unknown_fault_kind_rejected():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultEvent("melt_everything")


@pytest.mark.parametrize(
    "kwargs",
    [
        {"kind": "flush_tlb"},                                  # missing site
        {"kind": "corrupt_tlb", "site": "l9"},                  # bad site
        {"kind": "stall_walker", "duration": 10},               # missing target
        {"kind": "stall_walker", "target": 0},                  # missing duration
        {"kind": "delay_walk_completion"},                      # no magnitude
        {"kind": "dram_spike", "duration": 5},                  # no magnitude
        {"kind": "flush_pwc", "at_cycle": -1},                  # negative cycle
        {"kind": "flush_pwc", "count": 0},                      # zero count
    ],
)
def test_malformed_fault_events_rejected(kwargs):
    with pytest.raises(ValueError):
        FaultEvent(**kwargs)


def test_plan_classification():
    safe = FaultPlan(events=[FaultEvent("flush_pwc", at_cycle=10)])
    assert safe.is_safe and not safe.is_empty
    assert safe.events == (FaultEvent("flush_pwc", at_cycle=10),)  # list → tuple
    lossy = FaultPlan(events=(FaultEvent("drop_walk_completion"),))
    assert not lossy.is_safe
    assert lossy.of_kind("drop_walk_completion") == lossy.events
    assert lossy.of_kind("flush_pwc") == ()


def test_empty_plan_builds_no_injector():
    assert build_injector(None) is None
    assert build_injector(FaultPlan()) is None
    assert build_injector(FaultPlan(events=(FaultEvent("flush_pwc"),))) is not None


# ----------------------------------------------------------------------
# Golden equivalence: the fault-free path is untouched
# ----------------------------------------------------------------------


def test_empty_plan_bit_identical_to_no_plan():
    bare = _tiny_run(plan=None)
    empty = _tiny_run(plan=FaultPlan(seed=123))
    assert _fingerprint(bare) == _fingerprint(empty)
    # No injector → no fault stats reported on either run.
    assert "faults" not in bare.detail
    assert "faults" not in empty.detail


def test_watchdog_does_not_perturb_results():
    plain = _tiny_run()
    watched = _tiny_run(watchdog_cycles=WATCHDOG)
    assert _fingerprint(plain) == _fingerprint(watched)


# ----------------------------------------------------------------------
# Determinism and conservation under injection
# ----------------------------------------------------------------------


def _mixed_safe_plan(seed=99):
    return FaultPlan(
        seed=seed,
        events=(
            FaultEvent("flush_tlb", at_cycle=5_000, site="gpu_l2"),
            FaultEvent("corrupt_tlb", at_cycle=8_000, site="iommu_l2", count=4),
            FaultEvent("flush_pwc", at_cycle=12_000),
            FaultEvent("stall_walker", at_cycle=3_000, target=1, duration=4_000),
            FaultEvent("delay_walk_completion", at_cycle=2_000, magnitude=500, count=4),
            FaultEvent("dram_spike", at_cycle=10_000, duration=6_000, magnitude=150),
        ),
    )


def test_identical_plan_and_spec_identical_results():
    first = _tiny_run(plan=_mixed_safe_plan(), watchdog_cycles=WATCHDOG)
    second = _tiny_run(plan=_mixed_safe_plan(), watchdog_cycles=WATCHDOG)
    assert _fingerprint(first) == _fingerprint(second)
    assert first.detail["faults"] == second.detail["faults"]


def test_safe_plan_completes_all_work():
    faulty = _tiny_run(plan=_mixed_safe_plan(), watchdog_cycles=WATCHDOG)
    clean = _tiny_run()
    # Perturbed, not lost: same instruction count retires, and the run
    # passed the watchdog's end-of-run conservation sweep.
    assert faulty.instructions == clean.instructions
    injected = faulty.detail["faults"]["injected"]
    for kind in ("flush_tlb", "corrupt_tlb", "flush_pwc", "stall_walker",
                 "delay_walk_completion", "dram_spike"):
        assert injected.get(kind, 0) > 0, f"{kind} never fired"
    assert faulty.detail["faults"]["dropped_completions"] == 0


def test_faults_actually_perturb_timing():
    clean = _tiny_run()
    faulty = _tiny_run(plan=_mixed_safe_plan(), watchdog_cycles=WATCHDOG)
    # Perturbation must change timing (either direction — an injected
    # flush can accidentally *improve* interleaving on a tiny run).
    assert _fingerprint(faulty) != _fingerprint(clean)


def test_delay_fault_keeps_conservation():
    plan = FaultPlan(
        events=(FaultEvent("delay_walk_completion", at_cycle=0,
                           magnitude=2_000, count=8),)
    )
    result = _tiny_run(plan=plan, watchdog_cycles=WATCHDOG)
    assert result.detail["faults"]["injected"]["delay_walk_completion"] == 8
    iommu = result.detail["iommu"]
    assert iommu["walks_completed"] == (
        iommu["walks_dispatched"] + iommu.get("prefetch_walks", 0)
    )


# ----------------------------------------------------------------------
# Serialisation: plans ride the config tree
# ----------------------------------------------------------------------


def test_fault_plan_config_round_trip():
    config = tiny_config().with_faults(_mixed_safe_plan(seed=7))
    rebuilt = config_from_dict(config_to_dict(config))
    assert rebuilt.faults == config.faults
    assert rebuilt == config


def test_fault_plan_unknown_keys_rejected():
    data = config_to_dict(tiny_config().with_faults(FaultPlan(seed=1)))
    data["faults"]["surprise"] = 1
    with pytest.raises(ValueError, match="unknown FaultPlan keys"):
        config_from_dict(data)


def test_configless_round_trip_keeps_faults_none():
    config = tiny_config()
    assert config_from_dict(config_to_dict(config)).faults is None


# ----------------------------------------------------------------------
# Campaign: seeded matrix, deterministic end to end
# ----------------------------------------------------------------------


def test_campaign_cases_deterministic():
    first = campaign_cases(seed=5, runs=4)
    second = campaign_cases(seed=5, runs=4)
    assert [case["workload"] for case in first] == [
        case["workload"] for case in second
    ]
    assert [case["config"].faults for case in first] == [
        case["config"].faults for case in second
    ]
    assert all(case["config"].faults.is_safe for case in first)


def test_generate_plan_seeded():
    assert generate_plan(3) == generate_plan(3)
    assert generate_plan(3) != generate_plan(4)


def test_run_campaign_deterministic_and_complete():
    first = run_campaign(seed=11, runs=2)
    second = run_campaign(seed=11, runs=2)
    assert first == second
    assert first["completed"] == first["runs"] == 2
    for case in first["cases"]:
        assert case["status"] == "ok"
        assert case["faults_injected"]
