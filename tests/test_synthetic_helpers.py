"""Tests for the access-pattern building blocks in workloads.synthetic."""

import random

import pytest

from repro.config import PAGE_SIZE
from repro.mmu.address import vpn_of
from repro.workloads.base import VirtualAddressSpace
from repro.workloads.synthetic import coalesced, random_lanes, row_strided


@pytest.fixture
def region():
    space = VirtualAddressSpace()
    return space.allocate("data", 8 * 1024 * 1024)


def test_coalesced_addresses_are_consecutive(region):
    addresses = coalesced(region, start_element=10, lanes=8, element_size=8)
    assert addresses == [region.base + (10 + lane) * 8 for lane in range(8)]


def test_coalesced_stays_on_few_pages(region):
    addresses = coalesced(region, 0, 64, 8)
    pages = {vpn_of(a) for a in addresses}
    assert len(pages) <= 2  # 512 bytes never spans more than 2 pages


def test_row_strided_hits_distinct_pages_for_big_rows(region):
    row_elements = PAGE_SIZE  # 4096 × 8 B = 8 pages per row
    addresses = row_strided(region, 0, row_elements, column=5, lanes=16)
    pages = {vpn_of(a) for a in addresses}
    assert len(pages) == 16


def test_row_strided_column_offsets(region):
    addresses = row_strided(region, 2, 1024, column=3, lanes=4)
    assert addresses[0] == region.element(2 * 1024 + 3)
    assert addresses[1] == region.element(3 * 1024 + 3)


def test_row_strided_bounds_checked(region):
    with pytest.raises(IndexError):
        row_strided(region, 10_000_000, 1024, 0, 4)


def test_random_lanes_within_region(region):
    rng = random.Random(0)
    addresses = random_lanes(region, rng, 64)
    assert all(region.base <= a < region.end for a in addresses)


def test_random_lanes_deterministic_per_seed(region):
    assert random_lanes(region, random.Random(7), 16) == random_lanes(
        region, random.Random(7), 16
    )


def test_random_lanes_spread_across_pages(region):
    rng = random.Random(1)
    addresses = random_lanes(region, rng, 64)
    pages = {vpn_of(a) for a in addresses}
    assert len(pages) > 32  # 2048-page region: collisions are rare
