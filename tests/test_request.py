"""Unit tests for translation requests and walk buffer entries."""

import pytest

from repro.core.request import (
    INSTRUCTION_ID_SPACE,
    TranslationRequest,
    WalkBufferEntry,
    tag_instruction_id,
)


def make_request(vpn=0x10, instruction_id=1, wavefront_id=0):
    return TranslationRequest(
        vpn=vpn,
        instruction_id=instruction_id,
        wavefront_id=wavefront_id,
        cu_id=0,
        issue_time=100,
    )


def test_instruction_id_folds_to_20_bits():
    assert tag_instruction_id(0) == 0
    assert tag_instruction_id(INSTRUCTION_ID_SPACE) == 0
    assert tag_instruction_id(INSTRUCTION_ID_SPACE + 7) == 7


def test_request_latency_unset_until_complete():
    request = make_request()
    assert request.latency is None
    request.complete_time = 350
    assert request.latency == 250


def test_request_repr_mentions_vpn():
    assert "vpn" in repr(make_request())


def test_entry_attach_same_page():
    entry = WalkBufferEntry(make_request(vpn=5), arrival_seq=0, arrival_time=0)
    entry.attach(make_request(vpn=5, instruction_id=2))
    assert len(entry.requests) == 2


def test_entry_attach_rejects_other_page():
    entry = WalkBufferEntry(make_request(vpn=5), arrival_seq=0, arrival_time=0)
    with pytest.raises(ValueError):
        entry.attach(make_request(vpn=6))


def test_entry_carries_instruction_identity():
    entry = WalkBufferEntry(
        make_request(instruction_id=42), arrival_seq=3, arrival_time=9
    )
    assert entry.instruction_id == 42
    assert entry.arrival_seq == 3
    assert entry.bypass_count == 0
