"""Tests for the IOMMU walk-latency breakdown (queue wait vs service)."""

from tests.test_iommu import make_iommu, make_request


def test_uncontended_walk_has_no_queue_wait():
    sim, _, iommu = make_iommu(num_walkers=2)
    iommu.translate(make_request(0x1))
    sim.run()
    stats = iommu.stats()
    assert stats["avg_queue_wait"] == 0.0
    assert stats["avg_walk_service"] > 0.0


def test_contention_produces_queue_wait():
    sim, _, iommu = make_iommu(num_walkers=1, latency=50)
    for vpn in range(4):
        iommu.translate(make_request(vpn))
    sim.run()
    stats = iommu.stats()
    assert stats["avg_queue_wait"] > 0.0


def test_service_time_scales_with_walk_depth():
    # Cold PWC: 4 chained reads of `latency` cycles each.
    sim, _, iommu = make_iommu(num_walkers=1, latency=10)
    iommu.translate(make_request(0x1))
    sim.run()
    assert iommu.stats()["avg_walk_service"] == 40.0


def test_breakdown_sums_over_all_walks():
    sim, _, iommu = make_iommu(num_walkers=1, latency=10)
    for vpn in range(3):
        iommu.translate(make_request(vpn))
    sim.run()
    assert iommu.total_service_time > 0
    assert iommu.total_queue_wait >= 0
    # Every demand walk contributed to the breakdown.
    assert iommu.walks_dispatched == 3
