"""Tests for the multi-application harness and fair-share scheduler."""

import pytest

from repro.core.buffer import PendingWalkBuffer
from repro.core.request import TranslationRequest
from repro.core.schedulers import FairShareScheduler
from repro.experiments.multitenancy import MultiAppResult, run_multi_simulation
from repro.workloads.synthetic import ParametricWorkload
from tests.conftest import tiny_config


def add(buffer, vpn, instruction_id, app_id, estimate=1):
    request = TranslationRequest(
        vpn=vpn,
        instruction_id=instruction_id,
        wavefront_id=0,
        cu_id=0,
        issue_time=0,
        app_id=app_id,
    )
    return buffer.add(request, arrival_time=0, estimated_accesses=estimate)


class TestFairShareScheduler:
    def test_prefers_least_served_app(self):
        scheduler = FairShareScheduler()
        buffer = PendingWalkBuffer(8)
        served = add(buffer, 1, 1, app_id=0, estimate=4)
        buffer.remove(served)
        scheduler.note_dispatch(served)  # app 0 has attained service
        scheduler.note_dispatch(served)
        app0 = add(buffer, 2, 2, app_id=0, estimate=1)
        app1 = add(buffer, 3, 3, app_id=1, estimate=4)
        # App 1 has attained nothing: it wins despite the higher score.
        assert scheduler.select(buffer) is app1

    def test_sjf_within_the_needy_app(self):
        scheduler = FairShareScheduler()
        buffer = PendingWalkBuffer(8)
        add(buffer, 1, 1, app_id=0, estimate=4)
        light = add(buffer, 2, 2, app_id=0, estimate=1)
        assert scheduler.select(buffer) is light

    def test_batching_still_first(self):
        scheduler = FairShareScheduler()
        buffer = PendingWalkBuffer(8)
        mate = add(buffer, 1, 1, app_id=0, estimate=4)
        buffer.remove(mate)
        scheduler.note_dispatch(mate)
        same_instr = add(buffer, 2, 1, app_id=0, estimate=4)
        add(buffer, 3, 9, app_id=1, estimate=1)
        assert scheduler.select(buffer) is same_instr

    def test_attained_service_accumulates(self):
        scheduler = FairShareScheduler()
        buffer = PendingWalkBuffer(8)
        entry = add(buffer, 1, 1, app_id=2, estimate=3)
        scheduler.select(buffer)
        assert scheduler.attained_service[2] == 3

    def test_single_app_behaves_like_simt(self):
        scheduler = FairShareScheduler()
        buffer = PendingWalkBuffer(8)
        add(buffer, 1, 1, app_id=0, estimate=4)
        light = add(buffer, 2, 2, app_id=0, estimate=1)
        assert scheduler.select(buffer) is light


def small_app(seed):
    return ParametricWorkload(
        pages_per_instruction=8,
        instructions_per_wavefront=6,
        footprint_mb=16.0,
        seed=seed,
    )


class TestMultiAppRunner:
    def test_requires_two_apps(self):
        with pytest.raises(ValueError):
            run_multi_simulation(["MVT"], config=tiny_config())

    def test_shared_run_completes_with_metrics(self):
        result = run_multi_simulation(
            [small_app(1), small_app(2)],
            config=tiny_config(),
            scheduler="fairshare",
            wavefronts_per_app=4,
        )
        assert set(result.app_cycles) == {0, 1}
        assert set(result.solo_cycles) == {0, 1}
        assert result.total_cycles == max(result.app_cycles.values())
        assert 0 < result.fairness <= 1.0
        assert 0 < result.system_throughput <= 2.0 + 1e-9

    def test_sharing_slows_apps_down(self):
        result = run_multi_simulation(
            [small_app(1), small_app(2)],
            config=tiny_config(),
            wavefronts_per_app=8,
        )
        # Contention for CU slots and walkers: nobody runs faster shared
        # than the slowest possible solo bound.
        assert all(s > 0.5 for s in result.slowdowns.values())
        assert max(result.slowdowns.values()) > 1.0

    def test_summary_mentions_apps(self):
        result = MultiAppResult(
            scheduler="fcfs",
            total_cycles=100,
            app_cycles={0: 100, 1: 80},
            solo_cycles={0: 50, 1: 40},
            workloads=["MVT", "GEV"],
        )
        text = result.summary()
        assert "MVT" in text and "fairness" in text

    def test_fairness_formula(self):
        result = MultiAppResult(
            scheduler="fcfs",
            total_cycles=100,
            app_cycles={0: 100, 1: 50},
            solo_cycles={0: 50, 1: 50},
            workloads=["A", "B"],
        )
        assert result.slowdowns == {0: 2.0, 1: 1.0}
        assert result.fairness == pytest.approx(0.5)
        assert result.system_throughput == pytest.approx(1.5)
