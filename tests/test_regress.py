"""Regression gate: bench envelopes, metric comparison, verdicts.

The acceptance story: the gate must PASS when current numbers match the
committed baseline and FAIL (nonzero via the CLI) when a watched metric
is perturbed past its threshold — with missing files reported as
warnings, never regressions, so the gate can be adopted bench by bench.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs.regress import (
    BENCH_FILES,
    MetricSpec,
    check_benches,
    compare_metric,
    get_path,
    render_check,
)
from repro.stats.export import (
    BENCH_FORMAT,
    bench_environment,
    load_bench_report,
    write_bench_report,
)


# ----------------------------------------------------------------------
# Envelope
# ----------------------------------------------------------------------


def test_write_and_load_round_trip(tmp_path):
    path = tmp_path / "BENCH_x.json"
    document = write_bench_report("x", {"metric": 1.5}, path)
    assert document["format"] == BENCH_FORMAT and document["bench"] == "x"
    loaded = load_bench_report(path)
    assert loaded["data"] == {"metric": 1.5}
    assert loaded["environment"]["python"]


def test_load_legacy_payload_is_wrapped(tmp_path):
    path = tmp_path / "BENCH_old.json"
    path.write_text(json.dumps({"metric": 2.5}))
    loaded = load_bench_report(path)
    assert loaded["format"] == BENCH_FORMAT and loaded["version"] == 0
    assert loaded["bench"] is None
    assert loaded["data"] == {"metric": 2.5}


def test_envelope_without_data_rejected(tmp_path):
    path = tmp_path / "BENCH_bad.json"
    path.write_text(json.dumps({"format": BENCH_FORMAT, "version": 1}))
    with pytest.raises(ValueError, match="no data"):
        load_bench_report(path)


def test_bench_environment_keys():
    env = bench_environment()
    assert {"python", "platform", "machine", "cpu_count"} <= set(env)


# ----------------------------------------------------------------------
# Metric comparison
# ----------------------------------------------------------------------


def test_get_path_nested_and_missing():
    data = {"a": {"b": {"c": 3}}}
    assert get_path(data, "a.b.c") == 3
    assert get_path(data, "a.b.missing") is None
    assert get_path(data, "a.b.c.deeper") is None


@pytest.mark.parametrize(
    "direction, baseline, current, status",
    [
        ("higher", 1.0, 1.0, "ok"),
        ("higher", 1.0, 1.2, "improved"),
        ("higher", 1.0, 0.95, "ok"),          # within 10% budget
        ("higher", 1.0, 0.85, "regression"),  # past it
        ("lower", 1.0, 1.05, "ok"),
        ("lower", 1.0, 0.9, "improved"),
        ("lower", 1.0, 1.2, "regression"),
        ("exact", True, True, "ok"),
        ("exact", True, False, "regression"),
        ("exact", {"g": 1}, {"g": 2}, "regression"),
    ],
)
def test_compare_metric_verdicts(direction, baseline, current, status):
    spec = MetricSpec("b", "p", direction, 0.10)
    assert compare_metric(spec, baseline, current)["status"] == status


def test_compare_metric_missing_sides():
    spec = MetricSpec("b", "p", "higher", 0.1)
    assert compare_metric(spec, None, 1.0)["status"] == "missing"
    assert compare_metric(spec, 1.0, None)["status"] == "missing"


def test_compare_metric_unknown_direction():
    with pytest.raises(ValueError, match="direction"):
        compare_metric(MetricSpec("b", "p", "sideways"), 1.0, 1.0)


# ----------------------------------------------------------------------
# The gate
# ----------------------------------------------------------------------

GATE_METRICS = (
    MetricSpec("demo", "speed.value", "higher", 0.10),
    MetricSpec("demo", "identical", "exact"),
)
GATE_BENCHES = {"demo": "BENCH_demo.json"}

#: Repo root, so the committed-baseline tests work from any cwd.
ROOT = Path(__file__).resolve().parents[1]


def _write_demo(directory, speed=10.0, identical=True):
    directory.mkdir(parents=True, exist_ok=True)
    write_bench_report(
        "demo", {"speed": {"value": speed}, "identical": identical},
        directory / "BENCH_demo.json",
    )


def test_gate_passes_on_identical_baseline(tmp_path):
    _write_demo(tmp_path / "base")
    _write_demo(tmp_path / "cur")
    report = check_benches(tmp_path / "base", tmp_path / "cur",
                           metrics=GATE_METRICS, benches=GATE_BENCHES)
    assert report["ok"] and report["regressions"] == 0
    assert "PASS" in render_check(report)


def test_gate_fails_on_perturbed_metric(tmp_path):
    _write_demo(tmp_path / "base", speed=10.0)
    _write_demo(tmp_path / "cur", speed=8.0)  # -20% past the 10% budget
    report = check_benches(tmp_path / "base", tmp_path / "cur",
                           metrics=GATE_METRICS, benches=GATE_BENCHES)
    assert not report["ok"] and report["regressions"] == 1
    assert "FAIL" in render_check(report)


def test_gate_fails_on_exact_mismatch(tmp_path):
    _write_demo(tmp_path / "base", identical=True)
    _write_demo(tmp_path / "cur", identical=False)
    report = check_benches(tmp_path / "base", tmp_path / "cur",
                           metrics=GATE_METRICS, benches=GATE_BENCHES)
    assert not report["ok"]


def test_gate_tolerates_improvement(tmp_path):
    _write_demo(tmp_path / "base", speed=10.0)
    _write_demo(tmp_path / "cur", speed=14.0)
    report = check_benches(tmp_path / "base", tmp_path / "cur",
                           metrics=GATE_METRICS, benches=GATE_BENCHES)
    assert report["ok"]
    assert report["rows"][0]["status"] == "improved"


def test_missing_bench_file_warns_not_fails(tmp_path):
    _write_demo(tmp_path / "base")
    (tmp_path / "cur").mkdir()
    report = check_benches(tmp_path / "base", tmp_path / "cur",
                           metrics=GATE_METRICS, benches=GATE_BENCHES)
    assert report["ok"]
    assert report["missing"] == len(GATE_METRICS)


def test_unreadable_bench_file_raises(tmp_path):
    base = tmp_path / "base"
    base.mkdir()
    (base / "BENCH_demo.json").write_text("not json {")
    with pytest.raises(ValueError, match="unreadable"):
        check_benches(base, tmp_path, metrics=GATE_METRICS,
                      benches=GATE_BENCHES)


def test_default_gate_passes_on_committed_baseline():
    """The acceptance check: repo-root BENCH files vs their baselines.

    Every bench that exists on both sides must compare clean — a
    regression here means someone regenerated a BENCH file without
    refreshing (or deliberately diverging from) its committed baseline.
    """
    report = check_benches(ROOT / "benchmarks" / "baselines", ROOT)
    assert report["ok"], render_check(report)


def test_default_gate_fails_on_perturbed_baseline(tmp_path):
    """Perturbing a committed current file must trip the default gate."""
    current = load_bench_report(ROOT / "BENCH_fleet.json")
    data = json.loads(json.dumps(current["data"]))
    group = sorted(data["sweep"]["total_cycles_by_group"])[0]
    data["sweep"]["total_cycles_by_group"][group] += 1
    write_bench_report("fleet", data, tmp_path / "BENCH_fleet.json")
    report = check_benches(ROOT / "benchmarks" / "baselines", tmp_path,
                           benches={"fleet": BENCH_FILES["fleet"]})
    assert not report["ok"]
    broken = [r for r in report["rows"] if r["status"] == "regression"]
    assert any("total_cycles_by_group" in r["metric"] for r in broken)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def test_cli_bench_check_pass_and_json(tmp_path, capsys):
    from repro.__main__ import main

    out = tmp_path / "gate.json"
    code = main([
        "bench-check",
        "--baseline-dir", str(ROOT / "benchmarks" / "baselines"),
        "--current-dir", str(ROOT),
        "--json", str(out),
    ])
    assert code == 0
    assert "PASS" in capsys.readouterr().out
    assert json.loads(out.read_text())["ok"] is True


def test_cli_bench_check_fails_nonzero(tmp_path, capsys):
    from repro.__main__ import main

    # Perturb a deterministic metric in a copy of the committed fleet
    # bench; the other current files are simply missing (warn only).
    current = load_bench_report(ROOT / "BENCH_fleet.json")
    data = json.loads(json.dumps(current["data"]))
    data["overhead"]["identical_results"] = False
    write_bench_report("fleet", data, tmp_path / "BENCH_fleet.json")
    baseline = ["--baseline-dir", str(ROOT / "benchmarks" / "baselines")]
    code = main(["bench-check", *baseline, "--current-dir", str(tmp_path)])
    assert code == 1
    assert "FAIL" in capsys.readouterr().out
    # --warn-only downgrades the failure to exit 0.
    assert main(["bench-check", *baseline, "--current-dir", str(tmp_path),
                 "--warn-only"]) == 0


def test_cli_bench_check_json_to_stdout(capsys):
    from repro.__main__ import main

    code = main([
        "bench-check",
        "--baseline-dir", str(ROOT / "benchmarks" / "baselines"),
        "--current-dir", str(ROOT),
        "--json", "-",
    ])
    assert code == 0
    # With --json -, stdout IS the machine-readable report: nothing else.
    payload = json.loads(capsys.readouterr().out)
    assert payload["format"] == "repro-bench-check"
    assert payload["exit_code"] == 0
    assert payload["ok"] is True


def test_cli_bench_check_json_carries_honest_exit_code(tmp_path, capsys):
    from repro.__main__ import main

    current = load_bench_report(ROOT / "BENCH_fleet.json")
    data = json.loads(json.dumps(current["data"]))
    data["overhead"]["identical_results"] = False
    write_bench_report("fleet", data, tmp_path / "BENCH_fleet.json")
    out = tmp_path / "gate.json"
    # --warn-only exits 0, but the JSON keeps exit_code 1 + ok false so
    # downstream consumers (the HTML report, CI annotations) see truth.
    code = main([
        "bench-check",
        "--baseline-dir", str(ROOT / "benchmarks" / "baselines"),
        "--current-dir", str(tmp_path),
        "--json", str(out), "--warn-only",
    ])
    capsys.readouterr()
    assert code == 0
    payload = json.loads(out.read_text())
    assert payload["ok"] is False
    assert payload["exit_code"] == 1
    assert payload["warn_only"] is True


def test_exit_code_constants_are_the_contract():
    from repro.obs.regress import EXIT_OK, EXIT_REGRESSION

    assert EXIT_OK == 0
    assert EXIT_REGRESSION == 1


def test_render_check_never_uses_scientific_notation():
    report = {
        "ok": True,
        "regressions": 0,
        "missing": 0,
        "baseline_dir": "b",
        "current_dir": "c",
        "rows": [{
            "metric": "fleet:overhead.slowdown_with_telemetry",
            "baseline": 3e-07,
            "current": 2.5e-07,
            "relative_change": -0.1667,
            "status": "ok",
        }],
    }
    rendered = render_check(report)
    assert "e-" not in rendered and "E-" not in rendered
