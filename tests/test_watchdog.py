"""Watchdog: manufactured deadlocks become structured diagnoses."""

from __future__ import annotations

import pytest

from repro.experiments.runner import MAX_CYCLES, build_system, run_simulation
from repro.resilience.faults import FaultEvent, FaultPlan
from repro.resilience.watchdog import (
    DeadlockDiagnosis,
    InvariantViolation,
    Watchdog,
    WatchdogError,
)
from repro.workloads.registry import get_workload

from tests.conftest import tiny_config


def _drop_plan(count=1):
    """Swallow the first ``count`` walk completions: a guaranteed hang."""
    return FaultPlan(
        events=(FaultEvent("drop_walk_completion", at_cycle=0, count=count),)
    )


def _run_with_drops(**kwargs):
    config = tiny_config().with_faults(_drop_plan())
    return run_simulation(
        "MVT", config=config, num_wavefronts=8, scale=0.05, seed=1, **kwargs
    )


def test_dropped_completion_raises_watchdog_error_with_diagnosis():
    with pytest.raises(WatchdogError) as excinfo:
        _run_with_drops(watchdog_cycles=100_000)
    diagnosis = excinfo.value.diagnosis
    assert isinstance(diagnosis, DeadlockDiagnosis)
    # The hang is diagnosed at the cycle work stopped — nowhere near the
    # 2e9-cycle safety valve the old opaque timeout needed.
    assert diagnosis.cycle < MAX_CYCLES // 1_000
    # The diagnosis names the stuck instruction(s) and their walks.
    assert diagnosis.outstanding_by_instruction
    assert sum(diagnosis.outstanding_by_instruction.values()) >= 1
    # The wedged walker is visible, still holding its walk.
    assert any(w["busy"] and w["vpn"] is not None for w in diagnosis.walkers)
    # The run was perturbed, and the report says so.
    assert diagnosis.fault_stats is not None
    assert diagnosis.fault_stats["dropped_completions"] == 1


def test_diagnosis_render_names_the_stuck_instruction():
    with pytest.raises(WatchdogError) as excinfo:
        _run_with_drops(watchdog_cycles=100_000)
    message = str(excinfo.value)
    stuck = min(excinfo.value.diagnosis.outstanding_by_instruction)
    assert "watchdog:" in message
    assert f"#{stuck}" in message or f"instruction={stuck}" in message
    assert "walker" in message


def test_deadlock_without_watchdog_still_fails_with_context():
    # No watchdog requested: the legacy RuntimeError path, but it now
    # distinguishes a drained-queue deadlock from a max_cycles cutoff.
    with pytest.raises(RuntimeError, match="deadlock"):
        _run_with_drops()


def test_watchdog_monitor_trips_on_live_but_stuck_system():
    # A repeating tick keeps the event queue alive forever, so the
    # drained-queue detector can never fire — only the in-loop monitor
    # can catch this shape of hang.
    config = tiny_config().with_faults(_drop_plan(count=999_999))
    system = build_system(config)
    watchdog = Watchdog(system, stall_cycles=30_000, check_interval_events=200)
    watchdog.install()
    bench = get_workload("MVT", scale=0.05, seed=1)
    system.gpu.dispatch(bench.build_trace(num_wavefronts=8, wavefront_size=64))

    def tick():
        system.simulator.after(100, tick)

    tick()
    with pytest.raises(WatchdogError, match="no instruction retired") as excinfo:
        system.simulator.run(until=MAX_CYCLES)
    assert system.simulator.now < 10_000_000
    assert excinfo.value.diagnosis.instructions_retired < 16


def test_invariant_violation_detected():
    system = build_system(tiny_config())
    watchdog = Watchdog(system, stall_cycles=100_000)
    system.iommu.walks_dispatched += 5  # cook the books
    with pytest.raises(InvariantViolation) as excinfo:
        watchdog.check()
    assert excinfo.value.diagnosis.invariant_violations
    with pytest.raises(InvariantViolation):
        watchdog.final_check()


def test_diagnosis_attaches_trace_tail_when_traced():
    from repro.obs.trace import TraceConfig
    from repro.resilience.watchdog import DIAGNOSIS_TRACE_TAIL

    config = tiny_config().with_faults(_drop_plan())
    with pytest.raises(WatchdogError) as excinfo:
        run_simulation(
            "MVT", config=config, num_wavefronts=8, scale=0.05, seed=1,
            watchdog_cycles=100_000, trace=TraceConfig(),
        )
    tail = excinfo.value.diagnosis.trace_tail
    assert tail, "traced trip should carry its flight-recorder window"
    assert len(tail) <= DIAGNOSIS_TRACE_TAIL
    assert all("ts" in event and "name" in event for event in tail)
    # The drop fault itself is on the recorder (it wedged the system
    # early, so it survives in the trailing window of a quiet hang).
    assert "flight recorder" in excinfo.value.diagnosis.render()


def test_diagnosis_trace_tail_empty_without_tracer():
    with pytest.raises(WatchdogError) as excinfo:
        _run_with_drops(watchdog_cycles=100_000)
    assert excinfo.value.diagnosis.trace_tail == []
    assert "flight recorder" not in excinfo.value.diagnosis.render()


def test_healthy_run_passes_watchdog_untouched():
    result = run_simulation(
        "MVT", config=tiny_config(), num_wavefronts=8, scale=0.05, seed=1,
        watchdog_cycles=5_000_000,
    )
    assert result.instructions == 16


def test_watchdog_parameter_validation():
    system = build_system(tiny_config())
    with pytest.raises(ValueError):
        Watchdog(system, stall_cycles=0)
    with pytest.raises(ValueError):
        Watchdog(system, stall_cycles=1_000, check_interval_events=0)
    with pytest.raises(ValueError, match="watchdog_cycles"):
        run_simulation("MVT", config=tiny_config(), watchdog_cycles=-5)
