"""Tests for result export and percentile helpers."""

import pytest

from repro.gpu.wavefront import InstructionRecord
from repro.stats.export import (
    load_results,
    percentiles,
    result_to_dict,
    save_results,
    walk_latency_percentiles,
)
from repro.stats.metrics import SimulationResult


class TestPercentiles:
    def test_median_of_odd_set(self):
        assert percentiles([3, 1, 2], points=(50,))[50] == 2

    def test_interpolation(self):
        result = percentiles([0, 10], points=(50,))
        assert result[50] == pytest.approx(5.0)

    def test_extremes(self):
        values = list(range(101))
        result = percentiles(values, points=(0, 100))
        assert result[0] == 0
        assert result[100] == 100

    def test_single_sample(self):
        assert percentiles([7.0], points=(50, 99))[99] == 7.0

    def test_single_sample_is_every_percentile(self):
        result = percentiles([7.0], points=(0, 50, 99, 99.9, 100))
        assert result == {0: 7.0, 50: 7.0, 99: 7.0, 99.9: 7.0, 100: 7.0}

    def test_single_sample_still_validates_points(self):
        with pytest.raises(ValueError):
            percentiles([7.0], points=(101,))

    def test_default_points_include_p999(self):
        values = list(range(10_001))
        result = percentiles(values)
        assert set(result) == {50, 90, 99, 99.9}
        assert result[99.9] == pytest.approx(9990.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentiles([])

    def test_out_of_range_point(self):
        with pytest.raises(ValueError):
            percentiles([1], points=(101,))


def make_record(latencies):
    record = InstructionRecord(instruction_id=0, wavefront_id=0, issue_time=0)
    record.walk_latencies = list(latencies)
    return record


class TestWalkLatencyPercentiles:
    def test_aggregates_across_records(self):
        records = [make_record([100, 200]), make_record([300])]
        result = walk_latency_percentiles(records, points=(50,))
        assert result[50] == 200

    def test_no_walks_yields_zeros(self):
        assert walk_latency_percentiles([make_record([])], points=(50,)) == {
            50: 0.0
        }

    def test_default_points_include_p999(self):
        result = walk_latency_percentiles([make_record([100, 200])])
        assert set(result) == {50, 90, 99, 99.9}
        no_walks = walk_latency_percentiles([make_record([])])
        assert no_walks == {50: 0.0, 90: 0.0, 99: 0.0, 99.9: 0.0}


def make_result():
    return SimulationResult(
        workload="MVT",
        scheduler="simt",
        total_cycles=1000,
        instructions=10,
        wavefronts=2,
        stall_cycles=500,
        walks_dispatched=50,
        walk_memory_accesses=150,
        interleaved_fraction=0.25,
        first_walk_latency=100.0,
        last_walk_latency=400.0,
        wavefronts_per_epoch=8.0,
        walk_work_fractions=[0.5, 0.5, 0, 0, 0, 0],
        detail={"iommu": {"requests": 60}},
    )


class TestResultExport:
    def test_result_to_dict_includes_derived(self):
        data = result_to_dict(make_result())
        assert data["workload"] == "MVT"
        assert data["latency_gap"] == pytest.approx(300.0)
        assert data["detail"]["iommu"]["requests"] == 60

    def test_save_and_load_round_trip(self, tmp_path):
        path = tmp_path / "results.json"
        save_results([make_result(), make_result()], path)
        loaded = load_results(path)
        assert len(loaded) == 2
        assert loaded[0]["scheduler"] == "simt"

    def test_single_result_accepted(self, tmp_path):
        path = tmp_path / "one.json"
        save_results(make_result(), path)
        assert len(load_results(path)) == 1

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "foreign.json"
        path.write_text('{"format": "nope"}')
        with pytest.raises(ValueError):
            load_results(path)
