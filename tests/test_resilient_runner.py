"""Resilient sweep execution: crash isolation, retries, checkpoints.

The broken workloads below sabotage their own worker process (raise,
hard-exit, hang) to prove one bad job can never take down a sweep.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.experiments.runner import (
    run_many,
    run_many_resilient,
    run_simulation,
)
from repro.resilience.outcomes import RunOutcome, SpecExecutionError, spec_key
from repro.workloads.base import Workload

from tests.conftest import tiny_config


class BrokenWorkload(Workload):
    """A workload that sabotages its worker in a chosen way.

    ``sentinel`` (a path) makes the "flaky" modes one-shot: the first
    attempt leaves the sentinel behind and dies; retries find it and
    succeed — exactly the transient-crash shape retries exist for.
    """

    abbrev = "BRK"
    name = "broken"

    def __init__(self, mode="ok", sentinel=None, scale=1.0, seed=0):
        self.mode = mode
        self.sentinel = sentinel
        super().__init__(scale=scale, seed=seed)

    def _layout(self):
        self.region = self.address_space.allocate("data", 64 * 4096)

    def _should_fail(self):
        if self.sentinel is None:
            return True
        if os.path.exists(self.sentinel):
            return False
        with open(self.sentinel, "w", encoding="utf-8"):
            pass
        return True

    def build_trace(self, num_wavefronts=32, wavefront_size=64):
        if self.mode == "raise" and self._should_fail():
            raise RuntimeError("synthetic workload failure")
        if self.mode == "exit" and self._should_fail():
            os._exit(42)  # simulates a segfault/OOM kill: no cleanup, no report
        if self.mode == "hang" and self._should_fail():
            time.sleep(30)
        return [
            [[self.region.base + ((w * 7 + i) % 64) * 4096] * wavefront_size
             for i in range(2)]
            for w in range(num_wavefronts)
        ]


def _good_spec(seed=1):
    return {
        "workload": "MVT",
        "config": tiny_config(),
        "num_wavefronts": 8,
        "scale": 0.05,
        "seed": seed,
    }


def _broken_spec(mode, sentinel=None):
    return {
        "workload": BrokenWorkload(mode, sentinel=sentinel),
        "config": tiny_config(),
        "num_wavefronts": 4,
    }


def _fingerprint(result):
    return (result.workload, result.scheduler, result.total_cycles,
            result.stall_cycles, result.walks_dispatched)


# ----------------------------------------------------------------------
# Input validation (API boundary)
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "kwargs, match",
    [
        ({"num_wavefronts": 0}, "num_wavefronts"),
        ({"num_wavefronts": -3}, "num_wavefronts"),
        ({"scale": 0}, "scale"),
        ({"scale": -0.5}, "scale"),
        ({"max_cycles": 0}, "max_cycles"),
        ({"scheduler": "quantum"}, "unknown scheduler"),
    ],
)
def test_run_simulation_rejects_bad_inputs(kwargs, match):
    with pytest.raises(ValueError, match=match):
        run_simulation("MVT", config=tiny_config(), **kwargs)


def test_unknown_scheduler_error_lists_alternatives():
    with pytest.raises(ValueError, match="fcfs"):
        run_simulation("MVT", config=tiny_config(), scheduler="quantum")


def test_run_many_resilient_rejects_bad_budgets():
    with pytest.raises(ValueError, match="retries"):
        run_many_resilient([_good_spec()], retries=-1)
    with pytest.raises(ValueError, match="timeout"):
        run_many_resilient([_good_spec()], timeout=0)


# ----------------------------------------------------------------------
# Crash isolation
# ----------------------------------------------------------------------


def test_killed_worker_loses_only_its_own_job():
    specs = [_good_spec(1), _broken_spec("exit"), _good_spec(2)]
    outcomes = run_many_resilient(specs, jobs=2)
    assert [o.index for o in outcomes] == [0, 1, 2]
    assert outcomes[0].ok and outcomes[2].ok
    crashed = outcomes[1]
    assert not crashed.ok
    assert crashed.status == "failed"
    assert crashed.error_type == "WorkerCrash"
    assert "exit code 42" in crashed.error
    assert "BRK" in crashed.spec_summary
    # The surviving results match a direct serial run exactly.
    assert _fingerprint(outcomes[0].result) == _fingerprint(
        run_simulation(**_good_spec(1))
    )


def test_worker_exception_reported_with_spec_and_traceback():
    specs = [_good_spec(), _broken_spec("raise")]
    outcomes = run_many_resilient(specs, jobs=2)
    failed = outcomes[1]
    assert failed.status == "failed"
    assert failed.error_type == "RuntimeError"
    assert "synthetic workload failure" in failed.error
    assert "synthetic workload failure" in failed.traceback
    assert "build_trace" in failed.traceback


def test_run_many_raises_spec_execution_error_naming_the_spec():
    with pytest.raises(SpecExecutionError) as excinfo:
        run_many([_good_spec(), _broken_spec("raise")], jobs=2)
    message = str(excinfo.value)
    assert "workload=BRK" in message
    assert "synthetic workload failure" in message
    assert "worker traceback" in message
    assert excinfo.value.outcome.index == 1


def test_run_many_return_outcomes_never_raises():
    outcomes = run_many([_broken_spec("raise")], return_outcomes=True)
    assert isinstance(outcomes[0], RunOutcome)
    assert not outcomes[0].ok


# ----------------------------------------------------------------------
# Retries
# ----------------------------------------------------------------------


def test_persistent_crash_consumes_exactly_the_retry_budget():
    outcomes = run_many_resilient(
        [_broken_spec("exit")], jobs=2, retries=2, backoff_seconds=0.01
    )
    assert outcomes[0].status == "failed"
    assert outcomes[0].attempts == 3  # 1 try + 2 retries


def test_transient_crash_recovers_within_budget(tmp_path):
    sentinel = str(tmp_path / "crashed-once")
    outcomes = run_many_resilient(
        [_broken_spec("exit", sentinel=sentinel)],
        jobs=2, retries=1, backoff_seconds=0.01,
    )
    assert outcomes[0].ok
    assert outcomes[0].attempts == 2
    assert outcomes[0].result.workload == "BRK"


def test_serial_in_process_path_retries_and_captures_failures():
    outcomes = run_many_resilient(
        [_broken_spec("raise"), _good_spec()], jobs=1, retries=1,
        backoff_seconds=0.01,
    )
    assert outcomes[0].status == "failed"
    assert outcomes[0].attempts == 2
    assert "synthetic workload failure" in outcomes[0].traceback
    assert outcomes[1].ok


# ----------------------------------------------------------------------
# Timeouts
# ----------------------------------------------------------------------


def test_hung_worker_is_terminated_at_the_deadline():
    start = time.monotonic()
    outcomes = run_many_resilient(
        [_broken_spec("hang"), _good_spec()], jobs=2, timeout=1.5
    )
    elapsed = time.monotonic() - start
    assert outcomes[0].status == "timeout"
    assert "1.5" in outcomes[0].error
    assert outcomes[1].ok
    assert elapsed < 15  # nowhere near the 30 s the hang wanted


def test_transient_hang_recovers_on_retry(tmp_path):
    sentinel = str(tmp_path / "hung-once")
    outcomes = run_many_resilient(
        [_broken_spec("hang", sentinel=sentinel)],
        jobs=1, timeout=1.5, retries=1, backoff_seconds=0.01,
    )
    assert outcomes[0].ok
    assert outcomes[0].attempts == 2


# ----------------------------------------------------------------------
# Checkpointing
# ----------------------------------------------------------------------


def test_checkpoint_resume_skips_completed_jobs(tmp_path):
    ckpt = str(tmp_path / "sweep")
    specs = [_good_spec(1), _good_spec(2)]
    first = run_many_resilient(specs, checkpoint=ckpt)
    assert all(o.ok and not o.from_checkpoint for o in first)
    second = run_many_resilient(specs, checkpoint=ckpt)
    assert all(o.ok and o.from_checkpoint for o in second)
    assert [_fingerprint(o.result) for o in first] == [
        _fingerprint(o.result) for o in second
    ]


def test_failed_jobs_are_not_checkpointed(tmp_path):
    ckpt = tmp_path / "sweep"
    specs = [_good_spec(3), _broken_spec("raise")]
    run_many_resilient(specs, jobs=2, checkpoint=str(ckpt))
    assert len(list(ckpt.glob("*.json"))) == 1
    # The failed spec re-runs on resume (and fails again); the good one
    # is served from disk.
    again = run_many_resilient(specs, jobs=2, checkpoint=str(ckpt))
    assert again[0].from_checkpoint
    assert again[1].status == "failed"


def test_spec_key_distinguishes_specs():
    assert spec_key(_good_spec(1)) == spec_key(_good_spec(1))
    assert spec_key(_good_spec(1)) != spec_key(_good_spec(2))


# ----------------------------------------------------------------------
# Parallel == serial
# ----------------------------------------------------------------------


def test_resilient_parallel_matches_direct_runs():
    specs = [_good_spec(1), _good_spec(2), _good_spec(3)]
    outcomes = run_many_resilient(specs, jobs=3)
    direct = [run_simulation(**spec) for spec in specs]
    assert [_fingerprint(o.result) for o in outcomes] == [
        _fingerprint(r) for r in direct
    ]


# ----------------------------------------------------------------------
# In-run checkpointing: retries resume from the middle
# ----------------------------------------------------------------------


def test_inrun_checkpointing_validates_its_inputs(tmp_path):
    with pytest.raises(ValueError, match="checkpoint"):
        run_many_resilient([_good_spec()], inrun_checkpoint_every=100)
    with pytest.raises(ValueError, match="inrun_checkpoint_every"):
        run_many_resilient(
            [_good_spec()],
            checkpoint=str(tmp_path / "sweep"),
            inrun_checkpoint_every=0,
        )


def test_inrun_resume_continues_an_interrupted_run(tmp_path, monkeypatch):
    from repro.experiments import runner as runner_module
    from repro.resilience.outcomes import CheckpointStore

    spec = _good_spec(4)
    want = _fingerprint(run_simulation(**spec))

    # Fabricate a dead previous attempt: run the same spec with periodic
    # checkpointing straight to its sweep in-run path.  The completed
    # run leaves its *last mid-run* dump behind, exactly what a killed
    # or timed-out worker would have left.
    ckpt = tmp_path / "sweep"
    inrun = CheckpointStore(str(ckpt)).inrun_path(spec)
    run_simulation(
        **spec, checkpoint_every=500, checkpoint_path=str(inrun)
    )
    assert inrun.exists()

    # The retry must go through resume_simulation, never a full restart.
    def _no_restart(*_args, **_kwargs):
        raise AssertionError("expected a resume, got a fresh run")

    monkeypatch.setattr(runner_module, "run_simulation", _no_restart)
    outcomes = run_many_resilient(
        [spec], checkpoint=str(ckpt), inrun_checkpoint_every=500
    )
    assert outcomes[0].ok
    assert _fingerprint(outcomes[0].result) == want
    assert not inrun.exists()  # consumed and cleaned up on success


def test_inrun_checkpointing_does_not_perturb_results(tmp_path):
    spec = _good_spec(5)
    want = _fingerprint(run_simulation(**spec))
    outcomes = run_many_resilient(
        [spec],
        checkpoint=str(tmp_path / "sweep"),
        inrun_checkpoint_every=500,
    )
    assert outcomes[0].ok
    assert _fingerprint(outcomes[0].result) == want


# ----------------------------------------------------------------------
# Retry backoff: decorrelated jitter
# ----------------------------------------------------------------------


def test_backoff_delay_stays_within_jitter_bounds():
    import random as random_module

    from repro.experiments.runner import _backoff_delay

    rng = random_module.Random(7)
    base, cap = 0.25, 30.0
    previous = base
    delays = []
    for _ in range(500):
        delay = _backoff_delay(previous, base, cap=cap, rng=rng)
        assert base <= delay <= cap
        assert delay <= max(base, previous * 3.0)
        delays.append(delay)
        previous = delay
    # Jittered, not lockstep: consecutive failures must not all share
    # one deterministic schedule (draws at the cap legitimately repeat).
    uncapped = [delay for delay in delays if delay < cap]
    assert len({round(delay, 9) for delay in uncapped}) == len(uncapped)
    # Growth: successive draws reach well beyond the base on average.
    assert max(delays) > 10 * base


def test_backoff_delay_respects_the_cap():
    from repro.experiments.runner import _backoff_delay

    assert _backoff_delay(1e9, 0.25, cap=30.0) == 30.0


# ----------------------------------------------------------------------
# CheckpointStore: concurrent writers never tear a result file
# ----------------------------------------------------------------------


def test_checkpoint_store_concurrent_writers_never_tear(tmp_path):
    import threading

    from repro.resilience.outcomes import CheckpointStore

    spec = _good_spec()
    outcome = run_many_resilient([spec], checkpoint=str(tmp_path))[0]
    assert outcome.ok
    store = CheckpointStore(str(tmp_path))
    result = outcome.result

    # A re-leased shard racing its presumed-dead previous owner: many
    # writers persist the same spec at once.  Every interleaving must
    # leave a loadable result and no leftover temp files.
    errors = []

    def writer():
        try:
            for _ in range(20):
                store.store(spec, result)
        except Exception as exc:  # pragma: no cover - the failure mode
            errors.append(exc)

    threads = [threading.Thread(target=writer) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    loaded = store.load(spec)
    assert loaded is not None
    assert _fingerprint(loaded) == _fingerprint(result)
    assert not list(tmp_path.glob("*.tmp"))
