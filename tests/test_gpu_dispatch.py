"""Tests for GPU dispatch mechanics: app tagging, staggering, epochs."""

import pytest

from repro.experiments.runner import build_system
from tests.conftest import tiny_config


def coalesced(base, lanes=16):
    return [base + lane * 8 for lane in range(lanes)]


def test_app_ids_must_match_traces():
    system = build_system(tiny_config())
    with pytest.raises(ValueError):
        system.gpu.dispatch([[coalesced(0x1000)]], app_ids=[0, 1])


def test_app_completion_times_recorded():
    system = build_system(tiny_config())
    traces = [[coalesced(0x1000 + i * 8192)] for i in range(4)]
    system.gpu.dispatch(traces, app_ids=[0, 0, 1, 1])
    system.simulator.run()
    assert set(system.gpu.app_completion_time) == {0, 1}
    assert all(t > 0 for t in system.gpu.app_completion_time.values())
    assert system.gpu.completion_time == max(
        system.gpu.app_completion_time.values()
    )


def test_default_app_is_zero():
    system = build_system(tiny_config())
    system.gpu.dispatch([[coalesced(0x1000)]])
    system.simulator.run()
    assert set(system.gpu.app_completion_time) == {0}


def test_dispatch_staggers_launches():
    config = tiny_config()
    system = build_system(config)
    traces = [[coalesced(0x1000 + i * 8192)] for i in range(4)]
    system.gpu.dispatch(traces)
    system.simulator.run()
    issue_times = sorted(
        record.issue_time for record in system.gpu.instruction_records
    )
    stagger = config.gpu.dispatch_stagger_cycles
    # Initial launches are spread by the stagger, not simultaneous.
    assert issue_times[1] - issue_times[0] >= stagger


def test_oracle_epoch_counter_unused_without_l2_traffic():
    from dataclasses import replace

    config = replace(tiny_config(), perfect_translation=True)
    system = build_system(config)
    system.gpu.dispatch([[coalesced(0x1000)]])
    system.simulator.run()
    assert system.gpu.mean_wavefronts_per_epoch == 0.0


def test_residency_never_exceeds_slots():
    # Track peak per-CU residency through a run with heavy backfill.
    config = tiny_config()  # 2 slots per CU
    system = build_system(config)
    peak = {cu.cu_id: 0 for cu in system.gpu.cus}
    traces = [[coalesced(0x1000 + i * 8192)] for i in range(16)]
    system.gpu.dispatch(traces)
    while system.simulator.step():
        for cu in system.gpu.cus:
            peak[cu.cu_id] = max(peak[cu.cu_id], cu.resident_wavefronts)
    assert system.gpu.finished
    assert all(
        count <= config.gpu.wavefront_slots_per_cu for count in peak.values()
    )


def test_wavefronts_launched_counts_backfill():
    system = build_system(tiny_config())  # 4 CUs × 2 slots = 8 resident
    traces = [[coalesced(0x1000 + i * 8192)] for i in range(12)]
    system.gpu.dispatch(traces)
    system.simulator.run()
    assert system.gpu.wavefronts_launched == 12
    assert system.gpu.finished
