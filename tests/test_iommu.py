"""Unit and integration tests for the IOMMU."""

import pytest

from repro.config import IOMMUConfig, PWCConfig, TLBConfig
from repro.core.request import TranslationRequest
from repro.engine.simulator import Simulator
from repro.mmu.iommu import IOMMU
from repro.mmu.page_table import PageTable


def make_iommu(
    scheduler="fcfs",
    num_walkers=2,
    buffer_entries=4,
    latency=10,
    coalesce="inflight",
):
    sim = Simulator()
    table = PageTable()
    config = IOMMUConfig(
        buffer_entries=buffer_entries,
        num_walkers=num_walkers,
        l1_tlb=TLBConfig(entries=8),
        l2_tlb=TLBConfig(entries=16, associativity=4),
        pwc=PWCConfig(entries_per_level=8, associativity=4),
        scheduler=scheduler,
        coalesce_walks=coalesce,
    )
    iommu = IOMMU(sim, config, table, lambda addr, cb: sim.after(latency, cb))
    return sim, table, iommu


def make_request(vpn, instruction_id=0, done=None):
    return TranslationRequest(
        vpn=vpn,
        instruction_id=instruction_id,
        wavefront_id=0,
        cu_id=0,
        issue_time=0,
        on_complete=(lambda req, pfn: done.append((req.vpn, pfn))) if done is not None else None,
    )


def test_cold_request_walks_and_replies():
    sim, table, iommu = make_iommu()
    done = []
    iommu.translate(make_request(0x42, done=done))
    sim.run()
    assert done == [(0x42, table.lookup(0x42))]
    assert iommu.walks_dispatched == 1


def test_tlb_hit_skips_walk():
    sim, table, iommu = make_iommu()
    done = []
    iommu.translate(make_request(0x42, done=done))
    sim.run()
    iommu.translate(make_request(0x42, done=done))
    sim.run()
    assert len(done) == 2
    assert iommu.walks_dispatched == 1
    assert iommu.tlb_hits == 1


def test_walk_fills_both_iommu_tlbs():
    sim, table, iommu = make_iommu()
    iommu.translate(make_request(0x42))
    sim.run()
    assert iommu.l1_tlb.probe(0x42)
    assert iommu.l2_tlb.probe(0x42)


def test_concurrent_requests_use_multiple_walkers():
    sim, _, iommu = make_iommu(num_walkers=2, latency=50)
    done = []
    iommu.translate(make_request(0x1, done=done))
    iommu.translate(make_request(0x2, done=done))
    busy = sum(1 for walker in iommu.walkers if walker.is_busy)
    assert busy == 2
    sim.run()
    assert len(done) == 2


def test_requests_queue_when_walkers_busy():
    sim, _, iommu = make_iommu(num_walkers=1, latency=50)
    for vpn in range(3):
        iommu.translate(make_request(vpn))
    assert len(iommu.buffer) == 2  # one walking, two pending
    sim.run()
    assert iommu.walks_dispatched == 3


def test_buffer_overflow_spills_to_fifo_queue():
    sim, _, iommu = make_iommu(num_walkers=1, buffer_entries=2, latency=50)
    for vpn in range(6):
        iommu.translate(make_request(vpn))
    assert len(iommu.buffer) == 2
    assert iommu.overflow_peak == 3  # 1 walking, 2 buffered, 3 spilled
    sim.run()
    assert iommu.walks_dispatched == 6


def test_inflight_coalescing_merges_same_page():
    sim, _, iommu = make_iommu(num_walkers=1, latency=50, coalesce="inflight")
    done = []
    iommu.translate(make_request(0x7, instruction_id=1, done=done))
    iommu.translate(make_request(0x7, instruction_id=2, done=done))
    sim.run()
    assert len(done) == 2
    assert iommu.walks_dispatched == 1
    assert iommu.coalesced_inflight == 1


def test_coalescing_off_walks_duplicates_independently():
    sim, _, iommu = make_iommu(num_walkers=2, latency=50, coalesce="off")
    iommu.translate(make_request(0x7, instruction_id=1))
    iommu.translate(make_request(0x7, instruction_id=2))
    sim.run()
    assert iommu.walks_dispatched == 2


def test_full_coalescing_merges_pending():
    sim, _, iommu = make_iommu(num_walkers=1, latency=50, coalesce="full")
    done = []
    iommu.translate(make_request(0x1, done=done))  # occupies the walker
    iommu.translate(make_request(0x9, instruction_id=1, done=done))  # pending
    iommu.translate(make_request(0x9, instruction_id=2, done=done))  # merges
    sim.run()
    assert len(done) == 3
    assert iommu.walks_dispatched == 2
    assert iommu.buffer.total_coalesced == 1


def test_walk_accesses_attached_to_requests():
    sim, _, iommu = make_iommu()
    request = make_request(0x5)
    iommu.translate(request)
    sim.run()
    assert request.walk_accesses == 4  # cold PWC: full walk


def test_interleave_metric_counts_multiwalk_instructions():
    sim, _, iommu = make_iommu(num_walkers=1, latency=20)
    # Instruction 1's two walks sandwich instruction 2's walk: interleaved.
    iommu.translate(make_request(0x10, instruction_id=1))
    iommu.translate(make_request(0x20, instruction_id=2))
    iommu.translate(make_request(0x11, instruction_id=1))
    sim.run()
    assert iommu.interleaved_instruction_fraction() == 1.0


def test_interleave_metric_ignores_single_walk_instructions():
    sim, _, iommu = make_iommu()
    iommu.translate(make_request(0x10, instruction_id=1))
    sim.run()
    assert iommu.interleaved_instruction_fraction() == 0.0


def test_batching_scheduler_dedisperses_walks():
    # With the SIMT scheduler the same three requests are not interleaved.
    sim, _, iommu = make_iommu(scheduler="simt", num_walkers=1, latency=20)
    iommu.translate(make_request(0x10, instruction_id=1))
    iommu.translate(make_request(0x20, instruction_id=2))
    iommu.translate(make_request(0x11, instruction_id=1))
    sim.run()
    assert iommu.interleaved_instruction_fraction() == 0.0


def test_simt_scheduler_prioritises_light_instruction():
    sim, _, iommu = make_iommu(scheduler="simt", num_walkers=1, latency=50)
    done = []
    # Heavy instruction: three pending walks; light: one.
    iommu.translate(make_request(0x10, instruction_id=1))  # takes the walker
    iommu.translate(make_request(0x11, instruction_id=1, done=done))
    iommu.translate(make_request(0x12, instruction_id=1, done=done))
    iommu.translate(make_request(0x30, instruction_id=2, done=done))
    sim.run()
    # After the in-flight walk, batching continues instruction 1, but the
    # light instruction must not be starved indefinitely.
    assert len(done) == 3


def test_stats_shape():
    sim, _, iommu = make_iommu()
    iommu.translate(make_request(0x1))
    sim.run()
    stats = iommu.stats()
    for key in ("requests", "walks_dispatched", "l1_tlb", "pwc", "buffer_peak"):
        assert key in stats


def test_requests_counted():
    sim, _, iommu = make_iommu()
    for vpn in range(5):
        iommu.translate(make_request(vpn))
    sim.run()
    assert iommu.requests == 5
