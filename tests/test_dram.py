"""Unit tests for the DRAM bank/row timing model."""

import pytest

from repro.config import DRAMConfig
from repro.memory.dram import DRAM


def make_dram(**kwargs):
    defaults = dict(
        channels=1,
        ranks_per_channel=1,
        banks_per_rank=2,
        row_size_bytes=2048,
        t_cas=30,
        t_rcd=30,
        t_rp=30,
        t_burst=8,
    )
    defaults.update(kwargs)
    return DRAM(DRAMConfig(**defaults))


def test_first_access_is_row_conflict():
    dram = make_dram()
    done = dram.access(0, now=0)
    assert done == 90  # t_rp + t_rcd + t_cas
    assert dram.row_conflicts == 1


def test_row_buffer_hit_is_faster():
    dram = make_dram()
    dram.access(0, now=0)
    # Address 128 is the next line of the same bank (two banks stripe by
    # line), and sits in the same row.
    done = dram.access(128, now=200)
    assert done == 200 + 30  # t_cas only
    assert dram.row_hits == 1


def test_same_bank_accesses_serialise():
    dram = make_dram()
    first_done = dram.access(0, now=0)
    # Immediately-issued same-bank access waits for busy_until.
    second_done = dram.access(0, now=0)
    assert second_done >= first_done + 30  # at least burst + hit latency


def test_different_banks_do_not_serialise():
    dram = make_dram()
    dram.access(0, now=0)
    # Line at 64 maps to the other bank (line striping): starts fresh.
    other_done = dram.access(64, now=0)
    assert other_done == 90


def test_row_conflict_after_different_row():
    dram = make_dram()
    dram.access(0, now=0)
    far = 2048 * 2 * 4  # different row of the same bank
    dram.access(far, now=1000)
    assert dram.row_conflicts == 2


def test_negative_time_rejected():
    with pytest.raises(ValueError):
        make_dram().access(0, now=-5)


def test_statistics_accumulate():
    dram = make_dram()
    dram.access(0, now=0)
    dram.access(64, now=0)
    stats = dram.stats()
    assert stats["accesses"] == 2
    assert stats["row_hit_rate"] == 0.0
    assert dram.average_latency > 0


def test_queue_delay_tracked():
    dram = make_dram()
    dram.access(0, now=0)
    dram.access(0, now=0)  # queued behind the first
    assert dram.total_queue_delay > 0


def test_bank_mapping_covers_all_banks():
    dram = make_dram(banks_per_rank=4)
    banks = {dram._map(line * 64)[0] for line in range(16)}
    assert banks == {0, 1, 2, 3}
