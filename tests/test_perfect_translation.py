"""Tests for the oracle-MMU (perfect translation) mode."""

from dataclasses import replace

import pytest

from repro.config import PAGE_SIZE
from repro.experiments.runner import build_system, run_simulation
from repro.workloads.synthetic import ParametricWorkload
from tests.conftest import tiny_config


def oracle_config():
    return replace(tiny_config(), perfect_translation=True)


def divergent_workload():
    return ParametricWorkload(
        pages_per_instruction=16,
        instructions_per_wavefront=8,
        footprint_mb=32.0,
    )


def test_oracle_run_performs_no_walks():
    result = run_simulation(
        divergent_workload(), config=oracle_config(), num_wavefronts=4
    )
    assert result.walks_dispatched == 0
    assert result.detail["iommu"]["requests"] == 0


def test_oracle_run_is_faster_on_divergent_work():
    kwargs = dict(num_wavefronts=4)
    real = run_simulation(divergent_workload(), config=tiny_config(), **kwargs)
    ideal = run_simulation(divergent_workload(), config=oracle_config(), **kwargs)
    assert ideal.total_cycles < real.total_cycles


def test_oracle_translations_are_consistent():
    # The same virtual page must map to the same frame for every access,
    # or data accesses would scatter incoherently across DRAM.
    system = build_system(oracle_config())
    first = system.gpu.oracle_translate(0x123)
    assert system.gpu.oracle_translate(0x123) == first
    assert system.gpu.oracle_translate(0x124) != first


def test_oracle_requires_attached_page_table():
    from repro.engine.simulator import Simulator
    from repro.gpu.gpu import GPU
    from repro.memory.subsystem import MemorySubsystem
    from repro.mmu.iommu import IOMMU
    from repro.mmu.page_table import PageTable

    config = oracle_config()
    sim = Simulator()
    memory = MemorySubsystem(sim, config)
    iommu = IOMMU(sim, config.iommu, PageTable(), memory.page_table_read)
    gpu = GPU(sim, config, memory, iommu)  # page_table NOT attached
    with pytest.raises(RuntimeError):
        gpu.oracle_translate(1)


def test_oracle_data_still_flows_through_caches():
    result = run_simulation(
        divergent_workload(), config=oracle_config(), num_wavefronts=4
    )
    assert result.detail["memory"]["data_accesses"] > 0
