"""Cross-run aggregation: registry merging and the fleet report.

Determinism is the contract under test: merged registries and fleet
reports must come out identical whatever order the sweep's workers
finished in, and the report's only non-reproducible fields must live
under its ``wall`` / ``telemetry`` keys.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.runner import run_many, run_many_resilient
from repro.obs.aggregate import (
    deterministic_view,
    distribution,
    fleet_markdown,
    fleet_report,
    render_fleet_report,
    sweep_specs,
)
from repro.obs.metrics import MetricsRegistry

from tests.conftest import tiny_config
from tests.test_resilient_runner import BrokenWorkload


# ----------------------------------------------------------------------
# MetricsRegistry merge semantics
# ----------------------------------------------------------------------


def test_merge_empty_registries():
    merged = MetricsRegistry()
    merged.merge(MetricsRegistry())
    data = merged.as_dict()
    assert data["counters"] == {} and data["gauges"] == {}
    assert data["histograms"] == {}


def test_merge_counters_sum():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("walks").inc(3)
    b.counter("walks").inc(4)
    a.merge(b)
    assert a.counter("walks").value == 7


def test_merge_disjoint_metric_names():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("only_a").inc(1)
    b.counter("only_b").inc(2)
    b.gauge("depth").set(5)
    b.histogram("lat", [(0, 9), (10, 99)]).add(4)
    a.merge(b)
    data = a.as_dict()
    assert data["counters"] == {"only_a": 1, "only_b": 2}
    assert data["gauges"]["depth"]["max"] == 5
    assert data["histograms"]["lat"]["counts"] == [1, 0]


def test_merge_gauge_watermarks():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.gauge("occupancy").set(10)
    a.gauge("occupancy").set(2)
    b.gauge("occupancy").set(7)
    a.merge(b)
    gauge = a.gauge("occupancy")
    assert gauge.min_value == 2 and gauge.max_value == 10
    assert gauge.value == 7  # other's last observation wins
    assert gauge.samples == 3


def test_merge_empty_gauge_keeps_watermarks():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.gauge("occupancy").set(4)
    b.gauge("occupancy")  # declared, never set
    a.merge(b)
    gauge = a.gauge("occupancy")
    assert gauge.min_value == 4 and gauge.max_value == 4
    assert gauge.samples == 1


def test_merge_histograms_bucketwise():
    buckets = [(0, 9), (10, 99)]
    a, b = MetricsRegistry(), MetricsRegistry()
    a.histogram("lat", buckets).add(5)
    b.histogram("lat", buckets).add(50)
    b.histogram("lat", buckets).add(500)  # out of range
    a.merge(b)
    merged = a.histogram("lat", buckets)
    assert merged.counts() == [1, 1]
    assert merged.out_of_range == 1
    assert merged.total == 3


def test_merge_histogram_bucket_mismatch_raises():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.histogram("lat", [(0, 9)]).add(5)
    b.histogram("lat", [(0, 99)]).add(5)
    with pytest.raises(ValueError):
        a.merge(b)


def test_from_dict_as_dict_round_trip():
    registry = MetricsRegistry()
    registry.counter("walks").inc(5)
    registry.gauge("depth").set(3)
    registry.gauge("depth").set(9)
    registry.histogram("lat", [(0, 9), (10, 99)]).add(42)
    dump = registry.as_dict()
    rebuilt = MetricsRegistry.from_dict(dump)
    assert rebuilt.as_dict() == dump


def test_merge_is_order_independent():
    def registry(values):
        r = MetricsRegistry()
        for v in values:
            r.counter("n").inc(v)
            r.gauge("g").set(v)
            r.histogram("h", [(0, 9), (10, 99)]).add(v)
        return r

    parts = [registry([1, 12]), registry([7]), registry([3, 95])]
    forward, backward = MetricsRegistry(), MetricsRegistry()
    for part in parts:
        forward.merge(MetricsRegistry.from_dict(part.as_dict()))
    for part in reversed(parts):
        backward.merge(MetricsRegistry.from_dict(part.as_dict()))
    forward_dump, backward_dump = forward.as_dict(), backward.as_dict()
    # Everything except the last-write gauge value is order-independent.
    for dump in (forward_dump, backward_dump):
        dump["gauges"]["g"].pop("value")
    assert forward_dump == backward_dump


# ----------------------------------------------------------------------
# distribution()
# ----------------------------------------------------------------------


def test_distribution_single_sample():
    assert distribution([4]) == {
        "count": 1, "mean": 4.0, "min": 4.0, "max": 4.0, "stdev": 0.0,
    }


def test_distribution_spread():
    stats = distribution([2, 4, 6])
    assert stats["count"] == 3 and stats["mean"] == 4.0
    assert stats["min"] == 2.0 and stats["max"] == 6.0
    assert stats["stdev"] == 2.0


def test_distribution_rejects_empty():
    with pytest.raises(ValueError):
        distribution([])


# ----------------------------------------------------------------------
# Fleet report
# ----------------------------------------------------------------------


def _tiny_sweep(metrics=False):
    return sweep_specs(
        ["MVT"], ["fcfs", "simt"], range(2),
        config=tiny_config(), num_wavefronts=4, scale=0.05, metrics=metrics,
    )


def test_sweep_specs_matrix_order():
    specs = sweep_specs(["A", "B"], ["x", "y"], range(2))
    triples = [(s["workload"], s["scheduler"], s["seed"]) for s in specs]
    assert triples == [
        ("A", "x", 0), ("A", "x", 1), ("A", "y", 0), ("A", "y", 1),
        ("B", "x", 0), ("B", "x", 1), ("B", "y", 0), ("B", "y", 1),
    ]


def test_fleet_report_shape_and_speedups():
    specs = _tiny_sweep()
    outcomes = run_many_resilient(specs)
    report = fleet_report(specs, outcomes)
    assert report["specs"] == 4 and report["ok"] == 4
    assert set(report["groups"]) == {"MVT/fcfs", "MVT/simt"}
    assert report["groups"]["MVT/fcfs"]["runs"] == 2
    simt = report["speedup_vs_baseline"]["simt"]
    assert simt["pairs"] == 2
    assert simt["geomean"] > 0
    assert "MVT" in simt["per_workload"]
    # fcfs is the baseline: it never appears as a speedup row.
    assert "fcfs" not in report["speedup_vs_baseline"]
    assert "sweep_seconds" in report["wall"]


def test_fleet_report_identical_across_worker_orderings():
    specs = _tiny_sweep()
    serial = fleet_report(specs, run_many_resilient(specs, jobs=1))
    parallel = fleet_report(specs, run_many_resilient(specs, jobs=2))
    assert json.dumps(
        deterministic_view(serial), sort_keys=True
    ) == json.dumps(deterministic_view(parallel), sort_keys=True)


def test_fleet_report_merges_metrics_per_scheduler():
    specs = _tiny_sweep(metrics=True)
    outcomes = run_many_resilient(specs)
    report = fleet_report(specs, outcomes)
    merged = report["metrics_by_scheduler"]
    assert set(merged) == {"fcfs", "simt"}
    for dump in merged.values():
        assert "series" not in dump
        assert dump["counters"]
    # Two runs merged: counters are the sum of both runs' counters.
    singles = [
        MetricsRegistry.from_dict(o.result.detail["metrics"])
        for o, s in zip(outcomes, specs) if s["scheduler"] == "fcfs"
    ]
    total = sum(r.counter("iommu.walks_dispatched").value for r in singles)
    assert merged["fcfs"]["counters"]["iommu.walks_dispatched"] == total


def test_fleet_report_counts_failures():
    specs = [
        {"workload": "MVT", "config": tiny_config(),
         "num_wavefronts": 4, "scale": 0.05, "seed": 0},
        {"workload": BrokenWorkload("raise"),
         "config": tiny_config(), "num_wavefronts": 4},
    ]
    outcomes = run_many_resilient(specs)
    report = fleet_report(specs, outcomes)
    assert report["ok"] == 1 and report["failed"] == 1
    assert len(report["failures"]) == 1
    assert report["failures"][0]["error_type"] == "RuntimeError"
    # The failed run contributes to no distribution.
    assert all(g["runs"] == 1 for g in report["groups"].values())


def test_fleet_report_empty_speedup_group_is_explicit():
    # Every baseline run fails: the surviving scheduler has nothing to
    # pair against and must get an explicit "pairs": 0 row — not feed an
    # empty sample set to geometric_mean and crash the whole report.
    specs = [
        {"workload": BrokenWorkload("raise"), "config": tiny_config(),
         "num_wavefronts": 4},
        {"workload": "MVT", "config": tiny_config(), "scheduler": "simt",
         "num_wavefronts": 4, "scale": 0.05, "seed": 0},
    ]
    outcomes = run_many_resilient(specs)
    report = fleet_report(specs, outcomes)
    assert report["failed"] == 1 and report["ok"] == 1
    assert report["speedup_vs_baseline"] == {"simt": {"pairs": 0}}
    markdown = fleet_markdown(report)
    assert "| simt | — | — | — | — | 0 |" in markdown


def test_fleet_report_rejects_mismatched_lengths():
    specs = _tiny_sweep()
    with pytest.raises(ValueError, match="specs"):
        fleet_report(specs, [])


def test_deterministic_view_strips_wall_and_telemetry():
    report = {"wall": {"sweep_seconds": 1.0}, "telemetry": {}, "ok": 2}
    assert deterministic_view(report) == {"ok": 2}


def test_render_and_markdown():
    specs = _tiny_sweep()
    outcomes = run_many_resilient(specs)
    report = fleet_report(
        specs, outcomes,
        telemetry_summary={"total": 4, "ok": 4, "failed": 0,
                           "timeout": 0, "retried": 0},
    )
    rendered = render_fleet_report(report)
    assert json.loads(rendered)["telemetry"]["ok"] == 4
    markdown = fleet_markdown(report)
    assert "# Fleet report" in markdown
    assert "## Speedup vs fcfs" in markdown
    assert "| MVT/fcfs |" in markdown
