"""Tests for the benchmark workload models (paper Table II)."""

import pytest

from repro.config import PAGE_SIZE
from repro.gpu.coalescer import coalesce
from repro.workloads.base import VirtualAddressSpace
from repro.workloads.registry import (
    IRREGULAR_WORKLOADS,
    REGULAR_WORKLOADS,
    all_workloads,
    get_workload,
    workload_names,
)
from repro.workloads.synthetic import ParametricWorkload


class TestRegistry:
    def test_twelve_workloads(self):
        assert len(workload_names()) == 12
        assert len(IRREGULAR_WORKLOADS) == 6
        assert len(REGULAR_WORKLOADS) == 6

    def test_paper_order(self):
        assert workload_names()[:6] == ["XSB", "MVT", "ATX", "NW", "BIC", "GEV"]

    def test_lookup_case_insensitive(self):
        assert get_workload("mvt").abbrev == "MVT"

    def test_unknown_workload_raises(self):
        with pytest.raises(ValueError):
            get_workload("NOPE")

    def test_irregularity_flags_match_groups(self):
        for workload in all_workloads(scale=0.05):
            expected = workload.abbrev in IRREGULAR_WORKLOADS
            assert workload.irregular == expected


class TestAddressSpace:
    def test_allocations_are_page_aligned_and_disjoint(self):
        space = VirtualAddressSpace()
        a = space.allocate("a", 100)
        b = space.allocate("b", PAGE_SIZE * 3)
        assert a.base % PAGE_SIZE == 0
        assert b.base % PAGE_SIZE == 0
        assert a.end <= b.base

    def test_duplicate_name_rejected(self):
        space = VirtualAddressSpace()
        space.allocate("a", 10)
        with pytest.raises(ValueError):
            space.allocate("a", 10)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            VirtualAddressSpace().allocate("a", 0)

    def test_element_bounds_checked(self):
        space = VirtualAddressSpace()
        region = space.allocate("a", PAGE_SIZE)
        region.element(0)
        with pytest.raises(IndexError):
            region.element(PAGE_SIZE // 8 + 1)

    def test_footprint_sums_regions(self):
        space = VirtualAddressSpace()
        space.allocate("a", PAGE_SIZE)
        space.allocate("b", PAGE_SIZE)
        assert space.total_bytes == 2 * PAGE_SIZE


class TestFootprints:
    """Modelled footprints must track the paper's Table II values."""

    # Paper footprint in MB and acceptable relative tolerance.  The
    # row-padded matrices (ATX, GEV, NW) deviate by a few percent; see
    # DESIGN.md.
    CASES = {
        "XSB": (212.25, 0.02),
        "MVT": (128.14, 0.02),
        "ATX": (64.06, 0.08),
        "NW": (531.82, 0.05),
        "BIC": (128.11, 0.02),
        "GEV": (128.06, 0.08),
        "SSP": (104.32, 0.02),
        "MIS": (72.38, 0.02),
        "CLR": (26.68, 0.03),
        "BCK": (108.03, 0.02),
        "KMN": (4.33, 0.05),
        "HOT": (12.02, 0.05),
    }

    @pytest.mark.parametrize("abbrev", sorted(CASES))
    def test_footprint(self, abbrev):
        paper_mb, tolerance = self.CASES[abbrev]
        workload = get_workload(abbrev, scale=0.05)
        assert workload.nominal_footprint_mb == paper_mb
        assert workload.modelled_footprint_mb == pytest.approx(
            paper_mb, rel=tolerance
        )


def trace_stats(workload, num_wavefronts=4, wavefront_size=64):
    """Divergence statistics of a generated trace."""
    trace = workload.build_trace(num_wavefronts, wavefront_size)
    pages_per_instruction = []
    for stream in trace:
        for instruction in stream:
            pages_per_instruction.append(coalesce(instruction).num_pages)
    return trace, pages_per_instruction


class TestTraceShape:
    @pytest.mark.parametrize("abbrev", workload_names())
    def test_trace_structure(self, abbrev):
        workload = get_workload(abbrev, scale=0.1)
        trace, pages = trace_stats(workload)
        assert len(trace) == 4  # one stream per requested wavefront
        assert all(len(stream) > 0 for stream in trace)
        assert all(p >= 1 for p in pages)

    @pytest.mark.parametrize("abbrev", workload_names())
    def test_lane_count_respected(self, abbrev):
        workload = get_workload(abbrev, scale=0.1)
        trace = workload.build_trace(2, 32)
        for stream in trace:
            for instruction in stream:
                assert len(instruction) == 32

    @pytest.mark.parametrize("abbrev", IRREGULAR_WORKLOADS)
    def test_irregular_workloads_diverge(self, abbrev):
        workload = get_workload(abbrev, scale=0.2)
        _, pages = trace_stats(workload)
        assert max(pages) >= 16, f"{abbrev} never diverges"

    @pytest.mark.parametrize("abbrev", REGULAR_WORKLOADS)
    def test_regular_workloads_coalesce(self, abbrev):
        workload = get_workload(abbrev, scale=0.2)
        _, pages = trace_stats(workload)
        mean_pages = sum(pages) / len(pages)
        assert mean_pages <= 4, f"{abbrev} too divergent ({mean_pages:.1f})"

    @pytest.mark.parametrize("abbrev", ("MVT", "ATX", "BIC", "GEV"))
    def test_polybench_bimodal(self, abbrev):
        """Row-dot kernels mix fully divergent and coalesced accesses."""
        workload = get_workload(abbrev, scale=0.3)
        _, pages = trace_stats(workload)
        assert any(p >= 60 for p in pages)  # divergent row sweep
        assert any(p <= 2 for p in pages)  # coalesced companion

    def test_traces_are_deterministic_per_seed(self):
        a = get_workload("XSB", scale=0.1, seed=1).build_trace(2, 16)
        b = get_workload("XSB", scale=0.1, seed=1).build_trace(2, 16)
        c = get_workload("XSB", scale=0.1, seed=2).build_trace(2, 16)
        assert a == b
        assert a != c

    def test_addresses_fall_inside_regions(self):
        for abbrev in workload_names():
            workload = get_workload(abbrev, scale=0.05)
            regions = workload.address_space.regions.values()
            trace = workload.build_trace(2, 16)
            low = min(r.base for r in regions)
            high = max(r.end for r in regions)
            for stream in trace:
                for instruction in stream:
                    for address in instruction:
                        assert low <= address < high


class TestScaling:
    def test_scale_changes_instruction_count_not_footprint(self):
        small = get_workload("MVT", scale=0.2)
        large = get_workload("MVT", scale=1.0)
        assert small.modelled_footprint_mb == large.modelled_footprint_mb
        small_len = len(small.build_trace(2, 16)[0])
        large_len = len(large.build_trace(2, 16)[0])
        assert small_len < large_len

    def test_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            get_workload("MVT", scale=0)

    def test_scaled_floor_is_one(self):
        workload = get_workload("MVT", scale=0.001)
        assert workload.scaled(24) >= 1


class TestParametricWorkload:
    def test_divergence_dial(self):
        low = ParametricWorkload(pages_per_instruction=1, scale=0.5)
        high = ParametricWorkload(pages_per_instruction=32, scale=0.5)
        _, low_pages = trace_stats(low)
        _, high_pages = trace_stats(high)
        assert max(low_pages) <= 2
        assert max(high_pages) >= 16

    def test_validation(self):
        with pytest.raises(ValueError):
            ParametricWorkload(pages_per_instruction=0)
        with pytest.raises(ValueError):
            ParametricWorkload(reuse_window=0)

    def test_reuse_window_repeats_pages(self):
        workload = ParametricWorkload(
            pages_per_instruction=4, reuse_window=4, scale=0.5
        )
        trace = workload.build_trace(1, 16)
        first_pages = set(coalesce(trace[0][0]).lines_by_page)
        second_pages = set(coalesce(trace[0][1]).lines_by_page)
        assert first_pages == second_pages
