"""Unit tests for the hardware coalescer model."""

from repro.config import LINE_SIZE, PAGE_SIZE
from repro.gpu.coalescer import coalesce


def test_empty_instruction():
    access = coalesce([])
    assert access.num_pages == 0
    assert access.num_lines == 0
    assert access.num_lanes == 0


def test_single_address():
    access = coalesce([0x1000])
    assert access.num_pages == 1
    assert access.num_lines == 1


def test_same_line_lanes_merge():
    access = coalesce([0x1000, 0x1004, 0x1008, 0x103F])
    assert access.num_lines == 1
    assert access.num_lanes == 4


def test_same_page_different_lines():
    access = coalesce([0x1000, 0x1000 + LINE_SIZE, 0x1000 + 2 * LINE_SIZE])
    assert access.num_pages == 1
    assert access.num_lines == 3


def test_fully_divergent_lanes():
    addresses = [lane * PAGE_SIZE for lane in range(64)]
    access = coalesce(addresses)
    assert access.num_pages == 64
    assert access.num_lines == 64


def test_lines_grouped_under_their_page():
    addresses = [0x0, 0x40, PAGE_SIZE, PAGE_SIZE + 0x40]
    access = coalesce(addresses)
    assert set(access.lines_by_page) == {0, 1}
    assert len(access.lines_by_page[0]) == 2
    assert len(access.lines_by_page[1]) == 2


def test_line_addresses_are_line_aligned():
    access = coalesce([0x1234, 0x1278])
    for lines in access.lines_by_page.values():
        for line in lines:
            assert line % LINE_SIZE == 0


def test_first_touch_order_preserved():
    addresses = [3 * PAGE_SIZE, 1 * PAGE_SIZE, 2 * PAGE_SIZE]
    access = coalesce(addresses)
    assert list(access.lines_by_page) == [3, 1, 2]


def test_duplicate_addresses_count_once():
    access = coalesce([0x2000] * 64)
    assert access.num_lines == 1
    assert access.num_lanes == 64


def test_regular_unit_stride_instruction():
    # 64 lanes × 8-byte elements: 512 contiguous bytes = 8 lines, 1 page.
    addresses = [0x10000 + lane * 8 for lane in range(64)]
    access = coalesce(addresses)
    assert access.num_pages == 1
    assert access.num_lines == 8
