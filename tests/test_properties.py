"""Property-based tests (hypothesis) for core data structures."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import PAGE_SIZE, TLBConfig
from repro.core.buffer import PendingWalkBuffer
from repro.core.request import TranslationRequest
from repro.core.schedulers import make_scheduler
from repro.core.scoring import ScoreTable
from repro.gpu.coalescer import coalesce
from repro.mmu.address import level_index, page_offset, vpn_of, vpn_prefix
from repro.mmu.page_table import PageTable
from repro.mmu.tlb import TLB

vpns = st.integers(min_value=0, max_value=(1 << 36) - 1)
addresses = st.integers(min_value=0, max_value=(1 << 48) - 1)


class TestAddressProperties:
    @given(addresses)
    def test_vpn_and_offset_reconstruct_address(self, address):
        assert vpn_of(address) * PAGE_SIZE + page_offset(address) == address

    @given(vpns)
    def test_level_indices_reconstruct_vpn(self, vpn):
        rebuilt = 0
        for level in (4, 3, 2, 1):
            rebuilt = (rebuilt << 9) | level_index(vpn, level)
        assert rebuilt == vpn

    @given(vpns, st.integers(min_value=1, max_value=4))
    def test_prefix_is_monotone_in_level(self, vpn, level):
        # A shallower (higher-level) prefix is a prefix of the deeper one.
        deeper = vpn_prefix(vpn, level)
        for shallower_level in range(level + 1, 5):
            shallower = vpn_prefix(vpn, shallower_level)
            shift = 9 * (shallower_level - level)
            assert deeper >> shift == shallower


class TestPageTableProperties:
    @given(st.lists(vpns, min_size=1, max_size=50))
    def test_translation_is_a_function(self, vpn_list):
        table = PageTable()
        first = {vpn: table.translate(vpn) for vpn in vpn_list}
        for vpn, pfn in first.items():
            assert table.translate(vpn) == pfn

    @given(st.lists(vpns, min_size=2, max_size=50, unique=True))
    def test_distinct_pages_never_share_frames(self, vpn_list):
        table = PageTable()
        pfns = [table.translate(vpn) for vpn in vpn_list]
        assert len(set(pfns)) == len(vpn_list)

    @given(vpns)
    def test_walk_path_levels_descend(self, vpn):
        table = PageTable()
        levels = [level for level, _ in table.walk_addresses(vpn)]
        assert levels == [4, 3, 2, 1]


class TestTLBProperties:
    @given(st.lists(st.tuples(vpns, st.integers(0, 1 << 20)), max_size=200))
    def test_occupancy_never_exceeds_capacity(self, inserts):
        tlb = TLB(TLBConfig(entries=8, associativity=2))
        for vpn, pfn in inserts:
            tlb.insert(vpn, pfn)
        assert tlb.occupancy <= 8

    @given(st.lists(vpns, min_size=1, max_size=100))
    def test_lookup_returns_last_inserted_value(self, vpn_list):
        tlb = TLB(TLBConfig(entries=256, associativity=16))
        mapping = {}
        for i, vpn in enumerate(vpn_list):
            tlb.insert(vpn, i)
            mapping[vpn] = i
        # Capacity (256) exceeds the unique-vpn count, so nothing evicted.
        for vpn, expected in mapping.items():
            assert tlb.lookup(vpn) == expected

    @given(st.lists(vpns, max_size=100))
    def test_stats_are_consistent(self, lookups):
        tlb = TLB(TLBConfig(entries=4))
        for vpn in lookups:
            tlb.lookup(vpn)
        assert tlb.hits + tlb.misses == len(lookups)


class TestCoalescerProperties:
    @given(st.lists(addresses, max_size=64))
    def test_counts_bounded_by_lanes(self, lane_addresses):
        access = coalesce(lane_addresses)
        assert access.num_pages <= access.num_lines <= len(lane_addresses)
        assert access.num_lanes == len(lane_addresses)

    @given(st.lists(addresses, min_size=1, max_size=64))
    def test_every_touched_page_appears(self, lane_addresses):
        access = coalesce(lane_addresses)
        assert set(access.lines_by_page) == {vpn_of(a) for a in lane_addresses}

    @given(st.lists(addresses, min_size=1, max_size=64))
    def test_lines_belong_to_their_page(self, lane_addresses):
        access = coalesce(lane_addresses)
        for page, lines in access.lines_by_page.items():
            assert all(vpn_of(line) == page for line in lines)


class TestScoreTableProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(1, 4)),
            min_size=1,
            max_size=100,
        )
    )
    def test_score_is_sum_of_active_contributions(self, events):
        table = ScoreTable()
        totals = {}
        for instruction, estimate in events:
            table.add(instruction, estimate)
            totals[instruction] = totals.get(instruction, 0) + estimate
        for instruction, expected in totals.items():
            assert table.score_of(instruction) == expected

    @given(st.lists(st.integers(1, 4), min_size=1, max_size=64))
    def test_score_zero_after_all_walks_complete(self, estimates):
        table = ScoreTable()
        for estimate in estimates:
            table.add(7, estimate)
        for _ in estimates:
            table.complete(7)
        assert table.score_of(7) == 0
        assert len(table) == 0


def buffer_with_entries(entry_specs):
    buffer = PendingWalkBuffer(capacity=max(1, len(entry_specs)))
    for i, (instruction, estimate) in enumerate(entry_specs):
        request = TranslationRequest(
            vpn=i, instruction_id=instruction, wavefront_id=0, cu_id=0, issue_time=0
        )
        buffer.add(request, arrival_time=i, estimated_accesses=estimate)
    return buffer


entry_specs = st.lists(
    st.tuples(st.integers(0, 7), st.integers(1, 4)), min_size=1, max_size=40
)


class TestSchedulerProperties:
    @given(entry_specs, st.sampled_from(["fcfs", "random", "sjf", "batch", "simt"]))
    @settings(max_examples=60)
    def test_selection_always_from_buffer(self, specs, policy):
        buffer = buffer_with_entries(specs)
        scheduler = make_scheduler(policy, seed=0, aging_threshold=10)
        entry = scheduler.select(buffer)
        assert entry is not None
        assert entry in list(buffer)

    @given(entry_specs, st.sampled_from(["fcfs", "random", "sjf", "batch", "simt"]))
    @settings(max_examples=60)
    def test_repeated_selection_drains_buffer(self, specs, policy):
        buffer = buffer_with_entries(specs)
        scheduler = make_scheduler(policy, seed=0, aging_threshold=10)
        drained = 0
        while not buffer.is_empty:
            entry = scheduler.select(buffer)
            buffer.remove(entry)
            drained += 1
        assert drained == len(specs)
        assert scheduler.select(buffer) is None

    @given(entry_specs)
    @settings(max_examples=60)
    def test_sjf_picks_minimal_score(self, specs):
        buffer = buffer_with_entries(specs)
        scheduler = make_scheduler("sjf", aging_threshold=10_000)
        entry = scheduler.select(buffer)
        minimum = min(buffer.score_of(e) for e in buffer)
        assert buffer.score_of(entry) == minimum

    @given(entry_specs)
    @settings(max_examples=60)
    def test_fcfs_is_arrival_ordered(self, specs):
        buffer = buffer_with_entries(specs)
        scheduler = make_scheduler("fcfs")
        previous = -1
        while not buffer.is_empty:
            entry = scheduler.select(buffer)
            assert entry.arrival_seq > previous
            previous = entry.arrival_seq
            buffer.remove(entry)
