"""Smoke tests for the example scripts.

Every example must at least parse and expose a ``main``; the cheapest
one is executed end-to-end so a broken public API surfaces here.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = sorted(
    pathlib.Path(__file__).resolve().parent.parent.joinpath("examples").glob("*.py")
)


def load_example(path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_and_has_main(path):
    module = load_example(path)
    assert callable(getattr(module, "main", None)), path.name


def test_quickstart_runs_fast_mode(monkeypatch, capsys):
    quickstart = load_example(
        pathlib.Path(__file__).resolve().parent.parent / "examples" / "quickstart.py"
    )
    monkeypatch.setattr(sys, "argv", ["quickstart.py", "KMN", "--fast"])
    quickstart.main()
    out = capsys.readouterr().out
    assert "Speedup (SIMT-aware over FCFS)" in out
    assert "KMN" in out
