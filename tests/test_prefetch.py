"""Tests for the next-page TLB-prefetch extension."""

from dataclasses import replace

from repro.config import IOMMUConfig, PWCConfig, TLBConfig
from repro.core.request import TranslationRequest
from repro.engine.simulator import Simulator
from repro.mmu.iommu import IOMMU
from repro.mmu.page_table import PageTable


def make_iommu(prefetch=True, num_walkers=2, latency=10):
    sim = Simulator()
    table = PageTable()
    config = IOMMUConfig(
        buffer_entries=8,
        num_walkers=num_walkers,
        l1_tlb=TLBConfig(entries=8),
        l2_tlb=TLBConfig(entries=16, associativity=4),
        pwc=PWCConfig(entries_per_level=8, associativity=4),
        prefetch_next_page=prefetch,
    )
    iommu = IOMMU(sim, config, table, lambda addr, cb: sim.after(latency, cb))
    return sim, iommu


def request(vpn, done=None, instruction_id=0):
    return TranslationRequest(
        vpn=vpn,
        instruction_id=instruction_id,
        wavefront_id=0,
        cu_id=0,
        issue_time=0,
        on_complete=(lambda r, p: done.append(r.vpn)) if done is not None else None,
    )


def test_demand_walk_triggers_next_page_prefetch():
    sim, iommu = make_iommu(prefetch=True)
    iommu.translate(request(0x100))
    sim.run()
    assert iommu.prefetch_walks == 1
    assert iommu.l2_tlb.probe(0x101)


def test_prefetch_disabled_by_default_config():
    sim, iommu = make_iommu(prefetch=False)
    iommu.translate(request(0x100))
    sim.run()
    assert iommu.prefetch_walks == 0
    assert not iommu.l2_tlb.probe(0x101)


def test_prefetched_page_serves_later_demand_from_tlb():
    sim, iommu = make_iommu(prefetch=True)
    done = []
    iommu.translate(request(0x100, done))
    sim.run()
    iommu.translate(request(0x101, done))
    sim.run()
    assert done == [0x100, 0x101]
    assert iommu.walks_dispatched == 1  # second page never walked on demand
    assert iommu.tlb_hits == 1


def test_prefetch_never_displaces_demand_traffic():
    # One walker: while demand walks queue, no prefetch may be issued.
    sim, iommu = make_iommu(prefetch=True, num_walkers=1, latency=50)
    for vpn in (0x10, 0x20, 0x30):
        iommu.translate(request(vpn))
    assert iommu.prefetch_walks == 0  # walker busy, demands pending
    sim.run()
    # Prefetches may only have used post-drain idle capacity.
    assert iommu.walks_dispatched == 3


def test_prefetch_walks_not_counted_as_demand():
    sim, iommu = make_iommu(prefetch=True)
    iommu.translate(request(0x100))
    sim.run()
    assert iommu.walks_dispatched == 1
    assert iommu.stats()["prefetch_walks"] == iommu.prefetch_walks


def test_demand_coalesces_onto_inflight_prefetch():
    sim, iommu = make_iommu(prefetch=True, latency=50)
    done = []
    iommu.translate(request(0x100, done))
    # Let the demand walk finish and the prefetch of 0x101 start.
    sim.run(max_events=6)
    walking = list(iommu._walking)
    if 0x101 in walking:  # prefetch in flight: demand must join it
        iommu.translate(request(0x101, done))
        sim.run()
        assert 0x101 in done
    else:  # timing moved: at minimum the run completes correctly
        sim.run()


def test_no_duplicate_prefetch_for_cached_page():
    sim, iommu = make_iommu(prefetch=True)
    iommu.translate(request(0x100))
    sim.run()
    first = iommu.prefetch_walks
    iommu.translate(request(0x100))  # TLB hit: completes without a walk
    sim.run()
    assert iommu.prefetch_walks == first
