"""Walk-latency attribution (`repro.obs.attrib`) tests.

The load-bearing property is the reconciliation invariant: for every
completed walk, the stage breakdown sums EXACTLY to its end-to-end
latency — across schedulers, with faults injected, under both DRAM
models, and for coalesced children clipped from a host walk.  The
byte-identity tests pin the other contract: the blame report is a pure
function of the specs, independent of worker count.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from tests.conftest import tiny_config
from repro.experiments.runner import run_many, run_simulation
from repro.obs.attrib import (
    BLAME_CATEGORIES,
    STAGES,
    attribute_walks,
    blame_run_report,
    blame_sweep_report,
    blame_sweep_specs,
    critical_paths,
    iter_trace_events,
    render_blame_report,
    stage_summary,
)
from repro.obs.trace import PID_IOMMU, PID_WALKERS, TraceConfig
from repro.resilience.faults import FaultEvent, FaultPlan

GOLDEN_DIR = Path(__file__).parent / "golden_figures"

TRACE = TraceConfig(
    categories=BLAME_CATEGORIES, ring_size=1 << 20, embed_events=True
)

RUN_KWARGS = dict(num_wavefronts=8, scale=0.05, seed=1)


def _traced_events(config=None, **kwargs):
    merged = {**RUN_KWARGS, **kwargs}
    result = run_simulation("MVT", config=config, trace=TRACE, **merged)
    assert result.detail["trace"]["events_dropped"] == 0
    return result.detail["trace"]["events"]


# ----------------------------------------------------------------------
# The reconciliation invariant
# ----------------------------------------------------------------------


FAULT_PLAN = FaultPlan(seed=7, events=(
    FaultEvent("delay_walk_completion", at_cycle=0, magnitude=40, count=8),
    FaultEvent("dram_spike", at_cycle=500, duration=3_000, magnitude=25),
    FaultEvent("flush_pwc", at_cycle=2_000),
))


@pytest.mark.parametrize(
    "scheduler", ["fcfs", "simt", "sjf", "batch", "fairshare"]
)
def test_every_walk_reconciles_with_faults(scheduler):
    config = tiny_config(scheduler).with_faults(FAULT_PLAN)
    result = attribute_walks(_traced_events(config=config))
    assert result.checked > 100
    assert result.reconciliation_failures == 0, result.failure_details
    for walk in result.walks:
        stages = walk.stages
        assert sum(stages.values()) == walk.end_to_end
        assert stages["service_gap"] == 0
        assert all(value >= 0 for value in stages.values())
    # The delay fault must be visible as deliver_hold, the spike as pad.
    totals = {stage: 0 for stage in STAGES}
    for walk in result.walks:
        for stage in STAGES:
            totals[stage] += walk.stages[stage]
    assert totals["deliver_hold"] > 0
    assert totals["fault_pad"] > 0


def test_reconciles_under_queued_memory_controller():
    import dataclasses

    config = tiny_config()
    config = dataclasses.replace(
        config, dram=dataclasses.replace(config.dram, controller="frfcfs")
    )
    result = attribute_walks(_traced_events(config=config))
    assert result.checked > 100
    assert result.reconciliation_failures == 0, result.failure_details
    totals = {stage: 0 for stage in STAGES}
    for walk in result.walks:
        assert sum(walk.stages.values()) == walk.end_to_end
        for stage in STAGES:
            totals[stage] += walk.stages[stage]
    # The controller's bank contention shows up as bank_queue cycles.
    assert totals["bank_queue"] > 0
    assert totals["row_access"] > 0


def test_no_walk_lifecycle_left_open():
    result = attribute_walks(_traced_events(config=tiny_config()))
    assert result.incomplete == {}


@pytest.mark.parametrize("mode", ["inflight", "full"])
def test_coalesced_stat_conserves_against_attribution(mode):
    """Audit of the IOMMU ``coalesced`` stat (buffer.total_coalesced +
    coalesced_inflight): each merged request must be counted exactly
    once.  The trace is an independent witness — every merge leaves an
    orphan ``walk_created`` that attribution resolves to a
    coalesced-origin walk, so the two counts must agree exactly; a
    double count (e.g. an inflight merge recounted at completion) or a
    dropped pending merge would break the equality."""
    import dataclasses

    config = tiny_config()
    config = dataclasses.replace(
        config, iommu=dataclasses.replace(config.iommu, coalesce_walks=mode)
    )
    result = run_simulation(
        "XSB", config=config, trace=TRACE, **RUN_KWARGS
    )
    assert result.detail["trace"]["events_dropped"] == 0
    attribution = attribute_walks(result.detail["trace"]["events"])
    assert attribution.incomplete == {}
    coalesced_walks = sum(
        1 for walk in attribution.walks if walk.origin == "coalesced"
    )
    assert coalesced_walks > 0  # the audit needs actual merges
    assert coalesced_walks == result.detail["iommu"]["coalesced"]
    # Full conservation: every TLB-missing request either dispatched a
    # walk (demand) or merged (coalesced) — never both, never neither.
    created = sum(
        1
        for event in result.detail["trace"]["events"]
        if event.get("name") == "walk_created"
    )
    demand_walks = sum(
        1 for walk in attribution.walks if walk.origin == "demand"
    )
    assert demand_walks + coalesced_walks == created
    assert demand_walks == result.detail["iommu"]["walks_dispatched"]


# ----------------------------------------------------------------------
# Synthetic event streams: exact stage arithmetic
# ----------------------------------------------------------------------


def _created(ts, vpn, iid, wavefront=3):
    return {"name": "walk_created", "ph": "i", "ts": ts, "pid": PID_IOMMU,
            "args": {"vpn": vpn, "instruction_id": iid,
                     "wavefront_id": wavefront}}


def _queued(ts, dur, vpn, iid, walker=0):
    return {"name": "queued", "ph": "X", "ts": ts, "dur": dur,
            "pid": PID_IOMMU, "tid": 0,
            "args": {"vpn": vpn, "instruction_id": iid, "walker_id": walker}}


def _read(ts, dur, vpn, iid, walker=0, level=0, bank=1,
          bank_queue=0, row_access=None, fault_pad=0):
    if row_access is None:
        row_access = dur - bank_queue - fault_pad
    return {"name": "walk_read", "ph": "X", "ts": ts, "dur": dur,
            "pid": PID_WALKERS, "tid": walker,
            "args": {"vpn": vpn, "instruction_id": iid, "level": level,
                     "address": 0x1000, "bank": bank,
                     "bank_queue": bank_queue, "row_access": row_access,
                     "fault_pad": fault_pad, "row_hit": False}}


def _walk(ts, dur, vpn, iid, walker=0, accesses=1):
    return {"name": "walk", "ph": "X", "ts": ts, "dur": dur,
            "pid": PID_WALKERS, "tid": walker,
            "args": {"vpn": vpn, "instruction_id": iid,
                     "accesses": accesses}}


def _completed(ts, vpn, iid):
    return {"name": "walk_completed", "ph": "i", "ts": ts, "pid": PID_IOMMU,
            "args": {"vpn": vpn, "instruction_id": iid}}


def _job(ts, dur, iid):
    return {"name": "job", "ph": "X", "ts": ts, "dur": dur, "pid": 0,
            "tid": 3, "args": {"instruction_id": iid}}


def test_synthetic_walk_stage_arithmetic():
    events = [
        _created(10, 0x40, 7),
        _queued(10, 5, 0x40, 7),          # arrival 10, dispatch 15
        _read(15, 7, 0x40, 7, bank_queue=2, row_access=5),  # done 22
        _walk(15, 9, 0x40, 7),            # span dispatch -> completed
        _completed(24, 0x40, 7),          # 2 cycles of deliver hold
    ]
    result = attribute_walks(events)
    assert result.reconciliation_failures == 0
    (walk,) = result.walks
    assert walk.origin == "demand"
    assert walk.end_to_end == 14
    assert walk.stages == {
        "enqueue_wait": 0, "queue_wait": 5, "bank_queue": 2,
        "row_access": 5, "fault_pad": 0, "deliver_hold": 2,
        "service_gap": 0,
    }


def test_synthetic_overflow_wait_is_enqueue_wait():
    # Created at 0, only admitted to the pending buffer at 30.
    events = [
        _created(0, 0x80, 9),
        _queued(30, 10, 0x80, 9),
        _read(40, 4, 0x80, 9),
        _walk(40, 4, 0x80, 9),
        _completed(44, 0x80, 9),
    ]
    (walk,) = attribute_walks(events).walks
    assert walk.stages["enqueue_wait"] == 30
    assert walk.stages["queue_wait"] == 10
    assert sum(walk.stages.values()) == walk.end_to_end == 44


def test_synthetic_prefetch_walk_has_no_created():
    events = [
        _queued(100, 2, 0xA0, 0),
        _read(102, 4, 0xA0, 0),
        _walk(102, 4, 0xA0, 0),
        _completed(106, 0xA0, 0),
    ]
    (walk,) = attribute_walks(events).walks
    assert walk.origin == "prefetch"
    assert walk.created is None
    assert walk.end_to_end == 6
    assert sum(walk.stages.values()) == 6


def test_synthetic_coalesced_child_is_clipped_exactly():
    events = [
        _created(10, 0x40, 7),
        _queued(10, 5, 0x40, 7),
        _created(17, 0x40, 8),            # same page, later instruction
        _read(15, 7, 0x40, 7, bank_queue=2, row_access=5),
        _walk(15, 7, 0x40, 7),
        _completed(22, 0x40, 7),
    ]
    result = attribute_walks(events)
    assert result.reconciliation_failures == 0
    by_origin = {walk.origin: walk for walk in result.walks}
    host, child = by_origin["demand"], by_origin["coalesced"]
    assert host.end_to_end == 12
    assert child.instruction_id == 8
    assert child.created == 17
    # Child lived 17 -> 22: the tail of the host's read (bank_queue ran
    # 15-17, row access 17-22), nothing else.
    assert child.end_to_end == 5
    assert child.stages["row_access"] == 5
    assert sum(child.stages.values()) == 5
    assert result.incomplete == {}


def test_synthetic_orphan_created_counts_as_incomplete():
    events = [_created(10, 0xF0, 3)]
    result = attribute_walks(events)
    assert result.walks == []
    assert result.incomplete == {"orphan_walk_created": 1}


def test_synthetic_critical_path_gap_decomposes_exactly():
    events = [
        # Walk 1 for instruction 5: done early.
        _created(0, 0x10, 5),
        _queued(0, 2, 0x10, 5, walker=0),
        _read(2, 4, 0x10, 5, walker=0),
        _walk(2, 4, 0x10, 5, walker=0),
        _completed(6, 0x10, 5),
        # Walk 2 for instruction 5: created later, gates retirement.
        _created(4, 0x20, 5),
        _queued(4, 10, 0x20, 5, walker=1),
        _read(14, 6, 0x20, 5, walker=1, bank_queue=1, row_access=5),
        _walk(14, 6, 0x20, 5, walker=1),
        _completed(20, 0x20, 5),
        _job(0, 25, 5),
    ]
    attribution = attribute_walks(events)
    cp = critical_paths(events, attribution.walks)
    assert cp["jobs_analyzed"] == 1
    assert cp["multi_walk_jobs"] == 1
    (job,) = cp["top_gaps"]
    assert job["gap"] == 14            # 20 - 6
    assert job["gating_walk"]["vpn"] == 0x20
    # The gating walk existed throughout the gap (created 4 < first 6),
    # so no arrival skew; its stages clipped to [6, 20] fill the gap.
    assert job["arrival_skew"] == 0
    assert sum(job["gap_stages"].values()) == 14
    assert job["gap_stages"]["queue_wait"] == 8   # 6 -> 14
    assert job["reconciled"] is True
    assert cp["gap_reconciled"] is True


def test_synthetic_arrival_skew_when_gating_walk_starts_late():
    events = [
        _created(0, 0x10, 5),
        _queued(0, 2, 0x10, 5, walker=0),
        _read(2, 4, 0x10, 5, walker=0),
        _walk(2, 4, 0x10, 5, walker=0),
        _completed(6, 0x10, 5),
        # Gating walk created AFTER the first walk finished.
        _created(9, 0x20, 5),
        _queued(9, 3, 0x20, 5, walker=1),
        _read(12, 4, 0x20, 5, walker=1),
        _walk(12, 4, 0x20, 5, walker=1),
        _completed(16, 0x20, 5),
        _job(0, 20, 5),
    ]
    attribution = attribute_walks(events)
    cp = critical_paths(events, attribution.walks)
    (job,) = cp["top_gaps"]
    assert job["gap"] == 10
    assert job["arrival_skew"] == 3    # 9 - 6
    assert sum(job["gap_stages"].values()) == 7
    assert job["reconciled"] is True


def test_synthetic_unmatched_reads_are_counted_not_fatal():
    # A ring that dropped the queued span leaves the read orphaned.
    events = [
        _read(15, 7, 0x40, 7),
        _completed(24, 0x40, 7),
    ]
    result = attribute_walks(events)
    assert result.walks == []
    assert result.incomplete == {
        "unmatched_walk_read": 1,
        "unmatched_walk_completed": 1,
    }


# ----------------------------------------------------------------------
# Trace-container loading
# ----------------------------------------------------------------------


def test_iter_trace_events_reads_chrome_and_jsonl(tmp_path):
    events = [
        _created(10, 0x40, 7),
        _queued(10, 5, 0x40, 7),
        _read(15, 7, 0x40, 7),
        _walk(15, 7, 0x40, 7),
        _completed(22, 0x40, 7),
    ]
    chrome = tmp_path / "trace.json"
    chrome.write_text(json.dumps({
        "traceEvents": [{"ph": "M", "name": "process_name"}] + events,
        "displayTimeUnit": "ns",
    }))
    jsonl = tmp_path / "trace.jsonl"
    jsonl.write_text(
        "\n".join(json.dumps(event) for event in events)
        + '\n{"name": "walk_created", "ph"'  # torn final line
    )
    for source in (chrome, jsonl, events):
        loaded = iter_trace_events(source)
        result = attribute_walks(loaded)
        assert len(result.walks) == 1
        assert result.reconciliation_failures == 0


# ----------------------------------------------------------------------
# Sweep reports: determinism and merge identity
# ----------------------------------------------------------------------


def _sweep():
    return blame_sweep_specs(
        ["MVT"], ["fcfs", "simt"], [1],
        config=tiny_config(), num_wavefronts=4, scale=0.05,
    )


def test_blame_sweep_byte_identical_across_jobs():
    specs = _sweep()
    rendered = []
    for jobs in (1, 2):
        results = run_many(specs, jobs=jobs)
        rendered.append(
            render_blame_report(blame_sweep_report(specs, results))
        )
    assert rendered[0] == rendered[1]
    document = json.loads(rendered[0])
    assert document["format"] == "repro-blame"
    assert document["reconciliation"]["failures"] == 0
    assert document["events_dropped"] == 0
    assert sorted(document["by_scheduler"]) == ["fcfs", "simt"]
    for run in document["runs"]:
        shares = run["stage_shares"]
        assert sum(shares.values()) == pytest.approx(1.0, abs=1e-4)


def test_blame_sweep_report_requires_embedded_events():
    specs = [dict(workload="MVT", scheduler="fcfs", seed=1,
                  num_wavefronts=4, scale=0.05, config=tiny_config())]
    results = run_many(specs, jobs=1)
    with pytest.raises(ValueError, match="embed_events"):
        blame_sweep_report(specs, results)


def test_blame_breakdown_matches_golden():
    """Golden pin: the full single-run attribution breakdown.

    Regenerate after an intentional engine/timing change:

        PYTHONPATH=src:. python -c "import json, tests.test_obs_attrib as t; \
            r = t.blame_run_report(t._traced_events(config=t.tiny_config(), \
            num_wavefronts=4), top_k=3); open('tests/golden_figures/\
blame_breakdown.json', 'w').write(json.dumps(r, indent=2, sort_keys=True) + '\n')"
    """
    events = _traced_events(config=tiny_config(), num_wavefronts=4)
    report = blame_run_report(events, top_k=3)
    golden = (GOLDEN_DIR / "blame_breakdown.json").read_text()
    assert json.dumps(report, indent=2, sort_keys=True) + "\n" == golden


# ----------------------------------------------------------------------
# Counter-based summaries (tracing off)
# ----------------------------------------------------------------------


def test_stage_counters_survive_without_tracing():
    result = run_simulation(
        "MVT", config=tiny_config(), metrics=True, **RUN_KWARGS
    )
    counters = result.detail["metrics"]["counters"]
    for name in (
        "walk.stage.enqueue_wait_cycles",
        "walk.stage.queue_wait_cycles",
        "walk.stage.dram_bank_queue_cycles",
        "walk.stage.dram_row_cycles",
        "walk.stage.fault_pad_cycles",
        "walk.stage.deliver_hold_cycles",
        "walk.stage.service_cycles",
    ):
        assert name in counters, name
    assert counters["walk.stage.queue_wait_cycles"] > 0
    assert counters["walk.stage.dram_row_cycles"] > 0


def test_counter_summary_agrees_with_trace_attribution():
    """The always-on counters and the per-walk trace attribution measure
    the same cycles through independent plumbing.  They differ only at
    the edges (counters include walks still in flight when the sim
    ends; attribution splits coalesced children out of their host), so
    the stage *shares* must agree within a couple of percent."""
    result = run_simulation(
        "MVT", config=tiny_config(), metrics=True, trace=TRACE, **RUN_KWARGS
    )
    counters = result.detail["metrics"]["counters"]
    assert counters["iommu.walks_completed"] > 0
    summary = stage_summary({"fcfs": result.detail["metrics"]})
    counter_shares = summary["fcfs"]["stage_shares"]
    report = blame_run_report(result.detail["trace"]["events"])
    trace_shares = report["stage_shares"]
    for stage in STAGES:
        assert counter_shares.get(stage, 0) == pytest.approx(
            trace_shares[stage], abs=0.02
        ), stage


def test_stage_summary_empty_without_counters():
    assert stage_summary({"fcfs": {"counters": {"other": 1}}}) == {}
    assert stage_summary({}) == {}
