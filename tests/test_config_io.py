"""Tests for configuration (de)serialisation."""

import pytest

from repro.config import SystemConfig, baseline_config
from repro.config_io import (
    config_from_dict,
    config_to_dict,
    load_config,
    save_config,
)


def test_round_trip_identity():
    config = baseline_config("simt").with_l2_tlb_entries(1024)
    rebuilt = config_from_dict(config_to_dict(config))
    assert rebuilt == config


def test_partial_dict_keeps_defaults():
    config = config_from_dict({"iommu": {"scheduler": "simt"}})
    assert config.iommu.scheduler == "simt"
    assert config.iommu.buffer_entries == 256  # default preserved
    assert config.gpu.num_cus == 8


def test_nested_overrides():
    config = config_from_dict(
        {"iommu": {"pwc": {"entries_per_level": 32, "associativity": 8}}}
    )
    assert config.iommu.pwc.entries_per_level == 32
    assert config.iommu.l2_tlb.entries == 256


def test_unknown_key_rejected():
    with pytest.raises(ValueError, match="unknown SystemConfig keys"):
        config_from_dict({"walkers": 16})


def test_unknown_nested_key_rejected():
    with pytest.raises(ValueError, match="unknown IOMMUConfig keys"):
        config_from_dict({"iommu": {"sheduler": "simt"}})


def test_invalid_values_still_validated():
    with pytest.raises(ValueError):
        config_from_dict({"gpu_l2_tlb": {"entries": 0}})


def test_file_round_trip(tmp_path):
    path = tmp_path / "config.json"
    config = baseline_config().with_walkers(16)
    save_config(config, path)
    assert load_config(path) == config


def test_loaded_config_runs():
    from repro.experiments.runner import run_simulation
    from repro.workloads.synthetic import ParametricWorkload

    config = config_from_dict(
        {
            "gpu": {"num_cus": 2, "wavefront_slots_per_cu": 2},
            "iommu": {"scheduler": "simt", "num_walkers": 2},
        }
    )
    workload = ParametricWorkload(
        pages_per_instruction=4, instructions_per_wavefront=4, footprint_mb=8.0
    )
    result = run_simulation(workload, config=config, num_wavefronts=2)
    assert result.scheduler == "simt"
    assert result.total_cycles > 0


def test_to_dict_requires_dataclass():
    with pytest.raises(TypeError):
        config_to_dict({"not": "a dataclass"})
