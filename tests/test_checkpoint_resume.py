"""Golden checkpoint/resume equivalence: interrupted ≡ uninterrupted.

The tentpole guarantee of in-run checkpointing: a run interrupted at any
cycle and resumed from its checkpoint produces **bit-identical** final
statistics to the run that was never interrupted.  Exercised for every
registered scheduler, at several interrupt points (mid-walk is
guaranteed at any mid-run cycle; the scoring schedulers add mid-aging
state), across chained interruptions, and with fault injection, metrics
sampling and lifecycle tracing active.

Only wall-clock fields (``detail["engine"]["wall_seconds"]`` and
``events_per_sec``) are exempt — everything else, down to the walk
latency percentiles and fault-injector stats, must match exactly.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments.runner import (
    MAX_CYCLES,
    resume_simulation,
    run_simulation,
)
from repro.obs.trace import TraceConfig
from repro.resilience.faults import FaultEvent, FaultPlan
from repro.resilience.watchdog import WatchdogError
from tests.conftest import tiny_config

SCHEDULERS = (
    "fcfs", "random", "sjf", "batch", "simt", "fairshare",
    # The zoo: each carries extra IOMMU-side state (prefetch distance,
    # reorder staging, region TLB) that must survive the round trip.
    "wasp", "iru", "mosaic",
)
WORKLOAD = "XSB"
WAVEFRONTS = 8
SCALE = 0.05
#: Huge next to tiny-config runtimes, tiny next to the 2e9 safety valve.
WATCHDOG = 5_000_000
#: Small enough that every tiny run fires several periodic checkpoints.
EVERY = 2_000


def _fingerprint(result):
    """Everything deterministic about a result (wall clock excluded)."""
    data = dataclasses.asdict(result)
    engine = data["detail"].get("engine")
    if engine is not None:
        engine.pop("wall_seconds", None)
        engine.pop("events_per_sec", None)
    return data


def _run(scheduler, **kwargs):
    kwargs.setdefault("config", tiny_config())
    return run_simulation(
        WORKLOAD,
        scheduler=scheduler,
        num_wavefronts=WAVEFRONTS,
        scale=SCALE,
        seed=0,
        watchdog_cycles=WATCHDOG,
        **kwargs,
    )


def _interrupt_at(scheduler, cycle, path, **kwargs):
    """Run until ``cycle`` then die, leaving a crash checkpoint behind."""
    with pytest.raises(WatchdogError):
        _run(
            scheduler,
            max_cycles=cycle,
            checkpoint_every=EVERY,
            checkpoint_path=str(path),
            **kwargs,
        )


@pytest.fixture(scope="module")
def baselines():
    """Straight-through reference results, computed once per scheduler."""
    cache = {}

    def get(scheduler):
        if scheduler not in cache:
            cache[scheduler] = _fingerprint(_run(scheduler))
        return cache[scheduler]

    return get


# ----------------------------------------------------------------------
# Checkpointing itself must be read-only
# ----------------------------------------------------------------------


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_checkpointing_run_matches_plain(scheduler, baselines, tmp_path):
    path = tmp_path / "run.ckpt"
    result = _run(
        scheduler, checkpoint_every=EVERY, checkpoint_path=str(path)
    )
    assert _fingerprint(result) == baselines(scheduler)
    assert path.exists()  # at least one periodic checkpoint fired


# ----------------------------------------------------------------------
# Resume from a mid-run checkpoint reproduces the full run
# ----------------------------------------------------------------------


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_resume_from_midrun_checkpoint(scheduler, baselines, tmp_path):
    # A completed checkpointing run leaves its *last periodic* dump on
    # disk — a genuine mid-run state.  Resuming it must replay the tail
    # to the identical end state.
    path = tmp_path / "run.ckpt"
    _run(scheduler, checkpoint_every=EVERY, checkpoint_path=str(path))
    resumed = resume_simulation(str(path))
    assert _fingerprint(resumed) == baselines(scheduler)


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_interrupt_and_resume_bit_identical(scheduler, baselines, tmp_path):
    want = baselines(scheduler)
    cycle = want["total_cycles"] // 2  # guaranteed mid-walk territory
    path = tmp_path / "crash.ckpt"
    _interrupt_at(scheduler, cycle, path)
    resumed = resume_simulation(str(path), max_cycles=MAX_CYCLES)
    assert _fingerprint(resumed) == want


@pytest.mark.parametrize("fraction", [0.1, 0.35, 0.85])
def test_interrupt_points_across_the_run(fraction, baselines, tmp_path):
    # Sweep early/mid/late interrupt points on the paper's scheduler —
    # early catches walks in their first DRAM round-trips, late catches
    # aged entries and drained wavefronts.
    want = baselines("simt")
    cycle = max(1, int(want["total_cycles"] * fraction))
    path = tmp_path / "crash.ckpt"
    _interrupt_at("simt", cycle, path)
    resumed = resume_simulation(str(path), max_cycles=MAX_CYCLES)
    assert _fingerprint(resumed) == want


def test_chained_interruptions_compose(baselines, tmp_path):
    # Die twice: resume itself re-arms checkpointing and crash dumps, so
    # a second interruption resumes from the second checkpoint.
    want = baselines("sjf")
    path = tmp_path / "crash.ckpt"
    _interrupt_at("sjf", want["total_cycles"] // 3, path)
    with pytest.raises(WatchdogError):
        resume_simulation(
            str(path),
            max_cycles=2 * want["total_cycles"] // 3,
            checkpoint_every=EVERY,
        )
    resumed = resume_simulation(str(path), max_cycles=MAX_CYCLES)
    assert _fingerprint(resumed) == want


# ----------------------------------------------------------------------
# Orthogonal subsystems survive the round trip
# ----------------------------------------------------------------------


def _fault_config():
    plan = FaultPlan(
        seed=7,
        events=(
            FaultEvent("flush_tlb", at_cycle=5_000, site="gpu_l2"),
            FaultEvent("flush_pwc", at_cycle=12_000),
            FaultEvent("stall_walker", at_cycle=3_000, target=1,
                       duration=4_000),
            FaultEvent("delay_walk_completion", at_cycle=2_000,
                       magnitude=500, count=4),
        ),
    )
    return tiny_config().with_faults(plan)


def test_resume_with_faults_armed(tmp_path):
    # Interrupt between fault firings: some already injected (their
    # effects live in restored component state), some still pending in
    # the restored event queue.  Stats and injector bookkeeping must
    # match the uninterrupted run exactly.
    config = _fault_config()
    want = _fingerprint(_run("simt", config=config))
    assert sum(want["detail"]["faults"]["injected"].values()) > 0
    cycle = want["total_cycles"] // 2
    path = tmp_path / "crash.ckpt"
    _interrupt_at("simt", cycle, path, config=_fault_config())
    resumed = resume_simulation(str(path), max_cycles=MAX_CYCLES)
    assert _fingerprint(resumed) == want


def test_resume_with_metrics_sampling(tmp_path):
    want = _fingerprint(_run("simt", metrics=True))
    cycle = want["total_cycles"] // 2
    path = tmp_path / "crash.ckpt"
    _interrupt_at("simt", cycle, path, metrics=True)
    resumed = resume_simulation(str(path), max_cycles=MAX_CYCLES)
    assert _fingerprint(resumed) == want


def test_resume_with_tracing(tmp_path):
    trace = TraceConfig()
    want = _fingerprint(_run("simt", trace=trace))
    cycle = want["total_cycles"] // 2
    path = tmp_path / "crash.ckpt"
    _interrupt_at("simt", cycle, path, trace=trace)
    resumed = resume_simulation(str(path), max_cycles=MAX_CYCLES)
    assert _fingerprint(resumed) == want


def test_resume_with_sms_controller(tmp_path):
    # The SMS batch former holds per-bank (source, credits) state and
    # source-tagged queued requests; both must survive the round trip.
    config = tiny_config().with_dram_controller("sms")
    want = _fingerprint(_run("simt", config=config))
    cycle = want["total_cycles"] // 2
    path = tmp_path / "crash.ckpt"
    _interrupt_at("simt", cycle, path, config=config)
    resumed = resume_simulation(str(path), max_cycles=MAX_CYCLES)
    assert _fingerprint(resumed) == want


def test_random_scheduler_rng_state_restored(tmp_path):
    # The random policy's whole behaviour is its Mersenne Twister
    # stream; a resume that reseeded instead of restoring rng.getstate()
    # would diverge in the dispatch sequence, not just the stats.
    # Interrupt at several points so at least one lands mid-stream.
    want = baselines_result = _fingerprint(_run("random"))
    for fraction in (0.25, 0.6):
        cycle = max(1, int(want["total_cycles"] * fraction))
        path = tmp_path / f"crash-{fraction}.ckpt"
        _interrupt_at("random", cycle, path)
        resumed = resume_simulation(str(path), max_cycles=MAX_CYCLES)
        fingerprint = _fingerprint(resumed)
        assert fingerprint == baselines_result
        assert (
            fingerprint["detail"]["iommu"]["walks_dispatched"]
            == want["detail"]["iommu"]["walks_dispatched"]
        )


# ----------------------------------------------------------------------
# API guard rails
# ----------------------------------------------------------------------


def test_checkpoint_every_requires_path():
    with pytest.raises(ValueError, match="checkpoint_path"):
        _run("fcfs", checkpoint_every=100)


def test_checkpoint_rejects_scheduler_instances():
    from repro.core.schedulers import make_scheduler

    with pytest.raises(ValueError, match="registry scheduler name"):
        _run(
            make_scheduler("fcfs"),
            checkpoint_every=100,
            checkpoint_path="unused.ckpt",
        )


def test_checkpoint_rejects_profiling():
    with pytest.raises(ValueError, match="profile"):
        _run(
            "fcfs",
            profile=True,
            checkpoint_every=100,
            checkpoint_path="unused.ckpt",
        )
