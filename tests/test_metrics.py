"""Unit tests for derived metrics and SimulationResult."""

import pytest

from repro.gpu.wavefront import InstructionRecord
from repro.stats.metrics import (
    SimulationResult,
    geometric_mean,
    instruction_walk_histogram,
    latency_gap_stats,
)


def record(walk_accesses=0, walk_latencies=()):
    rec = InstructionRecord(instruction_id=0, wavefront_id=0, issue_time=0)
    rec.walk_accesses = walk_accesses
    rec.walk_latencies = list(walk_latencies)
    return rec


class TestGeometricMean:
    def test_single_value(self):
        assert geometric_mean([2.0]) == pytest.approx(2.0)

    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestWalkHistogram:
    def test_zero_walk_instructions_excluded(self):
        histogram = instruction_walk_histogram([record(0), record(5)])
        assert histogram.total == 1

    def test_bucketing_matches_fig3(self):
        records = [record(1), record(16), record(17), record(256)]
        histogram = instruction_walk_histogram(records)
        assert histogram.counts() == [2, 1, 0, 0, 0, 1]


class TestLatencyGap:
    def test_requires_two_walks(self):
        first, last = latency_gap_stats([record(4, [100])])
        assert (first, last) == (0.0, 0.0)

    def test_first_and_last_means(self):
        records = [
            record(8, [100, 300]),
            record(8, [200, 400]),
        ]
        first, last = latency_gap_stats(records)
        assert first == pytest.approx(150.0)
        assert last == pytest.approx(350.0)

    def test_min_max_within_instruction(self):
        first, last = latency_gap_stats([record(8, [500, 100, 300])])
        assert (first, last) == (100.0, 500.0)


def make_result(cycles, **overrides):
    defaults = dict(
        workload="MVT",
        scheduler="fcfs",
        total_cycles=cycles,
        instructions=10,
        wavefronts=2,
        stall_cycles=100,
        walks_dispatched=50,
        walk_memory_accesses=150,
        interleaved_fraction=0.5,
        first_walk_latency=100.0,
        last_walk_latency=300.0,
        wavefronts_per_epoch=8.0,
    )
    defaults.update(overrides)
    return SimulationResult(**defaults)


class TestSimulationResult:
    def test_speedup_over(self):
        fast, slow = make_result(100), make_result(200)
        assert fast.speedup_over(slow) == pytest.approx(2.0)
        assert slow.speedup_over(fast) == pytest.approx(0.5)

    def test_speedup_requires_cycles(self):
        with pytest.raises(ValueError):
            make_result(0).speedup_over(make_result(100))

    def test_latency_gap(self):
        assert make_result(100).latency_gap == pytest.approx(200.0)

    def test_summary_mentions_workload_and_scheduler(self):
        text = make_result(100).summary()
        assert "MVT" in text and "fcfs" in text
