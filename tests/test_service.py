"""The durable sweep service: queue semantics, recovery, byte-identity.

The service's contract is that delivery-layer violence — killed
workers, expired leases, interrupted brokers, full restarts — never
changes what was computed.  The tests here attack each layer:

* queue: atomic claims, stale-lease reaping, poison-task abandonment,
  the idempotent crash-recovery rules;
* manifest: roundtrip, spec-identity validation, version gating;
* broker: init/resume repair, merge's zero-lost/zero-duplicated
  enforcement;
* end to end: a worker-drained campaign merges byte-identical to the
  uninterrupted serial run — including after a worker is SIGKILLed
  mid-simulation and its spec resumes from an in-run checkpoint on a
  different worker.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from pathlib import Path

import pytest

from repro.experiments.runner import run_many_resilient
from repro.obs.aggregate import (
    deterministic_view,
    fleet_report,
    render_fleet_report,
)
from repro.obs.fleet import FleetTelemetry
from repro.service import manifest as manifest_mod
from repro.service.broker import (
    campaign_status,
    init_campaign,
    merge_campaign,
    resume_campaign,
)
from repro.service.manifest import load_manifest, plan_campaign, save_manifest
from repro.service.queue import FileWorkQueue
from repro.service.worker import run_worker, spawn_workers

from tests.conftest import tiny_config


# ----------------------------------------------------------------------
# Queue: claims, leases, recovery rules
# ----------------------------------------------------------------------


def test_concurrent_claims_are_exclusive(tmp_path):
    queue = FileWorkQueue(tmp_path / "queue")
    for index in range(4):
        queue.put({"id": f"task-{index}", "spec_indices": [index]})
    claimed, lock = [], threading.Lock()

    def claimer(worker):
        while True:
            task = queue.claim(worker)
            if task is None:
                return
            with lock:
                claimed.append((task["id"], worker))

    threads = [
        threading.Thread(target=claimer, args=(f"w{i}",)) for i in range(8)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    ids = [task_id for task_id, _worker in claimed]
    assert sorted(ids) == [f"task-{i}" for i in range(4)]  # nothing lost
    assert len(set(ids)) == len(ids)  # nothing double-claimed


def test_reap_requeues_stale_lease_with_history(tmp_path):
    queue = FileWorkQueue(tmp_path / "queue")
    queue.put({"id": "t", "spec_indices": [0]})
    task = queue.claim("dead-worker")
    assert task["attempts"] == 1
    requeued, abandoned = queue.reap(0.0)
    assert requeued == ["t"] and abandoned == []
    # The dead owner's heartbeat must fail from now on.
    assert not queue.heartbeat("t", "dead-worker")
    reclaimed = queue.claim("live-worker")
    assert reclaimed["attempts"] == 2
    events = [entry["event"] for entry in reclaimed["history"]]
    assert events == ["claimed", "requeued", "claimed"]


def test_live_lease_survives_reap(tmp_path):
    queue = FileWorkQueue(tmp_path / "queue")
    queue.put({"id": "t", "spec_indices": [0]})
    task = queue.claim("w")
    assert queue.heartbeat("t", "w")
    requeued, abandoned = queue.reap(60.0)
    assert requeued == [] and abandoned == []
    queue.complete(task, {"ok": True})
    assert queue.drained()


def test_poison_task_is_abandoned_after_max_attempts(tmp_path):
    queue = FileWorkQueue(tmp_path / "queue")
    queue.put({"id": "poison", "spec_indices": [0]})
    for attempt in range(3):
        task = queue.claim(f"victim-{attempt}")
        assert task is not None
        queue.reap(0.0, max_attempts=3)
    assert queue.drained()
    record = queue.done_records()["poison"]
    assert record["record"]["abandoned"]
    assert record["task"]["attempts"] == 3


def test_reap_garbage_collects_lease_of_completed_task(tmp_path):
    # Owner died after writing the done record but before releasing the
    # lease: the done file wins and the lease is junk.
    queue = FileWorkQueue(tmp_path / "queue")
    queue.put({"id": "t", "spec_indices": [0]})
    task = queue.claim("w")
    # Simulate the partial complete: done record only.
    (queue.done_dir / "t.json").write_text(
        json.dumps({"task": task, "record": {"ok": True}})
    )
    requeued, abandoned = queue.reap(0.0)
    assert requeued == [] and abandoned == []
    assert queue.drained()
    assert not (queue.leased_dir / "t.json").exists()


def test_reap_drops_stale_leased_copy_of_requeued_task(tmp_path):
    # A requeue interrupted between the pending write and the leased
    # cleanup leaves both copies; the pending one is authoritative.
    queue = FileWorkQueue(tmp_path / "queue")
    queue.put({"id": "t", "spec_indices": [0]})
    task = queue.claim("w")
    (queue.pending_dir / "t.json").write_text(json.dumps(task))
    queue.reap(0.0)
    assert not (queue.leased_dir / "t.json").exists()
    assert queue.claim("w2") is not None


# ----------------------------------------------------------------------
# Manifest: identity, roundtrip, validation
# ----------------------------------------------------------------------


def _plan(batch_size=2, config=None):
    return plan_campaign(
        ["MVT"], ["fcfs", "simt"], seeds=2,
        scale=0.05, num_wavefronts=8, config=config, batch_size=batch_size,
    )


def test_manifest_roundtrip_rebuilds_identical_specs(tmp_path):
    manifest = _plan(config=tiny_config())
    path = tmp_path / "manifest.json"
    save_manifest(path, manifest)
    loaded = load_manifest(path)
    assert loaded.spec_keys == manifest.spec_keys
    assert loaded.batches == manifest.batches
    specs = loaded.build_specs()
    assert len(specs) == 4
    assert [spec["scheduler"] for spec in specs] == [
        "fcfs", "fcfs", "simt", "simt",
    ]


def test_manifest_rejects_edited_spec_keys(tmp_path):
    manifest = _plan()
    path = tmp_path / "manifest.json"
    save_manifest(path, manifest)
    payload = json.loads(path.read_text())
    payload["spec_keys"][0] = "0" * 24
    path.write_text(json.dumps(payload))
    with pytest.raises(ValueError, match="spec_keys"):
        load_manifest(path).build_specs()


def test_manifest_version_and_format_are_gated(tmp_path):
    path = tmp_path / "manifest.json"
    path.write_text(json.dumps({"format": "something-else"}))
    with pytest.raises(ValueError, match="not a campaign manifest"):
        load_manifest(path)
    manifest = _plan()
    save_manifest(path, manifest)
    payload = json.loads(path.read_text())
    payload["version"] = 99
    path.write_text(json.dumps(payload))
    with pytest.raises(ValueError, match="version 99"):
        load_manifest(path)
    with pytest.raises(FileNotFoundError, match="service init"):
        load_manifest(tmp_path / "missing.json")


# ----------------------------------------------------------------------
# Broker: init, resume repair, merge enforcement
# ----------------------------------------------------------------------


def _init(tmp_path, **overrides):
    options = dict(
        workloads=["MVT"], schedulers=["fcfs", "simt"], seeds=2,
        scale=0.05, num_wavefronts=8, config=tiny_config(), batch_size=2,
    )
    options.update(overrides)
    return init_campaign(tmp_path / "campaign", **options)


def test_init_refuses_to_overwrite_a_campaign(tmp_path):
    _init(tmp_path)
    with pytest.raises(FileExistsError, match="resume"):
        _init(tmp_path)


def test_resume_restores_tasks_lost_mid_enqueue(tmp_path):
    manifest = _init(tmp_path)
    campaign_dir = tmp_path / "campaign"
    queue = FileWorkQueue(manifest_mod.queue_root(campaign_dir))
    # Broker "crashed mid-enqueue": one task file never landed.
    os.unlink(queue.pending_dir / f"{manifest.task_id(0)}.json")
    summary = resume_campaign(campaign_dir)
    assert summary["restored"] == [manifest.task_id(0)]
    assert summary["queue"]["pending"] == len(manifest.batches)


def test_merge_refuses_an_incomplete_campaign(tmp_path):
    _init(tmp_path)
    campaign_dir = tmp_path / "campaign"
    with pytest.raises(RuntimeError, match="incomplete"):
        merge_campaign(campaign_dir)
    merged = merge_campaign(campaign_dir, allow_incomplete=True)
    report = merged["report"]
    assert report["failed"] == report["specs"]
    assert all(
        failure["error_type"] == "Incomplete"
        for failure in report["failures"]
    )


def test_merge_detects_duplicated_and_lost_placement(tmp_path):
    manifest = _init(tmp_path)
    campaign_dir = tmp_path / "campaign"
    path = manifest_mod.manifest_path(campaign_dir)
    # Duplicate: spec 0 placed in two shards.
    manifest.batches = [[0, 1], [0, 3]]
    save_manifest(path, manifest)
    with pytest.raises(RuntimeError, match="duplicated"):
        merge_campaign(campaign_dir, allow_incomplete=True)
    # Lost: spec 2 in no shard.
    manifest.batches = [[0, 1], [3]]
    save_manifest(path, manifest)
    with pytest.raises(RuntimeError, match="lost specs \\[2\\]"):
        merge_campaign(campaign_dir, allow_incomplete=True)


# ----------------------------------------------------------------------
# End to end: byte-identity through workers, kills and restarts
# ----------------------------------------------------------------------


def _reference_rendering(manifest):
    specs = manifest.build_specs()
    return render_fleet_report(
        deterministic_view(
            fleet_report(
                specs,
                run_many_resilient(specs),
                baseline_scheduler=manifest.campaign["baseline"],
            )
        )
    )


def test_worker_drains_campaign_and_merge_matches_serial(tmp_path):
    manifest = _init(tmp_path)
    campaign_dir = tmp_path / "campaign"
    reference = _reference_rendering(manifest)
    summary = run_worker(
        campaign_dir, worker_id="w0", inrun_checkpoint_every=1000
    )
    assert sorted(summary["tasks_executed"]) == [
        manifest.task_id(index) for index in range(len(manifest.batches))
    ]
    status = campaign_status(campaign_dir)
    assert status["drained"] and not status["abandoned"]
    merged = merge_campaign(campaign_dir)
    deterministic = Path(merged["paths"]["deterministic"]).read_text()
    assert deterministic == reference + "\n"
    # Per-shard fleet logs landed, tagged with shard/worker context.
    logs = sorted(manifest_mod.shards_dir(campaign_dir).glob("*.jsonl"))
    assert len(logs) == len(manifest.batches)
    record = json.loads(logs[0].read_text().splitlines()[0])
    assert record["worker"] == "w0"
    assert record["shard"] == manifest.task_id(0)
    # The attempt audit is folded back into the manifest.
    updated = load_manifest(manifest_mod.manifest_path(campaign_dir))
    assert set(updated.attempts) == set(summary["tasks_executed"])
    assert all(entry["claims"] == 1 for entry in updated.attempts.values())


def test_sigkilled_worker_resumes_mid_spec_on_another_worker(tmp_path):
    # One spec is ~65k events at this scale; checkpointing every 1500
    # events gives the killer dozens of chances to land mid-simulation.
    manifest = init_campaign(
        tmp_path / "campaign",
        workloads=["MVT"], schedulers=["fcfs", "simt"], seeds=1,
        scale=0.3, num_wavefronts=24, config=tiny_config(), batch_size=1,
    )
    campaign_dir = tmp_path / "campaign"
    reference = _reference_rendering(manifest)

    checkpoints = manifest_mod.checkpoints_dir(campaign_dir)
    pool = spawn_workers(
        campaign_dir, 1, name_prefix="victim",
        lease_ttl=1.0, heartbeat_seconds=0.2, poll_seconds=0.1,
        inrun_checkpoint_every=1500,
    )
    victim = pool[0]
    # Kill the worker the moment a mid-run checkpoint appears: the spec
    # is provably half-done at that point.
    deadline = time.monotonic() + 60
    while not list(checkpoints.glob("*.ckpt")):
        assert time.monotonic() < deadline, "no in-run checkpoint appeared"
        assert victim.is_alive(), "worker finished before the kill landed"
        time.sleep(0.01)
    os.kill(victim.pid, signal.SIGKILL)
    victim.join(timeout=10)
    assert list(checkpoints.glob("*.ckpt")), "kill destroyed the checkpoint"

    # The campaign must be repairable: force-expire the dead worker's
    # lease, then a fresh worker finishes everything, resuming the
    # half-done spec from its in-run checkpoint.
    summary = resume_campaign(campaign_dir, force=True)
    assert len(summary["requeued"]) == 1
    run_worker(campaign_dir, worker_id="rescuer", inrun_checkpoint_every=1500)
    merged = merge_campaign(campaign_dir)
    deterministic = Path(merged["paths"]["deterministic"]).read_text()
    assert deterministic == reference + "\n"
    updated = load_manifest(manifest_mod.manifest_path(campaign_dir))
    assert any(
        entry["claims"] >= 2 for entry in updated.attempts.values()
    ), "no shard was ever re-claimed — the kill tested nothing"


def test_chaos_gate_survives_kills_and_full_restart(tmp_path):
    from repro.service.chaos import run_chaos

    summary = run_chaos(
        tmp_path / "chaos",
        seed=3,
        workers=2,
        workloads=("MVT",),
        schedulers=("fcfs", "simt"),
        seeds=1,
        scale=0.1,
        num_wavefronts=8,
        max_kills=1,
        kill_interval=(0.05, 0.2),
        restart_drill=True,
        max_seconds=120.0,
        quiet=True,
    )
    assert summary["identical"]
    assert summary["restart_drill"]
    assert summary["ok"] == summary["specs"]


# ----------------------------------------------------------------------
# CLI: the service subcommands drive the same machinery
# ----------------------------------------------------------------------


def test_service_cli_init_run_status_merge(tmp_path, capsys):
    from repro.__main__ import main

    campaign = str(tmp_path / "campaign")
    assert main([
        "service", "init", campaign,
        "--workloads", "MVT", "--schedulers", "fcfs,simt",
        "--seeds", "1", "--scale", "0.05", "--wavefronts", "8",
        "--batch-size", "1", "--quiet",
    ]) == 0
    # Status is nonzero while work is outstanding.
    assert main(["service", "status", campaign]) == 1
    assert main([
        "service", "worker", campaign, "--checkpoint-every", "1000", "--quiet",
    ]) == 0
    assert main(["service", "status", campaign]) == 0
    assert main(["service", "merge", campaign, "--quiet"]) == 0
    capsys.readouterr()
    report_path = (
        manifest_mod.report_dir(campaign) / "fleet_report.deterministic.json"
    )
    report = json.loads(report_path.read_text())
    assert report["ok"] == report["specs"] == 2
    assert "wall" not in report and "retried" not in report


# ----------------------------------------------------------------------
# FleetTelemetry context tagging (used by the per-shard logs)
# ----------------------------------------------------------------------


def test_fleet_telemetry_context_tags_every_record(tmp_path):
    log = tmp_path / "shard.jsonl"
    with FleetTelemetry(
        log_path=str(log), context={"shard": "batch-00001", "worker": "w9"}
    ) as telemetry:
        telemetry.sweep_started(total=1, jobs=1)
        telemetry.emit("custom", detail=7)
    records = [json.loads(line) for line in log.read_text().splitlines()]
    assert len(records) == 2
    assert all(record["shard"] == "batch-00001" for record in records)
    assert all(record["worker"] == "w9" for record in records)
    assert records[1]["detail"] == 7
