"""Unit tests for the radix page table and frame allocator."""

import pytest

from repro.config import PAGE_SIZE, PAGE_TABLE_LEVELS
from repro.mmu.page_table import FrameAllocator, PageTable


class TestFrameAllocator:
    def test_frames_are_unique(self):
        alloc = FrameAllocator()
        frames = [alloc.allocate() for _ in range(100)]
        assert len(set(frames)) == 100

    def test_frame_zero_reserved(self):
        with pytest.raises(ValueError):
            FrameAllocator(start_frame=0)
        assert FrameAllocator().allocate() >= 1

    def test_accounting(self):
        alloc = FrameAllocator()
        for _ in range(5):
            alloc.allocate()
        assert alloc.allocated_frames == 5
        assert alloc.allocated_bytes == 5 * PAGE_SIZE


class TestPageTable:
    def test_translate_allocates_lazily(self):
        table = PageTable()
        assert table.mapped_pages == 0
        pfn = table.translate(0x42)
        assert pfn >= 1
        assert table.mapped_pages == 1

    def test_translate_is_stable(self):
        table = PageTable()
        assert table.translate(0x42) == table.translate(0x42)
        assert table.mapped_pages == 1

    def test_distinct_vpns_get_distinct_frames(self):
        table = PageTable()
        pfns = {table.translate(vpn) for vpn in range(64)}
        assert len(pfns) == 64

    def test_lookup_has_no_side_effects(self):
        table = PageTable()
        assert table.lookup(0x99) is None
        assert table.mapped_pages == 0
        table.translate(0x99)
        assert table.lookup(0x99) is not None

    def test_walk_addresses_has_four_levels(self):
        table = PageTable()
        path = table.walk_addresses(0x1234)
        assert len(path) == PAGE_TABLE_LEVELS
        levels = [level for level, _ in path]
        assert levels == [4, 3, 2, 1]

    def test_walk_addresses_are_page_table_entries(self):
        table = PageTable()
        for _, address in table.walk_addresses(0xABCDE):
            assert address % 8 == 0  # PTE-aligned

    def test_same_region_shares_upper_levels(self):
        table = PageTable()
        # Adjacent vpns share all interior nodes; only the leaf index
        # (within the same level-1 table page) differs.
        path_a = table.walk_addresses(0x1000)
        path_b = table.walk_addresses(0x1001)
        for (la, aa), (lb, ab) in zip(path_a[:-1], path_b[:-1]):
            assert la == lb
            assert aa == ab
        # Leaf entries live in the same table page, different slots.
        assert path_a[-1][1] != path_b[-1][1]
        assert path_a[-1][1] // PAGE_SIZE == path_b[-1][1] // PAGE_SIZE

    def test_far_apart_vpns_use_different_interior_nodes(self):
        table = PageTable()
        path_a = table.walk_addresses(0)
        path_b = table.walk_addresses(1 << 27)  # different level-4 index
        # Root access address is the same table page (the root), but the
        # level-3 tables differ.
        assert path_a[0][1] // PAGE_SIZE == path_b[0][1] // PAGE_SIZE
        assert path_a[1][1] // PAGE_SIZE != path_b[1][1] // PAGE_SIZE

    def test_interior_node_count_grows_with_spread(self):
        table = PageTable()
        before = table.interior_nodes
        table.translate(0)
        table.translate(1 << 27)
        assert table.interior_nodes > before

    def test_walk_addresses_maps_on_demand(self):
        table = PageTable()
        table.walk_addresses(0x777)
        assert table.lookup(0x777) is not None

    def test_root_address_is_page_aligned(self):
        assert PageTable().root_address % PAGE_SIZE == 0
