"""Unit tests for the page walk caches and their 2-bit counters."""

from repro.config import PWCConfig
from repro.mmu.pwc import PageWalkCache


def make_pwc(entries=8, ways=4, guard=True):
    return PageWalkCache(
        PWCConfig(entries_per_level=entries, associativity=ways, counter_guard=guard)
    )


class TestWalkEstimates:
    def test_cold_pwc_needs_full_walk(self):
        pwc = make_pwc()
        assert pwc.peek_accesses(0x12345) == 4

    def test_fill_reduces_to_one_access(self):
        pwc = make_pwc()
        pwc.fill(0x12345)
        assert pwc.peek_accesses(0x12345) == 1

    def test_same_2mb_region_shares_level2_entry(self):
        pwc = make_pwc()
        pwc.fill(0x200)  # fills prefixes for the region
        assert pwc.peek_accesses(0x201) == 1  # same level-2 region

    def test_same_1gb_region_hits_level3(self):
        pwc = make_pwc()
        pwc.fill(0)
        # Same level-3 prefix (bits ≥18 equal), different level-2 region.
        other = 1 << 9
        assert pwc.peek_accesses(other) == 2

    def test_same_512gb_region_hits_level4(self):
        pwc = make_pwc()
        pwc.fill(0)
        other = 1 << 18  # same level-4 index only
        assert pwc.peek_accesses(other) == 3

    def test_unrelated_vpn_still_misses(self):
        pwc = make_pwc()
        pwc.fill(0)
        assert pwc.peek_accesses(1 << 27) == 4

    def test_accesses_for_hit_level_mapping(self):
        pwc = make_pwc()
        assert pwc.accesses_for_hit_level(0) == 4
        assert pwc.accesses_for_hit_level(4) == 3
        assert pwc.accesses_for_hit_level(3) == 2
        assert pwc.accesses_for_hit_level(2) == 1


class TestEstimateVsWalkLookups:
    def test_estimate_matches_peek(self):
        pwc = make_pwc()
        pwc.fill(0x400)
        assert pwc.estimate_accesses(0x400) == pwc.peek_accesses(0x400)

    def test_walk_lookup_matches_estimate_when_unchanged(self):
        pwc = make_pwc()
        pwc.fill(0x400)
        estimate = pwc.estimate_accesses(0x400)
        assert pwc.walk_lookup(0x400) == estimate


class TestCounterGuard:
    def test_scored_entry_survives_replacement_pressure(self):
        # One set (ways == entries): fill with A, score it (pins), then
        # insert enough new entries to evict everything unpinned.
        # Regions differ at every page-table level (bit 27 stride).
        pwc = make_pwc(entries=2, ways=2, guard=True)
        a, b, c = 1 << 27, 2 << 27, 3 << 27
        pwc.fill(a)
        pwc.estimate_accesses(a)  # pin A's entries
        # These fills target other tags and must victimise the unpinned.
        pwc.fill(b)
        pwc.fill(c)
        assert pwc.peek_accesses(a) == 1  # A still cached

    def test_unpinning_after_walk_lookup_allows_eviction(self):
        pwc = make_pwc(entries=2, ways=2, guard=True)
        vpn_a = 1 << 27
        pwc.fill(vpn_a)
        _, pinned = pwc.score(vpn_a)  # pin
        pwc.walk_lookup(vpn_a, pinned)  # unpin (2-b)
        pwc.fill(2 << 27)
        pwc.fill(3 << 27)
        assert pwc.peek_accesses(vpn_a) == 4  # evicted normally

    def test_unscored_walk_leaves_pins_alone(self):
        # A prefetch or non-scoring scheduler walks without a score
        # record: walk_lookup must not decrement anyone's counters.
        pwc = make_pwc(entries=2, ways=2, guard=True)
        vpn_a = 1 << 27
        pwc.fill(vpn_a)
        pwc.score(vpn_a)  # pin
        pwc.walk_lookup(vpn_a)  # unscored walk: no pinned_levels
        pwc.fill(2 << 27)
        pwc.fill(3 << 27)
        assert pwc.peek_accesses(vpn_a) == 1  # pin intact, A survives

    def test_pin_drift_between_score_and_walk(self):
        # Regression: walk_lookup must unpin the levels recorded when
        # the walk was *scored*, not the levels it hits at walk time.
        # The hit depth can change in between (here a fill deepens it);
        # unpinning by walk-time depth would strip pins that belong to
        # a still-pending request.
        pwc = make_pwc(entries=2, ways=2, guard=True)
        base, sibling = 0, 1 << 18  # same level-4 prefix, new level-3/2
        pwc.fill(base)
        accesses, pinned = pwc.score(sibling)
        assert accesses == 3
        assert pinned == (4,)  # only the level-4 entry was hit
        pwc.fill(sibling)  # depth changes: levels 2..4 now cached
        _, pinned_b = pwc.score(sibling)  # a second request pins 2,3,4
        assert pinned_b == (2, 3, 4)
        pwc.walk_lookup(sibling, pinned)  # first walk unpins level 4 only
        counters = {}
        for level in (2, 3, 4):
            tag = pwc.geometry.vpn_prefix(sibling, level)
            counters[level] = pwc._levels[level]._set_for(tag)[tag].counter
        assert counters == {2: 1, 3: 1, 4: 1}  # request B's pins intact

    def test_no_guard_evicts_pinned(self):
        pwc = make_pwc(entries=2, ways=2, guard=False)
        vpn_a = 1 << 27
        pwc.fill(vpn_a)
        pwc.estimate_accesses(vpn_a)
        pwc.fill(2 << 27)
        pwc.fill(3 << 27)
        assert pwc.peek_accesses(vpn_a) == 4

    def test_fully_pinned_set_falls_back_to_lru(self):
        pwc = make_pwc(entries=2, ways=2, guard=True)
        a, b, c = 1 << 27, 2 << 27, 3 << 27
        pwc.fill(a)
        pwc.fill(b)
        pwc.estimate_accesses(a)
        pwc.estimate_accesses(b)
        pwc.fill(c)  # every entry pinned: plain LRU must still evict
        stats = pwc.stats()
        assert any(
            level["guarded_evictions_avoided"] > 0 for level in stats.values()
        )

    def test_counters_saturate(self):
        pwc = make_pwc(entries=2, ways=2, guard=True)
        vpn = 1 << 27
        pwc.fill(vpn)
        pins = [pwc.score(vpn)[1] for _ in range(10)]  # saturates at 3
        for pinned in pins:  # decrements floor at 0
            pwc.walk_lookup(vpn, pinned)
        # After the flurry the entry must be evictable again.
        pwc.fill(2 << 27)
        pwc.fill(3 << 27)
        assert pwc.peek_accesses(vpn) == 4


class TestStats:
    def test_stats_shape(self):
        pwc = make_pwc()
        pwc.estimate_accesses(123)
        stats = pwc.stats()
        assert set(stats) == {"level4", "level3", "level2"}
        for level in stats.values():
            assert {"hits", "misses", "guarded_evictions_avoided"} <= set(level)
