"""Figure registry, HTML campaign report, and live dashboard tests.

The determinism tests are the load-bearing ones: the figure pipeline's
contract is that ``jobs=1`` and ``jobs=2`` sweeps of the same specs
produce byte-identical Vega-Lite specs, CSVs and HTML.  The golden
tests pin the emitted bytes of one representative figure so accidental
format drift (key order, float rendering, palette edits) fails loudly
instead of silently rewriting every downstream artifact.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from tests.conftest import tiny_config
from repro.experiments.runner import run_many_resilient
from repro.obs.aggregate import fleet_report, sweep_specs
from repro.obs.figures import (
    CATEGORICAL_PALETTE,
    FIGURES,
    CampaignData,
    FigureSkipped,
    build_figures,
    emit_figures,
    figure_names,
    load_campaign_input,
    scheduler_color,
    validate_figure,
)
from repro.obs.live import (
    discover_logs,
    progress_snapshot,
    read_fleet_events,
    serve_dashboard,
)
from repro.obs.report import audit_from_manifest, build_report_html, render_campaign_report

GOLDEN_DIR = Path(__file__).parent / "golden_figures"


def _sweep_report(jobs=1, metrics=True):
    specs = sweep_specs(
        ["MVT"], ["fcfs", "simt"], range(2),
        config=tiny_config(), num_wavefronts=4, scale=0.05, metrics=metrics,
    )
    outcomes = run_many_resilient(specs, jobs=jobs)
    return fleet_report(specs, outcomes)


@pytest.fixture(scope="module")
def report():
    return _sweep_report()


@pytest.fixture(scope="module")
def campaign(report):
    return CampaignData.from_reports([("tiny", report)])


# ----------------------------------------------------------------------
# Registry + builders
# ----------------------------------------------------------------------


def test_registry_covers_the_paper_charts():
    # The acceptance floor: at least 8 registered figures, including
    # every headline chart the ISSUE names.
    names = figure_names()
    assert len(names) >= 8
    for required in (
        "fig2_scheduler_impact", "fig6_first_last_latency", "fig8_speedup",
        "fig9_stalls", "fig10_latency_gap", "fig11_walk_count",
        "fig13_sensitivity", "fig14_sensitivity",
        "scheduler_comparison", "latency_cdf",
    ):
        assert required in names


def test_every_figure_builds_and_validates(campaign):
    figures, skipped = build_figures(campaign)
    assert not skipped
    assert len(figures) == len(FIGURES)
    for figure in figures:
        assert validate_figure(figure) == []
        assert figure.rows, figure.name


def test_fig8_has_geomean_row(campaign):
    figures, _ = build_figures(campaign, ["fig8_speedup"])
    rows = figures[0].rows
    assert any(row["workload"] == "GEOMEAN" for row in rows)
    # The baseline never gets a speedup bar of its own.
    assert all(row["scheduler"] != "fcfs" for row in rows)


def test_latency_cdf_requires_metrics():
    report = _sweep_report(metrics=False)
    data = CampaignData.from_reports([("plain", report)])
    figures, skipped = build_figures(data)
    assert "latency_cdf" in skipped
    assert "metrics" in skipped["latency_cdf"]
    # Even without metrics the acceptance floor of 8 figures holds.
    assert len(figures) >= 8


def test_latency_cdf_is_monotone(campaign):
    figures, _ = build_figures(campaign, ["latency_cdf"])
    by_scheduler = {}
    for row in figures[0].rows:
        by_scheduler.setdefault(row["scheduler"], []).append(row["cdf"])
    assert set(by_scheduler) == {"fcfs", "simt"}
    for fractions in by_scheduler.values():
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)


def test_scheduler_color_is_fixed_assignment():
    encoding = scheduler_color(["simt", "fcfs"])
    assert encoding["scale"]["domain"] == ["fcfs", "simt"]
    assert encoding["scale"]["range"] == list(CATEGORICAL_PALETTE[:2])
    # Same schedulers, different arrival order: identical assignment.
    assert scheduler_color(["fcfs", "simt"]) == encoding


def test_scheduler_color_never_cycles_the_palette():
    too_many = [f"sched{i}" for i in range(len(CATEGORICAL_PALETTE) + 1)]
    with pytest.raises(FigureSkipped):
        scheduler_color(too_many)


def test_build_figures_rejects_unknown_names(campaign):
    with pytest.raises(ValueError, match="unknown figure"):
        build_figures(campaign, ["no_such_figure"])


def test_campaign_data_rejects_non_reports():
    with pytest.raises(ValueError, match="not a fleet report"):
        CampaignData.from_reports([("bad", {"format": "something-else"})])


def test_normalised_figures_null_out_zero_baselines(report):
    doctored = json.loads(json.dumps(report))
    for run in doctored["runs"]:
        if run["scheduler"] == "fcfs":
            run["stall_cycles"] = 0
    data = CampaignData.from_reports([("tiny", doctored)])
    with pytest.raises(FigureSkipped, match="zero"):
        FIGURES["fig9_stalls"].build(data)


# ----------------------------------------------------------------------
# Blame (walk-stage attribution) figures
# ----------------------------------------------------------------------


def test_blame_stage_share_rows_sum_to_one(campaign):
    from repro.obs.attrib import STAGES

    figures, _ = build_figures(campaign, ["blame_stage_share"])
    rows = figures[0].rows
    by_scheduler = {}
    for row in rows:
        by_scheduler.setdefault(row["scheduler"], []).append(row)
    assert set(by_scheduler) == {"fcfs", "simt"}
    for scheduler_rows in by_scheduler.values():
        assert sum(row["share"] for row in scheduler_rows) == pytest.approx(
            1.0, abs=1e-4
        )
        # Stacked in pipeline order, one row per counter-backed stage
        # (service_gap is a trace-only residue slot — no counter).
        expected = [stage for stage in STAGES if stage != "service_gap"]
        assert [row["stage"] for row in scheduler_rows] == expected
        orders = [row["order"] for row in scheduler_rows]
        assert orders == sorted(orders)


def test_blame_waterfall_segments_tile_without_gaps(campaign):
    figures, _ = build_figures(campaign, ["blame_waterfall"])
    by_scheduler = {}
    for row in figures[0].rows:
        by_scheduler.setdefault(row["scheduler"], []).append(row)
    for scheduler_rows in by_scheduler.values():
        cursor = 0.0
        for row in scheduler_rows:
            assert row["start"] == pytest.approx(cursor)
            assert row["end"] >= row["start"]
            cursor = row["end"]
        assert cursor > 0


def test_blame_figures_skip_without_metrics():
    report = _sweep_report(metrics=False)
    data = CampaignData.from_reports([("plain", report)])
    _, skipped = build_figures(data)
    assert "blame_stage_share" in skipped
    assert "blame_waterfall" in skipped
    assert "metrics" in skipped["blame_stage_share"]


def test_blame_stage_colors_are_stable(campaign):
    figures, _ = build_figures(campaign, ["blame_stage_share"])
    color = figures[0].spec["encoding"]["color"]
    # The color scale is keyed by stage in pipeline order with a fixed
    # slot per stage, so adding a scheduler (or a report without some
    # stage) never reshuffles stage colors between reports.
    from repro.obs.attrib import STAGES

    present = [stage for stage in STAGES if stage != "service_gap"]
    assert color["scale"]["domain"] == present
    assert color["scale"]["range"] == [
        CATEGORICAL_PALETTE[STAGES.index(stage) % len(CATEGORICAL_PALETTE)]
        for stage in present
    ]


# ----------------------------------------------------------------------
# Emission + golden pins
# ----------------------------------------------------------------------


def test_emit_figures_writes_specs_csvs_and_manifest(campaign, tmp_path):
    manifest = emit_figures(campaign, tmp_path)
    assert manifest["format"] == "repro-figures"
    assert len(manifest["figures"]) == len(FIGURES)
    for entry in manifest["figures"]:
        spec_path = tmp_path / entry["spec"]
        csv_path = tmp_path / entry["csv"]
        spec = json.loads(spec_path.read_text())
        assert spec["$schema"].endswith("vega-lite/v5.json")
        assert spec["data"]["url"] == csv_path.name
        header = csv_path.read_text().splitlines()[0]
        for field in {
            channel.get("field")
            for unit in spec.get("layer", [spec])
            for channel in unit.get("encoding", {}).values()
            if isinstance(channel, dict) and channel.get("field")
        }:
            assert field in header.split(",")
    listed = json.loads((tmp_path / "figures.json").read_text())
    assert listed == manifest


def test_fig8_matches_golden(campaign):
    figures, _ = build_figures(campaign, ["fig8_speedup"])
    figure = figures[0]
    golden_spec = (GOLDEN_DIR / "fig8_speedup.vl.json").read_text()
    golden_csv = (GOLDEN_DIR / "fig8_speedup.csv").read_text()
    assert figure.spec_json() == golden_spec
    assert figure.csv() == golden_csv


def test_latency_cdf_spec_matches_golden(campaign):
    figures, _ = build_figures(campaign, ["latency_cdf"])
    golden_spec = (GOLDEN_DIR / "latency_cdf.vl.json").read_text()
    assert figures[0].spec_json() == golden_spec


def test_blame_stage_share_spec_matches_golden(campaign):
    figures, _ = build_figures(campaign, ["blame_stage_share"])
    golden_spec = (GOLDEN_DIR / "blame_stage_share.vl.json").read_text()
    assert figures[0].spec_json() == golden_spec


# ----------------------------------------------------------------------
# Determinism across worker counts
# ----------------------------------------------------------------------


def test_pipeline_byte_identical_across_jobs(tmp_path):
    outputs = {}
    for jobs in (1, 2):
        report = _sweep_report(jobs=jobs)
        data = CampaignData.from_reports([("tiny", report)])
        out_dir = tmp_path / f"jobs{jobs}"
        emit_figures(data, out_dir)
        figures, skipped = build_figures(data)
        html = build_report_html([("tiny", report)], figures, skipped)
        outputs[jobs] = (
            {
                path.name: path.read_bytes()
                for path in sorted(out_dir.iterdir())
            },
            html,
        )
    assert outputs[1][0] == outputs[2][0]
    assert outputs[1][1] == outputs[2][1]


# ----------------------------------------------------------------------
# HTML campaign report
# ----------------------------------------------------------------------


def test_report_html_is_self_contained(report, campaign):
    figures, skipped = build_figures(campaign)
    html = build_report_html([("tiny", report)], figures, skipped)
    assert html.startswith("<!DOCTYPE html>")
    for figure in figures:
        assert figure.title in html
        # Data values ride inline: the page never needs the CSV files.
        assert f'id="vis-{figure.name}"' in html
    assert '"values"' in html and '"url"' not in html.split("</head>")[1]
    assert "Bench gate" in html
    assert "Failures" in html


def test_report_html_gate_verdicts(report, campaign):
    figures, skipped = build_figures(campaign)
    gate = {
        "ok": False,
        "regressions": 1,
        "missing": 2,
        "rows": [
            {
                "metric": "fleet:overhead.slowdown_with_telemetry",
                "baseline": 1.01,
                "current": 1.5,
                "relative_change": 0.485,
                "status": "regression",
            }
        ],
    }
    html = build_report_html(
        [("tiny", report)], figures, skipped, gate=gate
    )
    assert "FAIL" in html
    assert "fleet:overhead.slowdown_with_telemetry" in html
    assert "status-bad" in html


def test_report_audit_section_flags_reclaimed_shards(report, campaign):
    manifest = {
        "attempts": {
            "batch-00000": {"claims": 1, "abandoned": False},
            "batch-00001": {"claims": 3, "abandoned": False},
            "batch-00002": {"claims": 2, "abandoned": True},
        }
    }
    audit = audit_from_manifest(manifest)
    assert audit["tasks_total"] == 3
    flagged = {row["task"]: row["status"] for row in audit["tasks_flagged"]}
    assert flagged == {
        "batch-00001": "reclaimed", "batch-00002": "abandoned",
    }
    figures, skipped = build_figures(campaign)
    html = build_report_html(
        [("tiny", report)], figures, skipped,
        manifests={"tiny": manifest},
    )
    assert "batch-00001" in html and "abandoned" in html


def test_render_campaign_report_one_call(report):
    html = render_campaign_report([("tiny", report)])
    assert "<h1>" in html and "fig8_speedup" in html


def test_load_campaign_input_file_and_dir(report, tmp_path):
    report_path = tmp_path / "fleet_report.json"
    report_path.write_text(json.dumps(report))
    label, loaded, manifest = load_campaign_input(report_path)
    assert label == "fleet_report"
    assert loaded["specs"] == report["specs"]
    assert manifest is None

    campaign_dir = tmp_path / "camp"
    (campaign_dir / "report").mkdir(parents=True)
    (campaign_dir / "report" / "fleet_report.json").write_text(
        json.dumps(report)
    )
    (campaign_dir / "manifest.json").write_text(json.dumps({"attempts": {}}))
    label, loaded, manifest = load_campaign_input(campaign_dir)
    assert label == "camp"
    assert manifest == {"attempts": {}}

    unmerged = tmp_path / "empty"
    unmerged.mkdir()
    with pytest.raises(FileNotFoundError, match="service merge"):
        load_campaign_input(unmerged)


# ----------------------------------------------------------------------
# Live dashboard
# ----------------------------------------------------------------------


def _event(kind, t, source="shard-a", **fields):
    return {"event": kind, "t": t, "source": source, **fields}


def test_progress_snapshot_counts_and_eta():
    events = [
        _event("sweep_started", 0.0, total=4, jobs=2),
        _event("spec_started", 1.0, index=0, spec="a", attempt=1),
        _event("spec_started", 1.0, index=1, spec="b", attempt=1),
        _event("spec_finished", 11.0, index=0, spec="a", status="ok",
               attempts=1, elapsed_seconds=10.0),
        _event("spec_started", 11.0, index=2, spec="c", attempt=1),
        _event("heartbeat", 12.0, index=1, attempt=1, pid=42,
               elapsed_seconds=11.0),
    ]
    snap = progress_snapshot(events, now=15.0)
    assert snap["total_specs"] == 4
    assert snap["done"] == 1
    assert snap["status_counts"] == {"ok": 1}
    assert {row["index"] for row in snap["running"]} == {1, 2}
    beat = {row["index"]: row for row in snap["running"]}
    assert beat[1]["pid"] == 42
    assert beat[1]["heartbeat_age_seconds"] == 3.0
    assert beat[1]["stale"] is False
    assert snap["eta_seconds"] is not None and snap["eta_seconds"] > 0
    assert snap["complete"] is False


def test_progress_snapshot_flags_stale_heartbeats():
    events = [
        _event("spec_started", 0.0, index=0, spec="a", attempt=1),
        _event("heartbeat", 5.0, index=0, attempt=1, pid=7,
               elapsed_seconds=5.0),
    ]
    snap = progress_snapshot(events, now=500.0)
    assert snap["running"][0]["stale"] is True
    assert snap["stale_workers"] == 1


def test_progress_snapshot_counts_retries_and_timeouts():
    events = [
        _event("spec_started", 0.0, index=0, spec="a", attempt=1),
        _event("spec_timeout", 10.0, index=0, spec="a", attempt=1,
               timeout_seconds=10.0),
        _event("spec_retry", 10.5, index=0, spec="a", attempt=1,
               status="timeout", error_type=None, error=None,
               backoff_seconds=0.1),
        _event("spec_finished", 20.0, index=0, spec="a", status="ok",
               attempts=2, elapsed_seconds=9.0),
        _event("sweep_finished", 21.0),
    ]
    snap = progress_snapshot(events, total_specs=1)
    assert snap["retries"] == 1
    assert snap["timeouts"] == 1
    assert snap["complete"] is True
    assert snap["running"] == []


def test_progress_snapshot_keeps_shard_indices_separate():
    events = [
        _event("spec_finished", 1.0, source="shard-a", index=0, spec="a",
               status="ok", attempts=1, elapsed_seconds=1.0),
        _event("spec_finished", 2.0, source="shard-b", index=0, spec="b",
               status="ok", attempts=1, elapsed_seconds=1.0),
    ]
    snap = progress_snapshot(events, total_specs=2)
    assert snap["done"] == 2  # same index, different shards: both count


def test_progress_snapshot_empty_fleet_is_calm():
    snap = progress_snapshot([])
    assert snap["total_specs"] is None
    assert snap["done"] == 0
    assert snap["running"] == []
    assert snap["eta_seconds"] is None
    assert snap["complete"] is False
    assert snap["stale_workers"] == 0


def test_progress_snapshot_zero_completed_has_no_eta():
    # Specs running but none finished: ETA must stay None, not divide
    # by a zero completion rate.
    events = [
        _event("sweep_started", 0.0, total=8, jobs=2),
        _event("spec_started", 1.0, index=0, spec="a", attempt=1),
        _event("spec_started", 1.0, index=1, spec="b", attempt=1),
    ]
    snap = progress_snapshot(events, now=100.0)
    assert snap["done"] == 0
    assert snap["eta_seconds"] is None
    assert snap["total_specs"] == 8


def test_progress_snapshot_tolerates_garbage_fields():
    # A shard log that died mid-write can leave null/string fields in
    # otherwise-parseable records; the snapshot must coerce, not crash.
    events = [
        _event("sweep_started", "0.5", total="4", jobs=None),
        _event("spec_started", "12.5", index="0", spec="a", attempt=1),
        _event("spec_finished", None, index=0, spec="a", status="ok",
               attempts=1, elapsed_seconds="bogus"),
        {"event": "heartbeat", "t": float("nan"), "index": 1},
    ]
    snap = progress_snapshot(events, now=20.0)
    assert snap["total_specs"] == 4
    assert snap["done"] == 1


def test_progress_snapshot_stale_falls_back_to_start_time():
    # The shard log ended mid-line, so the worker's last heartbeat was
    # torn away: staleness must fall back to the spec_started time
    # instead of treating the worker as forever fresh.
    events = [
        _event("spec_started", 12.5, index=0, spec="a", attempt=1),
    ]
    snap = progress_snapshot(events, now=500.0)
    (row,) = snap["running"]
    assert row["heartbeat_age_seconds"] is None
    assert row["stale"] is True
    assert snap["stale_workers"] == 1
    # A torn heartbeat with an unusable timestamp behaves the same way.
    events.append({"event": "heartbeat", "t": None, "index": 0,
                   "source": "shard-a"})
    snap = progress_snapshot(events, now=500.0)
    assert snap["running"][0]["stale"] is True


def test_read_fleet_events_tolerates_partial_lines(tmp_path):
    log = tmp_path / "fleet.jsonl"
    log.write_text(
        json.dumps({"event": "sweep_started", "total": 2, "t": 1.0}) + "\n"
        + '{"event": "spec_started", "ind'  # torn mid-write
    )
    events = read_fleet_events([log])
    assert len(events) == 1
    assert events[0]["source"] == "fleet"


def test_discover_logs_prefers_shards_dir(tmp_path):
    (tmp_path / "shards").mkdir()
    (tmp_path / "shards" / "b.jsonl").write_text("")
    (tmp_path / "shards" / "a.jsonl").write_text("")
    (tmp_path / "stray.jsonl").write_text("")
    logs = discover_logs(tmp_path)
    assert [path.name for path in logs] == ["a.jsonl", "b.jsonl"]


def test_dashboard_server_round_trip(tmp_path):
    import threading
    import urllib.request

    log = tmp_path / "fleet.jsonl"
    log.write_text(
        json.dumps({"event": "sweep_started", "total": 1, "jobs": 1,
                    "t": 1.0}) + "\n"
        + json.dumps({"event": "spec_finished", "index": 0, "spec": "a",
                      "status": "ok", "attempts": 1,
                      "elapsed_seconds": 2.0, "t": 3.0}) + "\n"
    )
    server = serve_dashboard(log, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        host, port = server.server_address[:2]
        page = urllib.request.urlopen(
            f"http://{host}:{port}/"
        ).read().decode()
        assert "Live sweep progress" in page
        data = json.loads(
            urllib.request.urlopen(f"http://{host}:{port}/data.json").read()
        )
        assert data["done"] == 1
        assert data["total_specs"] == 1
        assert data["complete"] is True
    finally:
        server.shutdown()
        server.server_close()


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def test_cli_figures_list(capsys):
    from repro.__main__ import main

    assert main(["figures", "--list"]) == 0
    out = capsys.readouterr().out
    for name in figure_names():
        assert name in out


def test_cli_figures_emits_specs_csvs_and_html(report, tmp_path, capsys):
    from repro.__main__ import main

    report_path = tmp_path / "fleet_report.json"
    report_path.write_text(json.dumps(report))
    out_dir = tmp_path / "figs"
    code = main([
        "figures", str(report_path), "--out", str(out_dir), "--no-gate",
    ])
    assert code == 0
    out = capsys.readouterr().out
    manifest = json.loads((out_dir / "figures.json").read_text())
    assert len(manifest["figures"]) >= 8
    html = (out_dir / "campaign_report.html").read_text()
    assert html.startswith("<!DOCTYPE html>")
    assert "wrote" in out


def test_cli_figures_requires_input(capsys):
    from repro.__main__ import main

    assert main(["figures"]) == 2
    assert "required" in capsys.readouterr().err


def test_cli_figures_only_subset(report, tmp_path, capsys):
    from repro.__main__ import main

    report_path = tmp_path / "fleet_report.json"
    report_path.write_text(json.dumps(report))
    out_dir = tmp_path / "figs"
    code = main([
        "figures", str(report_path), "--out", str(out_dir),
        "--only", "fig8_speedup,latency_cdf", "--no-gate", "--no-html",
        "--quiet",
    ])
    assert code == 0
    capsys.readouterr()
    names = sorted(
        path.name for path in out_dir.iterdir() if path.suffix == ".json"
    )
    assert names == [
        "fig8_speedup.vl.json", "figures.json", "latency_cdf.vl.json",
    ]


def test_cli_report_static(report, tmp_path, capsys):
    from repro.__main__ import main

    report_path = tmp_path / "fleet_report.json"
    report_path.write_text(json.dumps(report))
    out_path = tmp_path / "page.html"
    code = main([
        "report", str(report_path), "--out", str(out_path), "--no-gate",
        "--quiet",
    ])
    assert code == 0
    capsys.readouterr()
    assert "fig8_speedup" in out_path.read_text()
