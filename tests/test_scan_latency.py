"""Tests for the scheduler scan-latency model (paper §IV subtleties)."""

from tests.test_iommu import make_iommu, make_request


def make_iommu_with_scan(scan_latency, **kwargs):
    sim, table, iommu = make_iommu(**kwargs)
    # IOMMUConfig is a plain dataclass; adjust the knob directly.
    iommu.config.scan_latency_cycles = scan_latency
    return sim, table, iommu


def test_zero_scan_latency_dispatches_back_to_back():
    sim, _, iommu = make_iommu_with_scan(0, num_walkers=1, latency=10)
    for vpn in range(3):
        iommu.translate(make_request(vpn))
    sim.run()
    assert iommu.walks_dispatched == 3
    baseline_cycles = sim.now
    assert baseline_cycles > 0


def test_scan_latency_delays_scheduled_dispatches():
    def completion_time(scan):
        sim, _, iommu = make_iommu_with_scan(
            scan, scheduler="simt", num_walkers=1, latency=10
        )
        for vpn in range(4):
            iommu.translate(make_request(vpn))
        sim.run()
        assert iommu.walks_dispatched == 4
        return sim.now

    # Three scheduled (non-direct) dispatches × scan cycles of delay.
    assert completion_time(5) == completion_time(0) + 3 * 5


def test_fifo_policies_pay_no_scan_cost():
    def completion_time(scan):
        sim, _, iommu = make_iommu_with_scan(scan, num_walkers=1, latency=10)
        for vpn in range(4):
            iommu.translate(make_request(vpn))
        sim.run()
        return sim.now

    # FCFS pops a queue head in hardware: scan latency must not apply.
    assert completion_time(50) == completion_time(0)


def test_direct_dispatch_skips_the_scan():
    # An idle-walker arrival never pays scan latency (paper: "If a free
    # page table walker is immediately available, the scheduler plays no
    # role and no scanning is involved").
    sim, _, iommu = make_iommu_with_scan(
        50, scheduler="simt", num_walkers=2, latency=10
    )
    iommu.translate(make_request(0x1))
    sim.run()
    assert sim.now == 40  # four chained reads, no scan delay


def test_all_requests_still_serviced_under_scan_latency():
    sim, _, iommu = make_iommu_with_scan(
        7, scheduler="simt", num_walkers=2, latency=10
    )
    done = []
    for vpn in range(8):
        iommu.translate(make_request(vpn, done=done))
    sim.run()
    assert len(done) == 8
