"""Unit tests for the page-table walker state machine."""

from repro.config import PWCConfig
from repro.core.request import TranslationRequest, WalkBufferEntry
from repro.engine.simulator import Simulator
from repro.mmu.page_table import PageTable
from repro.mmu.pwc import PageWalkCache
from repro.mmu.walker import PageTableWalker


def make_walker(latency=10):
    sim = Simulator()
    table = PageTable()
    pwc = PageWalkCache(PWCConfig(entries_per_level=8, associativity=4))
    accesses = []

    def page_table_read(address, on_complete):
        accesses.append(address)
        sim.after(latency, on_complete)

    walker = PageTableWalker(0, sim, table, pwc, page_table_read)
    return sim, table, pwc, walker, accesses


def make_entry(vpn):
    request = TranslationRequest(
        vpn=vpn, instruction_id=0, wavefront_id=0, cu_id=0, issue_time=0
    )
    return WalkBufferEntry(request, arrival_seq=0, arrival_time=0)


def run_walk(sim, walker, entry):
    results = []
    walker.start(entry, lambda w, e, pfn, acc: results.append((pfn, acc, sim.now)))
    sim.run()
    assert len(results) == 1
    return results[0]


def test_cold_walk_takes_four_sequential_accesses():
    sim, table, pwc, walker, accesses = make_walker(latency=10)
    pfn, walk_accesses, finished_at = run_walk(sim, walker, make_entry(0x123))
    assert walk_accesses == 4
    assert len(accesses) == 4
    assert finished_at == 40  # four chained 10-cycle reads


def test_walk_returns_correct_translation():
    sim, table, pwc, walker, _ = make_walker()
    pfn, _, _ = run_walk(sim, walker, make_entry(0x555))
    assert pfn == table.lookup(0x555)


def test_pwc_fill_shortens_next_walk():
    sim, table, pwc, walker, accesses = make_walker()
    run_walk(sim, walker, make_entry(0x700))
    accesses.clear()
    # Same 2 MB region: only the leaf access remains.
    _, walk_accesses, _ = run_walk(sim, walker, make_entry(0x701))
    assert walk_accesses == 1
    assert len(accesses) == 1


def test_walker_busy_flag():
    sim, table, pwc, walker, _ = make_walker()
    entry = make_entry(0x1)
    walker.start(entry, lambda *args: None)
    assert walker.is_busy
    assert walker.current_entry is entry
    sim.run()
    assert not walker.is_busy


def test_walker_rejects_double_start():
    import pytest

    sim, table, pwc, walker, _ = make_walker()
    walker.start(make_entry(0x1), lambda *args: None)
    with pytest.raises(RuntimeError):
        walker.start(make_entry(0x2), lambda *args: None)


def test_walk_accesses_descend_the_radix_tree():
    sim, table, pwc, walker, accesses = make_walker()
    run_walk(sim, walker, make_entry(0x999))
    expected = [address for _, address in table.walk_addresses(0x999)]
    assert accesses == expected


def test_statistics():
    sim, table, pwc, walker, _ = make_walker()
    run_walk(sim, walker, make_entry(0x10))
    run_walk(sim, walker, make_entry(0x11))
    assert walker.walks_completed == 2
    assert walker.memory_accesses == 5  # 4 cold + 1 PWC-assisted
    assert walker.busy_cycles > 0
