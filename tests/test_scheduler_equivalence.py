"""Differential tests: indexed hot path ≡ naive linear-scan reference.

Three layers of evidence that the buffer/aging/scheduler optimisations
changed complexity but not behaviour:

1. **Golden pins** — full runs of every registered scheduler on three
   workloads × two seeds must reproduce the exact ``total_cycles``,
   ``stall_cycles`` and ``walks_dispatched`` captured from the
   pre-optimisation code (``tests/golden_equivalence.json``).  The
   scoring-scheduler rows (sjf/simt/fairshare) were re-captured when
   the PWC counter-pin drift fix landed: unpinning by score-time level
   instead of walk-time level legitimately changes their numbers.
2. **Reference twins** — each optimized policy and its naive twin from
   :mod:`repro.core.reference` run the same workload; the *complete
   dispatch sequence* and all deterministic statistics must match.
3. **Randomised fuzz** — a random op stream drives one buffer while a
   naive shadow recomputes every query (oldest, oldest-per-instruction,
   SJF minimum, per-app minimum, pending apps, starving frontier) by
   linear scan; every answer must be identical at every step.
"""

from __future__ import annotations

import json
import random
from pathlib import Path

import pytest

from repro.config import baseline_config
from repro.core.aging import AgingPolicy
from repro.core.buffer import PendingWalkBuffer
from repro.core.reference import (
    REFERENCE_FACTORIES,
    NaiveFairShareScheduler,
    make_reference_scheduler,
    naive_min_score_entry,
    naive_oldest,
    naive_oldest_for_instruction,
)
from repro.core.request import TranslationRequest
from repro.core.schedulers import make_scheduler
from repro.experiments.runner import build_system, collect_result
from repro.obs.trace import TraceConfig
from repro.workloads.registry import get_workload

GOLDEN_PATH = Path(__file__).parent / "golden_equivalence.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())

SCALE = 0.2
WAVEFRONTS = 16


def _run_with_system(workload_name, scheduler, seed, config=None, trace=None):
    """Mirror of ``run_simulation`` that also exposes the system.

    ``scheduler`` is a registry name or a WalkScheduler instance.
    """
    config = config or baseline_config()
    instance = None
    if isinstance(scheduler, str):
        config = config.with_scheduler(scheduler, seed=seed)
    else:
        instance = scheduler
    bench = get_workload(workload_name, scale=SCALE, seed=seed)
    system = build_system(config, scheduler=instance, trace=trace)
    traces = bench.build_trace(
        num_wavefronts=WAVEFRONTS, wavefront_size=config.gpu.wavefront_size
    )
    system.gpu.dispatch(traces)
    system.simulator.run()
    assert system.gpu.finished
    return collect_result(system, bench), system.iommu


# ----------------------------------------------------------------------
# 1. Golden pins against the pre-optimisation implementation
# ----------------------------------------------------------------------


@pytest.mark.parametrize("key", sorted(GOLDEN))
def test_matches_pre_optimisation_golden(key):
    workload, scheduler, seed = key.split("|")
    result, _ = _run_with_system(workload, scheduler, int(seed))
    want = GOLDEN[key]
    assert result.total_cycles == want["total_cycles"]
    assert result.stall_cycles == want["stall_cycles"]
    assert result.walks_dispatched == want["walks_dispatched"]


@pytest.mark.parametrize(
    "trace",
    [TraceConfig(categories=frozenset()), TraceConfig()],
    ids=["inert-tracer", "full-tracing"],
)
@pytest.mark.parametrize("key", sorted(GOLDEN)[:4])
def test_tracing_preserves_golden_pins(key, trace):
    """Observability must be read-only: traced runs (inert or fully
    recording) reproduce the exact pre-observability golden numbers."""
    workload, scheduler, seed = key.split("|")
    result, _ = _run_with_system(workload, scheduler, int(seed), trace=trace)
    want = GOLDEN[key]
    assert result.total_cycles == want["total_cycles"]
    assert result.stall_cycles == want["stall_cycles"]
    assert result.walks_dispatched == want["walks_dispatched"]


# ----------------------------------------------------------------------
# 2. Optimized policies vs their naive reference twins
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(REFERENCE_FACTORIES))
@pytest.mark.parametrize("workload", ["MVT", "XSB"])
@pytest.mark.parametrize("seed", [0, 1])
def test_reference_twin_identical(name, workload, seed):
    fast_result, fast_iommu = _run_with_system(
        workload, make_scheduler(name), seed
    )
    ref_result, ref_iommu = _run_with_system(
        workload, make_reference_scheduler(name), seed
    )
    # The full walker dispatch interleaving, not just the totals.
    assert fast_iommu.dispatches_by_instruction == ref_iommu.dispatches_by_instruction
    assert fast_result.total_cycles == ref_result.total_cycles
    assert fast_result.stall_cycles == ref_result.stall_cycles
    assert fast_result.walks_dispatched == ref_result.walks_dispatched
    assert fast_result.walk_memory_accesses == ref_result.walk_memory_accesses
    assert fast_result.first_walk_latency == ref_result.first_walk_latency
    assert fast_result.last_walk_latency == ref_result.last_walk_latency
    assert fast_result.detail["iommu"] == ref_result.detail["iommu"]


def test_fairshare_twin_identical_multi_app():
    """Fair-share differs from SIMT only with >1 app: co-run two."""

    def co_run(scheduler):
        config = baseline_config()
        benches = [get_workload(w, scale=SCALE, seed=0) for w in ("MVT", "SSP")]
        traces_per_app = [
            b.build_trace(num_wavefronts=8, wavefront_size=config.gpu.wavefront_size)
            for b in benches
        ]
        interleaved, app_ids = [], []
        for slot in range(8):
            for app, traces in enumerate(traces_per_app):
                interleaved.append(traces[slot])
                app_ids.append(app)
        system = build_system(config, scheduler=scheduler)
        system.gpu.dispatch(interleaved, app_ids=app_ids)
        system.simulator.run()
        assert system.gpu.finished
        return system

    fast = co_run(make_scheduler("fairshare"))
    ref = co_run(NaiveFairShareScheduler())
    assert (
        fast.iommu.dispatches_by_instruction == ref.iommu.dispatches_by_instruction
    )
    assert fast.gpu.completion_time == ref.gpu.completion_time
    assert dict(fast.gpu.app_completion_time) == dict(ref.gpu.app_completion_time)
    assert fast.iommu.walks_dispatched == ref.iommu.walks_dispatched


# ----------------------------------------------------------------------
# 3. Randomised buffer-level fuzz against a linear-scan shadow
# ----------------------------------------------------------------------


def _make_request(rng, instruction_id, app_id):
    return TranslationRequest(
        vpn=rng.randrange(64),
        instruction_id=instruction_id,
        wavefront_id=0,
        cu_id=0,
        issue_time=0,
        app_id=app_id,
    )


@pytest.mark.parametrize("fuzz_seed", range(5))
def test_indexed_queries_match_linear_scans(fuzz_seed):
    rng = random.Random(fuzz_seed)
    buffer = PendingWalkBuffer(48)
    aging = AgingPolicy(threshold=4)
    shadow_bypasses = {}  # entry -> naive per-entry count
    in_flight = {}  # instruction_id -> dispatched-but-incomplete walks

    def naive_starving():
        victim = None
        for entry in buffer:
            if shadow_bypasses[entry] >= aging.threshold:
                if victim is None or entry.arrival_seq < victim.arrival_seq:
                    victim = entry
        return victim

    for _ in range(600):
        op = rng.random()
        if (op < 0.5 or buffer.is_empty) and not buffer.is_full:
            iid = rng.randrange(6)
            app = rng.randrange(2)
            entry = buffer.add(
                _make_request(rng, iid, app),
                arrival_time=0,
                estimated_accesses=rng.randrange(1, 5),
            )
            shadow_bypasses[entry] = 0
        elif op < 0.55:
            iid = rng.randrange(6)
            buffer.account_direct_dispatch(iid, rng.randrange(1, 5))
            in_flight[iid] = in_flight.get(iid, 0) + 1
        elif op < 0.65:
            candidates = [i for i, n in in_flight.items() if n > 0]
            if candidates:
                iid = rng.choice(candidates)
                buffer.complete_walk(iid)
                in_flight[iid] -= 1
        else:
            # Dispatch: first verify every indexed query against scans.
            assert buffer.oldest() is naive_oldest(buffer)
            probe_iid = rng.randrange(6)
            assert buffer.oldest_for_instruction(
                probe_iid
            ) is naive_oldest_for_instruction(buffer, probe_iid)
            assert buffer.min_score_entry() is naive_min_score_entry(buffer)
            naive_apps = list(dict.fromkeys(e.app_id for e in buffer))
            assert buffer.pending_apps() == naive_apps
            for app in naive_apps:
                want = min(
                    (e for e in buffer if e.app_id == app),
                    key=lambda e: (buffer.score_of(e), e.arrival_seq),
                )
                assert buffer.min_score_entry_for_app(app) is want
            starving = aging.starving(buffer)
            assert starving is naive_starving()
            choice = starving or buffer.min_score_entry()
            for entry in buffer:
                if entry.arrival_seq < choice.arrival_seq:
                    shadow_bypasses[entry] += 1
            aging.record_dispatch(choice)
            buffer.remove(choice)
            del shadow_bypasses[choice]
            in_flight[choice.instruction_id] = (
                in_flight.get(choice.instruction_id, 0) + 1
            )
    # Drain what's left, still cross-checking the SJF minimum.
    while not buffer.is_empty:
        choice = buffer.min_score_entry()
        assert choice is naive_min_score_entry(buffer)
        buffer.remove(choice)
