"""End-to-end invariants: the paper's headline behaviours on small runs.

These are slower than unit tests (each runs a few simulations) but they
pin down the *direction* of every paper claim at a reduced scale, so a
regression in the model or the scheduler shows up here before the full
benchmark harness runs.
"""

import pytest

from repro.config import baseline_config
from repro.experiments.runner import compare_schedulers, run_simulation
from repro.workloads.synthetic import ParametricWorkload

#: Reduced-size run shared by this module: half trace, one wave of slots.
RUN = dict(num_wavefronts=32, scale=0.25)


@pytest.fixture(scope="module")
def mvt_results():
    return compare_schedulers("MVT", schedulers=("random", "fcfs", "simt"), **RUN)


class TestHeadlineOrdering:
    def test_simt_beats_fcfs_on_irregular(self, mvt_results):
        assert mvt_results["simt"].speedup_over(mvt_results["fcfs"]) > 1.05

    def test_fcfs_beats_random_on_irregular(self, mvt_results):
        assert mvt_results["fcfs"].speedup_over(mvt_results["random"]) > 1.0

    def test_simt_reduces_stalls(self, mvt_results):
        assert mvt_results["simt"].stall_cycles < mvt_results["fcfs"].stall_cycles

    def test_simt_does_not_inflate_walks(self, mvt_results):
        assert (
            mvt_results["simt"].walks_dispatched
            <= mvt_results["fcfs"].walks_dispatched * 1.05
        )

    def test_regular_workload_unaffected(self):
        # At this reduced scale the cold-start transient is a larger
        # fraction of the run than in the full benchmark harness, so the
        # neutrality band is slightly wider than the paper's (the
        # full-scale band is checked by benchmarks/test_fig8_speedup.py).
        results = compare_schedulers("KMN", schedulers=("fcfs", "simt"), **RUN)
        speedup = results["simt"].speedup_over(results["fcfs"])
        assert 0.90 <= speedup <= 1.10


class TestWorkConservation:
    """Scheduling must never change *what* executes, only *when*."""

    def test_instruction_count_is_policy_independent(self, mvt_results):
        counts = {r.instructions for r in mvt_results.values()}
        assert len(counts) == 1

    def test_every_translation_eventually_serviced(self, mvt_results):
        for result in mvt_results.values():
            iommu = result.detail["iommu"]
            assert iommu["requests"] > 0
            # Requests = TLB hits + walks + coalesced joins, exactly.
            assert (
                iommu["requests"]
                == iommu["tlb_hits"]
                + iommu["walks_dispatched"]
                + iommu["coalesced"]
            )


class TestDivergenceSensitivity:
    def test_speedup_grows_with_divergence(self):
        def speedup(pages):
            workload = ParametricWorkload(
                pages_per_instruction=pages,
                instructions_per_wavefront=12,
                reuse_window=3,
                footprint_mb=64.0,
            )
            results = compare_schedulers(
                workload, schedulers=("fcfs", "simt"), num_wavefronts=32
            )
            return results["simt"].speedup_over(results["fcfs"])

        coalesced = speedup(1)
        divergent = speedup(48)
        assert divergent > coalesced

    def test_interleaving_exists_under_fcfs_divergence(self):
        workload = ParametricWorkload(
            pages_per_instruction=32,
            instructions_per_wavefront=12,
            reuse_window=3,
            footprint_mb=64.0,
        )
        result = run_simulation(workload, scheduler="fcfs", num_wavefronts=32)
        assert result.interleaved_fraction > 0.0

    def test_simt_reduces_interleaving(self):
        # reuse_window=8 keeps several instructions' walks buffered
        # concurrently — the regime where batching has leverage.  (At
        # reuse_window=3 arrivals trickle through the L2 TLB port one
        # instruction at a time, fcfs interleaving sits in noise, and
        # the batch pointer — correctly retired once its instruction
        # drains — has nothing to batch against.)
        workload = ParametricWorkload(
            pages_per_instruction=32,
            instructions_per_wavefront=12,
            reuse_window=8,
            footprint_mb=64.0,
        )
        fcfs = run_simulation(workload, scheduler="fcfs", num_wavefronts=32)
        simt = run_simulation(workload, scheduler="simt", num_wavefronts=32)
        assert simt.interleaved_fraction < fcfs.interleaved_fraction
        assert simt.total_cycles < fcfs.total_cycles


class TestSensitivityDirections:
    """Fig 13/14: resource sizing moves the win the way the paper reports."""

    def test_bigger_iommu_buffer_grows_the_win(self):
        def win(buffer_entries):
            config = baseline_config().with_iommu_buffer(buffer_entries)
            results = compare_schedulers(
                "MVT", schedulers=("fcfs", "simt"), config=config, **RUN
            )
            return results["simt"].speedup_over(results["fcfs"])

        assert win(512) > win(32)

    def test_abundant_walkers_remove_the_win(self):
        # With 8× the walkers, translation bandwidth stops being the
        # bottleneck and scheduling is near-neutral (paper Fig 13 trend).
        def win(walkers):
            config = baseline_config().with_walkers(walkers)
            results = compare_schedulers(
                "MVT", schedulers=("fcfs", "simt"), config=config, **RUN
            )
            return results["simt"].speedup_over(results["fcfs"])

        assert win(64) < win(8)
