"""Property-based tests for the geometry, controller and trace codec."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DRAMConfig
from repro.engine.simulator import Simulator
from repro.memory.controller import QueuedMemoryController
from repro.mmu.geometry import BASE_4K, LARGE_2M
from repro.workloads.trace_io import _decode_instruction, _encode_instruction

addresses = st.integers(min_value=0, max_value=(1 << 48) - 1)


class TestGeometryProperties:
    @given(addresses)
    def test_vpn_offset_reconstruct_for_both_geometries(self, address):
        for geometry in (BASE_4K, LARGE_2M):
            vpn = geometry.vpn(address)
            offset = geometry.offset(address)
            assert vpn * geometry.page_size + offset == address

    @given(addresses)
    def test_large_unit_contains_its_base_pages(self, address):
        assert BASE_4K.vpn(address) >> 9 == LARGE_2M.vpn(address)

    @given(st.integers(min_value=0, max_value=(1 << 27) - 1))
    def test_prefix_chain_consistency(self, unit):
        # Walking one level up always shifts exactly 9 more bits away.
        for level in (3, 4):
            assert LARGE_2M.vpn_prefix(unit, level) == unit >> (
                9 * (level - 2)
            )

    @given(addresses, st.sampled_from([BASE_4K, LARGE_2M]))
    def test_frame_base_round_trip(self, address, geometry):
        pfn = geometry.vpn(address)
        base = geometry.frame_base(pfn)
        assert geometry.vpn(base) == pfn
        assert geometry.offset(base) == 0


class TestTraceCodecProperties:
    @given(st.lists(addresses, max_size=64))
    def test_encode_decode_round_trip(self, lanes):
        assert _decode_instruction(_encode_instruction(lanes)) == lanes

    @given(st.lists(addresses, min_size=1, max_size=64))
    def test_encoded_head_is_first_address(self, lanes):
        assert _encode_instruction(lanes)[0] == lanes[0]


class TestControllerProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=40),
        st.sampled_from(["fcfs", "frfcfs"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_every_read_completes_exactly_once(self, line_numbers, policy):
        sim = Simulator()
        controller = QueuedMemoryController(
            sim,
            DRAMConfig(channels=1, ranks_per_channel=1, banks_per_rank=4),
            policy=policy,
        )
        completions = []
        for index, line in enumerate(line_numbers):
            controller.read(line * 64, lambda index=index: completions.append(index))
        sim.run()
        assert sorted(completions) == list(range(len(line_numbers)))
        assert controller.reads == len(line_numbers)
        assert controller.queued_requests == 0

    @given(
        st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=2, max_size=30)
    )
    @settings(max_examples=40, deadline=None)
    def test_row_hits_plus_conflicts_equals_reads(self, line_numbers):
        sim = Simulator()
        controller = QueuedMemoryController(
            sim,
            DRAMConfig(channels=1, ranks_per_channel=1, banks_per_rank=2),
            policy="frfcfs",
        )
        for line in line_numbers:
            controller.read(line * 64, lambda: None)
        sim.run()
        assert controller.row_hits + controller.row_conflicts == controller.reads
