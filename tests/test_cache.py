"""Unit tests for the set-associative data cache."""

from repro.config import CacheConfig
from repro.memory.cache import SetAssociativeCache


def make_cache(size=1024, ways=2, line=64):
    return SetAssociativeCache(CacheConfig(size_bytes=size, associativity=ways, line_size=line))


def test_miss_then_hit_after_fill():
    cache = make_cache()
    assert cache.access(5) is False
    cache.fill(5)
    assert cache.access(5) is True


def test_access_does_not_auto_fill():
    cache = make_cache()
    cache.access(5)
    assert cache.access(5) is False


def test_lru_eviction_within_set():
    # 1024B/64B = 16 lines, 2-way -> 8 sets; lines 0, 8, 16 share set 0.
    cache = make_cache()
    cache.fill(0)
    cache.fill(8)
    cache.access(0)  # 8 becomes LRU
    cache.fill(16)
    assert cache.contains(8) is False
    assert cache.contains(0) and cache.contains(16)
    assert cache.evictions == 1


def test_sets_are_independent():
    cache = make_cache()
    cache.fill(0)
    cache.fill(1)  # different set
    cache.fill(8)
    cache.fill(16)  # evicts within set 0 only
    assert cache.contains(1) is True


def test_fill_refreshes_existing_line():
    cache = make_cache()
    cache.fill(0)
    cache.fill(8)
    cache.fill(0)  # refresh, no duplicate
    cache.fill(16)  # evicts 8
    assert cache.contains(0) is True
    assert cache.contains(8) is False


def test_contains_is_stat_free():
    cache = make_cache()
    cache.fill(3)
    hits, misses = cache.hits, cache.misses
    cache.contains(3)
    cache.contains(4)
    assert (cache.hits, cache.misses) == (hits, misses)


def test_hit_rate():
    cache = make_cache()
    cache.fill(1)
    cache.access(1)
    cache.access(2)
    assert cache.hit_rate == 0.5
    assert cache.accesses == 2


def test_stats_dict():
    cache = make_cache()
    cache.access(9)
    stats = cache.stats()
    assert stats["misses"] == 1
    assert stats["hits"] == 0
