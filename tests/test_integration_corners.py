"""Integration tests for feature combinations and corner paths."""

from dataclasses import replace

import pytest

from repro.config import PAGE_SIZE
from repro.experiments.runner import build_system, run_simulation
from repro.workloads.synthetic import ParametricWorkload
from tests.conftest import tiny_config


def divergent_workload(seed=0):
    return ParametricWorkload(
        pages_per_instruction=16,
        instructions_per_wavefront=8,
        reuse_window=2,
        footprint_mb=32.0,
        seed=seed,
    )


class TestAgingIntegration:
    def test_low_threshold_triggers_promotions(self):
        config = tiny_config("simt")
        config = replace(config, iommu=replace(config.iommu, aging_threshold=3))
        system = build_system(config)
        traces = divergent_workload().build_trace(8, 32)
        system.gpu.dispatch(traces)
        system.simulator.run()
        assert system.gpu.finished
        assert system.iommu.scheduler.aging.promotions > 0

    def test_huge_threshold_never_promotes(self):
        config = tiny_config("simt")
        config = replace(
            config, iommu=replace(config.iommu, aging_threshold=10**9)
        )
        system = build_system(config)
        system.gpu.dispatch(divergent_workload().build_trace(8, 32))
        system.simulator.run()
        assert system.iommu.scheduler.aging.promotions == 0


class TestFairShareEndToEnd:
    def test_single_app_run_completes(self):
        result = run_simulation(
            divergent_workload(),
            config=tiny_config(),
            scheduler="fairshare",
            num_wavefronts=8,
        )
        assert result.scheduler == "fairshare"
        assert result.total_cycles > 0

    def test_attained_service_tracked(self):
        config = tiny_config("fairshare")
        system = build_system(config)
        system.gpu.dispatch(divergent_workload().build_trace(4, 32))
        system.simulator.run()
        # Single app: all service attributed to app 0.
        assert set(system.iommu.scheduler.attained_service) <= {0}


class TestLargePageCombinations:
    def test_large_pages_with_prefetch(self):
        config = replace(tiny_config(), page_size="2M")
        config = replace(
            config, iommu=replace(config.iommu, prefetch_next_page=True)
        )
        result = run_simulation(
            divergent_workload(), config=config, num_wavefronts=4
        )
        assert result.total_cycles > 0
        # 32 MB / 2 MB = 16 regions: demand walks are bounded by region
        # count times the small tiny-config IOMMU-TLB re-walk factor.
        assert result.walks_dispatched <= 4 * result.detail["mapped_pages"]

    def test_large_pages_with_simt_scheduler(self):
        config = replace(tiny_config("simt"), page_size="2M")
        result = run_simulation(
            divergent_workload(), config=config, num_wavefronts=4
        )
        assert result.scheduler == "simt"
        assert result.total_cycles > 0

    def test_large_pages_with_queued_controller(self):
        config = replace(tiny_config(), page_size="2M")
        config = replace(config, dram=replace(config.dram, controller="frfcfs"))
        result = run_simulation(
            divergent_workload(), config=config, num_wavefronts=4
        )
        assert result.total_cycles > 0
        assert result.detail["memory"]["dram"]["policy"] == "frfcfs"


class TestL2TLBPort:
    def test_port_serialises_same_cycle_lookups(self):
        system = build_system(tiny_config())
        first = system.gpu.l2_tlb_port_delay()
        second = system.gpu.l2_tlb_port_delay()
        assert first == 0
        assert second >= 1  # queued behind the first lookup

    def test_port_idles_after_time_passes(self):
        system = build_system(tiny_config())
        system.gpu.l2_tlb_port_delay()
        system.simulator.after(100, lambda: None)
        system.simulator.run()
        assert system.gpu.l2_tlb_port_delay() == 0


class TestOverflowIntegration:
    def test_tiny_buffer_exercises_overflow_without_loss(self):
        config = tiny_config()
        config = replace(config, iommu=replace(config.iommu, buffer_entries=2))
        result = run_simulation(
            divergent_workload(), config=config, num_wavefronts=8
        )
        iommu = result.detail["iommu"]
        assert iommu["overflow_peak"] > 0
        # Conservation still holds with back-pressure in play.
        assert (
            iommu["requests"]
            == iommu["tlb_hits"] + iommu["walks_dispatched"] + iommu["coalesced"]
        )


class TestScanLatencyEndToEnd:
    def test_full_run_with_scan_cost(self):
        config = tiny_config("simt")
        config = replace(
            config, iommu=replace(config.iommu, scan_latency_cycles=8)
        )
        result = run_simulation(
            divergent_workload(), config=config, num_wavefronts=8
        )
        assert result.total_cycles > 0
        assert result.walks_dispatched > 0
