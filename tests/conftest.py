"""Shared fixtures: small, fast system configurations for tests."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.config import (
    CacheConfig,
    DRAMConfig,
    GPUConfig,
    IOMMUConfig,
    PWCConfig,
    SystemConfig,
    TLBConfig,
)


def tiny_config(scheduler: str = "fcfs") -> SystemConfig:
    """A scaled-down machine that keeps integration tests fast.

    4 CUs, 2 wavefront slots each, small TLBs/caches, 4 walkers.
    """
    return SystemConfig(
        gpu=GPUConfig(num_cus=4, wavefront_slots_per_cu=2),
        l1_cache=CacheConfig(size_bytes=8 * 1024, associativity=4, hit_latency=4),
        l2_cache=CacheConfig(size_bytes=256 * 1024, associativity=8, hit_latency=30),
        gpu_l1_tlb=TLBConfig(entries=16),
        gpu_l2_tlb=TLBConfig(entries=128, associativity=8, hit_latency=10),
        iommu=IOMMUConfig(
            buffer_entries=64,
            num_walkers=4,
            l1_tlb=TLBConfig(entries=16),
            l2_tlb=TLBConfig(entries=64, associativity=8),
            pwc=PWCConfig(entries_per_level=8, associativity=4),
            scheduler=scheduler,
        ),
        dram=DRAMConfig(channels=1, ranks_per_channel=1, banks_per_rank=8),
    )


@pytest.fixture
def config():
    return tiny_config()


@pytest.fixture
def simt_config():
    return tiny_config("simt")
