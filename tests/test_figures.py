"""Smoke tests for the figure harness (tiny scale to stay fast).

These verify each figure function's *shape* — keys, normalisation,
completeness — not the paper's magnitudes (the benchmark harness under
``benchmarks/`` is responsible for those).
"""

import pytest

from repro.experiments import figures
from repro.workloads.registry import IRREGULAR_WORKLOADS, REGULAR_WORKLOADS

#: Very small run parameters shared by every smoke test.
TINY = dict(scale=0.05, num_wavefronts=4)


@pytest.fixture(autouse=True)
def fresh_cache():
    figures.clear_run_cache()
    yield


def test_fig2_shape():
    data = figures.fig2_scheduler_impact(**TINY)
    assert set(data) == set(figures.MOTIVATION_WORKLOADS)
    for row in data.values():
        assert row["random"] == pytest.approx(1.0)
        assert set(row) == {"random", "fcfs", "simt"}


def test_fig3_fractions_are_distributions():
    data = figures.fig3_walk_work_distribution(**TINY)
    for workload, row in data.items():
        total = sum(row.values())
        assert 0.0 <= total <= 1.0 + 1e-9, workload
        assert set(row) == {"1-16", "17-32", "33-48", "49-64", "65-80", "81-256"}


def test_fig5_fractions_bounded():
    data = figures.fig5_interleaving(**TINY)
    for value in data.values():
        assert 0.0 <= value <= 1.0


def test_fig6_normalised_to_first():
    data = figures.fig6_first_last_latency(**TINY)
    for row in data.values():
        assert row["first_completed"] == 1.0
        assert row["last_completed"] >= 1.0


def test_fig8_includes_every_workload_and_means(subtests=None):
    data = figures.fig8_speedup(**TINY)
    for workload in IRREGULAR_WORKLOADS + REGULAR_WORKLOADS:
        assert workload in data
    assert "Mean(irregular)" in data
    assert "Mean(regular)" in data


def test_fig8_subset_of_workloads():
    data = figures.fig8_speedup(workloads=("MVT",), **TINY)
    assert "MVT" in data
    assert "Mean(irregular)" in data
    assert "Mean(regular)" not in data


def test_fig9_normalised_stalls_positive():
    data = figures.fig9_stall_cycles(workloads=("MVT", "KMN"), **TINY)
    assert all(value > 0 for value in data.values())


def test_fig10_and_fig11_have_means():
    gap = figures.fig10_latency_gap(workloads=("MVT", "ATX"), **TINY)
    walks = figures.fig11_walk_count(workloads=("MVT", "ATX"), **TINY)
    assert "Mean" in gap and "Mean" in walks


def test_fig12_epoch_ratios_positive():
    data = figures.fig12_active_wavefronts(workloads=("MVT",), **TINY)
    assert data["MVT"] > 0


def test_fig13_variants():
    data = figures.fig13_sensitivity("a_1024tlb_8walkers", workloads=("MVT",), **TINY)
    assert "MVT" in data and "Mean" in data
    with pytest.raises(ValueError):
        figures.fig13_sensitivity("bogus", **TINY)


def test_fig14_buffer_sweep():
    data = figures.fig14_buffer_size(32, workloads=("MVT",), **TINY)
    assert data["MVT"] > 0
    with pytest.raises(ValueError):
        figures.fig14_buffer_size(0, **TINY)


def test_run_cache_reuses_results():
    figures.fig5_interleaving(**TINY)
    info_before = figures._run.cache_info()
    figures.fig5_interleaving(**TINY)
    info_after = figures._run.cache_info()
    assert info_after.hits > info_before.hits
    assert info_after.misses == info_before.misses


def test_table1_matches_paper_rows():
    table = figures.table1_configuration()
    assert table["L1 TLB"] == "32 entries, Fully-associative"
    assert "512 entries" in table["L2 TLB"]
    assert "8 page table walkers" in table["IOMMU"]
    assert "DDR3-1600" in table["DRAM"]
    assert "2GHz, 8 CUs" in table["GPU"]


def test_table2_lists_twelve_benchmarks():
    rows = figures.table2_workloads(scale=0.05)
    assert len(rows) == 12
    assert {row["abbrev"] for row in rows} == set(
        IRREGULAR_WORKLOADS + REGULAR_WORKLOADS
    )
    for row in rows:
        assert row["modelled_footprint_mb"] > 0
