"""Unit tests for the event queue: ordering, stability, snapshots."""

import pytest

from repro.engine.event_queue import EventQueue


def test_empty_queue_is_falsy():
    queue = EventQueue()
    assert not queue
    assert len(queue) == 0


def test_push_pop_single_event():
    queue = EventQueue()
    queue.push(5, "walker.step", (3,))
    time, seq, kind, payload = queue.pop()
    assert time == 5
    assert kind == "walker.step"
    assert payload == (3,)


def test_payload_defaults_to_empty_tuple():
    queue = EventQueue()
    queue.push(0, "iommu.kick")
    _time, _seq, kind, payload = queue.pop()
    assert kind == "iommu.kick"
    assert payload == ()


def test_events_pop_in_time_order():
    queue = EventQueue()
    queue.push(30, "late")
    queue.push(10, "early")
    queue.push(20, "middle")
    times = [queue.pop()[0] for _ in range(3)]
    assert times == [10, 20, 30]


def test_same_time_events_are_fifo():
    queue = EventQueue()
    for tag in ("first", "second", "third"):
        queue.push(7, tag)
    kinds = [queue.pop()[2] for _ in range(3)]
    assert kinds == ["first", "second", "third"]


def test_payloads_never_compared_for_ordering():
    # Payload objects need not be orderable; the (time, seq) prefix is
    # always unique, so the heap must not look past it.
    queue = EventQueue()
    queue.push(7, "a", (object(),))
    queue.push(7, "a", (object(),))
    queue.push(7, "a", (object(),))
    assert [queue.pop()[1] for _ in range(3)] == [0, 1, 2]


def test_peek_time_returns_earliest():
    queue = EventQueue()
    queue.push(42, "x")
    queue.push(17, "y")
    assert queue.peek_time() == 17
    assert len(queue) == 2  # peek does not consume


def test_peek_time_on_empty_raises():
    with pytest.raises(IndexError):
        EventQueue().peek_time()


def test_negative_time_rejected():
    with pytest.raises(ValueError):
        EventQueue().push(-1, "x")


def test_len_tracks_pushes_and_pops():
    queue = EventQueue()
    for i in range(10):
        queue.push(i, "tick")
    assert len(queue) == 10
    queue.pop()
    assert len(queue) == 9


def test_snapshot_restore_roundtrip():
    queue = EventQueue()
    queue.push(10, "a", (1,))
    queue.push(5, "b", (2,))
    queue.pop()
    state = queue.snapshot()

    other = EventQueue()
    other.push(99, "noise")
    other.restore(state)
    assert len(other) == 1
    time, _seq, kind, payload = other.pop()
    assert (time, kind, payload) == (10, "a", (1,))

    # Sequence numbering continues from the snapshot, preserving FIFO
    # order across the restore boundary.
    other.push(10, "c")
    assert other.pop()[1] > state["sequence"] - 1


def test_snapshot_is_independent_copy():
    queue = EventQueue()
    queue.push(1, "a")
    state = queue.snapshot()
    queue.pop()
    assert len(state["heap"]) == 1
