"""Unit tests for the event queue: ordering, stability, errors."""

import pytest

from repro.engine.event_queue import EventQueue


def test_empty_queue_is_falsy():
    queue = EventQueue()
    assert not queue
    assert len(queue) == 0


def test_push_pop_single_event():
    queue = EventQueue()
    queue.push(5, lambda: "a")
    time, seq, callback = queue.pop()
    assert time == 5
    assert callback() == "a"


def test_events_pop_in_time_order():
    queue = EventQueue()
    queue.push(30, lambda: "late")
    queue.push(10, lambda: "early")
    queue.push(20, lambda: "middle")
    times = [queue.pop()[0] for _ in range(3)]
    assert times == [10, 20, 30]


def test_same_time_events_are_fifo():
    queue = EventQueue()
    order = []
    for tag in ("first", "second", "third"):
        queue.push(7, lambda tag=tag: order.append(tag))
    while queue:
        queue.pop()[2]()
    assert order == ["first", "second", "third"]


def test_peek_time_returns_earliest():
    queue = EventQueue()
    queue.push(42, lambda: None)
    queue.push(17, lambda: None)
    assert queue.peek_time() == 17
    assert len(queue) == 2  # peek does not consume


def test_peek_time_on_empty_raises():
    with pytest.raises(IndexError):
        EventQueue().peek_time()


def test_negative_time_rejected():
    with pytest.raises(ValueError):
        EventQueue().push(-1, lambda: None)


def test_len_tracks_pushes_and_pops():
    queue = EventQueue()
    for i in range(10):
        queue.push(i, lambda: None)
    assert len(queue) == 10
    queue.pop()
    assert len(queue) == 9
