"""Unit tests for the event queue: ordering, stability, snapshots.

The calendar/bucket queue must be observably identical to the binary
heap it replaced, so alongside the unit tests there is a differential
fuzz section popping it against a ``heapq`` reference twin — same-cycle
ties, interleaved push/pop, and snapshot/restore mid-stream included.
"""

import random
from heapq import heappop, heappush

import pytest

from repro.engine.event_queue import EventQueue


def test_empty_queue_is_falsy():
    queue = EventQueue()
    assert not queue
    assert len(queue) == 0


def test_push_pop_single_event():
    queue = EventQueue()
    queue.push(5, "walker.step", (3,))
    time, seq, kind, payload = queue.pop()
    assert time == 5
    assert kind == "walker.step"
    assert payload == (3,)


def test_payload_defaults_to_empty_tuple():
    queue = EventQueue()
    queue.push(0, "iommu.kick")
    _time, _seq, kind, payload = queue.pop()
    assert kind == "iommu.kick"
    assert payload == ()


def test_events_pop_in_time_order():
    queue = EventQueue()
    queue.push(30, "late")
    queue.push(10, "early")
    queue.push(20, "middle")
    times = [queue.pop()[0] for _ in range(3)]
    assert times == [10, 20, 30]


def test_same_time_events_are_fifo():
    queue = EventQueue()
    for tag in ("first", "second", "third"):
        queue.push(7, tag)
    kinds = [queue.pop()[2] for _ in range(3)]
    assert kinds == ["first", "second", "third"]


def test_payloads_never_compared_for_ordering():
    # Payload objects need not be orderable; the (time, seq) prefix is
    # always unique, so the heap must not look past it.
    queue = EventQueue()
    queue.push(7, "a", (object(),))
    queue.push(7, "a", (object(),))
    queue.push(7, "a", (object(),))
    assert [queue.pop()[1] for _ in range(3)] == [0, 1, 2]


def test_peek_time_returns_earliest():
    queue = EventQueue()
    queue.push(42, "x")
    queue.push(17, "y")
    assert queue.peek_time() == 17
    assert len(queue) == 2  # peek does not consume


def test_peek_time_on_empty_raises():
    with pytest.raises(IndexError):
        EventQueue().peek_time()


def test_negative_time_rejected():
    with pytest.raises(ValueError):
        EventQueue().push(-1, "x")


def test_len_tracks_pushes_and_pops():
    queue = EventQueue()
    for i in range(10):
        queue.push(i, "tick")
    assert len(queue) == 10
    queue.pop()
    assert len(queue) == 9


def test_snapshot_restore_roundtrip():
    queue = EventQueue()
    queue.push(10, "a", (1,))
    queue.push(5, "b", (2,))
    queue.pop()
    state = queue.snapshot()

    other = EventQueue()
    other.push(99, "noise")
    other.restore(state)
    assert len(other) == 1
    time, _seq, kind, payload = other.pop()
    assert (time, kind, payload) == (10, "a", (1,))

    # Sequence numbering continues from the snapshot, preserving FIFO
    # order across the restore boundary.
    other.push(10, "c")
    assert other.pop()[1] > state["sequence"] - 1


def test_snapshot_is_independent_copy():
    queue = EventQueue()
    queue.push(1, "a")
    state = queue.snapshot()
    queue.pop()
    assert len(state["heap"]) == 1


def test_push_below_drained_time_raises():
    # The floor guard lives in the queue itself (not just the
    # simulator's post_at): once a bucket has been drained, a direct
    # push into the past would corrupt pop order, so it is rejected.
    queue = EventQueue()
    queue.push(10, "a")
    queue.push(20, "b")
    queue.pop()  # drains the cycle-10 bucket; floor is now 10
    with pytest.raises(ValueError):
        queue.push(9, "late")
    queue.push(10, "same-cycle-ok")  # the floor itself stays legal
    assert queue.pop()[0] == 10


def test_pop_bucket_sets_floor():
    queue = EventQueue()
    queue.push(5, "a")
    queue.push(5, "b")
    queue.pop_bucket()
    with pytest.raises(ValueError):
        queue.push(4, "late")


def test_restore_accepts_legacy_heap_ordered_snapshot():
    # PR-5-era snapshots stored the raw binary heap (heap order, not
    # sorted) and no "floor" key; restore must still reproduce exact
    # (time, seq) pop order from them.
    events = [(3, 0, "a", ()), (1, 1, "b", ()), (2, 2, "c", (9,))]
    heap = []
    for event in events:
        heappush(heap, event)
    state = {"heap": heap, "sequence": 3}

    queue = EventQueue()
    queue.restore(state)
    assert [queue.pop() for _ in range(3)] == sorted(events)


# ----------------------------------------------------------------------
# Differential fuzz: calendar queue vs heapq reference twin
# ----------------------------------------------------------------------


class _HeapTwin:
    """The pre-calendar reference implementation: one binary heap."""

    def __init__(self):
        self._heap = []
        self._sequence = 0

    def push(self, time, kind, payload=()):
        heappush(self._heap, (time, self._sequence, kind, payload))
        self._sequence += 1

    def pop(self):
        return heappop(self._heap)

    def __len__(self):
        return len(self._heap)


@pytest.mark.parametrize("seed", range(8))
def test_fuzz_matches_heap_reference(seed):
    """Interleaved pushes and pops, dense same-cycle ties."""
    rng = random.Random(seed)
    queue, twin = EventQueue(), _HeapTwin()
    now = 0
    for step in range(2_000):
        if twin and rng.random() < 0.45:
            expected = twin.pop()
            got = queue.pop()
            assert got == expected
            now = expected[0]
        else:
            # Mostly near-future times with heavy collisions, plus the
            # occasional far-future outlier.
            delay = rng.choice((0, 0, 0, 1, 1, 2, 3, rng.randrange(500)))
            kind = rng.choice(("a", "b", "c"))
            payload = (step,)
            queue.push(now + delay, kind, payload)
            twin.push(now + delay, kind, payload)
        assert len(queue) == len(twin)
    while twin:
        assert queue.pop() == twin.pop()
    assert not queue


@pytest.mark.parametrize("seed", range(4))
def test_fuzz_snapshot_restore_mid_stream(seed):
    """Snapshot/restore at random points must not perturb pop order."""
    rng = random.Random(1_000 + seed)
    queue, twin = EventQueue(), _HeapTwin()
    now = 0
    for step in range(1_500):
        roll = rng.random()
        if roll < 0.05:
            # Round-trip through a snapshot into a fresh queue object.
            fresh = EventQueue()
            fresh.restore(queue.snapshot())
            queue = fresh
        elif twin and roll < 0.5:
            expected = twin.pop()
            assert queue.pop() == expected
            now = expected[0]
        else:
            delay = rng.choice((0, 0, 1, 2, rng.randrange(100)))
            queue.push(now + delay, "k", (step,))
            twin.push(now + delay, "k", (step,))
    while twin:
        assert queue.pop() == twin.pop()


@pytest.mark.parametrize("seed", range(4))
def test_fuzz_pop_bucket_matches_scalar_pops(seed):
    """Draining whole buckets yields the same stream as scalar pops."""
    rng = random.Random(2_000 + seed)
    queue, twin = EventQueue(), _HeapTwin()
    for step in range(300):
        time = rng.choice((0, 0, 1, 2, 5)) + rng.randrange(4)
        kind = rng.choice(("x", "y"))
        queue.push(time, kind, (step,))
        twin.push(time, kind, (step,))
    while queue:
        time, events = queue.pop_bucket()
        for seq, kind, payload in events:
            assert (time, seq, kind, payload) == twin.pop()
    assert not len(twin)
