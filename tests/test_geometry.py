"""Unit tests for translation geometries (4 KB vs 2 MB pages)."""

import pytest

from repro.config import PWCConfig
from repro.mmu.geometry import BASE_4K, LARGE_2M, PageGeometry, geometry_by_name
from repro.mmu.page_table import PageTable
from repro.mmu.pwc import PageWalkCache


class TestGeometryBasics:
    def test_lookup_by_name(self):
        assert geometry_by_name("4k") is BASE_4K
        assert geometry_by_name("2M") is LARGE_2M
        with pytest.raises(ValueError):
            geometry_by_name("1G")

    def test_page_sizes(self):
        assert BASE_4K.page_size == 4096
        assert LARGE_2M.page_size == 2 * 1024 * 1024

    def test_walk_levels(self):
        assert BASE_4K.walk_levels == 4
        assert LARGE_2M.walk_levels == 3

    def test_pwc_levels(self):
        assert BASE_4K.pwc_levels == (4, 3, 2)
        assert LARGE_2M.pwc_levels == (4, 3)

    def test_invalid_leaf_level(self):
        with pytest.raises(ValueError):
            PageGeometry(name="bad", page_shift=30, leaf_level=4)

    def test_vpn_and_offset(self):
        address = 5 * (2 << 20) + 12345
        assert LARGE_2M.vpn(address) == 5
        assert LARGE_2M.offset(address) == 12345
        assert BASE_4K.vpn(address) == address >> 12

    def test_frame_base(self):
        assert LARGE_2M.frame_base(3) == 3 * (2 << 20)

    def test_unit_relationship(self):
        # 512 consecutive 4 KB pages collapse into one 2 MB unit.
        address = 0x4000_0000
        assert BASE_4K.vpn(address) >> 9 == LARGE_2M.vpn(address)

    def test_level_index_bounds(self):
        with pytest.raises(ValueError):
            LARGE_2M.level_index(0, 1)  # below the large-page leaf
        with pytest.raises(ValueError):
            BASE_4K.level_index(0, 5)


class TestLargePagePageTable:
    def test_walk_has_three_levels(self):
        table = PageTable(geometry=LARGE_2M)
        path = table.walk_addresses(0x123)
        assert [level for level, _ in path] == [4, 3, 2]

    def test_adjacent_units_share_upper_nodes(self):
        table = PageTable(geometry=LARGE_2M)
        path_a = table.walk_addresses(0x10)
        path_b = table.walk_addresses(0x11)
        # Levels 4 and 3 identical; leaf entries are different slots of
        # the same level-2 table page.
        assert path_a[0] == path_b[0]
        assert path_a[1] == path_b[1]
        assert path_a[2] != path_b[2]

    def test_distinct_units_get_distinct_frames(self):
        table = PageTable(geometry=LARGE_2M)
        assert table.translate(1) != table.translate(2)


class TestLargePagePWC:
    def make(self):
        return PageWalkCache(
            PWCConfig(entries_per_level=8, associativity=4), geometry=LARGE_2M
        )

    def test_cold_walk_needs_three_accesses(self):
        assert self.make().peek_accesses(0x42) == 3

    def test_fill_reduces_to_one(self):
        pwc = self.make()
        pwc.fill(0x42)
        assert pwc.peek_accesses(0x42) == 1

    def test_level3_hit_gives_two(self):
        pwc = self.make()
        pwc.fill(0)
        # Same level-3 group (bits ≥9 of the unit number equal).
        assert pwc.peek_accesses(1) == 1  # same level-3 entry? no: same L3 tag
        other = 1 << 9  # different level-3 tag, same level-4 tag
        assert pwc.peek_accesses(other) == 2
