"""Unit tests for translation geometries (4 KB vs 2 MB pages)."""

import random

import pytest

from repro.config import PAGE_TABLE_LEVELS, PWCConfig
from repro.mmu.geometry import BASE_4K, LARGE_2M, PageGeometry, geometry_by_name
from repro.mmu.page_table import PageTable
from repro.mmu.pwc import PageWalkCache


class TestGeometryBasics:
    def test_lookup_by_name(self):
        assert geometry_by_name("4k") is BASE_4K
        assert geometry_by_name("2M") is LARGE_2M
        with pytest.raises(ValueError):
            geometry_by_name("1G")

    def test_page_sizes(self):
        assert BASE_4K.page_size == 4096
        assert LARGE_2M.page_size == 2 * 1024 * 1024

    def test_walk_levels(self):
        assert BASE_4K.walk_levels == 4
        assert LARGE_2M.walk_levels == 3

    def test_pwc_levels(self):
        assert BASE_4K.pwc_levels == (4, 3, 2)
        assert LARGE_2M.pwc_levels == (4, 3)

    def test_invalid_leaf_level(self):
        with pytest.raises(ValueError):
            PageGeometry(name="bad", page_shift=30, leaf_level=4)

    @pytest.mark.parametrize("leaf_level", [0, PAGE_TABLE_LEVELS, 99])
    def test_invalid_leaf_level_message_matches_check(self, leaf_level):
        # The message must state the bound the check actually enforces
        # (1 .. PAGE_TABLE_LEVELS-1) and echo the offending value.
        with pytest.raises(ValueError) as excinfo:
            PageGeometry(name="bad", page_shift=30, leaf_level=leaf_level)
        message = str(excinfo.value)
        assert f"1..{PAGE_TABLE_LEVELS - 1}" in message
        assert str(leaf_level) in message

    def test_vpn_and_offset(self):
        address = 5 * (2 << 20) + 12345
        assert LARGE_2M.vpn(address) == 5
        assert LARGE_2M.offset(address) == 12345
        assert BASE_4K.vpn(address) == address >> 12

    def test_frame_base(self):
        assert LARGE_2M.frame_base(3) == 3 * (2 << 20)

    def test_unit_relationship(self):
        # 512 consecutive 4 KB pages collapse into one 2 MB unit.
        address = 0x4000_0000
        assert BASE_4K.vpn(address) >> 9 == LARGE_2M.vpn(address)

    def test_level_index_bounds(self):
        with pytest.raises(ValueError):
            LARGE_2M.level_index(0, 1)  # below the large-page leaf
        with pytest.raises(ValueError):
            BASE_4K.level_index(0, 5)


class TestRoundTripProperty:
    """vpn/offset must decompose any address losslessly:
    ``vpn(a) * page_size + offset(a) == a`` with ``offset < page_size``."""

    # The unit-boundary neighbourhoods where shift/mask bugs live, for a
    # 2 MB unit: around 0, one unit, an odd multiple, and a 4 KB-page
    # boundary *inside* a large unit (offset 0x1000 — must NOT reset).
    BOUNDARIES = [
        0, 1,
        0x1000 - 1, 0x1000, 0x1000 + 1,
        (1 << 21) - 1, 1 << 21, (1 << 21) + 1,
        5 * (1 << 21) - 1, 5 * (1 << 21), 5 * (1 << 21) + 1,
        (1 << 48) - 1,
    ]

    @pytest.mark.parametrize("geometry", [BASE_4K, LARGE_2M], ids=str)
    @pytest.mark.parametrize("address", BOUNDARIES)
    def test_boundary_round_trip(self, geometry, address):
        vpn = geometry.vpn(address)
        offset = geometry.offset(address)
        assert 0 <= offset < geometry.page_size
        assert vpn * geometry.page_size + offset == address
        assert geometry.frame_base(vpn) + offset == address

    @pytest.mark.parametrize("geometry", [BASE_4K, LARGE_2M], ids=str)
    def test_random_round_trip(self, geometry):
        rng = random.Random(2018)
        for _ in range(2000):
            address = rng.randrange(1 << 48)
            vpn = geometry.vpn(address)
            offset = geometry.offset(address)
            assert 0 <= offset < geometry.page_size
            assert vpn * geometry.page_size + offset == address

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            LARGE_2M.vpn(-1)


class TestLargePagePageTable:
    def test_walk_has_three_levels(self):
        table = PageTable(geometry=LARGE_2M)
        path = table.walk_addresses(0x123)
        assert [level for level, _ in path] == [4, 3, 2]

    def test_adjacent_units_share_upper_nodes(self):
        table = PageTable(geometry=LARGE_2M)
        path_a = table.walk_addresses(0x10)
        path_b = table.walk_addresses(0x11)
        # Levels 4 and 3 identical; leaf entries are different slots of
        # the same level-2 table page.
        assert path_a[0] == path_b[0]
        assert path_a[1] == path_b[1]
        assert path_a[2] != path_b[2]

    def test_distinct_units_get_distinct_frames(self):
        table = PageTable(geometry=LARGE_2M)
        assert table.translate(1) != table.translate(2)


class TestLargePagePWC:
    def make(self):
        return PageWalkCache(
            PWCConfig(entries_per_level=8, associativity=4), geometry=LARGE_2M
        )

    def test_cold_walk_needs_three_accesses(self):
        assert self.make().peek_accesses(0x42) == 3

    def test_fill_reduces_to_one(self):
        pwc = self.make()
        pwc.fill(0x42)
        assert pwc.peek_accesses(0x42) == 1

    def test_level3_hit_gives_two(self):
        pwc = self.make()
        pwc.fill(0)
        # Same level-3 group (bits ≥9 of the unit number equal).
        assert pwc.peek_accesses(1) == 1  # same level-3 entry? no: same L3 tag
        other = 1 << 9  # different level-3 tag, same level-4 tag
        assert pwc.peek_accesses(other) == 2
