"""Fleet telemetry: event stream, JSONL log, executor integration.

The collector watches the sweep from *outside* the simulations, so the
load-bearing properties are (a) it sees every lifecycle transition the
executors go through — including retries and timeouts on the process
path — and (b) the simulations cannot tell whether it is attached:
results must be bit-identical with telemetry on or off.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.runner import run_many, run_many_resilient
from repro.obs.fleet import FleetTelemetry

from tests.conftest import tiny_config
from tests.test_resilient_runner import BrokenWorkload


def _spec(seed=0, workload="MVT"):
    return {
        "workload": workload,
        "config": tiny_config(),
        "num_wavefronts": 4,
        "scale": 0.05,
        "seed": seed,
    }


def _events_of(telemetry, kind):
    return [e for e in telemetry.events() if e["event"] == kind]


# ----------------------------------------------------------------------
# Collector unit behaviour
# ----------------------------------------------------------------------


def test_emit_records_event_and_timestamp():
    telemetry = FleetTelemetry()
    record = telemetry.emit("custom", index=3)
    assert record["event"] == "custom" and record["index"] == 3
    assert isinstance(record["t"], float)
    assert telemetry.events() == [record]


def test_events_returns_copies():
    telemetry = FleetTelemetry()
    telemetry.emit("custom", index=1)
    telemetry.events()[0]["index"] = 999
    assert telemetry.events()[0]["index"] == 1


def test_rejects_non_positive_heartbeat():
    with pytest.raises(ValueError, match="heartbeat_seconds"):
        FleetTelemetry(heartbeat_seconds=0)
    with pytest.raises(ValueError, match="heartbeat_seconds"):
        FleetTelemetry(heartbeat_seconds=-1.0)
    assert FleetTelemetry(heartbeat_seconds=None).heartbeat_seconds is None


def test_jsonl_log_one_valid_line_per_event(tmp_path):
    log = tmp_path / "fleet.jsonl"
    with FleetTelemetry(log_path=str(log)) as telemetry:
        telemetry.emit("one", index=0)
        telemetry.emit("two", index=1)
    lines = log.read_text().splitlines()
    assert [json.loads(line)["event"] for line in lines] == ["one", "two"]


def test_progress_lines_go_to_stream(tmp_path, capsys):
    import io

    stream = io.StringIO()
    telemetry = FleetTelemetry(progress=True, stream=stream)
    telemetry.sweep_started(total=2, jobs=1)
    assert "2 spec(s)" in stream.getvalue()
    # progress=False stays silent.
    silent = io.StringIO()
    FleetTelemetry(progress=False, stream=silent).sweep_started(total=2, jobs=1)
    assert silent.getvalue() == ""


def test_summary_counts_statuses():
    telemetry = FleetTelemetry()
    telemetry.sweep_started(total=3, jobs=1)
    assert telemetry.summary() == {
        "total": 3, "ok": 0, "failed": 0, "timeout": 0, "retried": 0,
    }


# ----------------------------------------------------------------------
# Serial executor integration
# ----------------------------------------------------------------------


def test_serial_sweep_emits_lifecycle(tmp_path):
    log = tmp_path / "fleet.jsonl"
    specs = [_spec(seed=s) for s in range(2)]
    with FleetTelemetry(log_path=str(log)) as telemetry:
        outcomes = run_many_resilient(specs, telemetry=telemetry)
    assert all(o.ok for o in outcomes)
    kinds = [e["event"] for e in telemetry.events()]
    assert kinds[0] == "sweep_started"
    assert kinds[-1] == "sweep_finished"
    assert kinds.count("spec_started") == 2
    assert kinds.count("spec_finished") == 2
    finished = _events_of(telemetry, "spec_finished")
    assert all(e["status"] == "ok" for e in finished)
    assert all(e["total_cycles"] > 0 for e in finished)
    assert all("events_per_sec" in e for e in finished)
    assert telemetry.summary() == {
        "total": 2, "ok": 2, "failed": 0, "timeout": 0, "retried": 0,
    }
    # The JSONL log carries the same stream.
    logged = [json.loads(l)["event"] for l in log.read_text().splitlines()]
    assert logged == kinds


def test_results_identical_with_and_without_telemetry():
    specs = [_spec(seed=s) for s in range(2)]
    plain = run_many(specs)
    with FleetTelemetry() as telemetry:
        watched = run_many(specs, telemetry=telemetry)
    for a, b in zip(plain, watched):
        assert (a.total_cycles, a.stall_cycles, a.walks_dispatched) == (
            b.total_cycles, b.stall_cycles, b.walks_dispatched
        )


def test_serial_retry_and_failure_emitted(tmp_path):
    sentinel = tmp_path / "flaky"
    specs = [
        {"workload": BrokenWorkload("raise", sentinel=str(sentinel)),
         "config": tiny_config(), "num_wavefronts": 4},
        {"workload": BrokenWorkload("raise"),
         "config": tiny_config(), "num_wavefronts": 4},
    ]
    with FleetTelemetry() as telemetry:
        outcomes = run_many_resilient(specs, retries=1, backoff_seconds=0.01,
                                      telemetry=telemetry)
    assert outcomes[0].ok and outcomes[0].attempts == 2
    assert not outcomes[1].ok
    retries = _events_of(telemetry, "spec_retry")
    assert {e["index"] for e in retries} == {0, 1}
    assert all(e["error_type"] == "RuntimeError" for e in retries)
    finished = {e["index"]: e for e in _events_of(telemetry, "spec_finished")}
    assert finished[0]["status"] == "ok"
    assert finished[1]["status"] == "failed"
    assert finished[1]["error_type"] == "RuntimeError"
    summary = telemetry.summary()
    assert summary["ok"] == 1 and summary["failed"] == 1
    assert summary["retried"] == 2


# ----------------------------------------------------------------------
# Process executor integration
# ----------------------------------------------------------------------


def test_process_sweep_emits_lifecycle_and_identical_results():
    specs = [_spec(seed=s) for s in range(3)]
    serial = run_many(specs)
    with FleetTelemetry() as telemetry:
        outcomes = run_many_resilient(specs, jobs=2, telemetry=telemetry)
    assert [o.status for o in outcomes] == ["ok"] * 3
    for result, outcome in zip(serial, outcomes):
        assert result.total_cycles == outcome.result.total_cycles
    finished = _events_of(telemetry, "spec_finished")
    # Events arrive in completion order, but cover every spec exactly once.
    assert sorted(e["index"] for e in finished) == [0, 1, 2]
    assert telemetry.summary()["ok"] == 3


def test_process_timeout_emits_timeout_and_heartbeats():
    specs = [
        {"workload": BrokenWorkload("hang"),
         "config": tiny_config(), "num_wavefronts": 4},
    ]
    with FleetTelemetry(heartbeat_seconds=0.2) as telemetry:
        outcomes = run_many_resilient(specs, jobs=1, timeout=2.0,
                                      telemetry=telemetry)
    assert outcomes[0].status == "timeout"
    timeouts = _events_of(telemetry, "spec_timeout")
    assert len(timeouts) == 1
    assert timeouts[0]["timeout_seconds"] == 2.0
    heartbeats = _events_of(telemetry, "heartbeat")
    assert heartbeats, "a hanging worker should have heartbeated"
    assert all(e["pid"] > 0 for e in heartbeats)
    assert telemetry.summary()["timeout"] == 1


def test_checkpointed_specs_reported_as_finished(tmp_path):
    specs = [_spec(seed=s) for s in range(2)]
    store = str(tmp_path / "ckpt")
    run_many_resilient(specs, checkpoint=store)
    with FleetTelemetry() as telemetry:
        outcomes = run_many_resilient(specs, checkpoint=store,
                                      telemetry=telemetry)
    assert all(o.from_checkpoint for o in outcomes)
    started = _events_of(telemetry, "sweep_started")
    assert started[0]["checkpointed"] == 2
    finished = _events_of(telemetry, "spec_finished")
    assert len(finished) == 2
    assert telemetry.summary()["ok"] == 2


def test_log_write_failure_degrades_not_raises(tmp_path):
    log = tmp_path / "fleet.jsonl"
    telemetry = FleetTelemetry(log_path=str(log))
    telemetry._log.close()  # simulate the disk going away mid-sweep
    telemetry.emit("after_close", index=0)  # must not raise
    assert telemetry._log is None
    assert [e["event"] for e in telemetry.events()] == ["after_close"]
