"""Unit tests for the simulation kernel."""

import pytest

from repro.engine.simulator import Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0


def test_after_schedules_relative():
    sim = Simulator()
    fired = []
    sim.after(10, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [10]
    assert sim.now == 10


def test_at_schedules_absolute():
    sim = Simulator()
    fired = []
    sim.at(25, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [25]


def test_scheduling_in_the_past_raises():
    sim = Simulator()
    sim.after(10, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.at(5, lambda: None)


def test_negative_delay_raises():
    with pytest.raises(ValueError):
        Simulator().after(-1, lambda: None)


def test_events_cascade():
    sim = Simulator()
    trace = []

    def first():
        trace.append(("first", sim.now))
        sim.after(5, second)

    def second():
        trace.append(("second", sim.now))

    sim.after(3, first)
    sim.run()
    assert trace == [("first", 3), ("second", 8)]


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.after(10, lambda: fired.append("a"))
    sim.after(100, lambda: fired.append("b"))
    sim.run(until=50)
    assert fired == ["a"]
    assert sim.now == 50
    assert sim.pending_events == 1
    sim.run()
    assert fired == ["a", "b"]


def test_run_max_events_limits_work():
    sim = Simulator()
    fired = []
    for i in range(5):
        sim.after(i + 1, lambda i=i: fired.append(i))
    sim.run(max_events=2)
    assert fired == [0, 1]


def test_step_fires_one_event():
    sim = Simulator()
    fired = []
    sim.after(1, lambda: fired.append("x"))
    assert sim.step() is True
    assert fired == ["x"]
    assert sim.step() is False


def test_events_processed_counter():
    sim = Simulator()
    for i in range(4):
        sim.after(i, lambda: None)
    sim.run()
    assert sim.events_processed == 4


def test_same_cycle_events_fifo_order():
    sim = Simulator()
    order = []
    sim.after(5, lambda: order.append(1))
    sim.after(5, lambda: order.append(2))
    sim.after(5, lambda: order.append(3))
    sim.run()
    assert order == [1, 2, 3]


def test_until_and_max_events_whichever_first():
    # max_events binds first: only 2 of the 4 events inside the window fire.
    sim = Simulator()
    fired = []
    for i in range(4):
        sim.after(i + 1, lambda i=i: fired.append(i))
    sim.run(until=10, max_events=2)
    assert fired == [0, 1]
    assert sim.now == 2
    assert sim.pending_events == 2
    # until binds first on the remainder: the clock lands on the cutoff.
    sim.run(until=3, max_events=100)
    assert fired == [0, 1, 2]
    assert sim.now == 3
    assert sim.pending_events == 1


def test_clock_stays_at_last_event_when_drained_before_until():
    # Deliberate semantics: a queue that empties before `until` leaves
    # the clock at the last fired event, not at the horizon — a deadlock
    # diagnosis needs the cycle work stopped, not the max_cycles bound.
    sim = Simulator()
    sim.after(7, lambda: None)
    assert sim.run(until=1_000_000) == 7
    assert sim.now == 7
    assert sim.pending_events == 0


def test_step_on_empty_queue_is_inert():
    sim = Simulator()
    assert sim.step() is False
    assert sim.now == 0
    assert sim.events_processed == 0
    sim.after(3, lambda: None)
    sim.run()
    assert sim.step() is False
    assert sim.now == 3
    assert sim.events_processed == 1


def test_reentrant_callback_scheduling_at_now_fires_same_run():
    sim = Simulator()
    trace = []

    def outer():
        trace.append(("outer", sim.now))
        sim.after(0, lambda: trace.append(("inner", sim.now)))

    sim.after(5, outer)
    sim.run()
    assert trace == [("outer", 5), ("inner", 5)]
    assert sim.now == 5
    assert sim.events_processed == 2


def test_monitor_fires_every_interval():
    sim = Simulator()
    ticks = []
    for i in range(10):
        sim.after(i, lambda: None)
    sim.set_monitor(lambda: ticks.append(sim.events_processed), interval_events=3)
    sim.run()
    # Fires after the 3rd, 6th and 9th events (counter snapshots taken
    # mid-run read the pre-run total).
    assert len(ticks) == 3


def test_monitor_exception_aborts_run_with_consistent_counts():
    sim = Simulator()
    for i in range(10):
        sim.after(i, lambda: None)

    def tripwire():
        raise RuntimeError("tripped")

    sim.set_monitor(tripwire, interval_events=4)
    with pytest.raises(RuntimeError, match="tripped"):
        sim.run()
    assert sim.events_processed == 4
    assert sim.pending_events == 6
    # Clearing the monitor lets the run finish.
    sim.set_monitor(None)
    sim.run()
    assert sim.events_processed == 10


def test_monitor_invalid_interval_rejected():
    with pytest.raises(ValueError):
        Simulator().set_monitor(lambda: None, interval_events=0)
