"""Unit tests for the simulation kernel."""

import pytest

from repro.engine.simulator import Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0


def test_after_schedules_relative():
    sim = Simulator()
    fired = []
    sim.after(10, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [10]
    assert sim.now == 10


def test_at_schedules_absolute():
    sim = Simulator()
    fired = []
    sim.at(25, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [25]


def test_scheduling_in_the_past_raises():
    sim = Simulator()
    sim.after(10, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.at(5, lambda: None)


def test_negative_delay_raises():
    with pytest.raises(ValueError):
        Simulator().after(-1, lambda: None)


def test_events_cascade():
    sim = Simulator()
    trace = []

    def first():
        trace.append(("first", sim.now))
        sim.after(5, second)

    def second():
        trace.append(("second", sim.now))

    sim.after(3, first)
    sim.run()
    assert trace == [("first", 3), ("second", 8)]


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.after(10, lambda: fired.append("a"))
    sim.after(100, lambda: fired.append("b"))
    sim.run(until=50)
    assert fired == ["a"]
    assert sim.now == 50
    assert sim.pending_events == 1
    sim.run()
    assert fired == ["a", "b"]


def test_run_max_events_limits_work():
    sim = Simulator()
    fired = []
    for i in range(5):
        sim.after(i + 1, lambda i=i: fired.append(i))
    sim.run(max_events=2)
    assert fired == [0, 1]


def test_step_fires_one_event():
    sim = Simulator()
    fired = []
    sim.after(1, lambda: fired.append("x"))
    assert sim.step() is True
    assert fired == ["x"]
    assert sim.step() is False


def test_events_processed_counter():
    sim = Simulator()
    for i in range(4):
        sim.after(i, lambda: None)
    sim.run()
    assert sim.events_processed == 4


def test_same_cycle_events_fifo_order():
    sim = Simulator()
    order = []
    sim.after(5, lambda: order.append(1))
    sim.after(5, lambda: order.append(2))
    sim.after(5, lambda: order.append(3))
    sim.run()
    assert order == [1, 2, 3]


def test_until_and_max_events_whichever_first():
    # max_events binds first: only 2 of the 4 events inside the window fire.
    sim = Simulator()
    fired = []
    for i in range(4):
        sim.after(i + 1, lambda i=i: fired.append(i))
    sim.run(until=10, max_events=2)
    assert fired == [0, 1]
    assert sim.now == 2
    assert sim.pending_events == 2
    # until binds first on the remainder: the clock lands on the cutoff.
    sim.run(until=3, max_events=100)
    assert fired == [0, 1, 2]
    assert sim.now == 3
    assert sim.pending_events == 1


def test_clock_stays_at_last_event_when_drained_before_until():
    # Deliberate semantics: a queue that empties before `until` leaves
    # the clock at the last fired event, not at the horizon — a deadlock
    # diagnosis needs the cycle work stopped, not the max_cycles bound.
    sim = Simulator()
    sim.after(7, lambda: None)
    assert sim.run(until=1_000_000) == 7
    assert sim.now == 7
    assert sim.pending_events == 0


def test_step_on_empty_queue_is_inert():
    sim = Simulator()
    assert sim.step() is False
    assert sim.now == 0
    assert sim.events_processed == 0
    sim.after(3, lambda: None)
    sim.run()
    assert sim.step() is False
    assert sim.now == 3
    assert sim.events_processed == 1


def test_reentrant_callback_scheduling_at_now_fires_same_run():
    sim = Simulator()
    trace = []

    def outer():
        trace.append(("outer", sim.now))
        sim.after(0, lambda: trace.append(("inner", sim.now)))

    sim.after(5, outer)
    sim.run()
    assert trace == [("outer", 5), ("inner", 5)]
    assert sim.now == 5
    assert sim.events_processed == 2


def test_monitor_fires_every_interval():
    sim = Simulator()
    ticks = []
    for i in range(10):
        sim.after(i, lambda: None)
    sim.set_monitor(lambda: ticks.append(sim.events_processed), interval_events=3)
    sim.run()
    # Fires after the 3rd, 6th and 9th events (counter snapshots taken
    # mid-run read the pre-run total).
    assert len(ticks) == 3


def test_monitor_exception_aborts_run_with_consistent_counts():
    sim = Simulator()
    for i in range(10):
        sim.after(i, lambda: None)

    def tripwire():
        raise RuntimeError("tripped")

    sim.set_monitor(tripwire, interval_events=4)
    with pytest.raises(RuntimeError, match="tripped"):
        sim.run()
    assert sim.events_processed == 4
    assert sim.pending_events == 6
    # Clearing the monitor lets the run finish.
    sim.set_monitor(None)
    sim.run()
    assert sim.events_processed == 10


def test_monitor_invalid_interval_rejected():
    with pytest.raises(ValueError):
        Simulator().set_monitor(lambda: None, interval_events=0)


# ----------------------------------------------------------------------
# Batch dispatch
# ----------------------------------------------------------------------


class _ToySystem:
    """Records every handler invocation: (kind, payload, now, batched)."""

    def __init__(self, sim, batched_kinds=()):
        self.sim = sim
        self.log = []
        for kind in ("tick", "tock"):
            sim.register(kind, self._make_scalar(kind))
        for kind in batched_kinds:
            sim.register_batch(kind, self._make_batch(kind))

    def _make_scalar(self, kind):
        def handler(*payload):
            self.log.append((kind, payload, self.sim.now))
        return handler

    def _make_batch(self, kind):
        def handler(payloads):
            for payload in payloads:
                self.log.append((kind, payload, self.sim.now))
        return handler

    def post_script(self, rng_seed=0, events=200):
        import random
        rng = random.Random(rng_seed)
        for i in range(events):
            self.sim.post(
                rng.choice((0, 0, 0, 1, 2)), rng.choice(("tick", "tock")), i
            )


def test_batch_dispatch_equivalent_to_scalar():
    scalar_sim, batch_sim = Simulator(), Simulator()
    scalar = _ToySystem(scalar_sim)
    batched = _ToySystem(batch_sim, batched_kinds=("tick", "tock"))
    scalar.post_script()
    batched.post_script()
    scalar_sim.run()
    batch_sim.run()
    assert batched.log == scalar.log
    assert batch_sim.events_processed == scalar_sim.events_processed


def test_batch_handler_receives_same_cycle_run_in_order():
    sim = Simulator()
    runs = []
    sim.register("k", lambda *p: runs.append([p]))
    sim.register_batch("k", lambda payloads: runs.append(payloads))
    for i in range(5):
        sim.post(3, "k", i)
    sim.run()
    # One batched call with all five payloads, in post order.
    assert runs == [[(0,), (1,), (2,), (3,), (4,)]]


def test_batch_runs_break_on_kind_change():
    sim = Simulator()
    log = []
    sim.register("a", lambda *p: log.append(("a", p)))
    sim.register("b", lambda *p: log.append(("b", p)))
    sim.register_batch("a", lambda ps: log.append(("a-batch", list(ps))))
    sim.post(1, "a", 0)
    sim.post(1, "a", 1)
    sim.post(1, "b", 2)
    sim.post(1, "a", 3)
    sim.run()
    # The interleaved "b" splits the "a" events into a run of two (batch)
    # and a singleton (scalar fast path).
    assert log == [
        ("a-batch", [(0,), (1,)]),
        ("b", (2,)),
        ("a", (3,)),
    ]


def test_monitor_cadence_identical_under_batching():
    def fire_points(batched):
        sim = Simulator()
        system = _ToySystem(
            sim, batched_kinds=("tick", "tock") if batched else ()
        )
        ticks = []
        sim.set_monitor(lambda: ticks.append(sim.events_processed), 7)
        system.post_script(rng_seed=3, events=100)
        sim.run()
        return ticks

    scalar_points = fire_points(batched=False)
    assert scalar_points  # the monitor did fire
    assert fire_points(batched=True) == scalar_points


def test_register_batch_requires_scalar_handler_first():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.register_batch("unregistered", lambda payloads: None)


def test_max_events_respected_mid_batch():
    sim = Simulator()
    seen = []
    sim.register("k", lambda *p: seen.append(p))
    sim.register_batch("k", lambda ps: seen.extend(ps))
    for i in range(10):
        sim.post(1, "k", i)
    sim.run(max_events=4)
    assert seen == [(0,), (1,), (2,), (3,)]
    assert sim.pending_events == 6
    sim.run()
    assert len(seen) == 10


def test_dispatch_counts_toward_events_processed():
    sim = Simulator()
    hits = []
    sim.register("done", lambda *p: hits.append(p))
    sim.dispatch(("done", 42))
    assert hits == [(42,)]
    assert sim.events_processed == 1
    sim.dispatch(lambda: hits.append("callable"))
    assert sim.events_processed == 2


def test_dispatch_ticks_monitor_countdowns():
    sim = Simulator()
    sim.register("done", lambda: None)
    ticks = []
    sim.set_monitor(lambda: ticks.append(sim.events_processed), 3)
    # Two synchronous dispatches + one queued event reach the interval:
    # the monitor fires at the queued event's boundary, not mid-handler.
    sim.dispatch(("done",))
    sim.dispatch(("done",))
    assert ticks == []
    sim.post(1, "done")
    sim.run()
    assert ticks == [3]
