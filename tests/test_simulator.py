"""Unit tests for the simulation kernel."""

import pytest

from repro.engine.simulator import Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0


def test_after_schedules_relative():
    sim = Simulator()
    fired = []
    sim.after(10, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [10]
    assert sim.now == 10


def test_at_schedules_absolute():
    sim = Simulator()
    fired = []
    sim.at(25, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [25]


def test_scheduling_in_the_past_raises():
    sim = Simulator()
    sim.after(10, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.at(5, lambda: None)


def test_negative_delay_raises():
    with pytest.raises(ValueError):
        Simulator().after(-1, lambda: None)


def test_events_cascade():
    sim = Simulator()
    trace = []

    def first():
        trace.append(("first", sim.now))
        sim.after(5, second)

    def second():
        trace.append(("second", sim.now))

    sim.after(3, first)
    sim.run()
    assert trace == [("first", 3), ("second", 8)]


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.after(10, lambda: fired.append("a"))
    sim.after(100, lambda: fired.append("b"))
    sim.run(until=50)
    assert fired == ["a"]
    assert sim.now == 50
    assert sim.pending_events == 1
    sim.run()
    assert fired == ["a", "b"]


def test_run_max_events_limits_work():
    sim = Simulator()
    fired = []
    for i in range(5):
        sim.after(i + 1, lambda i=i: fired.append(i))
    sim.run(max_events=2)
    assert fired == [0, 1]


def test_step_fires_one_event():
    sim = Simulator()
    fired = []
    sim.after(1, lambda: fired.append("x"))
    assert sim.step() is True
    assert fired == ["x"]
    assert sim.step() is False


def test_events_processed_counter():
    sim = Simulator()
    for i in range(4):
        sim.after(i, lambda: None)
    sim.run()
    assert sim.events_processed == 4


def test_same_cycle_events_fifo_order():
    sim = Simulator()
    order = []
    sim.after(5, lambda: order.append(1))
    sim.after(5, lambda: order.append(2))
    sim.after(5, lambda: order.append(3))
    sim.run()
    assert order == [1, 2, 3]
