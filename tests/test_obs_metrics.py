"""Metrics registry: instruments, series decimation, standard wiring."""

from __future__ import annotations

import pytest

from repro.experiments.runner import run_simulation
from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    finalize_standard_metrics,
    install_standard_metrics,
)
from repro.obs.profiler import PhaseProfiler

from tests.conftest import tiny_config


RUN_KWARGS = dict(num_wavefronts=8, scale=0.05, seed=1)


class TestInstruments:
    def test_counter_monotonic(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_watermarks(self):
        gauge = Gauge("g")
        assert gauge.min_value is None
        for value in (5, 2, 9):
            gauge.set(value)
        assert gauge.value == 9
        assert gauge.min_value == 2
        assert gauge.max_value == 9
        assert gauge.samples == 3

    def test_registry_creates_on_first_use(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("h") is registry.histogram("h")

    def test_registry_rejects_tiny_series_cap(self):
        with pytest.raises(ValueError):
            MetricsRegistry(max_series_samples=1)


class TestSeries:
    def test_sample_records_gauge_rows(self):
        registry = MetricsRegistry()
        depth = registry.gauge("depth")
        depth.set(3)
        registry.sample(100)
        depth.set(7)
        registry.sample(200)
        assert registry.series == [(100, {"depth": 3}), (200, {"depth": 7})]

    def test_decimation_bounds_memory(self):
        registry = MetricsRegistry(max_series_samples=8)
        gauge = registry.gauge("g")
        for cycle in range(100):
            gauge.set(cycle)
            registry.sample(cycle)
        assert registry.samples_taken == 100
        assert len(registry.series) < 8
        # Kept rows stay in cycle order and span the whole run — the
        # cap trades resolution, never recency.
        cycles = [cycle for cycle, _ in registry.series]
        assert cycles == sorted(cycles)
        assert cycles[-1] > 90

    def test_as_dict_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(4)
        registry.histogram("h").add(3)
        registry.sample(50)
        data = registry.as_dict()
        assert data["counters"] == {"c": 2}
        assert data["gauges"]["g"] == {
            "value": 4, "min": 4, "max": 4, "samples": 1,
        }
        assert data["histograms"]["h"]["total"] == 1
        assert data["histograms"]["h"]["buckets"][0] == [0, 0]
        assert data["series"] == [{"cycle": 50, "g": 4}]
        assert data["samples_taken"] == 1


class TestStandardMetrics:
    def test_metrics_run_populates_detail(self):
        result = run_simulation(
            "MVT", config=tiny_config(), metrics=True,
            metrics_interval_events=500, **RUN_KWARGS,
        )
        data = result.detail["metrics"]
        assert data["samples_taken"] > 0
        assert data["series"], "sampling produced no time-series rows"
        row = data["series"][0]
        assert "iommu.pending_walks" in row
        assert "gpu.running_wavefronts" in row
        # Finalised totals agree with the canonical IOMMU stats.
        assert (
            data["counters"]["iommu.walks_dispatched"]
            == result.walks_dispatched
        )
        assert any(name.startswith("pwc.") for name in data["counters"])
        assert data["histograms"]["iommu.pending_depth"]["total"] > 0

    def test_metrics_do_not_change_results(self):
        plain = run_simulation("MVT", config=tiny_config(), **RUN_KWARGS)
        observed = run_simulation(
            "MVT", config=tiny_config(), metrics=True,
            metrics_interval_events=500, **RUN_KWARGS,
        )
        assert observed.total_cycles == plain.total_cycles
        assert observed.stall_cycles == plain.stall_cycles
        assert observed.walks_dispatched == plain.walks_dispatched

    def test_interval_validation(self):
        with pytest.raises(ValueError, match="metrics_interval_events"):
            run_simulation(
                "MVT", config=tiny_config(), metrics=True,
                metrics_interval_events=0, **RUN_KWARGS,
            )

    def test_sampler_coexists_with_watchdog(self):
        result = run_simulation(
            "MVT", config=tiny_config(), metrics=True,
            metrics_interval_events=500, watchdog_cycles=5_000_000,
            **RUN_KWARGS,
        )
        assert result.detail["metrics"]["samples_taken"] > 0

    def test_scheduler_gauges_for_simt(self):
        result = run_simulation(
            "MVT", config=tiny_config("simt"), metrics=True,
            metrics_interval_events=500, **RUN_KWARGS,
        )
        gauges = result.detail["metrics"]["gauges"]
        assert "scheduler.batch_hits" in gauges
        assert "scheduler.sjf_picks" in gauges

    def test_install_reads_but_never_writes(self, config):
        from repro.experiments.runner import build_system
        from repro.workloads.registry import get_workload

        system = build_system(config)
        registry = MetricsRegistry()
        sampler = install_standard_metrics(system, registry)
        bench = get_workload("MVT", scale=0.05, seed=1)
        system.gpu.dispatch(
            bench.build_trace(num_wavefronts=8, wavefront_size=64)
        )
        system.simulator.add_monitor(sampler, 500)
        system.simulator.run()
        assert system.gpu.finished
        finalize_standard_metrics(system, registry)
        assert registry.counter("iommu.requests").value == system.iommu.requests


class TestProfiler:
    def test_report_shape(self):
        profiler = PhaseProfiler()
        profiler.add("scheduler_select", 0.25)
        profiler.add("scheduler_select", 0.25)
        profiler.add("memory_model", 0.5)
        report = profiler.report(2.0)
        assert report["total_wall_seconds"] == 2.0
        phases = report["phases"]
        assert phases["scheduler_select"]["calls"] == 2
        assert phases["scheduler_select"]["seconds"] == pytest.approx(0.5)
        assert phases["scheduler_select"]["fraction"] == pytest.approx(0.25)
        assert phases["event_loop_other"]["seconds"] == pytest.approx(1.0)

    def test_derived_phase_never_negative(self):
        profiler = PhaseProfiler()
        profiler.add("memory_model", 5.0)
        report = profiler.report(1.0)
        assert report["phases"]["event_loop_other"]["seconds"] == 0

    def test_profiled_run_populates_detail(self):
        result = run_simulation(
            "MVT", config=tiny_config(), profile=True, **RUN_KWARGS
        )
        phases = result.detail["profile"]["phases"]
        assert "scheduler_select" in phases
        assert "memory_model" in phases
        assert "event_loop_other" in phases
        assert phases["memory_model"]["calls"] > 0

    def test_profiled_run_same_metrics(self):
        plain = run_simulation("MVT", config=tiny_config(), **RUN_KWARGS)
        profiled = run_simulation(
            "MVT", config=tiny_config(), profile=True, **RUN_KWARGS
        )
        assert profiled.total_cycles == plain.total_cycles
        assert profiled.walks_dispatched == plain.walks_dispatched
