"""Unit tests for the L1 → L2 → DRAM data path."""

from repro.engine.simulator import Simulator
from repro.memory.subsystem import MemorySubsystem
from tests.conftest import tiny_config


def make_subsystem():
    sim = Simulator()
    return sim, MemorySubsystem(sim, tiny_config())


def run_access(sim, memory, cu, address):
    done_at = []
    memory.data_access(cu, address, lambda: done_at.append(sim.now))
    sim.run()
    return done_at[0]


def test_cold_access_goes_to_dram():
    sim, memory = make_subsystem()
    latency = run_access(sim, memory, 0, 0x1000)
    # Must include both cache lookup latencies plus a DRAM row activate.
    config = tiny_config()
    floor = config.l1_cache.hit_latency + config.l2_cache.hit_latency
    assert latency > floor


def test_l1_hit_after_fill():
    sim, memory = make_subsystem()
    run_access(sim, memory, 0, 0x1000)
    start = sim.now
    latency = run_access(sim, memory, 0, 0x1000) - start
    assert latency == tiny_config().l1_cache.hit_latency


def test_l2_hit_for_other_cu():
    sim, memory = make_subsystem()
    run_access(sim, memory, 0, 0x1000)  # fills shared L2 (and CU0's L1)
    start = sim.now
    config = tiny_config()
    latency = run_access(sim, memory, 1, 0x1000) - start
    assert latency == config.l1_cache.hit_latency + config.l2_cache.hit_latency


def test_l1_caches_are_private():
    sim, memory = make_subsystem()
    run_access(sim, memory, 0, 0x1000)
    line = 0x1000 // 64
    assert memory.l1_caches[0].contains(line) is True
    assert memory.l1_caches[1].contains(line) is False


def test_page_table_read_completes_later():
    sim, memory = make_subsystem()
    done_at = []
    memory.page_table_read(0x2000, lambda: done_at.append(sim.now))
    start = sim.now
    sim.run()
    assert done_at and done_at[0] > start
    assert memory.page_table_reads == 1


def test_page_table_reads_bypass_caches():
    sim, memory = make_subsystem()
    memory.page_table_read(0x2000, lambda: None)
    memory.page_table_read(0x2000, lambda: None)
    sim.run()
    assert memory.l2_cache.accesses == 0
    assert memory.dram.accesses == 2


def test_stats_shape():
    sim, memory = make_subsystem()
    run_access(sim, memory, 0, 0x40)
    stats = memory.stats()
    assert stats["data_accesses"] == 1
    assert "dram" in stats and "l2" in stats
