"""Integration tests for wavefront execution on the full GPU model."""

from repro.config import PAGE_SIZE
from repro.experiments.runner import build_system
from tests.conftest import tiny_config


def run_traces(traces, scheduler="fcfs"):
    system = build_system(tiny_config(scheduler))
    system.gpu.dispatch(traces)
    system.simulator.run()
    assert system.gpu.finished
    return system


def coalesced_instruction(base, lanes=16):
    return [base + lane * 8 for lane in range(lanes)]


def divergent_instruction(base, pages=8, lanes=16):
    return [base + (lane % pages) * PAGE_SIZE for lane in range(lanes)]


class TestCompletion:
    def test_single_wavefront_single_instruction(self):
        system = run_traces([[coalesced_instruction(0x10000)]])
        assert system.gpu.finished
        assert len(system.gpu.instruction_records) == 1
        record = system.gpu.instruction_records[0]
        assert record.complete_time is not None
        assert record.complete_time > record.issue_time

    def test_all_instructions_retire(self):
        trace = [[coalesced_instruction(0x10000 + i * 512) for i in range(10)]]
        system = run_traces(trace)
        records = system.gpu.instruction_records
        assert len(records) == 10
        assert all(r.complete_time is not None for r in records)

    def test_many_wavefronts_backfill_slots(self):
        # 4 CUs × 2 slots = 8 resident; 20 wavefronts require backfill.
        traces = [
            [coalesced_instruction(0x10000 + wf * 8192)] for wf in range(20)
        ]
        system = run_traces(traces)
        assert system.gpu.wavefronts_launched == 20

    def test_empty_dispatch_rejected(self):
        import pytest

        system = build_system(tiny_config())
        with pytest.raises(ValueError):
            system.gpu.dispatch([])


class TestInstructionOrdering:
    def test_wavefront_issues_in_program_order(self):
        trace = [[coalesced_instruction(0x10000), coalesced_instruction(0x20000)]]
        system = run_traces(trace)
        first, second = system.gpu.instruction_records
        assert first.issue_time < second.issue_time
        # Window of 1: the second cannot issue before the first retires.
        assert second.issue_time >= first.complete_time

    def test_issue_gap_respected(self):
        trace = [[coalesced_instruction(0x10000), coalesced_instruction(0x10000)]]
        system = run_traces(trace)
        first, second = system.gpu.instruction_records
        gap = tiny_config().gpu.issue_gap_cycles
        assert second.issue_time - first.complete_time >= gap


class TestTranslationPath:
    def test_divergent_instruction_generates_walks(self):
        system = run_traces([[divergent_instruction(0x100000, pages=8)]])
        record = system.gpu.instruction_records[0]
        assert record.num_pages == 8
        assert record.walk_requests == 8  # cold TLBs: all miss
        assert system.iommu.walks_dispatched == 8

    def test_coalesced_instruction_single_translation(self):
        system = run_traces([[coalesced_instruction(0x100000)]])
        record = system.gpu.instruction_records[0]
        assert record.num_pages == 1
        assert system.iommu.walks_dispatched == 1

    def test_translation_reuse_hits_l1_tlb(self):
        trace = [[coalesced_instruction(0x100000), coalesced_instruction(0x100000)]]
        system = run_traces(trace)
        assert system.iommu.walks_dispatched == 1  # second instr hits L1 TLB

    def test_l2_tlb_shared_across_cus(self):
        # Two wavefronts on different CUs touch the same page; the second
        # should hit the shared L2 TLB rather than walking again.
        traces = [
            [coalesced_instruction(0x100000)],
            [coalesced_instruction(0x100000)],
        ]
        system = run_traces(traces)
        assert system.iommu.walks_dispatched <= 1

    def test_walk_latencies_recorded(self):
        system = run_traces([[divergent_instruction(0x100000, pages=4)]])
        record = system.gpu.instruction_records[0]
        assert len(record.walk_latencies) == 4
        assert all(latency > 0 for latency in record.walk_latencies)
        assert record.walk_accesses >= 4

    def test_data_access_follows_translation(self):
        system = run_traces([[coalesced_instruction(0x100000)]])
        assert system.memory.data_accesses == 2  # 16 lanes × 8B = 2 lines


class TestStallAccounting:
    def test_translation_heavy_run_stalls_cus(self):
        traces = [[divergent_instruction(0x100000 + wf * (1 << 20), pages=16)]
                  for wf in range(8)]
        system = run_traces(traces)
        assert system.gpu.total_stall_cycles > 0

    def test_epoch_tracking_counts_wavefronts(self):
        traces = [
            [divergent_instruction(0x100000 + wf * (1 << 22), pages=16)]
            for wf in range(8)
        ]
        system = run_traces(traces)
        assert system.gpu.mean_wavefronts_per_epoch > 0


class TestDeterminism:
    def test_identical_runs_produce_identical_cycles(self):
        trace = [
            [divergent_instruction(0x100000 + wf * (1 << 21), pages=8) for _ in range(4)]
            for wf in range(6)
        ]
        cycles = set()
        for _ in range(2):
            system = run_traces(trace)
            cycles.add(system.gpu.completion_time)
        assert len(cycles) == 1

    def test_random_scheduler_deterministic_given_seed(self):
        trace = [
            [divergent_instruction(0x100000 + wf * (1 << 21), pages=8)]
            for wf in range(6)
        ]
        cycles = set()
        for _ in range(2):
            system = run_traces(trace, scheduler="random")
            cycles.add(system.gpu.completion_time)
        assert len(cycles) == 1
