"""Unit tests for the IOMMU pending-walk buffer."""

import pytest

from repro.core.buffer import PendingWalkBuffer
from repro.core.request import TranslationRequest


def make_request(vpn=1, instruction_id=1, app_id=0):
    return TranslationRequest(
        vpn=vpn,
        instruction_id=instruction_id,
        wavefront_id=0,
        cu_id=0,
        issue_time=0,
        app_id=app_id,
    )


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        PendingWalkBuffer(0)


def test_add_and_len():
    buffer = PendingWalkBuffer(4)
    buffer.add(make_request(vpn=1), arrival_time=0)
    buffer.add(make_request(vpn=2), arrival_time=1)
    assert len(buffer) == 2
    assert not buffer.is_empty
    assert not buffer.is_full


def test_overflow_raises():
    buffer = PendingWalkBuffer(1)
    buffer.add(make_request(vpn=1), arrival_time=0)
    assert buffer.is_full
    with pytest.raises(OverflowError):
        buffer.add(make_request(vpn=2), arrival_time=1)


def test_iteration_in_arrival_order():
    buffer = PendingWalkBuffer(8)
    for vpn in (5, 3, 9):
        buffer.add(make_request(vpn=vpn), arrival_time=0)
    assert [entry.vpn for entry in buffer] == [5, 3, 9]


def test_oldest():
    buffer = PendingWalkBuffer(8)
    assert buffer.oldest() is None
    first = buffer.add(make_request(vpn=1), arrival_time=0)
    buffer.add(make_request(vpn=2), arrival_time=1)
    assert buffer.oldest() is first


def test_oldest_for_instruction():
    buffer = PendingWalkBuffer(8)
    buffer.add(make_request(vpn=1, instruction_id=1), arrival_time=0)
    target = buffer.add(make_request(vpn=2, instruction_id=2), arrival_time=1)
    buffer.add(make_request(vpn=3, instruction_id=2), arrival_time=2)
    assert buffer.oldest_for_instruction(2) is target
    assert buffer.oldest_for_instruction(99) is None


def test_duplicate_vpn_entries_are_legal():
    buffer = PendingWalkBuffer(8)
    a = buffer.add(make_request(vpn=7, instruction_id=1), arrival_time=0)
    b = buffer.add(make_request(vpn=7, instruction_id=2), arrival_time=1)
    assert buffer.find_by_vpn(7) is a
    buffer.remove(a)
    assert buffer.find_by_vpn(7) is b
    buffer.remove(b)
    assert buffer.find_by_vpn(7) is None


def test_remove_frees_capacity():
    buffer = PendingWalkBuffer(1)
    entry = buffer.add(make_request(vpn=1), arrival_time=0)
    buffer.remove(entry)
    assert buffer.is_empty
    buffer.add(make_request(vpn=2), arrival_time=1)  # no overflow


def test_remove_unknown_entry_raises():
    buffer = PendingWalkBuffer(2)
    entry = buffer.add(make_request(vpn=1), arrival_time=0)
    buffer.remove(entry)
    with pytest.raises(KeyError):
        buffer.remove(entry)


def test_scores_accumulate_per_instruction():
    buffer = PendingWalkBuffer(8)
    a = buffer.add(make_request(vpn=1, instruction_id=1), 0, estimated_accesses=4)
    b = buffer.add(make_request(vpn=2, instruction_id=1), 0, estimated_accesses=3)
    assert buffer.score_of(a) == 7
    assert buffer.score_of(b) == 7


def test_score_persists_until_walk_completes():
    buffer = PendingWalkBuffer(8)
    a = buffer.add(make_request(vpn=1, instruction_id=1), 0, estimated_accesses=4)
    b = buffer.add(make_request(vpn=2, instruction_id=1), 0, estimated_accesses=2)
    buffer.remove(a)  # dispatched, still in flight
    assert buffer.score_of(b) == 6
    buffer.complete_walk(1)
    assert buffer.score_of(b) == 6  # one walk still active
    buffer.remove(b)
    buffer.complete_walk(1)  # last walk done: score released


def test_attach_does_not_change_score():
    buffer = PendingWalkBuffer(8)
    entry = buffer.add(make_request(vpn=1, instruction_id=1), 0, estimated_accesses=4)
    buffer.attach(entry, make_request(vpn=1, instruction_id=2))
    assert buffer.score_of(entry) == 4
    assert buffer.total_coalesced == 1


def test_direct_dispatch_accounting():
    buffer = PendingWalkBuffer(8)
    buffer.account_direct_dispatch(5, 4)
    entry = buffer.add(make_request(vpn=9, instruction_id=5), 0, estimated_accesses=1)
    assert buffer.score_of(entry) == 5


def test_peak_occupancy_tracked():
    buffer = PendingWalkBuffer(4)
    entries = [buffer.add(make_request(vpn=v), 0) for v in range(3)]
    for entry in entries:
        buffer.remove(entry)
    assert buffer.peak_occupancy == 3
    assert buffer.total_insertions == 3


def test_min_score_entry_picks_lowest_score_then_oldest():
    buffer = PendingWalkBuffer(8)
    assert buffer.min_score_entry() is None
    buffer.add(make_request(vpn=1, instruction_id=1), 0, estimated_accesses=4)
    light = buffer.add(make_request(vpn=2, instruction_id=2), 0, estimated_accesses=1)
    buffer.add(make_request(vpn=3, instruction_id=2), 0, estimated_accesses=0)
    assert buffer.min_score_entry() is light  # score 1 < 4; oldest of instr 2


def test_min_score_entry_tracks_removals():
    buffer = PendingWalkBuffer(8)
    a = buffer.add(make_request(vpn=1, instruction_id=1), 0, estimated_accesses=1)
    b = buffer.add(make_request(vpn=2, instruction_id=1), 0, estimated_accesses=1)
    c = buffer.add(make_request(vpn=3, instruction_id=2), 0, estimated_accesses=9)
    assert buffer.min_score_entry() is a
    buffer.remove(a)
    assert buffer.min_score_entry() is b  # next-oldest of the same instruction
    buffer.remove(b)
    assert buffer.min_score_entry() is c  # only instruction left


def test_min_score_entry_sees_score_growth():
    buffer = PendingWalkBuffer(8)
    a = buffer.add(make_request(vpn=1, instruction_id=1), 0, estimated_accesses=2)
    b = buffer.add(make_request(vpn=2, instruction_id=2), 0, estimated_accesses=3)
    assert buffer.min_score_entry() is a
    # Instruction 1 gains work (a direct dispatch): instruction 2 wins now.
    buffer.account_direct_dispatch(1, 4)
    assert buffer.min_score_entry() is b


def test_min_score_entry_for_app():
    buffer = PendingWalkBuffer(8)
    buffer.add(make_request(vpn=1, instruction_id=1, app_id=0), 0, estimated_accesses=1)
    heavy = buffer.add(
        make_request(vpn=2, instruction_id=2, app_id=1), 0, estimated_accesses=9
    )
    assert buffer.min_score_entry_for_app(1) is heavy
    assert buffer.min_score_entry_for_app(7) is None


def test_app_index_sees_other_apps_score_changes():
    # Regression: instruction 1 spans two apps; adding more of its work
    # via app 1 must refresh app 0's index too.
    buffer = PendingWalkBuffer(8)
    mine = buffer.add(
        make_request(vpn=1, instruction_id=1, app_id=0), 0, estimated_accesses=1
    )
    buffer.add(make_request(vpn=2, instruction_id=1, app_id=1), 0, estimated_accesses=5)
    assert buffer.min_score_entry_for_app(0) is mine


def test_pending_apps_ordered_by_oldest_entry():
    buffer = PendingWalkBuffer(8)
    assert buffer.pending_apps() == []
    first = buffer.add(make_request(vpn=1, instruction_id=1, app_id=3), 0)
    buffer.add(make_request(vpn=2, instruction_id=2, app_id=0), 0)
    buffer.add(make_request(vpn=3, instruction_id=3, app_id=3), 0)
    assert buffer.pending_apps() == [3, 0]
    buffer.remove(first)
    assert buffer.pending_apps() == [0, 3]


def test_track_scores_false_skips_score_index():
    buffer = PendingWalkBuffer(8, track_scores=False)
    entry = buffer.add(make_request(vpn=1), 0, estimated_accesses=2)
    assert buffer.oldest() is entry  # arrival-order queries still work
    assert buffer.score_of(entry) == 2  # plain score lookups still work
    with pytest.raises(RuntimeError):
        buffer.min_score_entry()
