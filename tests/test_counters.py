"""Unit tests for the bucketed histogram."""

import pytest

from repro.stats.counters import BucketHistogram
from repro.stats.metrics import FIG3_BUCKETS


def test_requires_buckets():
    with pytest.raises(ValueError):
        BucketHistogram([])


def test_rejects_inverted_bucket():
    with pytest.raises(ValueError):
        BucketHistogram([(10, 5)])


def test_samples_land_in_their_bucket():
    histogram = BucketHistogram([(1, 10), (11, 20)])
    histogram.add(5)
    histogram.add(11)
    histogram.add(20)
    assert histogram.counts() == [1, 2]


def test_bucket_bounds_are_inclusive():
    histogram = BucketHistogram([(1, 10)])
    histogram.add(1)
    histogram.add(10)
    assert histogram.counts() == [2]


def test_out_of_range_tracked():
    histogram = BucketHistogram([(1, 10)])
    histogram.add(0)
    histogram.add(11)
    assert histogram.out_of_range == 2
    assert histogram.counts() == [0]


def test_fractions_sum_to_one_when_in_range():
    histogram = BucketHistogram(FIG3_BUCKETS)
    for value in (1, 20, 40, 60, 70, 100, 256):
        histogram.add(value)
    assert sum(histogram.fractions()) == pytest.approx(1.0)


def test_fractions_empty():
    histogram = BucketHistogram([(1, 10)])
    assert histogram.fractions() == [0.0]


def test_labels_and_dict():
    histogram = BucketHistogram([(1, 16), (17, 32)])
    histogram.add(2)
    assert histogram.labels() == ["1-16", "17-32"]
    assert histogram.as_dict()["1-16"] == 1.0
