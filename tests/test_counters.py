"""Unit tests for the bucketed histogram."""

import pytest

from repro.stats.counters import BucketHistogram
from repro.stats.metrics import FIG3_BUCKETS


def test_requires_buckets():
    with pytest.raises(ValueError):
        BucketHistogram([])


def test_rejects_inverted_bucket():
    with pytest.raises(ValueError):
        BucketHistogram([(10, 5)])


def test_samples_land_in_their_bucket():
    histogram = BucketHistogram([(1, 10), (11, 20)])
    histogram.add(5)
    histogram.add(11)
    histogram.add(20)
    assert histogram.counts() == [1, 2]


def test_bucket_bounds_are_inclusive():
    histogram = BucketHistogram([(1, 10)])
    histogram.add(1)
    histogram.add(10)
    assert histogram.counts() == [2]


def test_out_of_range_tracked():
    histogram = BucketHistogram([(1, 10)])
    histogram.add(0)
    histogram.add(11)
    assert histogram.out_of_range == 2
    assert histogram.counts() == [0]


def test_fractions_sum_to_one_when_in_range():
    histogram = BucketHistogram(FIG3_BUCKETS)
    for value in (1, 20, 40, 60, 70, 100, 256):
        histogram.add(value)
    assert sum(histogram.fractions()) == pytest.approx(1.0)


def test_fractions_empty():
    histogram = BucketHistogram([(1, 10)])
    assert histogram.fractions() == [0.0]


def test_labels_and_dict():
    histogram = BucketHistogram([(1, 16), (17, 32)])
    histogram.add(2)
    assert histogram.labels() == ["1-16", "17-32"]
    assert histogram.as_dict()["1-16"] == 1.0


def test_bisect_agrees_with_linear_scan_on_every_edge():
    """Exhaustive differential check of the bisect fast path."""
    buckets = [(1, 16), (17, 32), (40, 40), (41, 64)]
    fast = BucketHistogram(buckets)
    assert fast._lows is not None  # sorted buckets take the bisect path
    for value in range(-2, 70):
        fast.add(value)
    slow_counts = [0] * len(buckets)
    out = 0
    for value in range(-2, 70):
        for index, (low, high) in enumerate(buckets):
            if low <= value <= high:
                slow_counts[index] += 1
                break
        else:
            out += 1
    assert fast.counts() == slow_counts
    assert fast.out_of_range == out


def test_gap_between_buckets_is_out_of_range():
    histogram = BucketHistogram([(1, 10), (20, 30)])
    histogram.add(15)
    assert histogram.out_of_range == 1
    assert histogram.counts() == [0, 0]


def test_overlapping_buckets_fall_back_to_first_match():
    histogram = BucketHistogram([(1, 20), (10, 30)])
    assert histogram._lows is None  # overlap disables the bisect path
    histogram.add(15)  # in both; first declared bucket wins
    histogram.add(25)
    assert histogram.counts() == [1, 1]


def test_merge_sums_counts():
    a = BucketHistogram(FIG3_BUCKETS)
    b = BucketHistogram(FIG3_BUCKETS)
    for value in (1, 20, 300):
        a.add(value)
    for value in (2, 20, -1):
        b.add(value)
    a.merge(b)
    assert a.total == 6
    assert a.out_of_range == 2  # 300 from a, -1 from b
    assert a.counts()[0] == 2  # 1 and 2
    assert a.counts()[1] == 2  # 20 twice
    assert b.total == 3  # the source histogram is untouched


def test_merge_rejects_different_buckets():
    a = BucketHistogram([(1, 10)])
    b = BucketHistogram([(1, 20)])
    with pytest.raises(ValueError, match="different buckets"):
        a.merge(b)


# -- quantiles / CDF export (figure pipeline) ---------------------------


def test_quantiles_interpolate_within_bucket():
    histogram = BucketHistogram([(0, 9), (10, 19), (20, 29)])
    for value in (0, 5, 12, 15, 25):
        histogram.add(value)
    q0, median, q1 = histogram.quantiles([0.0, 0.5, 1.0])
    assert q0 == 0.0  # low bound of the first non-empty bucket
    assert q1 == 29.0  # high bound of the last non-empty bucket
    assert 10.0 <= median <= 19.0  # rank 2.5 of 5 lands in the middle bucket


def test_quantiles_single_sample():
    histogram = BucketHistogram([(0, 9), (10, 19)])
    histogram.add(12)
    low, mid, high = histogram.quantiles([0.0, 0.5, 1.0])
    # One sample: the whole distribution is its bucket, interpolated.
    assert low == 10.0
    assert high == 19.0
    assert 10.0 <= mid <= 19.0


def test_quantiles_skip_empty_buckets():
    histogram = BucketHistogram([(0, 9), (10, 19), (20, 29)])
    histogram.add(1)
    histogram.add(25)  # middle bucket stays empty
    values = histogram.quantiles([0.0, 1.0])
    assert values[0] == 0.0
    assert values[1] == 29.0


def test_quantiles_empty_histogram_raises():
    histogram = BucketHistogram([(0, 9)])
    with pytest.raises(ValueError, match="no in-range samples"):
        histogram.quantiles([0.5])
    histogram.add(100)  # out of range only: still no distribution
    with pytest.raises(ValueError, match="no in-range samples"):
        histogram.quantiles([0.5])


def test_quantiles_reject_out_of_unit_interval():
    histogram = BucketHistogram([(0, 9)])
    histogram.add(5)
    with pytest.raises(ValueError, match="outside 0..1"):
        histogram.quantiles([1.5])


def test_cdf_points_monotone_and_complete():
    histogram = BucketHistogram([(0, 9), (10, 19), (20, 29)])
    for value in (1, 2, 12, 25):
        histogram.add(value)
    points = histogram.cdf_points()
    # One point per declared bucket, at its upper bound.
    assert [upper for upper, _ in points] == [9, 19, 29]
    fractions = [fraction for _, fraction in points]
    assert fractions == sorted(fractions)
    assert fractions[-1] == 1.0


def test_cdf_points_empty_bucket_repeats_fraction():
    histogram = BucketHistogram([(0, 9), (10, 19), (20, 29)])
    histogram.add(1)
    histogram.add(25)
    fractions = [fraction for _, fraction in histogram.cdf_points()]
    assert fractions == [0.5, 0.5, 1.0]  # empty middle bucket holds flat


def test_cdf_points_empty_histogram_is_flat_zero():
    histogram = BucketHistogram([(0, 9), (10, 19)])
    assert histogram.cdf_points() == [(9, 0.0), (19, 0.0)]
