"""Unit tests for compute-unit stall accounting."""

import pytest

from repro.engine.simulator import Simulator
from repro.gpu.cu import ComputeUnit
from tests.conftest import tiny_config


def make_cu():
    sim = Simulator()
    return sim, ComputeUnit(0, sim, tiny_config())


def advance(sim, cycles):
    sim.after(cycles, lambda: None)
    sim.run()


def test_empty_cu_never_stalls():
    sim, cu = make_cu()
    advance(sim, 100)
    cu.finalize()
    assert cu.stall_cycles == 0


def test_active_wavefront_is_not_a_stall():
    sim, cu = make_cu()
    cu.wavefront_arrived(active=True)
    advance(sim, 100)
    cu.finalize()
    assert cu.stall_cycles == 0


def test_all_blocked_counts_as_stall():
    sim, cu = make_cu()
    cu.wavefront_arrived(active=True)
    cu.wavefront_blocked()
    advance(sim, 100)
    cu.finalize()
    assert cu.stall_cycles == 100


def test_one_active_wavefront_hides_others():
    sim, cu = make_cu()
    cu.wavefront_arrived(active=True)
    cu.wavefront_arrived(active=True)
    cu.wavefront_blocked()  # one blocked, one active: no stall
    advance(sim, 50)
    cu.finalize()
    assert cu.stall_cycles == 0


def test_stall_interval_bounded_by_unblock():
    sim, cu = make_cu()
    cu.wavefront_arrived(active=True)
    cu.wavefront_blocked()
    advance(sim, 30)
    cu.wavefront_unblocked()
    advance(sim, 70)
    cu.finalize()
    assert cu.stall_cycles == 30


def test_departure_accounting():
    sim, cu = make_cu()
    cu.wavefront_arrived(active=True)
    cu.wavefront_departed(was_active=True)
    assert cu.resident_wavefronts == 0
    assert cu.active_wavefronts == 0


def test_underflow_detected():
    sim, cu = make_cu()
    cu.wavefront_arrived(active=True)
    cu.wavefront_blocked()
    with pytest.raises(RuntimeError):
        cu.wavefront_blocked()


def test_overflow_detected():
    sim, cu = make_cu()
    cu.wavefront_arrived(active=True)
    with pytest.raises(RuntimeError):
        cu.wavefront_unblocked()


def test_stats_contains_tlb():
    sim, cu = make_cu()
    assert "l1_tlb" in cu.stats()
