"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "MVT" in out
    assert "simt" in out


def test_run_command_small(capsys):
    code = main(
        ["run", "kmn", "--scale", "0.05", "--wavefronts", "4", "--scheduler", "simt"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "KMN" in out and "simt" in out


def test_compare_command_small(capsys):
    code = main(
        [
            "compare",
            "kmn",
            "--schedulers",
            "fcfs,simt",
            "--scale",
            "0.05",
            "--wavefronts",
            "4",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "speedup=" in out


def test_figure_table1(capsys):
    assert main(["figure", "table1"]) == 0
    assert "Table I" in capsys.readouterr().out


def test_figure_unknown_name(capsys):
    assert main(["figure", "fig99"]) == 2
    assert "unknown figure" in capsys.readouterr().err


def test_figure_small_run(capsys):
    code = main(["figure", "fig5", "--scale", "0.05", "--wavefronts", "4"])
    assert code == 0
    assert "Fig 5" in capsys.readouterr().out


def test_run_with_config_file(tmp_path, capsys):
    import json

    path = tmp_path / "machine.json"
    path.write_text(json.dumps({"iommu": {"scheduler": "simt"}}))
    code = main(
        ["run", "kmn", "--config", str(path), "--scale", "0.05", "--wavefronts", "4"]
    )
    assert code == 0
    assert "simt" in capsys.readouterr().out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_rejects_unknown_scheduler():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "MVT", "--scheduler", "bogus"])
