"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "MVT" in out
    assert "simt" in out


def test_run_command_small(capsys):
    code = main(
        ["run", "kmn", "--scale", "0.05", "--wavefronts", "4", "--scheduler", "simt"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "KMN" in out and "simt" in out


def test_run_checkpoint_then_resume(tmp_path, capsys):
    ckpt = str(tmp_path / "run.ckpt")
    code = main(
        ["run", "kmn", "--scale", "0.05", "--wavefronts", "4",
         "--scheduler", "simt", "--checkpoint-every", "100",
         "--checkpoint-path", ckpt]
    )
    assert code == 0
    first = capsys.readouterr().out
    # The completed run leaves its last mid-run checkpoint behind;
    # resuming it replays the tail to the same final statistics.
    assert main(["resume", ckpt]) == 0
    assert capsys.readouterr().out == first


def test_run_checkpoint_every_requires_path():
    with pytest.raises(ValueError, match="checkpoint_path"):
        main(["run", "kmn", "--scale", "0.05", "--wavefronts", "4",
              "--checkpoint-every", "500"])


def test_compare_command_small(capsys):
    code = main(
        [
            "compare",
            "kmn",
            "--schedulers",
            "fcfs,simt",
            "--scale",
            "0.05",
            "--wavefronts",
            "4",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "speedup=" in out


def test_figure_table1(capsys):
    assert main(["figure", "table1"]) == 0
    assert "Table I" in capsys.readouterr().out


def test_figure_unknown_name(capsys):
    assert main(["figure", "fig99"]) == 2
    assert "unknown figure" in capsys.readouterr().err


def test_figure_small_run(capsys):
    code = main(["figure", "fig5", "--scale", "0.05", "--wavefronts", "4"])
    assert code == 0
    assert "Fig 5" in capsys.readouterr().out


def test_run_with_config_file(tmp_path, capsys):
    import json

    path = tmp_path / "machine.json"
    path.write_text(json.dumps({"iommu": {"scheduler": "simt"}}))
    code = main(
        ["run", "kmn", "--config", str(path), "--scale", "0.05", "--wavefronts", "4"]
    )
    assert code == 0
    assert "simt" in capsys.readouterr().out


def test_trace_command_writes_valid_trace(tmp_path, capsys):
    import json

    from repro.obs.trace import validate_chrome_trace

    out = tmp_path / "trace.json"
    jsonl = tmp_path / "trace.jsonl"
    code = main(
        [
            "trace", "kmn", "--scheduler", "simt",
            "--scale", "0.05", "--wavefronts", "4",
            "--out", str(out), "--jsonl", str(jsonl),
        ]
    )
    assert code == 0
    captured = capsys.readouterr().out
    assert "perfetto" in captured
    assert validate_chrome_trace(json.loads(out.read_text())) > 0
    assert jsonl.read_text().count("\n") > 0


def test_trace_command_category_filter(tmp_path):
    import json

    out = tmp_path / "walks.json"
    code = main(
        [
            "trace", "kmn", "--scale", "0.05", "--wavefronts", "4",
            "--out", str(out), "--categories", "walk,job",
            "--ring-size", "1024",
        ]
    )
    assert code == 0
    categories = {
        e["cat"]
        for e in json.loads(out.read_text())["traceEvents"]
        if e["ph"] != "M"
    }
    assert categories <= {"walk", "job"}


def test_metrics_command(tmp_path, capsys):
    import json

    out = tmp_path / "metrics.json"
    code = main(
        [
            "metrics", "kmn", "--scale", "0.05", "--wavefronts", "4",
            "--interval", "50", "--out", str(out),
        ]
    )
    assert code == 0
    data = json.loads(out.read_text())
    assert data["samples_taken"] > 0
    assert "iommu.walks_dispatched" in data["counters"]


def test_metrics_command_stdout(capsys):
    code = main(["metrics", "kmn", "--scale", "0.05", "--wavefronts", "4"])
    assert code == 0
    assert '"counters"' in capsys.readouterr().out


def test_faults_trace_dir(tmp_path, capsys):
    import json

    from repro.obs.trace import validate_chrome_trace

    trace_dir = tmp_path / "traces"
    code = main(
        ["faults", "--runs", "2", "--trace-dir", str(trace_dir)]
    )
    assert code == 0
    report = json.loads(capsys.readouterr().out)
    assert all(case["trace_file"] for case in report["cases"])
    traces = sorted(trace_dir.glob("case_*.json"))
    assert len(traces) == 2
    for path in traces:
        document = json.loads(path.read_text())
        validate_chrome_trace(document)
        # Fault injections are on the timeline as instant events.
        assert any(
            e["name"].startswith("fault:")
            for e in document["traceEvents"]
        )


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_rejects_unknown_scheduler():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "MVT", "--scheduler", "bogus"])


def test_fleet_report_command(tmp_path, capsys):
    import json

    out = tmp_path / "fleet.json"
    md = tmp_path / "fleet.md"
    code = main([
        "fleet-report", "--workloads", "kmn", "--schedulers", "fcfs,simt",
        "--seeds", "1", "--scale", "0.05", "--wavefronts", "4",
        "--out", str(out), "--markdown", str(md),
    ])
    assert code == 0
    assert "# Fleet report" in capsys.readouterr().out
    report = json.loads(out.read_text())
    assert report["format"] == "repro-fleet-report"
    assert report["ok"] == 2
    assert "KMN/simt" in report["groups"]
    assert "# Fleet report" in md.read_text()


def test_fleet_report_progress_and_log(tmp_path, capsys):
    import json

    log = tmp_path / "fleet.jsonl"
    code = main([
        "fleet-report", "--workloads", "kmn", "--schedulers", "fcfs",
        "--seeds", "1", "--scale", "0.05", "--wavefronts", "4",
        "--out", str(tmp_path / "fleet.json"),
        "--progress", "--fleet-log", str(log), "--quiet",
    ])
    assert code == 0
    captured = capsys.readouterr()
    assert captured.out == ""          # --quiet silences stdout
    assert "fleet:" in captured.err    # --progress streams to stderr
    events = [json.loads(l)["event"] for l in log.read_text().splitlines()]
    assert events[0] == "sweep_started" and events[-1] == "sweep_finished"
    # The quiet report also lands in the JSON's telemetry summary.
    report = json.loads((tmp_path / "fleet.json").read_text())
    assert report["telemetry"]["ok"] == 1


def test_fleet_report_progress_quiet_not_exclusive():
    # --quiet silences the stdout report; --progress streams to stderr.
    # They compose (quiet progress-bar usage), so both at once parse.
    parser = build_parser()
    args = parser.parse_args([
        "fleet-report", "--quiet", "--progress", "--out", "x.json",
    ])
    assert args.quiet and args.progress


def test_compare_quiet_suppresses_stdout(capsys):
    code = main([
        "compare", "kmn", "--schedulers", "fcfs,simt",
        "--scale", "0.05", "--wavefronts", "4", "--quiet",
    ])
    assert code == 0
    assert capsys.readouterr().out == ""


def test_faults_quiet_with_output_file(tmp_path, capsys):
    import json

    out = tmp_path / "campaign.json"
    code = main([
        "faults", "--runs", "2", "--output", str(out), "--quiet",
    ])
    assert code == 0
    assert capsys.readouterr().out == ""
    report = json.loads(out.read_text())
    assert report["completed"] == 2
    assert report["retried"] == 0 and report["timed_out"] == 0
