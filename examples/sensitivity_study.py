#!/usr/bin/env python3
"""Sensitivity study: how hardware sizing moves the scheduling win.

Regenerates the paper's Fig 13/14 story interactively: the SIMT-aware
scheduler's advantage over FCFS shrinks when the machine throws more
translation hardware at the problem (bigger shared L2 TLB, more page
table walkers) and grows with the scheduler's lookahead (the IOMMU
pending-walk buffer).

Usage::

    python examples/sensitivity_study.py [WORKLOAD]
"""

import sys

from repro import baseline_config, compare_schedulers


def win(workload, config):
    results = compare_schedulers(
        workload, schedulers=("fcfs", "simt"), config=config,
        num_wavefronts=64, scale=0.5,
    )
    return results["simt"].speedup_over(results["fcfs"])


def main() -> None:
    workload = sys.argv[1].upper() if len(sys.argv) > 1 else "MVT"
    sweeps = [
        ("baseline (512 TLB, 8 walkers, 256 buffer)", baseline_config()),
        ("1024-entry GPU L2 TLB      (Fig 13a)", baseline_config().with_l2_tlb_entries(1024)),
        ("16 page-table walkers      (Fig 13b)", baseline_config().with_walkers(16)),
        ("both                       (Fig 13c)",
         baseline_config().with_l2_tlb_entries(1024).with_walkers(16)),
        ("128-entry IOMMU buffer     (Fig 14a)", baseline_config().with_iommu_buffer(128)),
        ("512-entry IOMMU buffer     (Fig 14b)", baseline_config().with_iommu_buffer(512)),
    ]
    print(f"SIMT-aware speedup over FCFS on {workload}:\n")
    for label, config in sweeps:
        print(f"  {label:<44} {win(workload, config):6.3f}x")


if __name__ == "__main__":
    main()
