#!/usr/bin/env python3
"""Multi-tenant GPU: page-walk scheduling for throughput AND fairness.

The paper's conclusion points at QoS as the natural follow-on for walk
scheduling.  This example co-runs two irregular applications on one
simulated GPU — their wavefronts share the CU slots and their
translation streams contend for the IOMMU's eight walkers — and
compares three policies:

* ``fcfs``      — oblivious baseline;
* ``simt``      — the paper's scheduler (best total throughput);
* ``fairshare`` — our ATLAS-style extension: the application with the
  least attained walk service gets priority, restoring fairness.

Usage::

    python examples/multi_tenant_qos.py [APP_A] [APP_B]
"""

import sys

from repro.experiments.multitenancy import qos_comparison


def main() -> None:
    app_a = sys.argv[1].upper() if len(sys.argv) > 1 else "MVT"
    app_b = sys.argv[2].upper() if len(sys.argv) > 2 else "GEV"
    print(f"Co-running {app_a} and {app_b} on one GPU...\n")
    results = qos_comparison((app_a, app_b), wavefronts_per_app=24, scale=0.3)
    for result in results.values():
        print(result.summary())
    print()
    best_fair = max(results.values(), key=lambda r: r.fairness)
    fastest = min(results.values(), key=lambda r: r.total_cycles)
    print(f"fastest co-schedule: {fastest.scheduler}; "
          f"fairest: {best_fair.scheduler}")


if __name__ == "__main__":
    main()
