#!/usr/bin/env python3
"""Large pages vs page-walk scheduling (the paper's §VI discussion).

Runs the same workload with 4 KB base pages and with 2 MB large pages.
Within TLB reach, large pages collapse the walk count and scheduling is
moot; the paper's counter-argument — that growing footprints re-create
the bottleneck at the larger granularity — is exercised by the
``benchmarks/test_discussion_large_pages.py`` harness with a 4 GB
synthetic workload.

Usage::

    python examples/large_pages.py [WORKLOAD]
"""

import sys

from repro import baseline_config, compare_schedulers


def main() -> None:
    workload = sys.argv[1].upper() if len(sys.argv) > 1 else "MVT"
    print(f"{workload} under 4 KB and 2 MB pages:\n")
    print(f"{'pages':>6} {'fcfs cycles':>12} {'walks':>8} {'simt/fcfs':>10}")
    for page_size in ("4K", "2M"):
        config = baseline_config().with_page_size(page_size)
        results = compare_schedulers(
            workload, schedulers=("fcfs", "simt"), config=config,
            num_wavefronts=32, scale=0.25,
        )
        fcfs, simt = results["fcfs"], results["simt"]
        print(
            f"{page_size:>6} {fcfs.total_cycles:>12,} "
            f"{fcfs.walks_dispatched:>8,} {simt.speedup_over(fcfs):>9.3f}x"
        )
    print(
        "\nLarge pages erase this workload's translation bottleneck — and"
        "\nwith it the scheduler's leverage.  See the §VI bench for why"
        "\nthat stops being true once footprints outgrow the 2 MB TLB reach."
    )


if __name__ == "__main__":
    main()
