#!/usr/bin/env python3
"""Scheduler shoot-out: every walk-scheduling policy on one workload.

Reproduces the spirit of the paper's Fig 2 — the same application can
run more than 2× faster or slower depending purely on the *order* in
which its page-table walks are serviced — and additionally shows the
single-idea ablations (SJF-only, batching-only) that the paper's
combined SIMT-aware scheduler is built from.

Usage::

    python examples/scheduler_shootout.py [WORKLOAD]
"""

import sys

from repro import compare_schedulers


def main() -> None:
    workload = sys.argv[1].upper() if len(sys.argv) > 1 else "ATX"
    policies = ["random", "fcfs", "batch", "sjf", "simt"]

    print(f"Running {workload} under {len(policies)} walk schedulers...")
    results = compare_schedulers(
        workload, schedulers=policies, scale=0.5, num_wavefronts=64
    )
    baseline = results["random"]

    print()
    header = (
        f"{'policy':<8} {'cycles':>12} {'vs random':>10} {'walks':>9} "
        f"{'stall cycles':>14} {'interleaved':>12}"
    )
    print(header)
    print("-" * len(header))
    for name in ("random", "fcfs", "batch", "sjf", "simt"):
        result = results[name]
        print(
            f"{name:<8} {result.total_cycles:>12,} "
            f"{result.speedup_over(baseline):>9.3f}x "
            f"{result.walks_dispatched:>9,} {result.stall_cycles:>14,} "
            f"{result.interleaved_fraction:>11.1%}"
        )
    print()
    best = max(results.values(), key=lambda r: r.speedup_over(baseline))
    worst = min(results.values(), key=lambda r: r.speedup_over(baseline))
    spread = worst.total_cycles / best.total_cycles
    print(
        f"Schedule choice alone changes {workload}'s runtime by "
        f"{spread:.2f}x (best: {best.scheduler}, worst: {worst.scheduler})."
    )


if __name__ == "__main__":
    main()
