#!/usr/bin/env python3
"""Occupancy sweep: wavefront throttling vs page-walk scheduling.

The paper's §VI discusses interaction with TLB-aware wavefront
schedulers (CCWS-style throttling): running *fewer* wavefronts per CU
can reduce TLB thrash at the cost of parallelism.  This example sweeps
the CU occupancy (wavefront slots per CU) under both FCFS and the
SIMT-aware walk scheduler, showing

* how occupancy trades latency hiding against TLB contention, and
* that walk scheduling helps at every occupancy — the two mechanisms
  are complementary, as the paper argues.

Usage::

    python examples/occupancy_sweep.py [WORKLOAD]
"""

import sys
from dataclasses import replace

from repro import baseline_config, compare_schedulers


def main() -> None:
    workload = sys.argv[1].upper() if len(sys.argv) > 1 else "MVT"
    print(f"Occupancy sweep on {workload} (64 wavefronts total):\n")
    print(
        f"{'slots/CU':>8} {'fcfs cycles':>12} {'simt cycles':>12} "
        f"{'simt/fcfs':>10} {'fcfs walks':>11}"
    )
    for slots in (2, 4, 8):
        config = baseline_config()
        config = replace(
            config, gpu=replace(config.gpu, wavefront_slots_per_cu=slots)
        )
        results = compare_schedulers(
            workload, schedulers=("fcfs", "simt"), config=config,
            num_wavefronts=64, scale=0.5,
        )
        fcfs, simt = results["fcfs"], results["simt"]
        print(
            f"{slots:>8} {fcfs.total_cycles:>12,} {simt.total_cycles:>12,} "
            f"{simt.speedup_over(fcfs):>9.3f}x {fcfs.walks_dispatched:>11,}"
        )


if __name__ == "__main__":
    main()
