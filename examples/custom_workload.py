#!/usr/bin/env python3
"""Bring your own workload: model a sparse-matrix SpMV kernel.

Shows the extension point a downstream user cares about most: writing a
new :class:`repro.workloads.base.Workload` subclass.  The example models
CSR sparse matrix-vector multiplication (y = A·x), whose irregularity
comes from the *column-index gather* ``x[col_idx[k]]`` — lanes read the
dense vector at data-dependent positions.

Run it to see how the custom kernel behaves under FCFS vs the
SIMT-aware walk scheduler, exactly like the built-in Table II models.

Usage::

    python examples/custom_workload.py
"""

import random

from repro import compare_schedulers
from repro.workloads.base import Trace, WavefrontTrace, Workload
from repro.workloads.synthetic import coalesced

DOUBLE = 8
INT = 4


class SpMV(Workload):
    """CSR SpMV: streaming row data plus divergent vector gathers."""

    abbrev = "SPMV"
    name = "SpMV"
    description = "CSR sparse matrix-vector multiply (custom example)"
    nominal_footprint_mb = 96.0
    irregular = True
    suite = "example"

    rows_per_step = 64
    steps_per_wavefront = 24
    #: Distinct x-vector pages one gather instruction touches: the
    #: matrix's columns are spread, so lanes land on unrelated pages.
    gather_pages = 32

    def _layout(self) -> None:
        self.values = self.address_space.allocate("values", 64 * 1024 * 1024)
        self.col_idx = self.address_space.allocate("col_idx", 24 * 1024 * 1024)
        self.x = self.address_space.allocate("x", 8 * 1024 * 1024)

    def build_trace(
        self, num_wavefronts: int = 32, wavefront_size: int = 64
    ) -> Trace:
        steps = self.scaled(self.steps_per_wavefront)
        x_pages = self.x.pages
        trace: Trace = []
        for wavefront_index in range(num_wavefronts):
            rng = random.Random(f"spmv:{self.seed}:{wavefront_index}")
            stream: WavefrontTrace = []
            # Nonzeros are bounded by the smaller of the two CSR arrays.
            nnz = min(self.values.size // DOUBLE, self.col_idx.size // INT)
            nnz_cursor = (
                wavefront_index * nnz // max(1, num_wavefronts)
            ) % (nnz - wavefront_size * (steps + 1))
            for step in range(steps):
                base = nnz_cursor + step * wavefront_size
                # 1+2: stream the nonzeros and their column indices —
                # unit-stride, coalesced, TLB-friendly.
                stream.append(coalesced(self.values, base, wavefront_size, DOUBLE))
                stream.append(coalesced(self.col_idx, base, wavefront_size, INT))
                # 3: gather x[col_idx[k]] — data-dependent, divergent.
                pages = [
                    rng.randrange(x_pages) for _ in range(self.gather_pages)
                ]
                stream.append(
                    [
                        self.x.base
                        + pages[lane % self.gather_pages] * 4096
                        + (lane * 64) % 4096
                        for lane in range(wavefront_size)
                    ]
                )
            trace.append(stream)
        return trace


def main() -> None:
    workload = SpMV()
    print(
        f"Custom workload {workload.name}: "
        f"{workload.modelled_footprint_mb:.1f} MB modelled footprint"
    )
    results = compare_schedulers(
        workload, schedulers=("fcfs", "simt"), num_wavefronts=64, scale=0.5
    )
    fcfs, simt = results["fcfs"], results["simt"]
    print(fcfs.summary())
    print(simt.summary())
    print(f"\nSIMT-aware speedup over FCFS: {simt.speedup_over(fcfs):.3f}x")


if __name__ == "__main__":
    main()
