#!/usr/bin/env python3
"""Divergence sweep: when does page-walk scheduling start to matter?

The paper's motivation (its §I and §III) is that *memory-access
divergence* — a SIMD instruction's lanes touching many distinct pages —
is what turns address translation into a bottleneck.  This example uses
the parametric micro-workload to dial divergence from fully coalesced
(1 page per instruction) to fully divergent (64 pages) and measures the
SIMT-aware scheduler's win over FCFS at each point.

Expected shape: ≈1.0 at low divergence (nothing to schedule), rising as
divergence grows and walker queues form — then flattening (or dipping)
at full 64-page divergence, where every instruction is an *identical*
maximal job and shortest-job-first loses its discrimination.  The
Table II kernels win more than this sweep's peak because their job
mix is bimodal, not uniform (see EXPERIMENTS.md, XSBench discussion).

Usage::

    python examples/divergence_sweep.py
"""

from repro import compare_schedulers
from repro.workloads.synthetic import ParametricWorkload

DIVERGENCE_POINTS = (1, 4, 8, 16, 32, 64)


def main() -> None:
    print(f"{'pages/instr':>11} {'fcfs cycles':>12} {'simt cycles':>12} {'speedup':>8}")
    for pages in DIVERGENCE_POINTS:
        workload = ParametricWorkload(
            pages_per_instruction=pages,
            instructions_per_wavefront=24,
            reuse_window=4,
            footprint_mb=128.0,
        )
        results = compare_schedulers(
            workload, schedulers=("fcfs", "simt"), num_wavefronts=64
        )
        fcfs, simt = results["fcfs"], results["simt"]
        print(
            f"{pages:>11} {fcfs.total_cycles:>12,} {simt.total_cycles:>12,} "
            f"{simt.speedup_over(fcfs):>7.3f}x"
        )


if __name__ == "__main__":
    main()
