#!/usr/bin/env python3
"""Quickstart: reproduce the paper's headline result on one workload.

Runs MVT (matrix-vector product and transpose, a fully divergent
Polybench kernel) under the baseline FCFS page-walk scheduler and under
the paper's SIMT-aware scheduler, then prints the speedup and the
supporting metrics (stall cycles, walk count, first/last walk latency
gap).

Usage::

    python examples/quickstart.py [WORKLOAD]

where WORKLOAD is any Table II abbreviation (default: MVT).  Expect a
run time of a couple of minutes at the default size; pass a second
argument like ``--fast`` to use a reduced trace.
"""

import sys

from repro import compare_schedulers


def main() -> None:
    args = [a for a in sys.argv[1:] if not a.startswith("-")]
    workload = args[0].upper() if args else "MVT"
    fast = "--fast" in sys.argv
    run = dict(scale=0.25, num_wavefronts=32) if fast else dict(
        scale=0.5, num_wavefronts=64
    )

    print(f"Simulating {workload} under FCFS and SIMT-aware walk scheduling...")
    results = compare_schedulers(workload, schedulers=("fcfs", "simt"), **run)
    fcfs, simt = results["fcfs"], results["simt"]

    print()
    for result in (fcfs, simt):
        print(result.summary())
    print()
    print(f"Speedup (SIMT-aware over FCFS):  {simt.speedup_over(fcfs):6.3f}x")
    print(
        f"CU stall cycles:                 "
        f"{simt.stall_cycles / max(1, fcfs.stall_cycles):6.3f}x FCFS"
    )
    print(
        f"Page-table walks:                "
        f"{simt.walks_dispatched / max(1, fcfs.walks_dispatched):6.3f}x FCFS"
    )
    if fcfs.latency_gap:
        print(
            f"First/last walk latency gap:     "
            f"{simt.latency_gap / fcfs.latency_gap:6.3f}x FCFS"
        )


if __name__ == "__main__":
    main()
