"""The data-side memory hierarchy: per-CU L1s → shared L2 → DRAM.

Modern GPUs use physically-tagged caches, so a data access can only start
after its address translation completes — this module is therefore always
invoked with *physical* addresses, downstream of the MMU.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence

from repro.config import LINE_SIZE, SystemConfig
from repro.engine.simulator import Simulator
from repro.memory.cache import SetAssociativeCache
from repro.memory.controller import SOURCE_WALK, QueuedMemoryController
from repro.memory.dram import DRAM


class MemorySubsystem:
    """Glues caches and DRAM together behind two entry points.

    ``data_access``
        A coalesced lane access from a CU: L1 → L2 → DRAM, with a
        completion callback.

    ``page_table_access``
        A page-table read from an IOMMU walker.  Walkers sit in the CPU
        complex and read the page table from DRAM directly (they have the
        PWCs instead of a slice of the data-cache hierarchy), so this
        bypasses the GPU caches.
    """

    def __init__(
        self,
        simulator: Simulator,
        config: SystemConfig,
        injector=None,
        tracer=None,
        profiler=None,
    ) -> None:
        self._sim = simulator
        self._config = config
        #: Optional fault injector; supplies DRAM latency spikes.
        self._injector = injector
        #: Optional :class:`~repro.obs.profiler.PhaseProfiler`; credits
        #: time spent in the two entry points to the ``memory_model``
        #: phase when attached.
        self._profiler = profiler
        padding = injector.dram_padding if injector is not None else None
        self.l1_caches: List[SetAssociativeCache] = [
            SetAssociativeCache(config.l1_cache, name=f"l1d[{cu}]")
            for cu in range(config.gpu.num_cus)
        ]
        self.l2_cache = SetAssociativeCache(config.l2_cache, name="l2d")
        if config.dram.controller == "reservation":
            self.dram: Optional[DRAM] = DRAM(config.dram)
            self.controller: Optional[QueuedMemoryController] = None
            self.dram.tracer = tracer
        else:
            self.dram = None
            self.controller = QueuedMemoryController(
                simulator,
                config.dram,
                policy=config.dram.controller,
                latency_padding=padding,
            )
            self.controller.tracer = tracer
        self.data_accesses = 0
        self.page_table_reads = 0
        #: Always-on stage accounting for page-table reads (reservation
        #: model only; the queued controller resolves asynchronously and
        #: leaves these at zero).  ``pt_read_cycles`` is issue → padded
        #: completion, of which ``pt_queue_cycles`` were spent waiting
        #: on a busy bank and ``pt_pad_cycles`` were fault-injected
        #: padding — the remainder is row access.  These feed the
        #: ``walk.stage.*`` metrics counters so blame summaries exist
        #: even when tracing is off.
        self.pt_read_cycles = 0
        self.pt_queue_cycles = 0
        self.pt_pad_cycles = 0
        simulator.register("mem.ctrl_read", self._controller_read)
        simulator.register_batch("mem.ctrl_read", self._controller_read_batch)
        if profiler is None:
            # No profiler attached (the common case): bind the entry
            # points straight to their implementations, skipping the
            # timing wrapper on every hot-path call.
            self.data_access = self._data_access  # type: ignore[method-assign]
            self.page_table_read = self._page_table_read  # type: ignore[method-assign]

    def _controller_read(self, physical_address: int, on_complete: Any) -> None:
        self.controller.read(physical_address, on_complete)

    def _controller_read_batch(self, payloads) -> None:
        read = self.controller.read
        for physical_address, on_complete in payloads:
            read(physical_address, on_complete)

    def data_access(
        self, cu_id: int, physical_address: int, on_complete: Any
    ) -> None:
        """Issue one coalesced data access; the ``on_complete`` target
        (an event tuple, or a callable for legacy callers) fires when
        the data returns."""
        if self._profiler is not None:
            start = perf_counter()
            try:
                self._data_access(cu_id, physical_address, on_complete)
            finally:
                self._profiler.add("memory_model", perf_counter() - start)
            return
        self._data_access(cu_id, physical_address, on_complete)

    def _data_access(
        self, cu_id: int, physical_address: int, on_complete: Any
    ) -> None:
        self.data_accesses += 1
        line = physical_address // LINE_SIZE
        l1 = self.l1_caches[cu_id]
        if l1.access(line):
            self._sim.after(self._config.l1_cache.hit_latency, on_complete)
            return
        l2_latency = self._config.l1_cache.hit_latency + self._config.l2_cache.hit_latency
        if self.l2_cache.access(line):
            l1.fill(line)
            self._sim.after(l2_latency, on_complete)
            return
        self.l2_cache.fill(line)
        l1.fill(line)
        if self.dram is not None:
            start = self._sim.now + l2_latency
            done = self.dram.access(physical_address, start)
            if self._injector is not None:
                done += self._injector.dram_padding(start)
            self._sim.at(done, on_complete)
        else:
            assert self.controller is not None
            self._sim.post(
                l2_latency, "mem.ctrl_read", physical_address, on_complete
            )

    def data_access_batch(
        self, cu_id: int, physical_addresses: Sequence[int], on_complete: Any
    ) -> None:
        """Issue a batch of same-cycle coalesced accesses for one CU,
        firing ``on_complete`` once per address.

        Equivalent to calling :meth:`data_access` per address in list
        order, but with the cache lookups done in one pass and the
        DRAM-bound misses timed through :meth:`DRAM.access_batch`.
        Deferring the DRAM completions behind the cache-hit completions
        cannot reorder the event stream: a DRAM round trip always
        finishes strictly after any same-call L1/L2 hit, so the two
        groups land in different cycle buckets regardless of sequence
        numbers.  Queued-controller, fault-injection and profiled
        configurations keep the exact scalar interleaving instead.
        """
        profiler = self._profiler
        if profiler is not None or self._injector is not None:
            for physical_address in physical_addresses:
                self.data_access(cu_id, physical_address, on_complete)
            return
        self.data_accesses += len(physical_addresses)
        l1 = self.l1_caches[cu_id]
        l1_access = l1.access
        l2_access = self.l2_cache.access
        l2_fill = self.l2_cache.fill
        l1_fill = l1.fill
        sim = self._sim
        after = sim.after
        l1_latency = self._config.l1_cache.hit_latency
        l2_latency = l1_latency + self._config.l2_cache.hit_latency
        dram = self.dram
        misses: List[int] = []
        for physical_address in physical_addresses:
            line = physical_address // LINE_SIZE
            if l1_access(line):
                after(l1_latency, on_complete)
                continue
            if l2_access(line):
                l1_fill(line)
                after(l2_latency, on_complete)
                continue
            l2_fill(line)
            l1_fill(line)
            if dram is not None:
                misses.append(physical_address)
            else:
                # The queued controller's arrival order is visible to
                # its scheduling policy, so controller reads post inline
                # (same cycle bucket as the L2-hit completions above).
                sim.post(
                    l2_latency, "mem.ctrl_read", physical_address, on_complete
                )
        if misses:
            at = sim.at
            start = sim._now + l2_latency
            for done in dram.access_batch(misses, start):
                at(done, on_complete)

    def page_table_read(
        self, physical_address: int, on_complete: Any
    ) -> None:
        """One sequential page-table read; ``on_complete`` fires when done.

        Walkers chain these: the next level's read is issued only from
        the previous one's completion callback.
        """
        if self._profiler is not None:
            start = perf_counter()
            try:
                self._page_table_read(physical_address, on_complete)
            finally:
                self._profiler.add("memory_model", perf_counter() - start)
            return
        self._page_table_read(physical_address, on_complete)

    def _page_table_read(
        self, physical_address: int, on_complete: Any
    ) -> None:
        self.page_table_reads += 1
        if self.dram is not None:
            now = self._sim.now
            queue_before = self.dram.total_queue_delay
            done = self.dram.access(physical_address, now)
            self.pt_queue_cycles += self.dram.total_queue_delay - queue_before
            if self._injector is not None:
                pad = self._injector.dram_padding(now)
                if pad:
                    done += pad
                    self.pt_pad_cycles += pad
            self.pt_read_cycles += done - now
            self._sim.at(done, on_complete)
        else:
            assert self.controller is not None
            # Tagged so the SMS batch former can QoS-prioritise walk
            # traffic; the other policies ignore the tag.
            self.controller.read(
                physical_address, on_complete, source=SOURCE_WALK
            )

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        state: Dict[str, object] = {
            "data_accesses": self.data_accesses,
            "page_table_reads": self.page_table_reads,
            "pt_read_cycles": self.pt_read_cycles,
            "pt_queue_cycles": self.pt_queue_cycles,
            "pt_pad_cycles": self.pt_pad_cycles,
            "l1_caches": [cache.snapshot() for cache in self.l1_caches],
            "l2_cache": self.l2_cache.snapshot(),
        }
        if self.dram is not None:
            state["dram"] = self.dram.snapshot()
        if self.controller is not None:
            state["controller"] = self.controller.snapshot()
        return state

    def restore(self, state: Dict[str, object]) -> None:
        self.data_accesses = state["data_accesses"]
        self.page_table_reads = state["page_table_reads"]
        self.pt_read_cycles = state.get("pt_read_cycles", 0)
        self.pt_queue_cycles = state.get("pt_queue_cycles", 0)
        self.pt_pad_cycles = state.get("pt_pad_cycles", 0)
        for cache, dump in zip(self.l1_caches, state["l1_caches"]):
            cache.restore(dump)
        self.l2_cache.restore(state["l2_cache"])
        if self.dram is not None:
            self.dram.restore(state["dram"])
        if self.controller is not None:
            self.controller.restore(state["controller"])

    def stats(self) -> Dict[str, object]:
        dram_stats = (
            self.dram.stats() if self.dram is not None else self.controller.stats()
        )
        return {
            "data_accesses": self.data_accesses,
            "page_table_reads": self.page_table_reads,
            "l1_hit_rate": (
                sum(c.hits for c in self.l1_caches)
                / max(1, sum(c.accesses for c in self.l1_caches))
            ),
            "l2": self.l2_cache.stats(),
            "dram": dram_stats,
        }
