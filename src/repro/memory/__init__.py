"""Memory substrate: data caches, DRAM timing, and the hierarchy glue."""

from repro.memory.cache import SetAssociativeCache
from repro.memory.dram import DRAM
from repro.memory.subsystem import MemorySubsystem

__all__ = ["DRAM", "MemorySubsystem", "SetAssociativeCache"]
