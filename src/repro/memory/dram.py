"""A simplified DDR3-style DRAM timing model.

Accuracy target: enough realism that (a) page-table walk accesses have
variable, contention-dependent latency, and (b) heavy translation traffic
queues up on banks — the effects the paper's scheduler interacts with.
Each bank serialises its accesses and keeps an open row; a row-buffer hit
costs ``t_cas``, a conflict adds precharge + activate.

The model is *reservation-based* rather than event-based: ``access``
immediately computes the access's completion time given current bank
state, and the caller schedules its own completion event.  This keeps the
event count (and hence Python runtime) low while preserving per-bank
queueing behaviour.
"""

from __future__ import annotations

from typing import Dict, List

from repro.config import LINE_SIZE, DRAMConfig


class _Bank:
    __slots__ = ("busy_until", "open_row")

    def __init__(self) -> None:
        self.busy_until = 0
        self.open_row = -1


class DRAM:
    """Channel/rank/bank DRAM with open-row policy."""

    def __init__(self, config: DRAMConfig) -> None:
        self.config = config
        self._banks: List[_Bank] = [_Bank() for _ in range(config.total_banks)]
        self._rows_per_bank_stride = config.row_size_bytes
        self.accesses = 0
        self.row_hits = 0
        self.row_conflicts = 0
        self.total_latency = 0
        self.total_queue_delay = 0
        #: Optional :class:`~repro.obs.trace.Tracer` (access spans).
        self.tracer = None

    def _map(self, address: int) -> tuple:
        """Map a physical address to (bank index, row).

        Low-order line bits pick the channel (striping consecutive lines
        across channels), the next bits the bank, the rest the row —
        a common baseline interleaving.
        """
        line = address // LINE_SIZE
        cfg = self.config
        channel = line % cfg.channels
        banks_per_channel = cfg.ranks_per_channel * cfg.banks_per_rank
        bank_in_channel = (line // cfg.channels) % banks_per_channel
        bank_index = channel * banks_per_channel + bank_in_channel
        row = address // (cfg.row_size_bytes * cfg.total_banks)
        return bank_index, row

    def access(self, address: int, now: int) -> int:
        """Perform one read at ``address`` starting no earlier than ``now``.

        Returns the absolute completion time.  Updates bank occupancy and
        the open row, so issue order is service order within a bank.
        """
        if now < 0:
            raise ValueError("time must be non-negative")
        bank_index, row = self._map(address)
        bank = self._banks[bank_index]
        cfg = self.config

        start = max(now, bank.busy_until)
        row_hit = bank.open_row == row
        if row_hit:
            latency = cfg.t_cas
            self.row_hits += 1
        else:
            latency = cfg.t_rp + cfg.t_rcd + cfg.t_cas
            self.row_conflicts += 1
            bank.open_row = row
        done = start + latency
        bank.busy_until = start + latency + cfg.t_burst

        self.accesses += 1
        self.total_latency += done - now
        self.total_queue_delay += start - now
        tracer = self.tracer
        if tracer is not None and tracer.cat_memory:
            tracer.dram_access(start, done, address, start - now, row_hit)
        return done

    @property
    def average_latency(self) -> float:
        return self.total_latency / self.accesses if self.accesses else 0.0

    @property
    def row_hit_rate(self) -> float:
        return self.row_hits / self.accesses if self.accesses else 0.0

    def stats(self) -> Dict[str, float]:
        return {
            "accesses": self.accesses,
            "row_hits": self.row_hits,
            "row_conflicts": self.row_conflicts,
            "row_hit_rate": self.row_hit_rate,
            "average_latency": self.average_latency,
        }

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        return {
            "banks": [(bank.busy_until, bank.open_row) for bank in self._banks],
            "accesses": self.accesses,
            "row_hits": self.row_hits,
            "row_conflicts": self.row_conflicts,
            "total_latency": self.total_latency,
            "total_queue_delay": self.total_queue_delay,
        }

    def restore(self, state: Dict[str, object]) -> None:
        for bank, (busy_until, open_row) in zip(self._banks, state["banks"]):
            bank.busy_until = busy_until
            bank.open_row = open_row
        self.accesses = state["accesses"]
        self.row_hits = state["row_hits"]
        self.row_conflicts = state["row_conflicts"]
        self.total_latency = state["total_latency"]
        self.total_queue_delay = state["total_queue_delay"]
