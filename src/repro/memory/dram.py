"""A simplified DDR3-style DRAM timing model.

Accuracy target: enough realism that (a) page-table walk accesses have
variable, contention-dependent latency, and (b) heavy translation traffic
queues up on banks — the effects the paper's scheduler interacts with.
Each bank serialises its accesses and keeps an open row; a row-buffer hit
costs ``t_cas``, a conflict adds precharge + activate.

The model is *reservation-based* rather than event-based: ``access``
immediately computes the access's completion time given current bank
state, and the caller schedules its own completion event.  This keeps the
event count (and hence Python runtime) low while preserving per-bank
queueing behaviour.

Bank state is held struct-of-arrays (two ``int64`` vectors: busy-until
and open-row) so that :meth:`access_batch` can vectorise the timing
computation for a whole batch of same-cycle accesses with numpy when
every access in the batch targets a distinct bank — the common case
when consecutive lines stripe across channels/banks.  Batches that
revisit a bank (or are too small for numpy to pay off) take a plain
Python loop with identical arithmetic, so both paths produce bit-equal
results to sequential :meth:`access` calls.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.config import LINE_SIZE, DRAMConfig

#: Below this batch size the plain-Python loop beats numpy's fixed
#: per-call overhead (measured on the XSB hot path).
_VECTOR_MIN_BATCH = 12


class DRAM:
    """Channel/rank/bank DRAM with open-row policy."""

    def __init__(self, config: DRAMConfig) -> None:
        self.config = config
        total_banks = config.total_banks
        #: Struct-of-arrays bank state (indexable by vector or scalar).
        self._busy_until = np.zeros(total_banks, dtype=np.int64)
        self._open_row = np.full(total_banks, -1, dtype=np.int64)
        self._rows_per_bank_stride = config.row_size_bytes
        # Address-mapping and timing constants, hoisted once.
        self._channels = config.channels
        self._banks_per_channel = config.ranks_per_channel * config.banks_per_rank
        self._row_stride = config.row_size_bytes * total_banks
        self._t_cas = config.t_cas
        self._t_miss = config.t_rp + config.t_rcd + config.t_cas
        self._t_burst = config.t_burst
        self.accesses = 0
        self.row_hits = 0
        self.row_conflicts = 0
        self.total_latency = 0
        self.total_queue_delay = 0
        #: Optional :class:`~repro.obs.trace.Tracer` (access spans).
        self.tracer = None

    def _map(self, address: int) -> tuple:
        """Map a physical address to (bank index, row).

        Low-order line bits pick the channel (striping consecutive lines
        across channels), the next bits the bank, the rest the row —
        a common baseline interleaving.
        """
        line = address // LINE_SIZE
        channel = line % self._channels
        bank_in_channel = (line // self._channels) % self._banks_per_channel
        bank_index = channel * self._banks_per_channel + bank_in_channel
        row = address // self._row_stride
        return bank_index, row

    def access(self, address: int, now: int) -> int:
        """Perform one read at ``address`` starting no earlier than ``now``.

        Returns the absolute completion time.  Updates bank occupancy and
        the open row, so issue order is service order within a bank.
        """
        if now < 0:
            raise ValueError("time must be non-negative")
        line = address // LINE_SIZE
        channels = self._channels
        banks_per_channel = self._banks_per_channel
        bank_index = (line % channels) * banks_per_channel + (
            line // channels
        ) % banks_per_channel
        row = address // self._row_stride

        start = int(self._busy_until[bank_index])
        if start < now:
            start = now
        row_hit = self._open_row[bank_index] == row
        if row_hit:
            latency = self._t_cas
            self.row_hits += 1
        else:
            latency = self._t_miss
            self.row_conflicts += 1
            self._open_row[bank_index] = row
        done = start + latency
        self._busy_until[bank_index] = done + self._t_burst

        self.accesses += 1
        self.total_latency += done - now
        self.total_queue_delay += start - now
        tracer = self.tracer
        if tracer is not None:
            if tracer.cat_memory:
                tracer.dram_access(
                    start, done, address, start - now, bool(row_hit),
                    bank_index,
                )
            if tracer.cat_walk:
                # Timing receipt for the walker issuing this read in the
                # same call stack (see Tracer.last_dram_access): lets
                # walk_read spans split bank-queue vs row-access cycles
                # without recording the whole memory category.
                tracer.last_dram_access = (
                    start, done, bank_index, bool(row_hit)
                )
        return done

    def access_batch(self, addresses: Sequence[int], now: int) -> List[int]:
        """Perform one read per address, all starting no earlier than
        ``now``; returns the completion times in address order.

        Equivalent — counter for counter, bank state for bank state —
        to calling :meth:`access` sequentially over ``addresses``.  The
        bank/row-buffer timing computation is vectorised with numpy
        when the batch is large enough and hits each bank at most once
        (per-bank service order then cannot matter); otherwise a plain
        loop preserves the sequential same-bank chaining exactly.
        """
        if now < 0:
            raise ValueError("time must be non-negative")
        count = len(addresses)
        tracer = self.tracer
        if tracer is not None and tracer.cat_memory:
            return [self.access(address, now) for address in addresses]
        if count >= _VECTOR_MIN_BATCH:
            addrs = np.asarray(addresses, dtype=np.int64)
            lines = addrs // LINE_SIZE
            banks = (lines % self._channels) * self._banks_per_channel + (
                lines // self._channels
            ) % self._banks_per_channel
            if np.unique(banks).size == count:
                rows = addrs // self._row_stride
                starts = np.maximum(self._busy_until[banks], now)
                hits = self._open_row[banks] == rows
                done = starts + np.where(hits, self._t_cas, self._t_miss)
                self._busy_until[banks] = done + self._t_burst
                self._open_row[banks] = rows
                hit_count = int(np.count_nonzero(hits))
                self.accesses += count
                self.row_hits += hit_count
                self.row_conflicts += count - hit_count
                self.total_latency += int(done.sum()) - count * now
                self.total_queue_delay += int(starts.sum()) - count * now
                return done.tolist()
        # Scalar fallback: duplicate banks (service order chains through
        # busy_until) or a batch too small to amortise numpy.
        channels = self._channels
        banks_per_channel = self._banks_per_channel
        row_stride = self._row_stride
        busy_until = self._busy_until
        open_row = self._open_row
        t_cas = self._t_cas
        t_miss = self._t_miss
        t_burst = self._t_burst
        hits = 0
        total_latency = 0
        total_queue_delay = 0
        out: List[int] = []
        append = out.append
        for address in addresses:
            line = address // LINE_SIZE
            bank_index = (line % channels) * banks_per_channel + (
                line // channels
            ) % banks_per_channel
            row = address // row_stride
            start = int(busy_until[bank_index])
            if start < now:
                start = now
            if open_row[bank_index] == row:
                latency = t_cas
                hits += 1
            else:
                latency = t_miss
                open_row[bank_index] = row
            done = start + latency
            busy_until[bank_index] = done + t_burst
            total_latency += done - now
            total_queue_delay += start - now
            append(done)
        self.accesses += count
        self.row_hits += hits
        self.row_conflicts += count - hits
        self.total_latency += total_latency
        self.total_queue_delay += total_queue_delay
        return out

    @property
    def average_latency(self) -> float:
        return self.total_latency / self.accesses if self.accesses else 0.0

    @property
    def row_hit_rate(self) -> float:
        return self.row_hits / self.accesses if self.accesses else 0.0

    def stats(self) -> Dict[str, float]:
        return {
            "accesses": self.accesses,
            "row_hits": self.row_hits,
            "row_conflicts": self.row_conflicts,
            "row_hit_rate": self.row_hit_rate,
            "average_latency": self.average_latency,
        }

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        return {
            "banks": list(
                zip(self._busy_until.tolist(), self._open_row.tolist())
            ),
            "accesses": self.accesses,
            "row_hits": self.row_hits,
            "row_conflicts": self.row_conflicts,
            "total_latency": self.total_latency,
            "total_queue_delay": self.total_queue_delay,
        }

    def restore(self, state: Dict[str, object]) -> None:
        banks = state["banks"]
        self._busy_until = np.array(
            [busy_until for busy_until, _ in banks], dtype=np.int64
        )
        self._open_row = np.array(
            [open_row for _, open_row in banks], dtype=np.int64
        )
        self.accesses = state["accesses"]
        self.row_hits = state["row_hits"]
        self.row_conflicts = state["row_conflicts"]
        self.total_latency = state["total_latency"]
        self.total_queue_delay = state["total_queue_delay"]
