"""A set-associative cache model with true-LRU replacement.

Models only what the translation study needs — hit/miss behaviour and
occupancy — not coherence or dirty write-back traffic.  Used for the
per-CU L1 data caches and the GPU-shared L2 data cache.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List

from repro.config import CacheConfig


class SetAssociativeCache:
    """Caches 64-byte lines addressed by physical line number."""

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.config = config
        self.name = name
        self._num_sets = config.num_sets
        self._ways = config.associativity
        self._sets: List["OrderedDict[int, None]"] = [
            OrderedDict() for _ in range(self._num_sets)
        ]
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _set_for(self, line: int) -> "OrderedDict[int, None]":
        return self._sets[line % self._num_sets]

    def access(self, line: int) -> bool:
        """Look up a line; returns True on hit.  Misses do NOT auto-fill."""
        entries = self._set_for(line)
        if line in entries:
            entries.move_to_end(line)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, line: int) -> None:
        """Install a line fetched from the next level."""
        entries = self._set_for(line)
        if line in entries:
            entries.move_to_end(line)
            return
        if len(entries) >= self._ways:
            entries.popitem(last=False)
            self.evictions += 1
        entries[line] = None

    def contains(self, line: int) -> bool:
        """Presence check without LRU/stat side effects."""
        return line in self._set_for(line)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.accesses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Resident lines per set in LRU order, plus counters."""
        return {
            "sets": [list(entries) for entries in self._sets],
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def restore(self, state: Dict[str, object]) -> None:
        for entries, lines in zip(self._sets, state["sets"]):
            entries.clear()
            for line in lines:
                entries[line] = None
        self.hits = state["hits"]
        self.misses = state["misses"]
        self.evictions = state["evictions"]
