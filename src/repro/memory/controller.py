"""A queued DRAM controller with pluggable request scheduling.

The paper motivates page-walk scheduling by analogy to the rich body of
memory-controller scheduling work (FR-FCFS, ATLAS, PAR-BS...).  The
default DRAM model (:mod:`repro.memory.dram`) serves each bank in
arrival order; this controller adds real request queues and two classic
policies:

``fcfs``
    Oldest request whose bank is free.

``frfcfs``
    First-ready FCFS (Rixner et al., ISCA 2000): among requests whose
    bank is free, prefer row-buffer *hits* (oldest first), falling back
    to the oldest request.

``sms``
    A staged batch-former/QoS split in the spirit of SMS
    (Ausavarungnirun et al., ISCA 2012), simplified to this model's
    read-only traffic: each bank serves up to ``sms_batch_cap``
    consecutive requests from one *source* (page-walk vs data) before
    re-arbitrating, and arbitration prefers a waiting page-walk batch —
    walks are the latency-critical minority the GPU's data firehose
    otherwise drowns out.  Within a batch, first-ready then oldest.

The controller exposes a completion-target API (``read(address, done)``
where ``done`` is a ``(kind, *payload)`` event tuple or a legacy
callable), so it can stand in wherever the reservation-based model is
used.  Bank service and release advance through registered event kinds
with the in-service request held as controller state, so queued and
in-flight reads serialise into checkpoints.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.config import LINE_SIZE, DRAMConfig
from repro.engine.simulator import Simulator
from repro.obs.trace import PID_MEMORY

#: Request sources the SMS batch former arbitrates between.
SOURCE_DATA = 0
SOURCE_WALK = 1


class _Request:
    __slots__ = (
        "address", "bank", "row", "arrival_seq", "arrival_time",
        "row_hit", "service_start", "on_complete", "source",
    )

    def __init__(
        self, address, bank, row, arrival_seq, arrival_time, on_complete,
        source=SOURCE_DATA,
    ) -> None:
        self.address = address
        self.bank = bank
        self.row = row
        self.arrival_seq = arrival_seq
        self.arrival_time = arrival_time
        self.row_hit = False
        #: Cycle the bank started serving this request (-1 while queued);
        #: ``service_start - arrival_time`` is the bank-queueing delay.
        self.service_start = -1
        self.on_complete = on_complete
        #: SOURCE_DATA or SOURCE_WALK (the SMS QoS dimension).
        self.source = source


class _Bank:
    __slots__ = ("busy", "open_row")

    def __init__(self) -> None:
        self.busy = False
        self.open_row = -1


class QueuedMemoryController:
    """Event-driven DRAM front end: queues, banks, a scheduling policy."""

    POLICIES = ("fcfs", "frfcfs", "sms")

    def __init__(
        self,
        simulator: Simulator,
        config: DRAMConfig,
        policy: str = "frfcfs",
        latency_padding: Optional[Callable[[int], int]] = None,
    ) -> None:
        if policy not in self.POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; one of {self.POLICIES}"
            )
        self._sim = simulator
        self.config = config
        self.policy = policy
        #: Optional ``f(now) -> extra_cycles`` hook; fault injection uses
        #: it to spike access latency inside chosen cycle windows.
        self._latency_padding = latency_padding
        self.padded_accesses = 0
        #: Optional :class:`~repro.obs.trace.Tracer` (read spans + queue
        #: depth counter track).
        self.tracer = None
        self._banks: List[_Bank] = [_Bank() for _ in range(config.total_banks)]
        self._queues: Dict[int, List[_Request]] = {}
        #: The request each busy bank is serving (by bank index) until
        #: its data returns — checkpointable in-flight state.
        self._in_service: Dict[int, _Request] = {}
        self._arrival_seq = 0
        #: SMS batch former: bank index -> [source, remaining credits]
        #: for the batch that bank is currently committed to.
        self._sms_batch: Dict[int, List[int]] = {}
        self.reads = 0
        self.walk_reads = 0
        self.row_hits = 0
        self.row_conflicts = 0
        self.peak_queue_depth = 0
        simulator.register("dram.complete", self._complete)
        simulator.register("dram.release", self._release)
        simulator.register_batch("dram.complete", self._complete_batch)
        simulator.register_batch("dram.release", self._release_batch)

    def _map(self, address: int) -> Tuple[int, int]:
        line = address // LINE_SIZE
        cfg = self.config
        channel = line % cfg.channels
        banks_per_channel = cfg.ranks_per_channel * cfg.banks_per_rank
        bank_in_channel = (line // cfg.channels) % banks_per_channel
        bank_index = channel * banks_per_channel + bank_in_channel
        row = address // (cfg.row_size_bytes * cfg.total_banks)
        return bank_index, row

    @property
    def queued_requests(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def read(
        self, address: int, on_complete: Any, source: int = SOURCE_DATA
    ) -> None:
        """Enqueue one read; the ``on_complete`` target fires when data
        returns (an event tuple, or a callable for legacy callers).
        ``source`` tags the request for the SMS batch former (page-walk
        reads pass :data:`SOURCE_WALK`); other policies ignore it."""
        bank, row = self._map(address)
        request = _Request(
            address, bank, row, self._arrival_seq, self._sim.now,
            on_complete, source,
        )
        self._arrival_seq += 1
        if source == SOURCE_WALK:
            self.walk_reads += 1
        self._queues.setdefault(bank, []).append(request)
        self.peak_queue_depth = max(self.peak_queue_depth, self.queued_requests)
        tracer = self.tracer
        if tracer is not None and tracer.cat_counter:
            tracer.counter(
                self._sim.now, "dram_queue_depth", self.queued_requests,
                pid=PID_MEMORY,
            )
        self._try_issue(bank)

    def _select(
        self, queue: List[_Request], bank: _Bank, bank_index: int
    ) -> _Request:
        if self.policy == "frfcfs":
            for request in queue:  # oldest row-hit first
                if request.row == bank.open_row:
                    return request
        elif self.policy == "sms":
            return self._select_sms(queue, bank, bank_index)
        return queue[0]  # fcfs fallback: the oldest

    def _select_sms(
        self, queue: List[_Request], bank: _Bank, bank_index: int
    ) -> _Request:
        """Stage 1: stick with the bank's formed batch while it has
        credits and matching requests.  Stage 2: re-arbitrate, giving a
        waiting page-walk batch priority over data.  Within either
        stage, first-ready (open-row) wins, then the oldest."""
        batch = self._sms_batch.get(bank_index)
        if batch is not None and batch[1] > 0:
            pool = [r for r in queue if r.source == batch[0]]
            if pool:
                batch[1] -= 1
                return self._first_ready(pool, bank)
        walks = [r for r in queue if r.source == SOURCE_WALK]
        pool = walks or queue
        choice = self._first_ready(pool, bank)
        self._sms_batch[bank_index] = [
            choice.source, self.config.sms_batch_cap - 1
        ]
        return choice

    @staticmethod
    def _first_ready(pool: List[_Request], bank: _Bank) -> _Request:
        for request in pool:  # oldest row-hit first
            if request.row == bank.open_row:
                return request
        return pool[0]

    def _try_issue(self, bank_index: int) -> None:
        bank = self._banks[bank_index]
        queue = self._queues.get(bank_index)
        if bank.busy or not queue:
            return
        request = self._select(queue, bank, bank_index)
        queue.remove(request)
        cfg = self.config
        if request.row == bank.open_row:
            latency = cfg.t_cas
            self.row_hits += 1
            request.row_hit = True
        else:
            latency = cfg.t_rp + cfg.t_rcd + cfg.t_cas
            self.row_conflicts += 1
            bank.open_row = request.row
        if self._latency_padding is not None:
            extra = self._latency_padding(self._sim.now)
            if extra > 0:
                latency += extra
                self.padded_accesses += 1
        bank.busy = True
        self.reads += 1
        request.service_start = self._sim.now
        self._in_service[bank_index] = request
        self._sim.post(latency, "dram.complete", bank_index)

    def _complete(self, bank_index: int) -> None:
        request = self._in_service.pop(bank_index)
        tracer = self.tracer
        if tracer is not None:
            if tracer.cat_memory:
                tracer.dram_read_span(
                    request.arrival_time, self._sim.now, request.bank,
                    request.address, request.row_hit,
                )
                tracer.dram_service(
                    request.service_start, self._sim.now, request.bank,
                    request.address, request.row_hit,
                )
            if tracer.cat_walk:
                # Timing receipt for a walker completing this read in
                # the dispatch below (see Tracer.last_dram_access).
                tracer.last_dram_access = (
                    request.service_start, self._sim.now, request.bank,
                    request.row_hit,
                )
        self._sim.dispatch(request.on_complete)
        # The bank stays occupied for the data burst before accepting
        # its next request.
        self._sim.post(self.config.t_burst, "dram.release", bank_index)

    def _release(self, bank_index: int) -> None:
        self._banks[bank_index].busy = False
        self._try_issue(bank_index)

    def _complete_batch(self, payloads) -> None:
        """Same-cycle completions from distinct banks, in issue order."""
        complete = self._complete
        for (bank_index,) in payloads:
            complete(bank_index)

    def _release_batch(self, payloads) -> None:
        release = self._release
        for (bank_index,) in payloads:
            release(bank_index)

    @property
    def row_hit_rate(self) -> float:
        return self.row_hits / self.reads if self.reads else 0.0

    def stats(self) -> Dict[str, float]:
        data = {
            "reads": self.reads,
            "row_hits": self.row_hits,
            "row_conflicts": self.row_conflicts,
            "row_hit_rate": self.row_hit_rate,
            "peak_queue_depth": self.peak_queue_depth,
            "policy": self.policy,
        }
        if self.policy == "sms":
            data["walk_reads"] = self.walk_reads
        return data

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Bank state, queued and in-service requests, counters.

        ``_Request`` objects are serialised as-is (slotted plain data;
        their completion targets must be event tuples, which all
        engine-integrated callers use).
        """
        return {
            "banks": [(bank.busy, bank.open_row) for bank in self._banks],
            "queues": {
                bank: list(queue) for bank, queue in self._queues.items()
            },
            "in_service": dict(self._in_service),
            "arrival_seq": self._arrival_seq,
            "sms_batch": {
                bank: list(batch) for bank, batch in self._sms_batch.items()
            },
            "walk_reads": self.walk_reads,
            "reads": self.reads,
            "row_hits": self.row_hits,
            "row_conflicts": self.row_conflicts,
            "peak_queue_depth": self.peak_queue_depth,
            "padded_accesses": self.padded_accesses,
        }

    def restore(self, state: Dict[str, object]) -> None:
        for bank, (busy, open_row) in zip(self._banks, state["banks"]):
            bank.busy = busy
            bank.open_row = open_row
        self._queues = {
            bank: list(queue) for bank, queue in state["queues"].items()
        }
        self._in_service = dict(state["in_service"])
        self._arrival_seq = state["arrival_seq"]
        self._sms_batch = {
            bank: list(batch)
            for bank, batch in state.get("sms_batch", {}).items()
        }
        self.walk_reads = state.get("walk_reads", 0)
        self.reads = state["reads"]
        self.row_hits = state["row_hits"]
        self.row_conflicts = state["row_conflicts"]
        self.peak_queue_depth = state["peak_queue_depth"]
        self.padded_accesses = state["padded_accesses"]
