"""The IOMMU: the CPU-complex component that services GPU translation needs.

Follows the paper's §II-B structure: two small TLB levels, a pending-walk
buffer, a pool of independent page-table walkers, page walk caches — and,
the paper's contribution, a pluggable scheduler that picks which pending
walk a freed walker services next.

Life of a request inside the IOMMU (paper steps 5–9):

5. Look up the IOMMU L1 then L2 TLB; a hit replies immediately.
6. On a miss the request becomes (or coalesces onto) a pending walk in
   the IOMMU buffer.  If the scheduler needs scores, the request is
   scored against the PWCs (action 1-a) and its instruction's aggregate
   score updated (1-b).
7. An idle walker takes a new arrival directly; otherwise the scheduler
   selects among buffered walks whenever a walker frees up (2-a).
8. The walker probes the PWCs and performs the remaining 1–4 sequential
   page-table reads (2-b).
9. The leaf translation fills the IOMMU TLBs and is returned to the GPU.

When the buffer is full, arrivals wait in a FIFO overflow queue — the
scheduler's lookahead is exactly the buffer capacity (Fig 14 sweeps it).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from time import perf_counter
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.config import IOMMUConfig
from repro.core.buffer import PendingWalkBuffer
from repro.core.request import (
    PREFETCH_WAVEFRONT,
    TranslationRequest,
    WalkBufferEntry,
)
from repro.core.schedulers import WalkScheduler, make_scheduler
from repro.engine.simulator import Simulator
from repro.mmu.geometry import BASE_4K, PageGeometry
from repro.mmu.page_table import PageTable
from repro.mmu.pwc import PageWalkCache
from repro.mmu.tlb import TLB
from repro.mmu.walker import PageTableWalker


class IOMMU:
    """Services GPU TLB misses by walking the shared x86-64 page table."""

    def __init__(
        self,
        simulator: Simulator,
        config: IOMMUConfig,
        page_table: PageTable,
        page_table_read: Callable[[int, Callable[[], None]], None],
        scheduler: Optional[WalkScheduler] = None,
        geometry: PageGeometry = BASE_4K,
        injector=None,
        tracer=None,
        profiler=None,
    ) -> None:
        self._sim = simulator
        self.config = config
        self._page_table = page_table
        self.geometry = geometry
        #: Optional :class:`~repro.resilience.faults.FaultInjector`; the
        #: watchdog reads its stats into deadlock diagnoses.
        self.injector = injector
        #: Optional :class:`~repro.obs.trace.Tracer`; None keeps every
        #: emitter off the hot path.
        self.tracer = tracer
        #: Optional :class:`~repro.obs.profiler.PhaseProfiler`; times
        #: scheduler-select calls when attached.
        self.profiler = profiler
        self.l1_tlb = TLB(config.l1_tlb, name="iommu_l1_tlb")
        self.l2_tlb = TLB(config.l2_tlb, name="iommu_l2_tlb")
        self.pwc = PageWalkCache(config.pwc, geometry=geometry)
        if tracer is not None:
            now = lambda: simulator.now  # noqa: E731 - tiny clock closure
            self.l1_tlb.attach_tracer(tracer, now)
            self.l2_tlb.attach_tracer(tracer, now)
            self.pwc.attach_tracer(tracer, now)
        self.scheduler = scheduler or make_scheduler(
            config.scheduler,
            seed=config.scheduler_seed,
            aging_threshold=config.aging_threshold,
        )
        # Policies that ignore scores (fcfs/random/batch) skip the
        # buffer's score-index maintenance on their hot path.
        self.buffer = PendingWalkBuffer(
            config.buffer_entries, track_scores=self.scheduler.needs_scores
        )
        self.walkers: List[PageTableWalker] = [
            PageTableWalker(
                i, simulator, page_table, self.pwc, page_table_read,
                injector=injector, tracer=tracer,
            )
            for i in range(config.num_walkers)
        ]
        self._overflow: Deque[TranslationRequest] = deque()
        self._scan_in_progress = False

        # --- Scheduler-zoo knobs, read off the policy instance ---------
        # WaSP: distance-ahead walk prefetch.  The legacy
        # ``prefetch_next_page`` flag is the distance-1 case, so the two
        # mechanisms share one code path (and stay bit-identical).
        self._prefetch_distance = max(
            int(getattr(self.scheduler, "prefetch_distance", 0) or 0),
            1 if config.prefetch_next_page else 0,
        )
        # IRU: arriving misses stage here for ``reorder_window_cycles``
        # and are admitted to the pending buffer sorted by
        # (instruction, page), coalescing against pending walks.
        self._iru_window = int(
            getattr(self.scheduler, "reorder_window_cycles", 0) or 0
        )
        self._iru_staging: List[TranslationRequest] = []
        self._coalesce_pending = bool(
            getattr(self.scheduler, "coalesce_pending", False)
        )
        # Mosaic: promote a 2 MB region into the region TLB once enough
        # distinct base pages inside it have been walked.  Meaningless
        # when the geometry already maps 2 MB units, so it disables.
        self._region_shift = max(0, 21 - geometry.page_shift)
        self._promote_threshold = (
            int(getattr(self.scheduler, "promote_threshold", 0) or 0)
            if self._region_shift
            else 0
        )
        self._region_tlb_entries = (
            int(getattr(self.scheduler, "region_tlb_entries", 0) or 0)
            if self._promote_threshold
            else 0
        )
        #: region -> distinct walked base-page VPNs (promotion candidates).
        self._region_pages: Dict[int, set] = {}
        #: Promoted regions, LRU-ordered (oldest first).
        self._region_tlb: "OrderedDict[int, bool]" = OrderedDict()
        self.region_hits = 0
        self.promotions = 0
        self.demotions = 0
        #: Walkers currently holding a walk — a conservative guard that
        #: lets :meth:`_idle_walker` answer "all busy" in O(1) instead
        #: of scanning the pool (the hot case under load).
        self._busy_walkers = 0
        #: Walks currently being serviced by a walker, keyed by VPN (a
        #: list: same-page walks from different instructions may be in
        #: flight concurrently when coalescing is disabled).
        self._walking: Dict[int, List[WalkBufferEntry]] = {}
        self._dispatch_seq = 0

        # Statistics.
        self.requests = 0
        self.tlb_hits = 0
        self.walks_dispatched = 0
        self.overflow_peak = 0
        self.coalesced_inflight = 0
        self.prefetch_walks = 0
        #: Walk latency breakdown: cycles spent queued in the buffer vs
        #: being serviced by a walker (demand walks only).
        self.total_queue_wait = 0
        self.total_service_time = 0
        #: Cycles requests spent in the FIFO overflow queue before
        #: reaching the pending buffer (the ``enqueue_wait`` attribution
        #: stage), accumulated as each overflowed request drains.
        self.total_overflow_wait = 0
        #: instruction_id -> list of walker-dispatch sequence numbers, for
        #: the interleaving metric (paper Fig 5).
        self.dispatches_by_instruction: Dict[int, List[int]] = {}

        #: Reply sink used when a request carries no ``on_complete``
        #: closure: called as ``reply_to(request, pfn)``.  The GPU sets
        #: this once at construction — being re-wired with the system,
        #: it survives checkpoint/restore where a stored closure cannot.
        self.reply_to: Optional[Callable[[TranslationRequest, int], None]] = None

        simulator.register("iommu.reply", self._reply)
        simulator.register("iommu.finish_scan", self._finish_scan)
        simulator.register("iommu.kick", self.resume_walkers)
        simulator.register("iommu.iru_flush", self._iru_flush)

    # ------------------------------------------------------------------
    # Request entry point
    # ------------------------------------------------------------------

    def translate(self, request: TranslationRequest) -> None:
        """Handle a translation request arriving from the GPU (step 5)."""
        self.requests += 1
        request.iommu_arrival_time = self._sim.now

        pfn = self.l1_tlb.lookup(request.vpn)
        if pfn is None:
            pfn = self.l2_tlb.lookup(request.vpn)
            if pfn is not None:
                self.l1_tlb.insert(request.vpn, pfn)
        if pfn is not None:
            self.tlb_hits += 1
            self._sim.post(
                self.config.tlb_hit_latency, "iommu.reply", request, pfn, 0
            )
            return
        if self._region_tlb_entries and self._region_hit(request):
            return
        self._handle_tlb_miss(request)

    def _region_hit(self, request: TranslationRequest) -> bool:
        """Mosaic region-TLB probe: a promoted 2 MB entry covers the page.

        A hit bypasses the walk machinery entirely — the region's leaf
        mapping resolves any base page inside it, so the reply costs one
        TLB-hit latency and no walker.  Returns True when it hit.
        """
        region = request.vpn >> self._region_shift
        if region not in self._region_tlb:
            return False
        self._region_tlb.move_to_end(region)
        self.region_hits += 1
        pfn = self._page_table.translate(request.vpn)
        self._sim.post(
            self.config.tlb_hit_latency, "iommu.reply", request, pfn, 0
        )
        return True

    def _handle_tlb_miss(self, request: TranslationRequest) -> None:
        if self.tracer is not None:
            self.tracer.walk_created(
                self._sim.now, request.vpn, request.instruction_id,
                request.wavefront_id,
            )
        if self._try_coalesce(request):
            return
        if self._iru_window:
            # IRU: hold the miss in the reorder window; the flush event
            # admits the whole batch sorted by (instruction, page).
            self._iru_staging.append(request)
            if len(self._iru_staging) == 1:
                self._sim.post(self._iru_window, "iommu.iru_flush")
            return
        self._admit(request)

    def _iru_flush(self) -> None:
        """Admit the staged reorder-window batch (IRU policies only).

        Sorting by (instruction, page) makes divergent bursts enter the
        buffer contiguous per instruction, and the re-run coalescing
        check merges same-page requests that arrived apart — the unit's
        job-shrinking step, after which plain SJF does the scheduling.
        """
        staged, self._iru_staging = self._iru_staging, []
        staged.sort(key=lambda r: (r.instruction_id, r.vpn))
        for request in staged:
            if self._try_coalesce(request):
                continue
            self._admit(request)

    def _admit(self, request: TranslationRequest) -> None:
        # A new walk is needed.  An idle walker takes it immediately
        # (which implies the buffer is empty — walkers never idle while
        # work is buffered).
        idle = self._idle_walker()
        if idle is not None:
            entry = WalkBufferEntry(
                request, arrival_seq=-1, arrival_time=self._sim.now
            )
            if self.scheduler.needs_scores:
                # Keep the instruction's aggregate score complete even
                # for walks that bypass the buffer.
                accesses, pinned = self.pwc.score(request.vpn)
                entry.pinned_levels = pinned
                self.buffer.account_direct_dispatch(
                    entry.instruction_id, accesses
                )
            self._dispatch(idle, entry)
            return
        if self.buffer.is_full:
            self._overflow.append(request)
            self.overflow_peak = max(self.overflow_peak, len(self._overflow))
            return
        self._buffer_request(request)

    def _try_coalesce(self, request: TranslationRequest) -> bool:
        """MSHR-style merge with an in-flight or pending same-page walk.

        An optional extension beyond the paper's design (see
        ``IOMMUConfig.coalesce_walks``).  Returns True when merged.
        """
        mode = self.config.coalesce_walks
        if mode == "off":
            return False
        walking = self._walking.get(request.vpn)
        if walking:
            walking[0].attach(request)
            self.coalesced_inflight += 1
            return True
        if mode == "full" or self._coalesce_pending:
            # "full" always merges with pending walks; IRU policies opt
            # in even under "inflight" (their reorder unit's job is to
            # shrink buffered jobs before the scheduler sees them).
            pending = self.buffer.find_by_vpn(request.vpn)
            if pending is not None:
                self.buffer.attach(pending, request)
                return True
        return False

    def _buffer_request(self, request: TranslationRequest) -> None:
        estimate = 0
        pinned: tuple = ()
        if self.scheduler.needs_scores:
            estimate, pinned = self.pwc.score(request.vpn)
        entry = self.buffer.add(
            request, arrival_time=self._sim.now, estimated_accesses=estimate
        )
        entry.pinned_levels = pinned
        self.scheduler.on_arrival(entry, self.buffer)
        tracer = self.tracer
        if tracer is not None:
            tracer.walk_enqueued(
                self._sim.now, request.vpn, request.instruction_id, estimate
            )
            if tracer.cat_counter:
                tracer.counter(
                    self._sim.now, "pending_walks", len(self.buffer)
                )

    # ------------------------------------------------------------------
    # Walker management
    # ------------------------------------------------------------------

    def _idle_walker(self) -> Optional[PageTableWalker]:
        # Every walker holding a walk is busy regardless of stall state,
        # so a full pool means no scan.  (The count cannot tell a merely
        # *stalled* walker apart, so a partial pool still scans — with
        # the same first-free-index selection as always.)
        if self._busy_walkers >= len(self.walkers):
            return None
        now = self._sim._now
        for walker in self.walkers:
            if walker._current is None and now >= walker.stalled_until:
                return walker
        return None

    def _dispatch(self, walker: PageTableWalker, entry: WalkBufferEntry) -> None:
        self._busy_walkers += 1
        entry.dispatch_time = self._sim.now
        entry.dispatch_seq = self._dispatch_seq
        self._dispatch_seq += 1
        if entry.is_prefetch:
            self.prefetch_walks += 1
        else:
            self.walks_dispatched += 1
            self.dispatches_by_instruction.setdefault(
                entry.instruction_id, []
            ).append(entry.dispatch_seq)
            if entry.arrival_seq == -1:
                # Direct dispatch bypassed the scheduler; let it observe
                # the instruction for batching continuity.
                self.scheduler.note_dispatch(entry)
        self._walking.setdefault(entry.vpn, []).append(entry)
        tracer = self.tracer
        if tracer is not None:
            tracer.walk_scheduled(
                self._sim.now, entry.vpn, entry.instruction_id,
                entry.arrival_time, walker.walker_id, entry.dispatch_seq,
            )
            if tracer.cat_counter:
                tracer.counter(
                    self._sim.now, "pending_walks", len(self.buffer)
                )
        walker.start(entry, self._walk_complete)

    def _walk_complete(
        self, walker: PageTableWalker, entry: WalkBufferEntry, pfn: int, accesses: int
    ) -> None:
        self._busy_walkers -= 1
        in_flight = self._walking[entry.vpn]
        in_flight.remove(entry)
        if not in_flight:
            del self._walking[entry.vpn]
        if self.scheduler.needs_scores and not entry.is_prefetch:
            self.buffer.complete_walk(entry.instruction_id)
        if not entry.is_prefetch and entry.dispatch_time is not None:
            self.total_queue_wait += entry.dispatch_time - entry.arrival_time
            self.total_service_time += self._sim.now - entry.dispatch_time
        if self.tracer is not None:
            self.tracer.walk_completed(
                self._sim.now, entry.vpn, entry.instruction_id, accesses
            )
        self.l2_tlb.insert(entry.vpn, pfn)
        if entry.is_prefetch:
            # Prefetched translations stay in the (larger) L2 TLB until
            # demanded.  Demand requests that coalesced onto the prefetch
            # while it was in flight still get their replies.
            for request in entry.requests[1:]:
                self._reply(request, pfn, walk_accesses=accesses)
            self._drain_overflow()
            self._schedule_next()
            return
        self.l1_tlb.insert(entry.vpn, pfn)
        if self._promote_threshold:
            self._note_region_walk(entry.vpn)
        for request in entry.requests:
            self._reply(request, pfn, walk_accesses=accesses)
        self._drain_overflow()
        self._schedule_next()
        # WaSP-style distance-ahead walk prefetch (distance 1 is the
        # legacy ``prefetch_next_page`` behaviour).  Each step re-checks
        # for an idle walker, so demand traffic still always wins.
        for step in range(1, self._prefetch_distance + 1):
            self._maybe_prefetch(entry.vpn + step)

    def _note_region_walk(self, vpn: int) -> None:
        """Mosaic promotion bookkeeping after a demand walk completes.

        Counts distinct base pages walked per 2 MB region; a region
        crossing the threshold is promoted into the region TLB, and an
        LRU capacity eviction there is a demotion — so under contention
        only the hottest regions stay mapped large.
        """
        region = vpn >> self._region_shift
        if region in self._region_tlb:
            self._region_tlb.move_to_end(region)
            return
        pages = self._region_pages.setdefault(region, set())
        pages.add(vpn)
        if len(pages) < self._promote_threshold:
            return
        del self._region_pages[region]
        self._region_tlb[region] = True
        self.promotions += 1
        while len(self._region_tlb) > self._region_tlb_entries:
            self._region_tlb.popitem(last=False)
            self.demotions += 1

    def _drain_overflow(self) -> None:
        """Move overflowed requests into freed buffer slots (FIFO)."""
        while self._overflow and not self.buffer.is_full:
            request = self._overflow.popleft()
            self.total_overflow_wait += (
                self._sim.now - request.iommu_arrival_time
            )
            # Re-run the coalescing check: the landscape may have changed
            # while the request sat in the overflow queue.
            if self._try_coalesce(request):
                continue
            self._buffer_request(request)

    def _schedule_next(self) -> None:
        """Hand pending walks to idle walkers via the scheduler (2-a).

        When ``scan_latency_cycles`` is non-zero, each selection occupies
        the scheduler for that long before its walk dispatches (the
        hardware scan of the pending buffer).
        """
        scan_latency = (
            self.config.scan_latency_cycles if self.scheduler.requires_scan else 0
        )
        while not self.buffer.is_empty:
            walker = self._idle_walker()
            if walker is None:
                return
            if scan_latency > 0:
                if self._scan_in_progress:
                    return
                self._scan_in_progress = True
                self._sim.post(scan_latency, "iommu.finish_scan")
                return
            entry = (
                self.scheduler.select(self.buffer)
                if self.profiler is None
                else self._timed_select()
            )
            if entry is None:
                return
            self.buffer.remove(entry)
            self.scheduler.resync(self.buffer)
            self._dispatch(walker, entry)
            self._drain_overflow()

    def _timed_select(self):
        """One scheduler selection with its wall time credited to the
        ``scheduler_select`` profiling phase."""
        start = perf_counter()
        try:
            return self.scheduler.select(self.buffer)
        finally:
            self.profiler.add("scheduler_select", perf_counter() - start)

    def _finish_scan(self) -> None:
        """Complete one delayed scheduler scan and dispatch its pick."""
        self._scan_in_progress = False
        walker = self._idle_walker()
        if walker is None or self.buffer.is_empty:
            return
        entry = (
            self.scheduler.select(self.buffer)
            if self.profiler is None
            else self._timed_select()
        )
        if entry is None:
            return
        self.buffer.remove(entry)
        self.scheduler.resync(self.buffer)
        self._dispatch(walker, entry)
        self._drain_overflow()
        self._schedule_next()

    def _maybe_prefetch(self, vpn: int) -> None:
        """Walk ``vpn`` opportunistically on an idle walker (extension).

        Demand traffic always wins: a prefetch is issued only when no
        pending demand walk exists and a walker would otherwise idle.
        """
        walker = self._idle_walker()
        if (
            walker is None
            or not self.buffer.is_empty
            or self._overflow
            or self._iru_staging
        ):
            return
        if vpn in self._walking or self.buffer.find_by_vpn(vpn) is not None:
            return
        if self.l2_tlb.probe(vpn) or self.l1_tlb.probe(vpn):
            return
        request = TranslationRequest(
            vpn=vpn,
            instruction_id=0,
            wavefront_id=PREFETCH_WAVEFRONT,
            cu_id=-1,
            issue_time=self._sim.now,
        )
        entry = WalkBufferEntry(request, arrival_seq=-1, arrival_time=self._sim.now)
        self._dispatch(walker, entry)

    def resume_walkers(self) -> None:
        """Re-kick scheduling after an external walker state change.

        Fault injection stalls walkers on a timer; when a stall lifts
        there may be buffered work but no in-flight completion left to
        trigger :meth:`_schedule_next`, so the injector pokes this.
        """
        self._drain_overflow()
        self._schedule_next()

    # ------------------------------------------------------------------
    # Introspection and invariants (watchdog / resilience support)
    # ------------------------------------------------------------------

    @property
    def overflow_queued(self) -> int:
        """Requests waiting in the FIFO overflow queue right now."""
        return len(self._overflow)

    def in_flight_entries(self) -> List[WalkBufferEntry]:
        """Every walk currently owned by a walker (including wedged ones)."""
        return [entry for entries in self._walking.values() for entry in entries]

    def walks_completed(self) -> int:
        """Walks (demand + prefetch) whose completion was delivered."""
        return sum(walker.walks_completed for walker in self.walkers)

    def check_conservation(self) -> List[str]:
        """Verify no walk has been lost; returns violation descriptions.

        The load-bearing invariant is ``dispatched == completed + in
        flight``: it holds at every event boundary, under coalescing,
        prefetching, delayed completions and wedged walkers alike.  A
        violation means the model silently dropped or double-counted a
        walk — the class of bug that otherwise surfaces cycles later as
        an inexplicable hang.
        """
        violations: List[str] = []
        dispatched = self.walks_dispatched + self.prefetch_walks
        completed = self.walks_completed()
        in_flight = sum(len(entries) for entries in self._walking.values())
        if dispatched != completed + in_flight:
            violations.append(
                f"walk conservation: dispatched={dispatched} != "
                f"completed={completed} + in_flight={in_flight}"
            )
        if len(self.buffer) > self.buffer.capacity:
            violations.append(
                f"buffer over capacity: {len(self.buffer)} > {self.buffer.capacity}"
            )
        if self._overflow and not self.buffer.is_full:
            violations.append(
                f"overflow queue holds {len(self._overflow)} requests "
                f"while the buffer has free slots"
            )
        for walker in self.walkers:
            current = walker.current_entry
            if current is not None and current not in self._walking.get(
                current.vpn, []
            ):
                violations.append(
                    f"walker {walker.walker_id} holds vpn={current.vpn:#x} "
                    f"missing from the in-flight index"
                )
        return violations

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------

    def _reply(self, request: TranslationRequest, pfn: int, walk_accesses: int) -> None:
        request.walk_accesses = walk_accesses
        if request.on_complete is not None:
            request.on_complete(request, pfn)
        elif self.reply_to is not None:
            self.reply_to(request, pfn)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Every piece of translation-pipeline state, as plain data.

        Shared objects (entries referenced by the buffer, the walkers
        and queued events alike) keep their identity because the whole
        checkpoint is serialised in one pickle.
        """
        return {
            "l1_tlb": self.l1_tlb.snapshot(),
            "l2_tlb": self.l2_tlb.snapshot(),
            "pwc": self.pwc.snapshot(),
            "buffer": self.buffer.snapshot(),
            "scheduler": self.scheduler.snapshot(),
            "walkers": [walker.snapshot() for walker in self.walkers],
            "overflow": list(self._overflow),
            "scan_in_progress": self._scan_in_progress,
            "walking": {
                vpn: list(entries) for vpn, entries in self._walking.items()
            },
            "dispatch_seq": self._dispatch_seq,
            "requests": self.requests,
            "tlb_hits": self.tlb_hits,
            "walks_dispatched": self.walks_dispatched,
            "overflow_peak": self.overflow_peak,
            "coalesced_inflight": self.coalesced_inflight,
            "prefetch_walks": self.prefetch_walks,
            "total_queue_wait": self.total_queue_wait,
            "total_service_time": self.total_service_time,
            "total_overflow_wait": self.total_overflow_wait,
            "dispatches_by_instruction": {
                iid: list(seqs)
                for iid, seqs in self.dispatches_by_instruction.items()
            },
            "iru_staging": list(self._iru_staging),
            "region_pages": {
                region: sorted(pages)
                for region, pages in self._region_pages.items()
            },
            "region_tlb": list(self._region_tlb),
            "region_hits": self.region_hits,
            "promotions": self.promotions,
            "demotions": self.demotions,
        }

    def restore(self, state: Dict[str, Any]) -> None:
        self.l1_tlb.restore(state["l1_tlb"])
        self.l2_tlb.restore(state["l2_tlb"])
        self.pwc.restore(state["pwc"])
        self.buffer.restore(state["buffer"])
        self.scheduler.restore(state["scheduler"])
        for walker, dump in zip(self.walkers, state["walkers"]):
            walker.restore(dump)
            # The completion sink is code, not state: re-wire it so an
            # in-flight walk delivers into this (rebuilt) IOMMU.
            walker._on_complete = self._walk_complete
        self._busy_walkers = sum(
            1 for walker in self.walkers if walker._current is not None
        )
        self._overflow = deque(state["overflow"])
        self._scan_in_progress = state["scan_in_progress"]
        self._walking = {
            vpn: list(entries) for vpn, entries in state["walking"].items()
        }
        self._dispatch_seq = state["dispatch_seq"]
        self.requests = state["requests"]
        self.tlb_hits = state["tlb_hits"]
        self.walks_dispatched = state["walks_dispatched"]
        self.overflow_peak = state["overflow_peak"]
        self.coalesced_inflight = state["coalesced_inflight"]
        self.prefetch_walks = state["prefetch_walks"]
        self.total_queue_wait = state["total_queue_wait"]
        self.total_service_time = state["total_service_time"]
        self.total_overflow_wait = state.get("total_overflow_wait", 0)
        self.dispatches_by_instruction = {
            iid: list(seqs)
            for iid, seqs in state["dispatches_by_instruction"].items()
        }
        # Zoo state: absent from pre-zoo checkpoints, so default empty.
        self._iru_staging = list(state.get("iru_staging", ()))
        self._region_pages = {
            region: set(pages)
            for region, pages in state.get("region_pages", {}).items()
        }
        self._region_tlb = OrderedDict(
            (region, True) for region in state.get("region_tlb", ())
        )
        self.region_hits = state.get("region_hits", 0)
        self.promotions = state.get("promotions", 0)
        self.demotions = state.get("demotions", 0)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def interleaved_instruction_fraction(self) -> float:
        """Fraction of multi-walk instructions whose walk dispatches were
        interleaved with dispatches from other instructions (Fig 5)."""
        interleaved = 0
        eligible = 0
        for seqs in self.dispatches_by_instruction.values():
            if len(seqs) < 2:
                continue
            eligible += 1
            if max(seqs) - min(seqs) + 1 > len(seqs):
                interleaved += 1
        return interleaved / eligible if eligible else 0.0

    def stats(self) -> Dict[str, object]:
        data = {
            "requests": self.requests,
            "tlb_hits": self.tlb_hits,
            "walks_dispatched": self.walks_dispatched,
            "walks_completed": self.walks_completed(),
            "interleaved_fraction": self.interleaved_instruction_fraction(),
            "l1_tlb": self.l1_tlb.stats(),
            "l2_tlb": self.l2_tlb.stats(),
            "pwc": self.pwc.stats(),
            "buffer_peak": self.buffer.peak_occupancy,
            "overflow_peak": self.overflow_peak,
            "coalesced": self.buffer.total_coalesced + self.coalesced_inflight,
            "prefetch_walks": self.prefetch_walks,
            "avg_queue_wait": (
                self.total_queue_wait / self.walks_dispatched
                if self.walks_dispatched
                else 0.0
            ),
            "avg_walk_service": (
                self.total_service_time / self.walks_dispatched
                if self.walks_dispatched
                else 0.0
            ),
        }
        if self._region_tlb_entries:
            # Gated so the stats dict (and every golden pinned to it)
            # is unchanged for non-Mosaic policies.
            data["mosaic"] = {
                "region_hits": self.region_hits,
                "promotions": self.promotions,
                "demotions": self.demotions,
                "region_tlb_occupancy": len(self._region_tlb),
            }
        return data
