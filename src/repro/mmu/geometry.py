"""Translation geometry: base (4 KB) vs large (2 MB) pages.

The paper's §VI discusses — and dismisses — large pages as a fix for
translation overheads.  To let the repository test that argument, every
translation-path component is parameterised by a
:class:`PageGeometry`: the mapping unit's size, and which radix level of
the x86-64 page table holds its leaf entry.

=============  ===========  ==========  ==============================
Geometry       Page size    Leaf level  Full walk (PWC miss)
=============  ===========  ==========  ==============================
``BASE_4K``    4 KB         1           4 memory accesses
``LARGE_2M``   2 MB         2           3 memory accesses
=============  ===========  ==========  ==============================

Throughout the MMU, a "vpn" is a *unit number* in this geometry: for
``LARGE_2M`` it identifies a 2 MB region (the 4 KB vpn shifted right by
9 bits).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import BITS_PER_LEVEL, PAGE_TABLE_LEVELS

LEVEL_MASK = (1 << BITS_PER_LEVEL) - 1


@dataclass(frozen=True)
class PageGeometry:
    """Size and page-table depth of one translation unit."""

    name: str
    #: log2 of the unit size (12 → 4 KB, 21 → 2 MB).
    page_shift: int
    #: Radix level whose entry maps the unit (1 = PT leaf, 2 = PD leaf).
    leaf_level: int

    def __post_init__(self) -> None:
        if not 1 <= self.leaf_level < PAGE_TABLE_LEVELS:
            raise ValueError(
                f"leaf level must be 1..{PAGE_TABLE_LEVELS - 1}, "
                f"got {self.leaf_level}"
            )

    @property
    def page_size(self) -> int:
        return 1 << self.page_shift

    @property
    def walk_levels(self) -> int:
        """Memory accesses for a full (PWC-miss) walk."""
        return PAGE_TABLE_LEVELS - self.leaf_level + 1

    def vpn(self, virtual_address: int) -> int:
        """The unit number containing ``virtual_address``."""
        if virtual_address < 0:
            raise ValueError("virtual address must be non-negative")
        return virtual_address >> self.page_shift

    def offset(self, virtual_address: int) -> int:
        """Byte offset of the address within its unit."""
        return virtual_address & (self.page_size - 1)

    def frame_base(self, pfn: int) -> int:
        """Physical base address of frame ``pfn`` (a unit-sized frame)."""
        return pfn << self.page_shift

    def level_index(self, vpn: int, level: int) -> int:
        """Radix index used at ``level`` when walking for this unit."""
        if not self.leaf_level <= level <= PAGE_TABLE_LEVELS:
            raise ValueError(
                f"level must be {self.leaf_level}..{PAGE_TABLE_LEVELS}"
            )
        return (vpn >> (BITS_PER_LEVEL * (level - self.leaf_level))) & LEVEL_MASK

    def vpn_prefix(self, vpn: int, level: int) -> int:
        """The unit-number bits shared by all units under one ``level`` entry."""
        if not self.leaf_level <= level <= PAGE_TABLE_LEVELS:
            raise ValueError(
                f"level must be {self.leaf_level}..{PAGE_TABLE_LEVELS}"
            )
        return vpn >> (BITS_PER_LEVEL * (level - self.leaf_level))

    @property
    def pwc_levels(self) -> tuple:
        """Upper levels the page walk caches may cache (root-first)."""
        return tuple(range(PAGE_TABLE_LEVELS, self.leaf_level, -1))


BASE_4K = PageGeometry(name="4K", page_shift=12, leaf_level=1)
LARGE_2M = PageGeometry(name="2M", page_shift=21, leaf_level=2)

_BY_NAME = {"4K": BASE_4K, "2M": LARGE_2M}


def geometry_by_name(name: str) -> PageGeometry:
    """Resolve ``"4K"`` / ``"2M"`` to a geometry."""
    try:
        return _BY_NAME[name.upper()]
    except KeyError:
        raise ValueError(
            f"unknown page size {name!r}; one of {sorted(_BY_NAME)}"
        ) from None
