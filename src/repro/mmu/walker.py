"""Hardware page-table walker model.

A walker services one walk at a time: it looks up the page walk caches
to find the deepest cached level, then performs the remaining one to four
*sequential* page-table reads (each level's entry holds the address of
the next level's table, so the reads cannot overlap).  On completion it
installs the discovered upper-level entries into the PWCs and hands the
leaf translation back to the IOMMU.

Fault injection (``repro.resilience``) taps two points here: a
completion may be *delayed* (the walker holds its result — and stays
busy — for extra cycles) or *dropped* (the walker wedges and the
completion signal is lost, manufacturing a diagnosable deadlock).  A
walker may also be *stalled*: ``stalled_until`` makes it refuse new
dispatches without affecting a walk already in progress.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.request import WalkBufferEntry
from repro.engine.simulator import Simulator
from repro.mmu.page_table import PageTable
from repro.mmu.pwc import PageWalkCache

#: ``on_complete(walker, entry, pfn, accesses)``
WalkCompletion = Callable[["PageTableWalker", WalkBufferEntry, int, int], None]


class PageTableWalker:
    """One independent walker in the IOMMU's walker pool."""

    def __init__(
        self,
        walker_id: int,
        simulator: Simulator,
        page_table: PageTable,
        pwc: PageWalkCache,
        page_table_read: Callable[[int, Callable[[], None]], None],
        injector=None,
        tracer=None,
    ) -> None:
        self.walker_id = walker_id
        self._sim = simulator
        self._page_table = page_table
        self._pwc = pwc
        self._page_table_read = page_table_read
        #: Optional :class:`~repro.resilience.faults.FaultInjector`.
        self._injector = injector
        #: Optional :class:`~repro.obs.trace.Tracer`.
        self._tracer = tracer
        self._current: Optional[WalkBufferEntry] = None
        self.walks_completed = 0
        self.memory_accesses = 0
        self.busy_cycles = 0
        #: The walker refuses new dispatches until this cycle
        #: (fault injection: ``stall_walker``).
        self.stalled_until = 0
        #: True once a completion was dropped — the walker is wedged for
        #: the rest of the run (fault injection: ``drop_walk_completion``).
        self.wedged = False
        self._walk_start = 0

    @property
    def is_busy(self) -> bool:
        return self._current is not None or self._sim.now < self.stalled_until

    @property
    def current_entry(self) -> Optional[WalkBufferEntry]:
        return self._current

    def start(self, entry: WalkBufferEntry, on_complete: WalkCompletion) -> None:
        """Begin walking for ``entry``; ``on_complete`` fires when done."""
        if self._current is not None:
            raise RuntimeError(f"walker {self.walker_id} is already busy")
        self._current = entry
        self._walk_start = self._sim.now

        accesses_needed = self._pwc.walk_lookup(entry.vpn)
        # The full root-to-leaf address list; a PWC hit skips the upper
        # levels, leaving only the deepest `accesses_needed` reads.
        path = self._page_table.walk_addresses(entry.vpn)
        remaining = [address for _, address in path[-accesses_needed:]]
        self._issue_next(entry, remaining, accesses_needed, on_complete)

    def _issue_next(
        self,
        entry: WalkBufferEntry,
        remaining: list,
        total_accesses: int,
        on_complete: WalkCompletion,
    ) -> None:
        if not remaining:
            self._finish(entry, total_accesses, on_complete)
            return
        address = remaining[0]
        self.memory_accesses += 1
        tracer = self._tracer
        if tracer is not None and tracer.cat_memory:
            tracer.ptw_read(self._sim.now, self.walker_id, address)
        self._page_table_read(
            address,
            lambda: self._issue_next(entry, remaining[1:], total_accesses, on_complete),
        )

    def _finish(
        self, entry: WalkBufferEntry, accesses: int, on_complete: WalkCompletion
    ) -> None:
        pfn = self._page_table.translate(entry.vpn)
        self._pwc.fill(entry.vpn)
        if self._injector is not None:
            action, extra = self._injector.on_walk_completion(
                self.walker_id, entry, self._sim.now
            )
            if action == "drop":
                # The completion signal is lost: the walker wedges with
                # the entry still attached, so the conservation invariant
                # (dispatched == completed + in flight) keeps holding and
                # the watchdog can name the stuck walk.
                self.wedged = True
                return
            if action == "delay" and extra > 0:
                self._sim.after(
                    extra, lambda: self._deliver(entry, accesses, pfn, on_complete)
                )
                return
        self._deliver(entry, accesses, pfn, on_complete)

    def _deliver(
        self,
        entry: WalkBufferEntry,
        accesses: int,
        pfn: int,
        on_complete: WalkCompletion,
    ) -> None:
        self.walks_completed += 1
        self.busy_cycles += self._sim.now - self._walk_start
        self._current = None
        if self._tracer is not None:
            self._tracer.walk_span(
                self._walk_start, self._sim.now, self.walker_id,
                entry.vpn, entry.instruction_id, accesses,
            )
        on_complete(self, entry, pfn, accesses)
