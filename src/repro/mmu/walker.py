"""Hardware page-table walker model.

A walker services one walk at a time: it looks up the page walk caches
to find the deepest cached level, then performs the remaining one to four
*sequential* page-table reads (each level's entry holds the address of
the next level's table, so the reads cannot overlap).  On completion it
installs the discovered upper-level entries into the PWCs and hands the
leaf translation back to the IOMMU.

The walk is a data-driven state machine: the remaining PTE addresses
live in walker fields (not a closure chain), and each memory read
completes into a per-walker event kind (``walker.<id>.step``), so an
in-progress walk serialises cleanly into a checkpoint and resumes
mid-read.

Fault injection (``repro.resilience``) taps two points here: a
completion may be *delayed* (the walker holds its result — and stays
busy — for extra cycles) or *dropped* (the walker wedges and the
completion signal is lost, manufacturing a diagnosable deadlock).  A
walker may also be *stalled*: ``stalled_until`` makes it refuse new
dispatches without affecting a walk already in progress.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.request import WalkBufferEntry
from repro.engine.simulator import Simulator
from repro.mmu.page_table import PageTable
from repro.mmu.pwc import PageWalkCache

#: ``on_complete(walker, entry, pfn, accesses)``
WalkCompletion = Callable[["PageTableWalker", WalkBufferEntry, int, int], None]


class PageTableWalker:
    """One independent walker in the IOMMU's walker pool."""

    def __init__(
        self,
        walker_id: int,
        simulator: Simulator,
        page_table: PageTable,
        pwc: PageWalkCache,
        page_table_read: Callable[[int, Any], None],
        injector=None,
        tracer=None,
    ) -> None:
        self.walker_id = walker_id
        self._sim = simulator
        self._page_table = page_table
        self._pwc = pwc
        self._page_table_read = page_table_read
        #: Optional :class:`~repro.resilience.faults.FaultInjector`.
        self._injector = injector
        #: Optional :class:`~repro.obs.trace.Tracer`.
        self._tracer = tracer
        self._current: Optional[WalkBufferEntry] = None
        self.walks_completed = 0
        self.memory_accesses = 0
        self.busy_cycles = 0
        #: The walker refuses new dispatches until this cycle
        #: (fault injection: ``stall_walker``).
        self.stalled_until = 0
        #: True once a completion was dropped — the walker is wedged for
        #: the rest of the run (fault injection: ``drop_walk_completion``).
        self.wedged = False
        self._walk_start = 0
        #: ``(level, address)`` pairs still to read for the current walk
        #: (the one in flight excluded — its completion event is already
        #: queued).  Levels ride along so read spans can attribute
        #: cycles per page-table level.
        self._remaining: List[Tuple[int, int]] = []
        self._total_accesses = 0
        #: ``(pfn, accesses)`` held back by a delayed-completion fault.
        self._pending: Optional[Tuple[int, int]] = None
        #: Cycles completions spent held back by delay faults (the
        #: ``deliver_hold`` attribution stage), counted always-on.
        self.held_cycles = 0
        self._finish_time = 0
        # In-flight read bookkeeping for walk_read spans (cat "walk"
        # tracing only; ``_read_issue`` is -1 when no read is tracked).
        self._read_issue = -1
        self._read_level = 0
        self._read_address = 0
        #: DRAM timing receipt captured at issue (reservation model);
        #: the queued controller leaves it None and supplies the receipt
        #: at completion instead (see ``Tracer.last_dram_access``).
        self._read_meta: Optional[Tuple[int, int, int, bool]] = None
        #: Completion sink; not serialised — the owner re-wires it on
        #: restore (see :meth:`restore`).
        self._on_complete: Optional[WalkCompletion] = None
        self._step_kind = f"walker.{walker_id}.step"
        self._deliver_kind = f"walker.{walker_id}.deliver"
        #: Reused completion target for every page-table read this
        #: walker issues (the payload never varies).
        self._step_event = (self._step_kind,)
        simulator.register(self._step_kind, self._issue_next)
        simulator.register_batch(self._step_kind, self._issue_next_batch)
        simulator.register(self._deliver_kind, self._deliver_pending)

    @property
    def is_busy(self) -> bool:
        return self._current is not None or self._sim.now < self.stalled_until

    @property
    def current_entry(self) -> Optional[WalkBufferEntry]:
        return self._current

    def start(self, entry: WalkBufferEntry, on_complete: WalkCompletion) -> None:
        """Begin walking for ``entry``; ``on_complete`` fires when done."""
        if self._current is not None:
            raise RuntimeError(f"walker {self.walker_id} is already busy")
        self._current = entry
        self._walk_start = self._sim.now
        self._on_complete = on_complete

        accesses_needed = self._pwc.walk_lookup(entry.vpn, entry.pinned_levels)
        # The full root-to-leaf (level, address) list; a PWC hit skips
        # the upper levels, leaving only the deepest `accesses_needed`
        # reads.
        path = self._page_table.walk_addresses(entry.vpn)
        self._remaining = list(path[-accesses_needed:])
        self._total_accesses = accesses_needed
        self._read_issue = -1
        self._read_meta = None
        self._issue_next()

    def _issue_next(self) -> None:
        tracer = self._tracer
        if tracer is not None and tracer.cat_walk and self._read_issue >= 0:
            self._emit_read_span(tracer)
        if not self._remaining:
            self._finish()
            return
        level, address = self._remaining.pop(0)
        self.memory_accesses += 1
        if tracer is not None:
            if tracer.cat_memory:
                tracer.ptw_read(self._sim.now, self.walker_id, address)
            if tracer.cat_walk:
                self._read_issue = self._sim.now
                self._read_level = level
                self._read_address = address
                # The reservation DRAM computes timing synchronously and
                # leaves a receipt during this call; the queued
                # controller leaves None and supplies it at completion.
                tracer.last_dram_access = None
                self._page_table_read(address, self._step_event)
                self._read_meta = tracer.last_dram_access
                return
        self._page_table_read(address, self._step_event)

    def _emit_read_span(self, tracer) -> None:
        """Close the just-completed read as a ``walk_read`` span.

        The span decomposes exactly: bank-queue wait, row access, and
        fault padding tile issue → now with no residue, whichever memory
        model produced the receipt.  A missing receipt (a custom
        page-table-read hook, as in unit tests) reports the whole span
        as row access with ``bank = -1``.
        """
        now = self._sim.now
        issue = self._read_issue
        self._read_issue = -1
        meta = self._read_meta
        if meta is None:
            meta = tracer.last_dram_access
        self._read_meta = None
        tracer.last_dram_access = None
        if meta is not None:
            service_start, done, bank, row_hit = meta
            bank_queue = service_start - issue
            row_access = done - service_start
            fault_pad = now - done
        else:
            bank, row_hit = -1, False
            bank_queue = 0
            row_access = now - issue
            fault_pad = 0
        entry = self._current
        tracer.walk_read(
            issue, now, self.walker_id, entry.vpn, entry.instruction_id,
            self._read_level, self._read_address, bank, bank_queue,
            row_access, fault_pad, bool(row_hit),
        )

    def _issue_next_batch(self, payloads) -> None:
        # A walker services one walk at a time, so same-cycle step runs
        # are length 1 in practice; the batch form exists so the engine
        # can treat every hot kind uniformly.
        for _ in payloads:
            self._issue_next()

    def _finish(self) -> None:
        entry = self._current
        accesses = self._total_accesses
        pfn = self._page_table.translate(entry.vpn)
        self._pwc.fill(entry.vpn)
        self._finish_time = self._sim.now
        if self._injector is not None:
            action, extra = self._injector.on_walk_completion(
                self.walker_id, entry, self._sim.now
            )
            if action == "drop":
                # The completion signal is lost: the walker wedges with
                # the entry still attached, so the conservation invariant
                # (dispatched == completed + in flight) keeps holding and
                # the watchdog can name the stuck walk.
                self.wedged = True
                return
            if action == "delay" and extra > 0:
                self._pending = (pfn, accesses)
                self._sim.post(extra, self._deliver_kind)
                return
        self._pending = (pfn, accesses)
        self._deliver_pending()

    def _deliver_pending(self) -> None:
        pfn, accesses = self._pending
        self._pending = None
        entry = self._current
        self.walks_completed += 1
        self.busy_cycles += self._sim.now - self._walk_start
        self.held_cycles += self._sim.now - self._finish_time
        self._current = None
        if self._tracer is not None:
            self._tracer.walk_span(
                self._walk_start, self._sim.now, self.walker_id,
                entry.vpn, entry.instruction_id, accesses,
            )
        self._on_complete(self, entry, pfn, accesses)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """All walk state; the completion sink is code, not captured."""
        return {
            "current": self._current,
            "walks_completed": self.walks_completed,
            "memory_accesses": self.memory_accesses,
            "busy_cycles": self.busy_cycles,
            "stalled_until": self.stalled_until,
            "wedged": self.wedged,
            "walk_start": self._walk_start,
            "remaining": list(self._remaining),
            "total_accesses": self._total_accesses,
            "pending": self._pending,
            "held_cycles": self.held_cycles,
            "finish_time": self._finish_time,
            "read_issue": self._read_issue,
            "read_level": self._read_level,
            "read_address": self._read_address,
            "read_meta": self._read_meta,
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Adopt a snapshot.  The owner must re-set ``_on_complete``
        (the IOMMU does) before the next completion fires."""
        self._current = state["current"]
        self.walks_completed = state["walks_completed"]
        self.memory_accesses = state["memory_accesses"]
        self.busy_cycles = state["busy_cycles"]
        self.stalled_until = state["stalled_until"]
        self.wedged = state["wedged"]
        self._walk_start = state["walk_start"]
        self._remaining = list(state["remaining"])
        self._total_accesses = state["total_accesses"]
        self._pending = state["pending"]
        self.held_cycles = state.get("held_cycles", 0)
        self._finish_time = state.get("finish_time", 0)
        self._read_issue = state.get("read_issue", -1)
        self._read_level = state.get("read_level", 0)
        self._read_address = state.get("read_address", 0)
        self._read_meta = state.get("read_meta")
