"""Virtual-address arithmetic for a 4-level x86-64-style page table.

A 48-bit virtual address breaks down as::

    47            39 38            30 29            21 20            12 11        0
    +---------------+---------------+---------------+---------------+-----------+
    | level-4 index | level-3 index | level-2 index | level-1 index |  offset   |
    +---------------+---------------+---------------+---------------+-----------+

Level 4 is the root (PML4), level 1 holds the leaf PTEs.  Each level is
indexed by 9 bits, so each table has 512 entries of 8 bytes (one 4 KB
page per table node).
"""

from __future__ import annotations

from repro.config import BITS_PER_LEVEL, PAGE_SIZE, PAGE_TABLE_LEVELS

PAGE_SHIFT = PAGE_SIZE.bit_length() - 1  # 12
LEVEL_MASK = (1 << BITS_PER_LEVEL) - 1  # 0x1FF
PTE_SIZE = 8
VPN_BITS = BITS_PER_LEVEL * PAGE_TABLE_LEVELS  # 36
MAX_VPN = (1 << VPN_BITS) - 1


def vpn_of(virtual_address: int) -> int:
    """The virtual page number containing ``virtual_address``."""
    if virtual_address < 0:
        raise ValueError("virtual address must be non-negative")
    return virtual_address >> PAGE_SHIFT


def page_offset(virtual_address: int) -> int:
    """Byte offset of ``virtual_address`` within its page."""
    return virtual_address & (PAGE_SIZE - 1)


def level_index(vpn: int, level: int) -> int:
    """The radix-tree index used at page-table ``level`` (4 = root, 1 = leaf)."""
    if not 1 <= level <= PAGE_TABLE_LEVELS:
        raise ValueError(f"level must be 1..{PAGE_TABLE_LEVELS}, got {level}")
    return (vpn >> (BITS_PER_LEVEL * (level - 1))) & LEVEL_MASK


def vpn_prefix(vpn: int, level: int) -> int:
    """The VPN bits that select the page-table node *entry* at ``level``.

    Two VPNs that share a prefix at level ``n`` are mapped by the same
    level-``n`` entry, so a page-walk-cache hit at level ``n`` for one of
    them serves the other too.  The prefix for level 4 is the level-4
    index alone; for level 2 it is the top three indices, etc.
    """
    if not 1 <= level <= PAGE_TABLE_LEVELS:
        raise ValueError(f"level must be 1..{PAGE_TABLE_LEVELS}, got {level}")
    return vpn >> (BITS_PER_LEVEL * (level - 1))


def pte_address(node_base: int, index: int) -> int:
    """Physical address of entry ``index`` within the table page at ``node_base``."""
    return node_base + index * PTE_SIZE
