"""Address-translation substrate: page tables, TLBs, PWCs, walkers, IOMMU."""

from repro.mmu.address import (
    level_index,
    page_offset,
    pte_address,
    vpn_of,
    vpn_prefix,
)
from repro.mmu.page_table import FrameAllocator, PageTable
from repro.mmu.tlb import TLB
from repro.mmu.pwc import PageWalkCache
from repro.mmu.walker import PageTableWalker
from repro.mmu.iommu import IOMMU

__all__ = [
    "FrameAllocator",
    "IOMMU",
    "PageTable",
    "PageTableWalker",
    "PageWalkCache",
    "TLB",
    "level_index",
    "page_offset",
    "pte_address",
    "vpn_of",
    "vpn_prefix",
]
