"""Page walk caches (PWCs) with the paper's 2-bit saturating counters.

The IOMMU keeps one small cache per *upper* page-table level (levels 4,
3 and 2 of the four-level table; level 1 holds the leaf PTEs which are
what TLBs cache).  A PWC entry at level *n* caches the physical address
of the level-(n-1) table, letting the walker skip the accesses above it:

===========================  =================================
Deepest PWC hit              Memory accesses left for the walk
===========================  =================================
level 2 (PD entry cached)    1  (leaf PTE only)
level 3 (PDPT entry cached)  2
level 4 (PML4 entry cached)  3
complete miss                4
===========================  =================================

Section IV of the paper adds a 2-bit saturating counter to every PWC
entry.  When a newly-arrived walk request is *scored* against the PWC
(action 1-a), the counters of the entries it hit are incremented; when a
*scheduled* walk later hits those entries (action 2-b), they are
decremented.  A non-zero counter therefore means "some pending request
was promised this entry" and the replacement policy refuses to victimise
such entries unless the whole set is pinned.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Tuple

from repro.config import BITS_PER_LEVEL, PAGE_TABLE_LEVELS, PWCConfig
from repro.mmu.geometry import BASE_4K, PageGeometry

#: Page-table levels the PWC caches under the default 4 KB geometry
#: (the leaf level is the TLB's job).  With 2 MB pages only levels 4
#: and 3 are cached — level 2 holds the leaves.
CACHED_LEVELS: Tuple[int, ...] = BASE_4K.pwc_levels


class _Entry:
    __slots__ = ("counter",)

    def __init__(self) -> None:
        self.counter = 0


class _LevelCache:
    """One per-level set-associative cache with counter-guarded LRU."""

    def __init__(self, config: PWCConfig) -> None:
        self._ways = config.associativity
        self._num_sets = config.entries_per_level // config.associativity
        self._sets: List["OrderedDict[int, _Entry]"] = [
            OrderedDict() for _ in range(self._num_sets)
        ]
        self._counter_max = (1 << config.counter_bits) - 1
        self._guard = config.counter_guard
        self.hits = 0
        self.misses = 0
        self.guarded_evictions_avoided = 0

    def _set_for(self, tag: int) -> "OrderedDict[int, _Entry]":
        return self._sets[tag % self._num_sets]

    def touch(self, tag: int) -> None:
        entries = self._set_for(tag)
        if tag in entries:
            entries.move_to_end(tag)

    def bump_counter(self, tag: int, delta: int) -> None:
        entries = self._set_for(tag)
        entry = entries.get(tag)
        if entry is None:
            return
        entry.counter = max(0, min(self._counter_max, entry.counter + delta))

    def insert(self, tag: int) -> None:
        entries = self._set_for(tag)
        if tag in entries:
            entries.move_to_end(tag)
            return
        if len(entries) >= self._ways:
            self._evict(entries)
        entries[tag] = _Entry()

    def snapshot(self) -> Dict[str, object]:
        """Set contents (tag -> counter, in LRU order) plus counters."""
        return {
            "sets": [
                [(tag, entry.counter) for tag, entry in entries.items()]
                for entries in self._sets
            ],
            "hits": self.hits,
            "misses": self.misses,
            "guarded_evictions_avoided": self.guarded_evictions_avoided,
        }

    def restore(self, state: Dict[str, object]) -> None:
        for entries, dump in zip(self._sets, state["sets"]):
            entries.clear()
            for tag, counter in dump:
                entry = _Entry()
                entry.counter = counter
                entries[tag] = entry
        self.hits = state["hits"]
        self.misses = state["misses"]
        self.guarded_evictions_avoided = state["guarded_evictions_avoided"]

    def _evict(self, entries: "OrderedDict[int, _Entry]") -> None:
        if self._guard:
            # Victimise the LRU entry whose counter is zero; fall back to
            # plain LRU when every entry in the set is pinned (paper §IV).
            for tag, entry in entries.items():
                if entry.counter == 0:
                    del entries[tag]
                    return
            self.guarded_evictions_avoided += 1
        entries.popitem(last=False)


class PageWalkCache:
    """The bundle of per-level page walk caches."""

    def __init__(self, config: PWCConfig, geometry: PageGeometry = BASE_4K) -> None:
        self.config = config
        self.geometry = geometry
        self._cached_levels = geometry.pwc_levels
        self._levels: Dict[int, _LevelCache] = {
            level: _LevelCache(config) for level in self._cached_levels
        }
        # Hot-path precomputation: ``vpn_prefix(vpn, level)`` is a plain
        # shift once the level is known to be in range, and probe order
        # (deepest first) never changes.  ``_shifts`` covers every level
        # a pin or touch can name (leaf..root).
        leaf = geometry.leaf_level
        self._shifts: Dict[int, int] = {
            level: BITS_PER_LEVEL * (level - leaf)
            for level in range(leaf, PAGE_TABLE_LEVELS + 1)
        }
        self._probe_order: Tuple[Tuple[int, _LevelCache, int], ...] = tuple(
            (level, self._levels[level], self._shifts[level])
            for level in reversed(self._cached_levels)
        )
        self._fill_order: Tuple[Tuple[_LevelCache, int], ...] = tuple(
            (self._levels[level], self._shifts[level])
            for level in self._cached_levels
        )
        #: Optional :class:`~repro.obs.trace.Tracer` plus a clock
        #: closure (the PWC holds no simulator reference).
        self.tracer = None
        self._trace_now = None

    def attach_tracer(self, tracer, now) -> None:
        """Record probes into ``tracer``; ``now`` supplies timestamps."""
        self.tracer = tracer
        self._trace_now = now

    def _deepest_hit(self, vpn: int, count_stats: bool) -> int:
        """Deepest cached level for ``vpn``; 0 when nothing is cached.

        Probes from the deepest cached level up to the root — a hit at
        level *n* implies the walker needs no level above *n*.
        """
        for level, cache, shift in self._probe_order:
            tag = vpn >> shift
            present = tag in cache._sets[tag % cache._num_sets]
            if count_stats:
                if present:
                    cache.hits += 1
                else:
                    cache.misses += 1
            if present:
                return level
        return 0

    def accesses_for_hit_level(self, level: int) -> int:
        """Memory accesses a walk needs given the deepest PWC hit level."""
        if level == 0:
            return self.geometry.walk_levels
        return level - self.geometry.leaf_level

    def score(self, vpn: int) -> Tuple[int, Tuple[int, ...]]:
        """Score probe (action 1-a): estimate accesses and pin hit entries.

        Increments the 2-bit counters of every entry at or below the
        deepest hit (the entries the estimate relies on) and returns
        ``(accesses, pinned_levels)``.  The caller must record
        ``pinned_levels`` on the pending walk so :meth:`walk_lookup` can
        unpin exactly those levels — unpinning by the hit depth *at walk
        time* drifts whenever fills or evictions change the depth between
        scoring and walking (pins leak until saturation, or unrelated
        entries lose their guard).
        """
        level = self._deepest_hit(vpn, count_stats=True)
        pinned_levels: Tuple[int, ...] = ()
        if level:
            pinned_levels = tuple(range(level, PAGE_TABLE_LEVELS + 1))
            shifts = self._shifts
            for pinned in pinned_levels:
                self._levels[pinned].bump_counter(vpn >> shifts[pinned], +1)
        accesses = self.accesses_for_hit_level(level)
        tracer = self.tracer
        if tracer is not None and tracer.cat_pwc:
            tracer.pwc_probe(self._trace_now(), "score", vpn, level, accesses)
        return accesses, pinned_levels

    def estimate_accesses(self, vpn: int) -> int:
        """Back-compat wrapper over :meth:`score` (drops the pin record)."""
        return self.score(vpn)[0]

    def peek_accesses(self, vpn: int) -> int:
        """Estimate accesses without touching counters or stats."""
        return self.accesses_for_hit_level(self._deepest_hit(vpn, count_stats=False))

    def walk_lookup(self, vpn: int, pinned_levels: Tuple[int, ...] = ()) -> int:
        """Walker lookup (action 2-b): returns accesses needed; unpins entries.

        Decrements the counters of exactly the levels pinned when this
        walk was scored (``pinned_levels``, as returned by :meth:`score`)
        and refreshes the LRU position of the entries the walk actually
        hits now.  A walk that was never scored (non-scoring scheduler,
        prefetch) passes the default empty tuple and unpins nothing.
        """
        level = self._deepest_hit(vpn, count_stats=True)
        shifts = self._shifts
        for pinned in pinned_levels:
            self._levels[pinned].bump_counter(vpn >> shifts[pinned], -1)
        if level:
            for hit in range(level, PAGE_TABLE_LEVELS + 1):
                self._levels[hit].touch(vpn >> shifts[hit])
        accesses = self.accesses_for_hit_level(level)
        tracer = self.tracer
        if tracer is not None and tracer.cat_pwc:
            tracer.pwc_probe(self._trace_now(), "walk", vpn, level, accesses)
        return accesses

    def fill(self, vpn: int) -> None:
        """Install the upper-level entries discovered by a completed walk."""
        for cache, shift in self._fill_order:
            cache.insert(vpn >> shift)

    def flush(self) -> int:
        """Invalidate every cached entry at every level (fault injection).

        Counter pins vanish with their entries — pending requests scored
        against flushed entries simply re-walk from the root, which is
        the safe, conservative outcome.  Returns entries discarded.
        """
        discarded = 0
        for cache in self._levels.values():
            for entries in cache._sets:
                discarded += len(entries)
                entries.clear()
        return discarded

    @property
    def occupancy(self) -> int:
        return sum(
            len(entries) for cache in self._levels.values() for entries in cache._sets
        )

    def stats(self) -> Dict[str, Dict[str, int]]:
        return {
            f"level{level}": {
                "hits": cache.hits,
                "misses": cache.misses,
                "guarded_evictions_avoided": cache.guarded_evictions_avoided,
            }
            for level, cache in self._levels.items()
        }

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[int, Dict[str, object]]:
        return {level: cache.snapshot() for level, cache in self._levels.items()}

    def restore(self, state: Dict[int, Dict[str, object]]) -> None:
        for level, cache in self._levels.items():
            cache.restore(state[level])
