"""A software model of a 4-level radix page table.

The table is populated lazily: the first translation of a virtual page
allocates a physical frame (and any missing interior nodes).  This mirrors
how our synthetic workloads behave — every virtual page they touch is
backed — while letting us build page tables for multi-hundred-megabyte
footprints in microseconds.

Interior nodes are real objects with physical addresses, so a page-table
walker can compute the exact DRAM address of every PTE it fetches; those
addresses then exercise the DRAM bank/row model just like data accesses.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.config import PAGE_SIZE, PAGE_TABLE_LEVELS
from repro.mmu.address import PAGE_SHIFT, pte_address
from repro.mmu.geometry import BASE_4K, PageGeometry


class FrameAllocator:
    """Hands out physical frame numbers.

    Frames are allocated with a large deterministic stride pattern so that
    consecutive virtual pages do not map to adjacent physical frames —
    spreading page-table and data traffic across DRAM banks the way a
    long-running system's fragmented physical memory would.
    """

    def __init__(self, start_frame: int = 1, stride: int = 97) -> None:
        if start_frame < 1:
            raise ValueError("frame 0 is reserved")
        self._next = start_frame
        self._stride = stride
        self._allocated = 0

    def allocate(self) -> int:
        """Return a fresh physical frame number."""
        frame = self._next
        self._next += self._stride
        self._allocated += 1
        return frame

    @property
    def allocated_frames(self) -> int:
        return self._allocated

    @property
    def allocated_bytes(self) -> int:
        return self._allocated * PAGE_SIZE


class _Node:
    """One interior page-table page: 512 slots of children."""

    __slots__ = ("base_address", "children")

    def __init__(self, base_address: int) -> None:
        self.base_address = base_address
        self.children: Dict[int, "_Node"] = {}


class PageTable:
    """A 4-level radix page table with lazy population.

    ``geometry`` selects the mapping granularity: with
    :data:`~repro.mmu.geometry.LARGE_2M` the level-2 entries are leaves
    (2 MB frames) and walks touch three levels instead of four.
    """

    def __init__(
        self,
        allocator: Optional[FrameAllocator] = None,
        geometry: PageGeometry = BASE_4K,
    ) -> None:
        self._allocator = allocator or FrameAllocator()
        self.geometry = geometry
        self._root = _Node(self._allocate_node_address())
        #: Leaf mappings: unit number -> pfn (unit-sized frame number).
        self._mappings: Dict[int, int] = {}
        self._interior_nodes = 1
        #: Memoised walk paths: once a unit is mapped, its PTE addresses
        #: never change (interior nodes are only ever added), so the
        #: root-to-leaf address list is computed once per vpn.
        self._walk_cache: Dict[int, Tuple[Tuple[int, int], ...]] = {}

    def _allocate_node_address(self) -> int:
        return self._allocator.allocate() << PAGE_SHIFT

    @property
    def root_address(self) -> int:
        return self._root.base_address

    @property
    def mapped_pages(self) -> int:
        return len(self._mappings)

    @property
    def interior_nodes(self) -> int:
        return self._interior_nodes

    def translate(self, vpn: int) -> int:
        """Return the physical frame number for ``vpn``, mapping on demand."""
        pfn = self._mappings.get(vpn)
        if pfn is None:
            pfn = self._map(vpn)
        return pfn

    def lookup(self, vpn: int) -> Optional[int]:
        """Return the PFN for ``vpn`` or None if unmapped (no side effects)."""
        return self._mappings.get(vpn)

    def _map(self, vpn: int) -> int:
        geometry = self.geometry
        node = self._root
        for level in range(PAGE_TABLE_LEVELS, geometry.leaf_level, -1):
            index = geometry.level_index(vpn, level)
            child = node.children.get(index)
            if child is None:
                child = _Node(self._allocate_node_address())
                node.children[index] = child
                self._interior_nodes += 1
            node = child
        pfn = self._allocator.allocate()
        self._mappings[vpn] = pfn
        return pfn

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Allocator cursor, interior-node tree and leaf mappings.

        The table populates lazily during the run, so its contents are
        run state: a resume must see the identical frame-allocation
        order or physical addresses (and with them DRAM bank/row
        behaviour) would diverge.  ``_Node`` objects are plain slotted
        data, safe to serialise as-is.
        """
        return {
            "allocator": (
                self._allocator._next,
                self._allocator._stride,
                self._allocator._allocated,
            ),
            "root": self._root,
            "mappings": dict(self._mappings),
            "interior_nodes": self._interior_nodes,
        }

    def restore(self, state: Dict[str, object]) -> None:
        self._allocator._next, self._allocator._stride, self._allocator._allocated = (
            state["allocator"]
        )
        self._root = state["root"]
        self._mappings = dict(state["mappings"])
        self._interior_nodes = state["interior_nodes"]
        # The restored tree may differ from the one the memo was built
        # against (different node addresses); drop it and re-memoise.
        self._walk_cache.clear()

    def walk_addresses(self, vpn: int) -> Tuple[Tuple[int, int], ...]:
        """The ``(level, pte_physical_address)`` pairs a full walk touches.

        Ordered root-first: level 4 down to the geometry's leaf level.
        Ensures the mapping exists (allocating if needed) so that the
        addresses are defined.
        """
        cached = self._walk_cache.get(vpn)
        if cached is not None:
            return cached
        self.translate(vpn)
        geometry = self.geometry
        addresses: List[Tuple[int, int]] = []
        node = self._root
        for level in range(PAGE_TABLE_LEVELS, geometry.leaf_level, -1):
            index = geometry.level_index(vpn, level)
            addresses.append((level, pte_address(node.base_address, index)))
            node = node.children[index]
        leaf = geometry.leaf_level
        addresses.append(
            (leaf, pte_address(node.base_address, geometry.level_index(vpn, leaf)))
        )
        path = tuple(addresses)
        self._walk_cache[vpn] = path
        return path
