"""A generic set-associative TLB with true-LRU replacement.

Used for all four TLB levels in the system: the per-CU GPU L1 TLBs
(fully associative), the GPU shared L2 TLB (16-way), and the IOMMU's two
TLB levels.  Fully-associative TLBs are the single-set special case.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional

from repro.config import TLBConfig


class TLB:
    """Caches ``vpn -> pfn`` translations.

    Each set is an :class:`~collections.OrderedDict` ordered from
    least- to most-recently used, which gives O(1) lookup, insertion
    and LRU eviction.
    """

    def __init__(self, config: TLBConfig, name: str = "tlb") -> None:
        self.config = config
        self.name = name
        self._num_sets = config.num_sets
        self._ways = config.entries // self._num_sets
        self._sets: List["OrderedDict[int, int]"] = [
            OrderedDict() for _ in range(self._num_sets)
        ]
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Optional :class:`~repro.obs.trace.Tracer` plus a clock
        #: closure, set via :meth:`attach_tracer` (the TLB itself holds
        #: no simulator reference).
        self.tracer = None
        self._trace_now = None

    def attach_tracer(self, tracer, now) -> None:
        """Record lookups into ``tracer``; ``now`` supplies timestamps."""
        self.tracer = tracer
        self._trace_now = now

    def _set_for(self, vpn: int) -> "OrderedDict[int, int]":
        return self._sets[vpn % self._num_sets]

    def lookup(self, vpn: int) -> Optional[int]:
        """Return the cached PFN for ``vpn`` (updating LRU) or None."""
        entries = self._set_for(vpn)
        pfn = entries.get(vpn)
        tracer = self.tracer
        if pfn is None:
            self.misses += 1
            if tracer is not None and tracer.cat_tlb:
                tracer.tlb_lookup(self._trace_now(), self.name, vpn, False)
            return None
        entries.move_to_end(vpn)
        self.hits += 1
        if tracer is not None and tracer.cat_tlb:
            tracer.tlb_lookup(self._trace_now(), self.name, vpn, True)
        return pfn

    def probe(self, vpn: int) -> bool:
        """True if ``vpn`` is resident, without touching LRU state or stats."""
        return vpn in self._set_for(vpn)

    def insert(self, vpn: int, pfn: int) -> None:
        """Install a translation, evicting the set's LRU entry if full."""
        entries = self._set_for(vpn)
        if vpn in entries:
            entries[vpn] = pfn
            entries.move_to_end(vpn)
            return
        if len(entries) >= self._ways:
            entries.popitem(last=False)
            self.evictions += 1
        entries[vpn] = pfn

    def invalidate(self, vpn: int) -> bool:
        """Drop ``vpn`` if present.  Returns whether an entry was removed."""
        entries = self._set_for(vpn)
        if vpn in entries:
            del entries[vpn]
            return True
        return False

    def flush(self) -> None:
        """Invalidate every entry."""
        for entries in self._sets:
            entries.clear()

    def corrupt(self, rng, count: int) -> int:
        """Invalidate up to ``count`` seeded-random entries (fault injection).

        Models ECC-*detected* corruption: a bad entry is discarded, never
        served, so the translation is simply re-walked.  Victims are
        sampled with ``rng`` over a deterministically-ordered view of the
        resident VPNs, keeping campaigns reproducible.  Returns the
        number of entries actually invalidated.
        """
        resident = sorted(vpn for entries in self._sets for vpn in entries)
        if not resident:
            return 0
        victims = rng.sample(resident, min(count, len(resident)))
        for vpn in victims:
            self.invalidate(vpn)
        return len(victims)

    @property
    def occupancy(self) -> int:
        return sum(len(entries) for entries in self._sets)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.accesses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Set contents in LRU order plus hit/miss/eviction counters."""
        return {
            "sets": [list(entries.items()) for entries in self._sets],
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def restore(self, state: Dict[str, object]) -> None:
        for entries, dump in zip(self._sets, state["sets"]):
            entries.clear()
            entries.update(dump)
        self.hits = state["hits"]
        self.misses = state["misses"]
        self.evictions = state["evictions"]
