"""Configuration (de)serialisation.

Experiment campaigns archive the exact machine description next to their
results; these helpers round-trip :class:`~repro.config.SystemConfig`
through plain dictionaries and JSON files.  Unknown keys are rejected
(a typo'd override should fail loudly, not silently fall back to a
default).
"""

from __future__ import annotations

import json
from dataclasses import asdict, fields, is_dataclass
from pathlib import Path
from typing import Any, Dict, Type, TypeVar, Union

from repro.config import (
    CacheConfig,
    DRAMConfig,
    GPUConfig,
    IOMMUConfig,
    PWCConfig,
    SystemConfig,
    TLBConfig,
)
from repro.resilience.faults import FaultEvent, FaultPlan

T = TypeVar("T")

#: Nested dataclass field types of the configuration tree, by owner.
_NESTED: Dict[Type, Dict[str, Type]] = {
    SystemConfig: {
        "gpu": GPUConfig,
        "l1_cache": CacheConfig,
        "l2_cache": CacheConfig,
        "gpu_l1_tlb": TLBConfig,
        "gpu_l2_tlb": TLBConfig,
        "iommu": IOMMUConfig,
        "dram": DRAMConfig,
    },
    IOMMUConfig: {
        "l1_tlb": TLBConfig,
        "l2_tlb": TLBConfig,
        "pwc": PWCConfig,
    },
}

#: Fields rebuilt by hand rather than plain nested-dataclass recursion:
#: a fault plan's ``events`` is a *list* of dataclasses.
_FAULT_FIELD = "faults"


def config_to_dict(config: SystemConfig) -> Dict[str, Any]:
    """Flatten a configuration tree to JSON-serialisable primitives."""
    if not is_dataclass(config):
        raise TypeError(f"expected a dataclass, got {type(config)!r}")
    return asdict(config)


def _build(cls: Type[T], data: Dict[str, Any]) -> T:
    known = {field.name for field in fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(
            f"unknown {cls.__name__} keys: {', '.join(sorted(unknown))}"
        )
    nested = _NESTED.get(cls, {})
    kwargs: Dict[str, Any] = {}
    for key, value in data.items():
        if cls is SystemConfig and key == _FAULT_FIELD and isinstance(value, dict):
            kwargs[key] = _build_fault_plan(value)
        elif key in nested and isinstance(value, dict):
            kwargs[key] = _build(nested[key], value)
        else:
            kwargs[key] = value
    return cls(**kwargs)


def _build_fault_plan(data: Dict[str, Any]) -> FaultPlan:
    known = {field.name for field in fields(FaultPlan)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(
            f"unknown FaultPlan keys: {', '.join(sorted(unknown))}"
        )
    events = tuple(
        event if isinstance(event, FaultEvent) else _build(FaultEvent, event)
        for event in data.get("events", ())
    )
    return FaultPlan(seed=data.get("seed", 0), events=events)


def config_from_dict(data: Dict[str, Any]) -> SystemConfig:
    """Rebuild a :class:`SystemConfig` from :func:`config_to_dict` output.

    Partial dictionaries are allowed: omitted keys keep their defaults,
    so ``{"iommu": {"scheduler": "simt"}}`` is a valid override file.
    """
    return _build(SystemConfig, data)


def save_config(config: SystemConfig, path: Union[str, Path]) -> None:
    """Write a configuration to ``path`` as JSON."""
    Path(path).write_text(json.dumps(config_to_dict(config), indent=2))


def load_config(path: Union[str, Path]) -> SystemConfig:
    """Read a configuration (possibly partial) from a JSON file."""
    return config_from_dict(json.loads(Path(path).read_text()))
