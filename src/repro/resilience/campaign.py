"""Seeded fault-injection campaigns: randomised plans, deterministic runs.

A campaign derives a matrix of (workload, scheduler, :class:`FaultPlan`)
cases from one master seed, runs each case on a scaled-down machine
under the forward-progress watchdog, and reports a JSON-serialisable
record per case.  Everything downstream of the seed is deterministic —
running the same campaign twice must produce byte-identical reports
(CI enforces exactly that) — so a campaign diff is a real behaviour
change, never noise.

Only *safe* fault kinds (:data:`~repro.resilience.faults.SAFE_KINDS`)
are drawn: every case must still complete all of its work, merely
perturbed.  Lost-work faults (``drop_walk_completion``) are exercised
separately by the watchdog tests, where a hang is the expected outcome.
"""

from __future__ import annotations

import json
import os
import random
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.config import (
    CacheConfig,
    DRAMConfig,
    GPUConfig,
    IOMMUConfig,
    PWCConfig,
    SystemConfig,
    TLBConfig,
)
from repro.obs.fleet import FleetTelemetry
from repro.obs.trace import TraceConfig
from repro.resilience.faults import SAFE_KINDS, TLB_SITES, FaultEvent, FaultPlan

#: Workloads drawn for campaign cases: a mix of the paper's irregular
#: (XSB, SSP, MIS) and regular (MVT) behaviours.
CAMPAIGN_WORKLOADS: Tuple[str, ...] = ("MVT", "XSB", "SSP", "MIS")

#: Schedulers drawn for campaign cases.
CAMPAIGN_SCHEDULERS: Tuple[str, ...] = ("fcfs", "simt")

#: Cycle horizon faults are placed within.  Campaign runs on the tiny
#: machine finish in roughly 60k cycles, so this keeps every fault
#: inside the simulated window.
FAULT_HORIZON_CYCLES = 40_000

#: Watchdog stall budget for campaign runs — far above any legitimate
#: quiet period on the tiny machine, far below an unbounded hang.
CAMPAIGN_WATCHDOG_CYCLES = 2_000_000


def campaign_config(scheduler: str = "fcfs") -> SystemConfig:
    """The scaled-down machine campaign cases run on (fast, 4 walkers)."""
    return SystemConfig(
        gpu=GPUConfig(num_cus=4, wavefront_slots_per_cu=2),
        l1_cache=CacheConfig(size_bytes=8 * 1024, associativity=4, hit_latency=4),
        l2_cache=CacheConfig(size_bytes=256 * 1024, associativity=8, hit_latency=30),
        gpu_l1_tlb=TLBConfig(entries=16),
        gpu_l2_tlb=TLBConfig(entries=128, associativity=8, hit_latency=10),
        iommu=IOMMUConfig(
            buffer_entries=64,
            num_walkers=4,
            l1_tlb=TLBConfig(entries=16),
            l2_tlb=TLBConfig(entries=64, associativity=8),
            pwc=PWCConfig(entries_per_level=8, associativity=4),
            scheduler=scheduler,
        ),
        dram=DRAMConfig(channels=1, ranks_per_channel=1, banks_per_rank=8),
    )


def _draw_event(rng: random.Random, num_walkers: int) -> FaultEvent:
    """One seeded-random safe fault event."""
    kind = rng.choice(SAFE_KINDS)
    at_cycle = rng.randrange(1_000, FAULT_HORIZON_CYCLES)
    if kind == "delay_walk_completion":
        return FaultEvent(
            kind, at_cycle=at_cycle,
            magnitude=rng.randrange(100, 2_000), count=rng.randrange(1, 9),
        )
    if kind == "stall_walker":
        return FaultEvent(
            kind, at_cycle=at_cycle,
            target=rng.randrange(num_walkers), duration=rng.randrange(500, 5_000),
        )
    if kind == "flush_tlb":
        return FaultEvent(kind, at_cycle=at_cycle, site=rng.choice(TLB_SITES))
    if kind == "corrupt_tlb":
        return FaultEvent(
            kind, at_cycle=at_cycle,
            site=rng.choice(TLB_SITES), count=rng.randrange(1, 9),
        )
    if kind == "flush_pwc":
        return FaultEvent(kind, at_cycle=at_cycle)
    return FaultEvent(  # dram_spike
        "dram_spike", at_cycle=at_cycle,
        duration=rng.randrange(1_000, 8_000), magnitude=rng.randrange(50, 500),
    )


def generate_plan(
    seed: int, num_events: Optional[int] = None, num_walkers: int = 4
) -> FaultPlan:
    """A seeded-random safe :class:`FaultPlan` (2–5 events by default)."""
    rng = random.Random(seed)
    if num_events is None:
        num_events = rng.randrange(2, 6)
    events = tuple(_draw_event(rng, num_walkers) for _ in range(num_events))
    return FaultPlan(seed=seed, events=events)


def campaign_cases(
    seed: int, runs: int, trace_dir: Optional[str] = None
) -> List[Dict[str, Any]]:
    """The deterministic case matrix for one campaign.

    Each case is a :func:`~repro.experiments.runner.run_simulation` spec
    (config carries the fault plan) — picklable, so cases fan out over
    the resilient executor unchanged.  With ``trace_dir`` every case
    also records a full lifecycle trace — fault injections show up as
    instant events on the timeline — written to
    ``trace_dir/case_NN.json`` (Chrome/Perfetto format).
    """
    rng = random.Random(seed)
    cases: List[Dict[str, Any]] = []
    for index in range(runs):
        workload = rng.choice(CAMPAIGN_WORKLOADS)
        scheduler = rng.choice(CAMPAIGN_SCHEDULERS)
        plan = generate_plan(rng.randrange(2**31), num_walkers=4)
        config = campaign_config(scheduler).with_faults(plan)
        case: Dict[str, Any] = {
            "workload": workload,
            "config": config,
            "num_wavefronts": 8,
            "scale": 0.05,
            "seed": index,
            "watchdog_cycles": CAMPAIGN_WATCHDOG_CYCLES,
        }
        if trace_dir is not None:
            case["trace"] = TraceConfig()
            case["trace_path"] = os.path.join(trace_dir, f"case_{index:02d}.json")
        cases.append(case)
    return cases


def _case_record(case: Dict[str, Any], outcome) -> Dict[str, Any]:
    """One JSON-serialisable campaign row (no wall-clock fields)."""
    plan: FaultPlan = case["config"].faults
    record: Dict[str, Any] = {
        "workload": case["workload"],
        "scheduler": case["config"].iommu.scheduler,
        "seed": case["seed"],
        "plan_seed": plan.seed,
        "plan_events": [event.kind for event in plan.events],
        "status": outcome.status,
        "attempts": outcome.attempts,
    }
    if "trace_path" in case:
        record["trace_file"] = os.path.basename(case["trace_path"])
    if outcome.ok:
        result = outcome.result
        record.update(
            total_cycles=result.total_cycles,
            stall_cycles=result.stall_cycles,
            walks_dispatched=result.walks_dispatched,
            walk_memory_accesses=result.walk_memory_accesses,
            faults_injected=result.detail["faults"]["injected"],
        )
    else:
        record.update(error_type=outcome.error_type, error=outcome.error)
    return record


def run_campaign(
    seed: int = 0,
    runs: int = 6,
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: int = 0,
    trace_dir: Optional[str] = None,
    telemetry: Optional[FleetTelemetry] = None,
) -> Dict[str, Any]:
    """Run one seeded campaign; returns a deterministic JSON-able report.

    ``trace_dir`` additionally writes one Chrome/Perfetto trace per case
    (deterministic: simulation-cycle timestamps only), with fault
    injections annotated as instant events.  ``telemetry`` streams the
    campaign's per-case progress (including retries and timeouts) to a
    :class:`~repro.obs.fleet.FleetTelemetry` collector.

    A case that only succeeded after retries — or never did — is not
    just visible in its own record: the summary carries ``retried``
    (extra attempts across all cases) and ``timed_out`` so a silently
    re-run case can never hide inside an "all completed" campaign.
    """
    from repro.experiments.runner import run_many_resilient

    if trace_dir is not None:
        os.makedirs(trace_dir, exist_ok=True)
    cases = campaign_cases(seed, runs, trace_dir=trace_dir)
    outcomes = run_many_resilient(
        cases, jobs=jobs, timeout=timeout, retries=retries,
        telemetry=telemetry,
    )
    records = [
        _case_record(case, outcome) for case, outcome in zip(cases, outcomes)
    ]
    return {
        "campaign_seed": seed,
        "runs": runs,
        "completed": sum(1 for r in records if r["status"] == "ok"),
        "retried": sum(max(0, o.attempts - 1) for o in outcomes),
        "timed_out": sum(1 for o in outcomes if o.status == "timeout"),
        "cases": records,
    }


def render_campaign(report: Dict[str, Any]) -> str:
    """The campaign report as stable, diff-friendly JSON."""
    return json.dumps(report, indent=2, sort_keys=True)
