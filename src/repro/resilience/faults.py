"""Deterministic fault injection for the simulated translation machinery.

A :class:`FaultPlan` is part of the machine description
(:attr:`~repro.config.SystemConfig.faults`): a seed plus a list of
:class:`FaultEvent` perturbations pinned to simulation cycles.  The plan
is declarative and picklable, so fault campaigns cross process
boundaries and serialise next to their results like any other
configuration.  The runtime side is :class:`FaultInjector`: built once
per system, it schedules the timed faults on the simulator clock and
answers the inline hooks the hardware models consult.

Supported fault kinds
---------------------

``delay_walk_completion``
    The next ``count`` page-walk completions at or after ``at_cycle``
    are delivered ``magnitude`` cycles late (the walker stays busy for
    the extra time).  Requests still complete — this stresses scheduler
    and aging behaviour, it must never lose work.

``drop_walk_completion``
    The next ``count`` completions at or after ``at_cycle`` are
    swallowed: the walker wedges and its translation never returns.
    This *manufactures* a deadlock — pair it with the watchdog to prove
    hangs are diagnosed instead of spinning to ``max_cycles``.

``stall_walker``
    Walker ``target`` refuses new work for ``duration`` cycles starting
    at ``at_cycle`` (a walk already in progress finishes normally).

``flush_tlb``
    At ``at_cycle``, invalidate every entry of the TLB named by
    ``site`` ("iommu_l1", "iommu_l2" or "gpu_l2").

``corrupt_tlb``
    At ``at_cycle``, invalidate ``count`` seeded-random entries of the
    TLB named by ``site`` — models ECC-detected corruption (a detected
    bad entry is discarded and re-walked, never silently used).

``flush_pwc``
    At ``at_cycle``, empty every page-walk-cache level.

``dram_spike``
    Every DRAM access starting in ``[at_cycle, at_cycle + duration)``
    takes ``magnitude`` extra cycles (thermal throttling / refresh
    storm).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.request import WalkBufferEntry

#: Every recognised fault kind.
FAULT_KINDS: Tuple[str, ...] = (
    "delay_walk_completion",
    "drop_walk_completion",
    "stall_walker",
    "flush_tlb",
    "corrupt_tlb",
    "flush_pwc",
    "dram_spike",
)

#: TLB selectors accepted by ``flush_tlb`` / ``corrupt_tlb``.
TLB_SITES: Tuple[str, ...] = ("iommu_l1", "iommu_l2", "gpu_l2")

#: Fault kinds that perturb but never lose work: any plan built from
#: these alone must still complete every request.
SAFE_KINDS: Tuple[str, ...] = tuple(k for k in FAULT_KINDS if k != "drop_walk_completion")


@dataclass(frozen=True)
class FaultEvent:
    """One declarative perturbation (see the module docstring for kinds)."""

    kind: str
    at_cycle: int = 0
    #: Walker index for ``stall_walker``; unused otherwise.
    target: int = -1
    #: TLB selector for ``flush_tlb`` / ``corrupt_tlb``.
    site: str = ""
    #: Window length (``stall_walker``, ``dram_spike``).
    duration: int = 0
    #: Extra cycles (``delay_walk_completion``, ``dram_spike``).
    magnitude: int = 0
    #: Repetitions (completion faults) or entries hit (``corrupt_tlb``).
    count: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; one of {', '.join(FAULT_KINDS)}"
            )
        if self.at_cycle < 0:
            raise ValueError(f"at_cycle must be non-negative, got {self.at_cycle}")
        if self.count <= 0:
            raise ValueError(f"count must be positive, got {self.count}")
        if self.kind in ("flush_tlb", "corrupt_tlb") and self.site not in TLB_SITES:
            raise ValueError(
                f"{self.kind} needs site in {TLB_SITES}, got {self.site!r}"
            )
        if self.kind == "stall_walker":
            if self.target < 0:
                raise ValueError("stall_walker needs a non-negative walker target")
            if self.duration <= 0:
                raise ValueError("stall_walker needs a positive duration")
        if self.kind == "delay_walk_completion" and self.magnitude <= 0:
            raise ValueError("delay_walk_completion needs a positive magnitude")
        if self.kind == "dram_spike":
            if self.duration <= 0:
                raise ValueError("dram_spike needs a positive duration")
            if self.magnitude <= 0:
                raise ValueError("dram_spike needs a positive magnitude")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, declarative fault campaign for one simulation."""

    seed: int = 0
    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        # Tolerate lists (e.g. straight from JSON) but store a tuple so
        # plans hash/compare like the rest of the config tree.
        if not isinstance(self.events, tuple):
            object.__setattr__(self, "events", tuple(self.events))

    @property
    def is_empty(self) -> bool:
        return not self.events

    @property
    def is_safe(self) -> bool:
        """True when no event can lose work (no dropped completions)."""
        return all(event.kind in SAFE_KINDS for event in self.events)

    def of_kind(self, kind: str) -> Tuple[FaultEvent, ...]:
        return tuple(event for event in self.events if event.kind == kind)


class _CompletionFault:
    """Mutable remaining-shots state for one completion perturbation."""

    __slots__ = ("event", "remaining")

    def __init__(self, event: FaultEvent) -> None:
        self.event = event
        self.remaining = event.count


class FaultInjector:
    """Runtime arm of a :class:`FaultPlan`, attached to one system.

    Timed faults (flushes, stalls, DRAM spikes) are scheduled as
    ordinary simulator events by :meth:`arm`; the walk-completion
    perturbations are consulted inline by the walkers.  All decisions
    are functions of the plan and the simulation clock only, so a given
    ``(plan, spec)`` pair always injects the same faults at the same
    cycles.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = random.Random(plan.seed)
        #: The system this injector was armed against (set by :meth:`arm`).
        self._system = None
        self._completion_faults: List[_CompletionFault] = [
            _CompletionFault(event)
            for event in sorted(
                (
                    e
                    for e in plan.events
                    if e.kind in ("delay_walk_completion", "drop_walk_completion")
                ),
                key=lambda e: e.at_cycle,
            )
        ]
        self._dram_windows: List[Tuple[int, int, int]] = [
            (e.at_cycle, e.at_cycle + e.duration, e.magnitude)
            for e in plan.events
            if e.kind == "dram_spike"
        ]
        #: Optional :class:`~repro.obs.trace.Tracer`; when attached,
        #: every injection emits a ``fault:<kind>`` instant event at its
        #: injection cycle so fault reports open next to the timeline
        #: they perturbed.
        self.tracer = None
        #: Count of injections actually performed, by fault kind.
        self.injected: Dict[str, int] = {}
        #: TLB entries invalidated by ``corrupt_tlb`` events.
        self.entries_corrupted = 0
        #: Completions currently wedged by ``drop_walk_completion``.
        self.dropped_completions = 0

    # ------------------------------------------------------------------
    # Arming: timed faults become simulator events
    # ------------------------------------------------------------------

    def arm(self, system) -> None:
        """Schedule every timed fault on ``system``'s simulator clock.

        Faults are posted as tagged ``fault.fire`` events whose payload
        is the declarative :class:`FaultEvent` itself, so an armed queue
        remains picklable for checkpoints.
        """
        self._system = system
        sim = system.simulator
        sim.register("fault.fire", self._fire)
        for event in self.plan.events:
            if event.kind in ("flush_tlb", "corrupt_tlb", "flush_pwc", "stall_walker"):
                sim.post_at(event.at_cycle, "fault.fire", event)

    def _fire(self, event: FaultEvent) -> None:
        system = self._system
        if event.kind == "flush_tlb":
            self._flush_tlb(system, event)
        elif event.kind == "corrupt_tlb":
            self._corrupt_tlb(system, event)
        elif event.kind == "flush_pwc":
            self._flush_pwc(system, event)
        elif event.kind == "stall_walker":
            self._stall_walker(system, event)

    def _count(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1

    def _trace(self, kind: str, now: int, detail: Dict[str, object]) -> None:
        if self.tracer is not None:
            self.tracer.fault_injected(now, kind, detail)

    def _tlb_for(self, system, site: str):
        if site == "iommu_l1":
            return system.iommu.l1_tlb
        if site == "iommu_l2":
            return system.iommu.l2_tlb
        return system.gpu.l2_tlb

    def _flush_tlb(self, system, event: FaultEvent) -> None:
        self._tlb_for(system, event.site).flush()
        self._count("flush_tlb")
        self._trace("flush_tlb", system.simulator.now, {"site": event.site})

    def _corrupt_tlb(self, system, event: FaultEvent) -> None:
        tlb = self._tlb_for(system, event.site)
        corrupted = tlb.corrupt(self._rng, event.count)
        self.entries_corrupted += corrupted
        self._count("corrupt_tlb")
        self._trace(
            "corrupt_tlb", system.simulator.now,
            {"site": event.site, "entries": corrupted},
        )

    def _flush_pwc(self, system, event: FaultEvent) -> None:
        discarded = system.iommu.pwc.flush()
        self._count("flush_pwc")
        self._trace(
            "flush_pwc", system.simulator.now, {"entries": discarded}
        )

    def _stall_walker(self, system, event: FaultEvent) -> None:
        iommu = system.iommu
        if event.target >= len(iommu.walkers):
            return  # plan written for a bigger walker pool; nothing to stall
        walker = iommu.walkers[event.target]
        sim = system.simulator
        walker.stalled_until = max(walker.stalled_until, sim.now + event.duration)
        self._count("stall_walker")
        self._trace(
            "stall_walker", sim.now,
            {"walker": event.target, "duration": event.duration},
        )
        # When the stall lifts, buffered work may be waiting on this
        # walker — poke the scheduler so it does not idle forever.
        sim.post_at(walker.stalled_until, "iommu.kick")

    # ------------------------------------------------------------------
    # Inline hooks consulted by the hardware models
    # ------------------------------------------------------------------

    def on_walk_completion(self, walker_id: int, entry: "WalkBufferEntry", now: int):
        """Verdict for one finishing walk: ``(action, extra_cycles)``.

        ``action`` is ``"deliver"``, ``"delay"`` or ``"drop"``.  Faults
        are consumed in ``at_cycle`` order, one completion per shot.
        """
        for fault in self._completion_faults:
            if fault.remaining <= 0 or fault.event.at_cycle > now:
                continue
            fault.remaining -= 1
            if fault.event.kind == "drop_walk_completion":
                self.dropped_completions += 1
                self._count("drop_walk_completion")
                self._trace(
                    "drop_walk_completion", now,
                    {"walker": walker_id, "vpn": entry.vpn,
                     "instruction_id": entry.instruction_id},
                )
                return "drop", 0
            self._count("delay_walk_completion")
            self._trace(
                "delay_walk_completion", now,
                {"walker": walker_id, "vpn": entry.vpn,
                 "extra_cycles": fault.event.magnitude},
            )
            return "delay", fault.event.magnitude
        return "deliver", 0

    def dram_padding(self, now: int) -> int:
        """Extra cycles for a DRAM access starting at ``now``."""
        extra = 0
        for start, end, magnitude in self._dram_windows:
            if start <= now < end:
                extra += magnitude
        if extra:
            self._count("dram_spike")
            self._trace("dram_spike", now, {"extra_cycles": extra})
        return extra

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        return {
            "rng": self._rng.getstate(),
            "completion_remaining": [
                fault.remaining for fault in self._completion_faults
            ],
            "injected": dict(self.injected),
            "entries_corrupted": self.entries_corrupted,
            "dropped_completions": self.dropped_completions,
        }

    def restore(self, state: Dict[str, object]) -> None:
        self._rng.setstate(state["rng"])
        for fault, remaining in zip(
            self._completion_faults, state["completion_remaining"]
        ):
            fault.remaining = remaining
        self.injected = dict(state["injected"])
        self.entries_corrupted = state["entries_corrupted"]
        self.dropped_completions = state["dropped_completions"]

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        return {
            "seed": self.plan.seed,
            "planned_events": len(self.plan.events),
            "injected": dict(sorted(self.injected.items())),
            "entries_corrupted": self.entries_corrupted,
            "dropped_completions": self.dropped_completions,
        }


def build_injector(plan: Optional[FaultPlan]) -> Optional[FaultInjector]:
    """An injector for ``plan``, or None when there is nothing to inject.

    An empty plan deliberately yields None so the fault-free fast path
    is byte-for-byte the pre-resilience behaviour (golden equivalence).
    """
    if plan is None or plan.is_empty:
        return None
    return FaultInjector(plan)
