"""Forward-progress watchdog and invariant checker.

A deadlocked model used to spin until ``max_cycles`` and die with a
one-line ``RuntimeError``.  The :class:`Watchdog` instead piggybacks on
the simulator's monitor hook: every N fired events it verifies the
IOMMU's conservation invariants and checks that instructions are still
retiring.  On a trip it assembles a :class:`DeadlockDiagnosis` — the
pending-walk buffer, per-walker state, per-instruction outstanding walk
counts and the oldest starving request — and raises
:class:`WatchdogError` with the whole story attached.

The same diagnosis is produced when the event queue drains with the GPU
unfinished (a true deadlock: nothing left to fire, work outstanding).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Default monitor cadence: invariants + progress every this many events.
DEFAULT_CHECK_INTERVAL_EVENTS = 20_000

#: How many pending-buffer entries a diagnosis lists verbatim.
_DIAGNOSIS_BUFFER_SAMPLE = 8

#: How many trailing trace events a diagnosis attaches when the traced
#: system carries a tracer (the flight-recorder window).
DIAGNOSIS_TRACE_TAIL = 64


class WatchdogError(RuntimeError):
    """A watchdog trip: forward progress stopped or an invariant broke.

    ``diagnosis`` carries the structured snapshot; the exception message
    is its rendered form.
    """

    def __init__(self, diagnosis: "DeadlockDiagnosis") -> None:
        super().__init__(diagnosis.render())
        self.diagnosis = diagnosis


class InvariantViolation(WatchdogError):
    """A conservation invariant failed — a model bug, not a slow run."""


@dataclass
class DeadlockDiagnosis:
    """Structured snapshot of a stuck (or inconsistent) system."""

    reason: str
    cycle: int
    events_processed: int
    instructions_retired: int
    running_wavefronts: int
    #: ``issued == completed + pending`` style failures; empty when the
    #: trip was purely a progress stall.
    invariant_violations: List[str] = field(default_factory=list)
    #: Sample of pending-walk buffer entries (vpn/instruction/age dicts).
    pending_buffer: List[Dict[str, int]] = field(default_factory=list)
    pending_buffer_total: int = 0
    overflow_queued: int = 0
    #: One dict per walker: busy/stalled state plus the walk it holds.
    walkers: List[Dict[str, object]] = field(default_factory=list)
    #: instruction_id -> walks still outstanding for it (buffered or
    #: being walked).  Names the instructions a hang is gating on.
    outstanding_by_instruction: Dict[int, int] = field(default_factory=dict)
    #: The single longest-waiting pending walk, if any.
    oldest_pending: Optional[Dict[str, int]] = None
    #: Fault-injection stats when a plan was active (perturbed runs
    #: should say so in their crash reports).
    fault_stats: Optional[Dict[str, object]] = None
    #: The last N trace events when the system was traced — a trip ships
    #: its own flight recorder (empty without a tracer).
    trace_tail: List[Dict[str, object]] = field(default_factory=list)

    def render(self) -> str:
        """The diagnosis as a readable multi-line report."""
        lines = [
            f"watchdog: {self.reason}",
            f"  cycle={self.cycle:,d} events={self.events_processed:,d} "
            f"retired={self.instructions_retired:,d} "
            f"running_wavefronts={self.running_wavefronts}",
        ]
        for violation in self.invariant_violations:
            lines.append(f"  INVARIANT VIOLATED: {violation}")
        if self.oldest_pending:
            p = self.oldest_pending
            lines.append(
                f"  oldest starving walk: vpn={p['vpn']:#x} "
                f"instruction={p['instruction_id']} waited {p['age']:,d} cycles"
            )
        if self.outstanding_by_instruction:
            worst = sorted(
                self.outstanding_by_instruction.items(),
                key=lambda item: (-item[1], item[0]),
            )[:_DIAGNOSIS_BUFFER_SAMPLE]
            per_instr = ", ".join(f"#{iid}:{n}" for iid, n in worst)
            lines.append(
                f"  outstanding walks by instruction "
                f"({len(self.outstanding_by_instruction)} stuck): {per_instr}"
            )
        lines.append(
            f"  pending buffer: {self.pending_buffer_total} entries "
            f"(+{self.overflow_queued} overflowed)"
        )
        for entry in self.pending_buffer:
            lines.append(
                f"    vpn={entry['vpn']:#x} instruction={entry['instruction_id']} "
                f"age={entry['age']:,d}"
            )
        busy = [w for w in self.walkers if w["busy"]]
        lines.append(f"  walkers: {len(busy)}/{len(self.walkers)} busy")
        for w in self.walkers:
            if not (w["busy"] or w["stalled"]):
                continue
            state = "stalled" if w["stalled"] else "walking"
            holding = (
                f" vpn={w['vpn']:#x} instruction={w['instruction_id']}"
                if w["vpn"] is not None
                else ""
            )
            lines.append(f"    walker {w['walker_id']}: {state}{holding}")
        if self.fault_stats is not None:
            lines.append(f"  fault injection active: {self.fault_stats}")
        if self.trace_tail:
            first = self.trace_tail[0]
            lines.append(
                f"  flight recorder: last {len(self.trace_tail)} trace "
                f"events attached (from cycle {first.get('ts', 0):,d})"
            )
        return "\n".join(lines)


class Watchdog:
    """Monitors one system for forward progress and model consistency.

    ``stall_cycles`` is the K in "no instruction retired in K cycles":
    pick it comfortably above the worst DRAM round-trip a burst of
    dependent walks can take (tens of thousands of cycles is safe for
    the shipped configurations).
    """

    def __init__(
        self,
        system,
        stall_cycles: int,
        check_interval_events: int = DEFAULT_CHECK_INTERVAL_EVENTS,
    ) -> None:
        if stall_cycles <= 0:
            raise ValueError(f"stall_cycles must be positive, got {stall_cycles}")
        if check_interval_events <= 0:
            raise ValueError(
                f"check_interval_events must be positive, got {check_interval_events}"
            )
        self._system = system
        self.stall_cycles = stall_cycles
        self.check_interval_events = check_interval_events
        self._last_retired = -1
        self._last_progress_cycle = 0
        self.checks = 0

    def install(self) -> None:
        """Attach this watchdog to the system's simulator monitor hook.

        Uses :meth:`~repro.engine.simulator.Simulator.add_monitor`, so the
        watchdog coexists with other periodic observers (e.g. the metrics
        sampler) instead of displacing them.
        """
        self._system.simulator.add_monitor(self.check, self.check_interval_events)

    # ------------------------------------------------------------------
    # Periodic check (runs inside the event loop)
    # ------------------------------------------------------------------

    def check(self) -> None:
        self.checks += 1
        violations = self._system.iommu.check_conservation()
        if violations:
            raise InvariantViolation(
                self.diagnose("conservation invariant violated", violations)
            )
        gpu = self._system.gpu
        now = self._system.simulator.now
        retired = gpu.instructions_retired
        if retired != self._last_retired:
            self._last_retired = retired
            self._last_progress_cycle = now
            return
        if gpu.finished:
            return
        stalled_for = now - self._last_progress_cycle
        if stalled_for > self.stall_cycles:
            raise WatchdogError(
                self.diagnose(
                    f"no instruction retired in {stalled_for:,d} cycles "
                    f"(limit {self.stall_cycles:,d})"
                )
            )

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        return {
            "last_retired": self._last_retired,
            "last_progress_cycle": self._last_progress_cycle,
            "checks": self.checks,
        }

    def restore(self, state: Dict[str, object]) -> None:
        self._last_retired = state["last_retired"]
        self._last_progress_cycle = state["last_progress_cycle"]
        self.checks = state["checks"]

    def final_check(self) -> None:
        """Invariant sweep after a run completes (silent-bug detector)."""
        violations = self._system.iommu.check_conservation()
        if violations:
            raise InvariantViolation(
                self.diagnose("conservation invariant violated at end of run", violations)
            )

    # ------------------------------------------------------------------
    # Diagnosis assembly
    # ------------------------------------------------------------------

    def diagnose(
        self, reason: str, violations: Optional[List[str]] = None
    ) -> DeadlockDiagnosis:
        system = self._system
        iommu = system.iommu
        now = system.simulator.now

        pending = sorted(iommu.buffer, key=lambda e: e.arrival_time)
        pending_sample = [
            {
                "vpn": entry.vpn,
                "instruction_id": entry.instruction_id,
                "age": now - entry.arrival_time,
            }
            for entry in pending[:_DIAGNOSIS_BUFFER_SAMPLE]
        ]

        outstanding: Dict[int, int] = {}
        oldest: Optional[Dict[str, int]] = None
        for entry in list(pending) + iommu.in_flight_entries():
            if entry.is_prefetch:
                continue
            outstanding[entry.instruction_id] = (
                outstanding.get(entry.instruction_id, 0) + 1
            )
            age = now - entry.arrival_time
            if oldest is None or age > oldest["age"]:
                oldest = {
                    "vpn": entry.vpn,
                    "instruction_id": entry.instruction_id,
                    "age": age,
                }

        walkers = []
        for walker in iommu.walkers:
            current = walker.current_entry
            walkers.append(
                {
                    "walker_id": walker.walker_id,
                    "busy": walker.is_busy,
                    "stalled": now < walker.stalled_until,
                    "vpn": current.vpn if current is not None else None,
                    "instruction_id": (
                        current.instruction_id if current is not None else None
                    ),
                }
            )

        injector = getattr(iommu, "injector", None)
        tracer = getattr(system, "tracer", None)
        return DeadlockDiagnosis(
            reason=reason,
            cycle=now,
            events_processed=system.simulator.events_processed,
            instructions_retired=system.gpu.instructions_retired,
            running_wavefronts=system.gpu.running_wavefronts,
            invariant_violations=list(violations or []),
            pending_buffer=pending_sample,
            pending_buffer_total=len(iommu.buffer),
            overflow_queued=iommu.overflow_queued,
            walkers=walkers,
            outstanding_by_instruction=outstanding,
            oldest_pending=oldest,
            fault_stats=injector.stats() if injector is not None else None,
            trace_tail=(
                tracer.tail(DIAGNOSIS_TRACE_TAIL) if tracer is not None else []
            ),
        )
