"""Resilience subsystem: fault injection, watchdog, outcome records.

Three coordinated layers (see ``docs/RESILIENCE.md``):

* :mod:`repro.resilience.faults` — a seeded, declarative
  :class:`FaultPlan` wired through :class:`~repro.config.SystemConfig`
  that perturbs walkers, TLBs, PWCs and DRAM at chosen cycles;
* :mod:`repro.resilience.watchdog` — a forward-progress monitor and
  invariant checker that turns hangs and silent model bugs into
  structured :class:`DeadlockDiagnosis` reports;
* :mod:`repro.resilience.outcomes` — per-job :class:`RunOutcome`
  records and checkpointing for crash-isolated sweeps.
"""

from repro.resilience.campaign import (
    campaign_cases,
    generate_plan,
    render_campaign,
    run_campaign,
)
from repro.resilience.faults import (
    FAULT_KINDS,
    SAFE_KINDS,
    TLB_SITES,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    build_injector,
)
from repro.resilience.outcomes import (
    CheckpointStore,
    RunOutcome,
    SpecExecutionError,
    describe_spec,
    spec_key,
)
from repro.resilience.watchdog import (
    DeadlockDiagnosis,
    InvariantViolation,
    Watchdog,
    WatchdogError,
)

__all__ = [
    "FAULT_KINDS",
    "SAFE_KINDS",
    "TLB_SITES",
    "CheckpointStore",
    "DeadlockDiagnosis",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "InvariantViolation",
    "RunOutcome",
    "SpecExecutionError",
    "Watchdog",
    "WatchdogError",
    "build_injector",
    "campaign_cases",
    "describe_spec",
    "generate_plan",
    "render_campaign",
    "run_campaign",
    "spec_key",
]
