"""Per-job outcome records and sweep checkpointing.

A resilient sweep never lets one bad job take the campaign down: every
spec produces a :class:`RunOutcome` — success with its result, or a
failure/timeout with the worker's traceback and the spec that caused it.
:class:`CheckpointStore` optionally persists successful outcomes so an
interrupted sweep resumes from completed jobs instead of recomputing
them.
"""

from __future__ import annotations

import hashlib
import json
import os
import uuid
from dataclasses import asdict, dataclass, is_dataclass
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

from repro.stats.metrics import SimulationResult

#: RunOutcome.status values.
STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_TIMEOUT = "timeout"


def describe_spec(spec: Mapping[str, Any]) -> str:
    """A one-line human identity for a run spec (for error reports)."""
    parts = []
    for key in ("workload", "scheduler", "seed", "scale", "num_wavefronts"):
        if key not in spec:
            continue
        value = spec[key]
        # Workload instances stringify via their Table II abbreviation.
        value = getattr(value, "abbrev", value)
        parts.append(f"{key}={value}")
    extras = sorted(
        k for k in spec
        if k not in ("workload", "scheduler", "seed", "scale", "num_wavefronts",
                     "config")
    )
    if "config" in spec and spec["config"] is not None:
        parts.append("config=custom")
    parts.extend(f"{k}={spec[k]!r}" for k in extras)
    return " ".join(parts) if parts else repr(dict(spec))


@dataclass
class RunOutcome:
    """What happened to one spec of a sweep — success or not, in order."""

    index: int
    spec_summary: str
    status: str
    result: Optional[SimulationResult] = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    traceback: Optional[str] = None
    attempts: int = 1
    elapsed_seconds: float = 0.0
    from_checkpoint: bool = False

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def summary(self) -> str:
        if self.ok:
            source = " (checkpoint)" if self.from_checkpoint else ""
            return f"[{self.index}] ok{source}: {self.spec_summary}"
        return (
            f"[{self.index}] {self.status} after {self.attempts} attempt(s): "
            f"{self.spec_summary} — {self.error_type}: {self.error}"
        )


class SpecExecutionError(RuntimeError):
    """A sweep job failed; carries which spec and the worker traceback."""

    def __init__(self, outcome: RunOutcome) -> None:
        message = (
            f"run spec [{outcome.index}] ({outcome.spec_summary}) "
            f"{outcome.status} after {outcome.attempts} attempt(s)"
        )
        if outcome.error_type:
            message += f": {outcome.error_type}: {outcome.error}"
        if outcome.traceback:
            message += f"\n--- worker traceback ---\n{outcome.traceback}"
        super().__init__(message)
        self.outcome = outcome


# ----------------------------------------------------------------------
# Spec identity and result serialisation
# ----------------------------------------------------------------------


def _canonical(value: Any) -> Any:
    """Reduce a spec value to deterministic JSON-able primitives."""
    if is_dataclass(value) and not isinstance(value, type):
        return _canonical(asdict(value))
    if isinstance(value, Mapping):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    # Workload instances and other rich objects: identify by repr.  A
    # workload's constructor parameters appear in its repr, which is
    # enough to key a checkpoint.
    return repr(value)


def spec_key(spec: Mapping[str, Any]) -> str:
    """A stable content hash identifying one run spec."""
    payload = json.dumps(_canonical(dict(spec)), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:24]


def result_to_dict(result: SimulationResult) -> Dict[str, Any]:
    return asdict(result)


def result_from_dict(data: Dict[str, Any]) -> SimulationResult:
    return SimulationResult(**data)


def outcome_to_dict(
    outcome: RunOutcome, include_result: bool = False
) -> Dict[str, Any]:
    """A JSON-able view of one outcome (for sweep-service records).

    The result itself is omitted by default: service shards persist
    results in the shared :class:`CheckpointStore` (keyed by spec
    content), so outcome records only need the verdict and error data.
    """
    data: Dict[str, Any] = {
        "index": outcome.index,
        "spec_summary": outcome.spec_summary,
        "status": outcome.status,
        "error": outcome.error,
        "error_type": outcome.error_type,
        "traceback": outcome.traceback,
        "attempts": outcome.attempts,
        "elapsed_seconds": outcome.elapsed_seconds,
        "from_checkpoint": outcome.from_checkpoint,
    }
    if include_result and outcome.result is not None:
        data["result"] = result_to_dict(outcome.result)
    return data


def outcome_from_dict(data: Mapping[str, Any]) -> RunOutcome:
    """Rebuild a :class:`RunOutcome` from :func:`outcome_to_dict` output."""
    result = data.get("result")
    return RunOutcome(
        index=int(data["index"]),
        spec_summary=data["spec_summary"],
        status=data["status"],
        result=result_from_dict(result) if result is not None else None,
        error=data.get("error"),
        error_type=data.get("error_type"),
        traceback=data.get("traceback"),
        attempts=int(data.get("attempts", 1)),
        elapsed_seconds=float(data.get("elapsed_seconds", 0.0)),
        from_checkpoint=bool(data.get("from_checkpoint", False)),
    )


class CheckpointStore:
    """A directory of completed-job results, keyed by spec content.

    Only successful outcomes are persisted: failed or timed-out jobs are
    retried on the next invocation rather than replayed from disk.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, spec: Mapping[str, Any]) -> Path:
        return self.directory / f"{spec_key(spec)}.json"

    def inrun_path(self, spec: Mapping[str, Any]) -> Path:
        """Where a spec's mid-run simulation checkpoint lives.

        Keyed like the result files, so a retry of the same spec finds
        the state its previous attempt left behind.
        """
        return self.directory / f"{spec_key(spec)}.ckpt"

    def load(self, spec: Mapping[str, Any]) -> Optional[SimulationResult]:
        path = self._path(spec)
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
            return result_from_dict(payload["result"])
        except (ValueError, KeyError, TypeError):
            # A torn or stale checkpoint is treated as absent: recompute.
            return None

    def store(self, spec: Mapping[str, Any], result: SimulationResult) -> None:
        path = self._path(spec)
        payload = {
            "spec_summary": describe_spec(spec),
            "result": result_to_dict(result),
        }
        # Write-then-rename so an interrupt mid-write never leaves a
        # half-checkpoint that poisons the next resume.  The temp name
        # must be unique per writer: two workers persisting the same
        # spec concurrently (a re-leased shard racing its presumed-dead
        # owner) would otherwise tear each other's write through the
        # shared `.tmp` name.  fsync before the rename so a crash right
        # after the replace can't surface an empty file.
        tmp = path.with_name(f"{path.name}.{os.getpid()}.{uuid.uuid4().hex}.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(payload))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
