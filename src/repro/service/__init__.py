"""Durable work-queue sweep service: crash-proof broker/worker campaigns.

The per-process resilience tier (``run_many_resilient``, in-run
checkpoint/resume, the content-hash ``CheckpointStore``) makes a single
sweep preemptible; this package lifts it into a multi-process *service*
that survives ``kill -9``'d workers, a dead broker, and full cluster
restarts — without requiring any daemon:

* :mod:`repro.service.queue` — a filesystem work queue.  Tasks are JSON
  files; a worker claims one with an atomic ``rename()`` into a
  ``leased/`` directory, so exactly one claimant ever wins, on a local
  disk or a shared filesystem alike.
* :mod:`repro.service.lease` — lease/heartbeat sidecar files.  A live
  worker refreshes its lease; the cooperative reaper expires stale ones
  and re-queues their tasks to surviving workers.
* :mod:`repro.service.manifest` — the versioned campaign manifest: the
  sweep definition, one content-hash ``spec_key`` per spec, and the
  shard placement.  Everything needed to resume lives in the campaign
  directory; no process holds authoritative state.
* :mod:`repro.service.broker` — shards a campaign into spec batches,
  enqueues them, recovers/merges after restarts.
* :mod:`repro.service.worker` — the claim → heartbeat → execute loop on
  top of :func:`~repro.experiments.runner.run_many_resilient`, with
  per-shard fleet-telemetry JSONL and shared in-run checkpoints so a
  re-leased spec resumes mid-simulation.
* :mod:`repro.service.chaos` — the correctness gate: seeded SIGKILLs of
  workers mid-spec, then a byte-identical-report assertion against the
  uninterrupted serial run.
"""

from repro.service.broker import (
    campaign_status,
    init_campaign,
    merge_campaign,
    resume_campaign,
    run_service,
)
from repro.service.chaos import ChaosGateError, run_chaos
from repro.service.lease import Lease, read_lease, write_lease
from repro.service.manifest import (
    MANIFEST_VERSION,
    CampaignManifest,
    load_manifest,
    save_manifest,
)
from repro.service.queue import FileWorkQueue
from repro.service.worker import run_worker, spawn_workers

__all__ = [
    "CampaignManifest",
    "ChaosGateError",
    "FileWorkQueue",
    "Lease",
    "MANIFEST_VERSION",
    "campaign_status",
    "init_campaign",
    "load_manifest",
    "merge_campaign",
    "read_lease",
    "resume_campaign",
    "run_chaos",
    "run_service",
    "run_worker",
    "save_manifest",
    "spawn_workers",
    "write_lease",
]
