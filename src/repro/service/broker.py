"""Broker-side operations on a campaign directory.

The broker is a *role*, not a daemon: every operation here reads the
campaign directory, mutates it through the same atomic renames the
workers use, and exits.  Kill it at any point and run it again — the
manifest plus the queue directories ARE the campaign state.

* :func:`init_campaign` — shard the sweep into a manifest + queue tasks;
* :func:`resume_campaign` — after any crash/restart, re-queue stale or
  missing shards so surviving (or fresh) workers can finish;
* :func:`run_service` — convenience supervisor: init-or-resume, spawn
  local workers, reap leases while they run, respawn dead workers, and
  merge when the queue drains;
* :func:`merge_campaign` — fold per-shard results into the existing
  deterministic fleet report, byte-identical to a serial run whatever
  the worker count, placement, or crash history;
* :func:`campaign_status` — one dict describing where a campaign is.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.obs.aggregate import (
    deterministic_view,
    fleet_markdown,
    fleet_report,
    render_fleet_report,
)
from repro.resilience.outcomes import (
    STATUS_FAILED,
    STATUS_OK,
    CheckpointStore,
    RunOutcome,
    describe_spec,
    outcome_from_dict,
)
from repro.service import manifest as manifest_mod
from repro.service.manifest import (
    CampaignManifest,
    load_manifest,
    plan_campaign,
    save_manifest,
)
from repro.service.queue import (
    DEFAULT_LEASE_TTL_SECONDS,
    DEFAULT_MAX_ATTEMPTS,
    FileWorkQueue,
)
from repro.service.worker import spawn_workers


def init_campaign(
    campaign_dir: Union[str, Path],
    workloads: List[str],
    schedulers: List[str],
    seeds: int,
    scale: float = 0.1,
    num_wavefronts: int = 8,
    metrics: bool = False,
    baseline: str = "fcfs",
    config=None,
    batch_size: int = manifest_mod.DEFAULT_BATCH_SIZE,
) -> CampaignManifest:
    """Create a campaign directory: manifest, queue, checkpoint store.

    Refuses to overwrite an existing manifest — an in-flight campaign's
    identity must never be silently replaced (resume it, or point init
    at a fresh directory).
    """
    campaign_dir = Path(campaign_dir)
    path = manifest_mod.manifest_path(campaign_dir)
    if path.exists():
        raise FileExistsError(
            f"{path} already exists; use resume_campaign (or a new "
            f"directory) instead of re-initialising a live campaign"
        )
    manifest = plan_campaign(
        workloads, schedulers, seeds,
        scale=scale, num_wavefronts=num_wavefronts, metrics=metrics,
        baseline=baseline, config=config, batch_size=batch_size,
    )
    campaign_dir.mkdir(parents=True, exist_ok=True)
    manifest_mod.checkpoints_dir(campaign_dir).mkdir(parents=True, exist_ok=True)
    manifest_mod.shards_dir(campaign_dir).mkdir(parents=True, exist_ok=True)
    manifest_mod.report_dir(campaign_dir).mkdir(parents=True, exist_ok=True)
    # Manifest first: a crash between manifest and enqueue is exactly
    # what resume_campaign repairs (it re-puts missing tasks).
    save_manifest(path, manifest)
    queue = FileWorkQueue(manifest_mod.queue_root(campaign_dir))
    for batch_index, spec_indices in enumerate(manifest.batches):
        queue.put(
            {"id": manifest.task_id(batch_index), "batch": batch_index,
             "spec_indices": list(spec_indices)}
        )
    return manifest


def resume_campaign(
    campaign_dir: Union[str, Path],
    lease_ttl: float = DEFAULT_LEASE_TTL_SECONDS,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    force: bool = False,
) -> Dict[str, Any]:
    """Repair a campaign after any combination of crashes.

    Re-queues every shard whose lease is stale (``force=True`` treats
    *all* leases as stale — correct after a full cluster restart, when
    no claimed shard can possibly still have a live owner) and re-puts
    any shard the manifest knows about that the queue lost (broker
    killed mid-enqueue).  Completed shards are untouched; their specs
    stay served from the checkpoint store.
    """
    campaign_dir = Path(campaign_dir)
    manifest = load_manifest(manifest_mod.manifest_path(campaign_dir))
    queue = FileWorkQueue(manifest_mod.queue_root(campaign_dir))
    requeued, abandoned = queue.reap(
        0.0 if force else lease_ttl, max_attempts=max_attempts
    )
    restored: List[str] = []
    known = queue.pending_tasks()
    done = queue.done_records()
    for batch_index, spec_indices in enumerate(manifest.batches):
        task_id = manifest.task_id(batch_index)
        if (
            task_id in known
            or task_id in done
            or (queue.leased_dir / f"{task_id}.json").exists()
        ):
            continue
        queue.put(
            {"id": task_id, "batch": batch_index,
             "spec_indices": list(spec_indices)}
        )
        restored.append(task_id)
    return {
        "requeued": requeued,
        "abandoned": abandoned,
        "restored": restored,
        "queue": queue.counts(),
    }


def campaign_status(campaign_dir: Union[str, Path]) -> Dict[str, Any]:
    """Where the campaign stands, derived purely from the directory."""
    campaign_dir = Path(campaign_dir)
    manifest = load_manifest(manifest_mod.manifest_path(campaign_dir))
    queue = FileWorkQueue(manifest_mod.queue_root(campaign_dir))
    counts = queue.counts()
    done = queue.done_records()
    specs_done = sum(
        len(record["task"].get("spec_indices", ()))
        for record in done.values()
    )
    abandoned = sorted(
        task_id for task_id, record in done.items()
        if record.get("record", {}).get("abandoned")
    )
    return {
        "specs": len(manifest.spec_keys),
        "batches": len(manifest.batches),
        "queue": counts,
        "specs_in_done_batches": specs_done,
        "abandoned": abandoned,
        "drained": queue.drained(),
    }


def run_service(
    campaign_dir: Union[str, Path],
    workers: int = 2,
    lease_ttl: float = DEFAULT_LEASE_TTL_SECONDS,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    worker_options: Optional[Dict[str, Any]] = None,
    max_restarts: Optional[int] = None,
    merge: bool = True,
    allow_incomplete: bool = False,
    poll_seconds: float = 0.5,
) -> Dict[str, Any]:
    """Drive an initialised campaign to completion with local workers.

    The supervisor loop reaps stale leases and keeps ``workers`` claim
    loops alive (a crashed worker is replaced, up to ``max_restarts``
    extra spawns — default ``4 × workers``).  When the queue drains the
    workers exit on their own and the per-shard results are merged.
    """
    campaign_dir = Path(campaign_dir)
    queue = FileWorkQueue(manifest_mod.queue_root(campaign_dir))
    options = dict(worker_options or {})
    options.setdefault("lease_ttl", lease_ttl)
    options.setdefault("max_attempts", max_attempts)
    budget = (4 * workers) if max_restarts is None else max_restarts
    pool = spawn_workers(campaign_dir, workers, **options)
    spawned = workers
    try:
        while True:
            queue.reap(lease_ttl, max_attempts=max_attempts)
            alive = [process for process in pool if process.is_alive()]
            if queue.drained():
                break
            if len(alive) < workers and spawned - workers < budget:
                replacements = spawn_workers(
                    campaign_dir, workers - len(alive),
                    name_prefix=f"worker-r{spawned}", **options,
                )
                pool.extend(replacements)
                spawned += len(replacements)
            elif not alive:
                raise RuntimeError(
                    "every worker died and the restart budget "
                    f"({budget}) is spent; campaign left resumable in "
                    f"{campaign_dir}"
                )
            time.sleep(poll_seconds)
        for process in pool:
            process.join(timeout=30)
    finally:
        for process in pool:
            if process.is_alive():
                process.terminate()
    summary: Dict[str, Any] = {
        "workers": workers,
        "spawned": spawned,
        "status": campaign_status(campaign_dir),
    }
    if merge:
        summary["merge"] = merge_campaign(
            campaign_dir, allow_incomplete=allow_incomplete
        )
    return summary


def merge_campaign(
    campaign_dir: Union[str, Path],
    allow_incomplete: bool = False,
) -> Dict[str, Any]:
    """Fold per-shard outcomes into the deterministic fleet report.

    Results come from the shared checkpoint store (keyed by spec
    content, so they are identical whichever worker produced them);
    failures come from the shards' done records.  The deterministic
    rendering is byte-identical to the uninterrupted ``jobs=1`` sweep of
    the same manifest — the chaos gate diffs exactly that file.

    Raises when a spec is lost (no result, no failure record, and
    ``allow_incomplete`` is False) or claimed by two shards — the
    zero-lost/zero-duplicated guarantee, enforced.
    """
    campaign_dir = Path(campaign_dir)
    manifest = load_manifest(manifest_mod.manifest_path(campaign_dir))
    specs = manifest.build_specs()
    store = CheckpointStore(manifest_mod.checkpoints_dir(campaign_dir))
    queue = FileWorkQueue(manifest_mod.queue_root(campaign_dir))
    done = queue.done_records()

    placement: Dict[int, str] = {}
    for batch_index, spec_indices in enumerate(manifest.batches):
        for index in spec_indices:
            if index in placement:
                raise RuntimeError(
                    f"spec {index} placed in both {placement[index]} and "
                    f"{manifest.task_id(batch_index)} — duplicated work"
                )
            placement[index] = manifest.task_id(batch_index)
    if sorted(placement) != list(range(len(specs))):
        missing = sorted(set(range(len(specs))) - set(placement))
        raise RuntimeError(f"manifest shards lost specs {missing}")

    #: spec index -> recorded outcome dict from its shard's done record.
    recorded: Dict[int, Dict[str, Any]] = {}
    abandoned_specs: Dict[int, str] = {}
    for task_id, record in sorted(done.items()):
        body = record.get("record", {})
        if body.get("abandoned"):
            for index in record["task"].get("spec_indices", ()):
                abandoned_specs[int(index)] = body.get("reason", "abandoned")
            continue
        for outcome_data in body.get("outcomes", ()):
            recorded[int(outcome_data["spec_index"])] = outcome_data

    outcomes: List[RunOutcome] = []
    lost: List[int] = []
    for index, spec in enumerate(specs):
        result = store.load(spec)
        if result is not None:
            data = recorded.get(index)
            outcomes.append(
                RunOutcome(
                    index=index,
                    spec_summary=describe_spec(spec),
                    status=STATUS_OK,
                    result=result,
                    attempts=int(data["attempts"]) if data else 0,
                    from_checkpoint=True,
                )
            )
            continue
        data = recorded.get(index)
        if data is not None and data["status"] != STATUS_OK:
            outcome = outcome_from_dict(data)
            outcome.index = index
            outcomes.append(outcome)
            continue
        reason = abandoned_specs.get(index)
        if reason is not None:
            outcomes.append(
                RunOutcome(
                    index=index,
                    spec_summary=describe_spec(spec),
                    status=STATUS_FAILED,
                    error=reason,
                    error_type="TaskAbandoned",
                )
            )
            continue
        if not allow_incomplete:
            lost.append(index)
            continue
        outcomes.append(
            RunOutcome(
                index=index,
                spec_summary=describe_spec(spec),
                status=STATUS_FAILED,
                error="spec not yet executed (campaign incomplete)",
                error_type="Incomplete",
            )
        )
    if lost:
        raise RuntimeError(
            f"campaign incomplete: specs {lost} have no result and no "
            f"failure record (run `repro service resume`, or pass "
            f"allow_incomplete=True to report them as failures)"
        )

    report = fleet_report(
        specs, outcomes,
        baseline_scheduler=manifest.campaign.get("baseline", "fcfs"),
    )

    # Fold the attempt audit back into the manifest (ISSUE: the manifest
    # records spec identity, attempt history and shard placement).
    manifest.attempts = {
        task_id: {
            "claims": record["task"].get("attempts", 0),
            "abandoned": bool(record.get("record", {}).get("abandoned")),
            "history": record["task"].get("history", []),
        }
        for task_id, record in sorted(done.items())
    }
    save_manifest(manifest_mod.manifest_path(campaign_dir), manifest)

    out_dir = manifest_mod.report_dir(campaign_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    full_path = out_dir / "fleet_report.json"
    deterministic_path = out_dir / "fleet_report.deterministic.json"
    markdown_path = out_dir / "fleet_report.md"
    full_path.write_text(render_fleet_report(report) + "\n")
    deterministic_path.write_text(
        render_fleet_report(deterministic_view(report)) + "\n"
    )
    markdown_path.write_text(fleet_markdown(report))
    paths = {
        "full": str(full_path),
        "deterministic": str(deterministic_path),
        "markdown": str(markdown_path),
    }

    # The figure pipeline and the HTML campaign report ride every merge:
    # both are pure functions of the deterministic report + manifest, so
    # they inherit the byte-identity guarantee for free.  (The bench
    # gate is NOT run here — its verdicts depend on the invoking
    # machine; `python -m repro figures --gate` adds them explicitly.)
    from repro.obs.figures import CampaignData, build_figures, emit_figures
    from repro.obs.report import build_report_html

    label = campaign_dir.name or "campaign"
    data = CampaignData.from_reports([(label, report)])
    figures_dir = out_dir / "figures"
    figure_manifest = emit_figures(data, figures_dir)
    figures, skipped = build_figures(data)
    html_path = out_dir / "campaign_report.html"
    html_path.write_text(
        build_report_html(
            [(label, report)],
            figures,
            skipped,
            manifests={label: manifest.as_dict()},
        )
    )
    paths["figures"] = str(figures_dir)
    paths["html"] = str(html_path)

    return {
        "report": report,
        "paths": paths,
        "figures": figure_manifest,
    }
