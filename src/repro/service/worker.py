"""The sweep-service worker: claim → heartbeat → execute → complete.

A worker is an ordinary process (spawn as many as you like, on as many
hosts as share the campaign directory).  Its loop:

1. cooperatively :meth:`~repro.service.queue.FileWorkQueue.reap` stale
   leases (so a fleet of workers needs no separate reaper daemon);
2. claim one shard task by atomic rename;
3. start a heartbeat thread that refreshes the lease sidecar;
4. execute the shard's specs through
   :func:`~repro.experiments.runner.run_many_resilient` with the
   campaign's shared :class:`CheckpointStore` and in-run checkpointing
   — completed specs are served from the store, and a spec a previous
   (killed) owner left half-done *resumes mid-simulation*;
5. write the shard's done record and release the lease.

Per-shard :class:`~repro.obs.fleet.FleetTelemetry` JSONL lands in
``shards/`` (one file per claim, tagged with shard/worker/attempt), so
a campaign's progress is observable per worker and mergeable later.

Execution inside a worker is serial and in-process: the *service* layer
owns process isolation (a crash loses one worker's lease, which the
reaper re-queues), and in-process execution means a ``kill -9`` still
leaves the periodic in-run checkpoint dumps behind on disk.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.experiments.runner import run_many_resilient
from repro.obs.fleet import FleetTelemetry
from repro.resilience.outcomes import outcome_to_dict
from repro.service import manifest as manifest_mod
from repro.service.manifest import load_manifest
from repro.service.queue import (
    DEFAULT_LEASE_TTL_SECONDS,
    DEFAULT_MAX_ATTEMPTS,
    FileWorkQueue,
)

#: Default cadence of lease refreshes; the TTL should be a few
#: multiples of this so one slow beat never forfeits a live worker.
DEFAULT_HEARTBEAT_SECONDS = 2.0

#: Idle workers poll the queue this often while shards are still leased
#: elsewhere (their owner may die and hand the work back).
DEFAULT_POLL_SECONDS = 0.5

#: Default in-run checkpoint cadence (simulator events) for service
#: runs: frequent enough that a killed worker loses little progress.
DEFAULT_INRUN_CHECKPOINT_EVERY = 2000

#: Per-spec retry budget inside one shard execution.
DEFAULT_SPEC_RETRIES = 1


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


class _LeaseBeat:
    """Background thread refreshing one task's lease until stopped."""

    def __init__(
        self, queue: FileWorkQueue, task_id: str, worker: str, interval: float
    ) -> None:
        self._queue = queue
        self._task_id = task_id
        self._worker = worker
        self._interval = interval
        self._stop = threading.Event()
        self.lost = False
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                if not self._queue.heartbeat(self._task_id, self._worker):
                    # Reaped from under us (e.g. a long GC pause blew the
                    # TTL).  Keep computing — execution is idempotent and
                    # the checkpoint store dedupes — but remember it.
                    self.lost = True
                    return
            except OSError:
                return  # heartbeat degrades, the work continues

    def __enter__(self) -> "_LeaseBeat":
        self._thread.start()
        return self

    def __exit__(self, *_exc) -> None:
        self._stop.set()
        self._thread.join(timeout=5)


def run_worker(
    campaign_dir: Union[str, Path],
    worker_id: Optional[str] = None,
    lease_ttl: float = DEFAULT_LEASE_TTL_SECONDS,
    heartbeat_seconds: float = DEFAULT_HEARTBEAT_SECONDS,
    poll_seconds: float = DEFAULT_POLL_SECONDS,
    retries: int = DEFAULT_SPEC_RETRIES,
    inrun_checkpoint_every: Optional[int] = DEFAULT_INRUN_CHECKPOINT_EVERY,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    max_tasks: Optional[int] = None,
    progress: bool = False,
) -> Dict[str, Any]:
    """Drain the campaign queue from this process; returns a summary.

    Exits when the queue is fully drained (every shard done) or after
    ``max_tasks`` claims.  Safe to run many of these concurrently — the
    queue's atomic renames arbitrate every claim.
    """
    campaign_dir = Path(campaign_dir)
    worker = worker_id or default_worker_id()
    manifest = load_manifest(manifest_mod.manifest_path(campaign_dir))
    specs = manifest.build_specs()
    queue = FileWorkQueue(manifest_mod.queue_root(campaign_dir))
    store_dir = str(manifest_mod.checkpoints_dir(campaign_dir))
    shards = manifest_mod.shards_dir(campaign_dir)
    shards.mkdir(parents=True, exist_ok=True)

    executed: List[str] = []
    while max_tasks is None or len(executed) < max_tasks:
        queue.reap(lease_ttl, max_attempts=max_attempts)
        task = queue.claim(worker)
        if task is None:
            if queue.drained():
                break
            time.sleep(poll_seconds)
            continue
        _execute_task(
            queue, task, worker, specs, store_dir, shards,
            heartbeat_seconds=heartbeat_seconds,
            retries=retries,
            inrun_checkpoint_every=inrun_checkpoint_every,
            progress=progress,
        )
        executed.append(task["id"])
    return {
        "worker": worker,
        "tasks_executed": executed,
        "queue": queue.counts(),
    }


def _execute_task(
    queue: FileWorkQueue,
    task: Dict[str, Any],
    worker: str,
    specs: List[Dict[str, Any]],
    store_dir: str,
    shards: Path,
    heartbeat_seconds: float,
    retries: int,
    inrun_checkpoint_every: Optional[int],
    progress: bool,
) -> None:
    """Run one claimed shard and record its terminal state."""
    indices = [int(index) for index in task["spec_indices"]]
    batch_specs = [specs[index] for index in indices]
    log_path = str(
        shards / f"{task['id']}.attempt{task['attempts']:02d}.{worker}.jsonl"
    )
    telemetry = FleetTelemetry(
        log_path=log_path,
        progress=progress,
        context={"shard": task["id"], "worker": worker,
                 "claim_attempt": task["attempts"]},
    )
    with telemetry, _LeaseBeat(queue, task["id"], worker, heartbeat_seconds) as beat:
        outcomes = run_many_resilient(
            batch_specs,
            retries=retries,
            checkpoint=store_dir,
            telemetry=telemetry,
            inrun_checkpoint_every=inrun_checkpoint_every,
        )
    record = {
        "worker": worker,
        "claim_attempt": task["attempts"],
        "lease_lost": beat.lost,
        "fleet_log": log_path,
        "outcomes": [
            dict(outcome_to_dict(outcome), spec_index=index)
            for index, outcome in zip(indices, outcomes)
        ],
    }
    queue.complete(task, record)


def _worker_main(campaign_dir: str, worker_id: str, options: Dict[str, Any]) -> None:
    """Top-level trampoline for ``multiprocessing.Process``."""
    run_worker(campaign_dir, worker_id=worker_id, **options)


def spawn_workers(
    campaign_dir: Union[str, Path],
    count: int,
    name_prefix: str = "worker",
    **options: Any,
) -> List:
    """Start ``count`` worker processes on this host; returns them.

    Workers are daemonic: killing the parent never strands them, and
    killing *them* (the chaos harness does, with SIGKILL) just expires
    leases.  Callers join or kill the returned processes.
    """
    import multiprocessing as mp

    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    ctx = mp.get_context()
    processes = []
    for index in range(count):
        process = ctx.Process(
            target=_worker_main,
            args=(str(campaign_dir), f"{name_prefix}-{index}", dict(options)),
            daemon=True,
        )
        process.start()
        processes.append(process)
    return processes
