"""Chaos gate: SIGKILL workers mid-spec, demand a byte-identical report.

The service's whole claim is that delivery-layer violence — killed
workers, expired leases, elastic re-queues, a dead broker, a full
restart — cannot change *what was computed*.  This harness makes that
falsifiable:

1. run the campaign's spec list serially, uninterrupted (``jobs=1``):
   the reference fleet report;
2. run the *same manifest* through the service with a seeded killer
   SIGKILLing workers mid-spec (replacements are spawned, leases are
   reaped, half-done specs resume from in-run checkpoints on other
   workers);
3. optionally finish with a full-restart drill: SIGKILL every remaining
   worker at once (the "broker + cluster died" scenario), then
   ``resume_campaign(force=True)`` and a fresh pool finish the campaign
   from the manifest alone;
4. merge, and require the deterministic rendering of the merged report
   to be **byte-identical** to the reference, with zero lost and zero
   duplicated specs (merge itself enforces those).

Kill *timing* is wall-clock and thus not reproducible run-to-run; the
gate holds regardless, which is exactly the point.  The seed pins the
kill schedule's randomness so a failure can be replayed under the same
pressure pattern.
"""

from __future__ import annotations

import os
import random
import signal
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.experiments.runner import run_many_resilient
from repro.obs.aggregate import (
    deterministic_view,
    fleet_report,
    render_fleet_report,
)
from repro.service.broker import (
    init_campaign,
    merge_campaign,
    resume_campaign,
)
from repro.service import manifest as manifest_mod
from repro.service.manifest import load_manifest
from repro.service.queue import FileWorkQueue
from repro.service.worker import spawn_workers

#: Chaos campaigns run hot: leases expire fast so re-queues happen
#: within the harness's patience, and checkpoints are frequent so a
#: kill almost always lands between two of them.
CHAOS_LEASE_TTL = 2.0
CHAOS_HEARTBEAT_SECONDS = 0.4
CHAOS_INRUN_CHECKPOINT_EVERY = 1500
CHAOS_MAX_ATTEMPTS = 10


class ChaosGateError(AssertionError):
    """The merged chaos report diverged from the uninterrupted run."""


def _kill(process) -> bool:
    """SIGKILL one worker process; True if a signal was delivered."""
    if not process.is_alive() or process.pid is None:
        return False
    try:
        os.kill(process.pid, signal.SIGKILL)
    except (ProcessLookupError, PermissionError):
        return False
    process.join(timeout=10)
    return True


def run_chaos(
    campaign_dir: Union[str, Path],
    seed: int = 0,
    workers: int = 2,
    workloads: Sequence[str] = ("MVT",),
    schedulers: Sequence[str] = ("fcfs", "simt"),
    seeds: int = 3,
    scale: float = 0.3,
    num_wavefronts: int = 24,
    batch_size: int = 1,
    max_kills: Optional[int] = None,
    kill_interval: Tuple[float, float] = (0.3, 0.9),
    restart_drill: bool = True,
    max_seconds: float = 240.0,
    quiet: bool = False,
) -> Dict[str, Any]:
    """Run the full gate; returns a summary dict or raises on divergence.

    ``campaign_dir`` must not already hold a campaign.  ``max_kills``
    defaults to ``workers + 2`` individual kills before the (optional)
    full-restart drill.
    """
    campaign_dir = Path(campaign_dir)
    rng = random.Random(seed)
    max_kills = (workers + 2) if max_kills is None else max_kills

    manifest = init_campaign(
        campaign_dir,
        workloads=list(workloads),
        schedulers=list(schedulers),
        seeds=seeds,
        scale=scale,
        num_wavefronts=num_wavefronts,
        batch_size=batch_size,
    )
    specs = manifest.build_specs()

    def say(line: str) -> None:
        if not quiet:
            print(f"chaos: {line}", flush=True)

    # -- reference: the same specs, serial, never interrupted ------------
    say(f"reference run: {len(specs)} spec(s), jobs=1, no interruptions")
    reference_outcomes = run_many_resilient(specs)
    reference = render_fleet_report(
        deterministic_view(
            fleet_report(
                specs, reference_outcomes,
                baseline_scheduler=manifest.campaign["baseline"],
            )
        )
    )
    reference_path = manifest_mod.report_dir(campaign_dir) / "reference.json"
    reference_path.write_text(reference + "\n")

    # -- chaos phase: seeded kills against a live worker pool ------------
    worker_options = dict(
        lease_ttl=CHAOS_LEASE_TTL,
        heartbeat_seconds=CHAOS_HEARTBEAT_SECONDS,
        inrun_checkpoint_every=CHAOS_INRUN_CHECKPOINT_EVERY,
        max_attempts=CHAOS_MAX_ATTEMPTS,
        poll_seconds=0.2,
    )
    queue = FileWorkQueue(manifest_mod.queue_root(campaign_dir))
    pool = spawn_workers(
        campaign_dir, workers, name_prefix="chaos", **worker_options
    )
    spawned = workers
    kills = 0
    restarts_done = False
    deadline = time.monotonic() + max_seconds
    try:
        while not queue.drained():
            if time.monotonic() > deadline:
                raise ChaosGateError(
                    f"chaos campaign did not drain within {max_seconds:g}s "
                    f"(queue: {queue.counts()})"
                )
            queue.reap(CHAOS_LEASE_TTL, max_attempts=CHAOS_MAX_ATTEMPTS)
            alive = [process for process in pool if process.is_alive()]
            if kills < max_kills and alive:
                time.sleep(rng.uniform(*kill_interval))
                victim = rng.choice(alive)
                if _kill(victim):
                    kills += 1
                    say(
                        f"SIGKILL worker pid {victim.pid} "
                        f"({kills}/{max_kills} kills)"
                    )
                    replacement = spawn_workers(
                        campaign_dir, 1,
                        name_prefix=f"chaos-r{spawned}", **worker_options,
                    )
                    pool.extend(replacement)
                    spawned += 1
                continue
            if restart_drill and not restarts_done:
                # Full cluster restart: every worker dies at once and
                # nothing is left running.  Resume must rebuild the
                # campaign's run state from the directory alone.
                for process in pool:
                    _kill(process)
                restarts_done = True
                say("full-restart drill: killed ALL workers; resuming "
                    "from the manifest")
                resumed = resume_campaign(campaign_dir, force=True)
                say(
                    f"resume re-queued {len(resumed['requeued'])} shard(s), "
                    f"restored {len(resumed['restored'])}"
                )
                pool = spawn_workers(
                    campaign_dir, workers,
                    name_prefix="chaos-resume", **worker_options,
                )
                spawned += workers
                continue
            if not alive:
                # Killer is done and everything died anyway: refill.
                pool.extend(
                    spawn_workers(
                        campaign_dir, workers,
                        name_prefix=f"chaos-refill{spawned}",
                        **worker_options,
                    )
                )
                spawned += workers
            time.sleep(0.2)
        for process in pool:
            process.join(timeout=30)
    finally:
        for process in pool:
            if process.is_alive():
                process.terminate()

    # -- merge and gate ---------------------------------------------------
    merged = merge_campaign(campaign_dir)
    merged_deterministic = Path(merged["paths"]["deterministic"]).read_text()
    identical = merged_deterministic == reference + "\n"
    say(
        f"merged report {'IDENTICAL to' if identical else 'DIVERGED from'} "
        f"the uninterrupted reference after {kills} kill(s)"
        + (" + full restart" if restarts_done else "")
    )
    if not identical:
        raise ChaosGateError(
            "merged fleet report differs from the uninterrupted jobs=1 "
            f"reference; compare {merged['paths']['deterministic']} against "
            f"{reference_path}"
        )
    updated = load_manifest(manifest_mod.manifest_path(campaign_dir))
    reclaims = sum(
        max(0, entry.get("claims", 1) - 1)
        for entry in updated.attempts.values()
    )
    report = merged["report"]
    return {
        "identical": True,
        "kills": kills,
        "restart_drill": restarts_done,
        "workers_spawned": spawned,
        "shard_reclaims": reclaims,
        "specs": report["specs"],
        "ok": report["ok"],
        "failed": report["failed"],
        "reference_path": str(reference_path),
        "merged_paths": merged["paths"],
    }
