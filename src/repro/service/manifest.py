"""The versioned campaign manifest: everything a resume needs, on disk.

A campaign is defined once — workloads × schedulers × seeds plus the
run parameters and an optional machine description — and the manifest
pins that definition together with:

* one content-hash ``spec_key`` per spec (the same key the shared
  :class:`~repro.resilience.outcomes.CheckpointStore` files use, so
  manifest rows, result files and in-run checkpoints all correlate);
* the shard placement: which spec indices ride in which queue task;
* an ``attempts`` section, folded back in from the queue's records by
  ``repro service merge`` — the audit trail of how many claims each
  shard needed and why.

The manifest is the *only* authoritative state the broker has.  Killing
the broker and every worker loses nothing: ``repro service resume``
reloads the manifest, re-queues whatever is not done, and the campaign
finishes from the shared checkpoint store.  Spec lists are rebuilt
deterministically from the definition (same nesting as
:func:`repro.obs.aggregate.sweep_specs`), never serialised per spec —
a manifest stays small even for a 10k-spec sweep.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.config_io import config_from_dict, config_to_dict
from repro.obs.aggregate import sweep_specs
from repro.resilience.outcomes import spec_key
from repro.service.lease import atomic_write_json

MANIFEST_FORMAT = "repro-campaign-manifest"
MANIFEST_VERSION = 1

#: Default specs per queue task.  Small shards re-queue cheaply when a
#: worker dies (only the shard's incomplete specs re-run, and those
#: resume from in-run checkpoints); large shards amortise claim I/O.
DEFAULT_BATCH_SIZE = 2


@dataclass
class CampaignManifest:
    """In-memory form of ``manifest.json``."""

    #: The sweep definition (workloads, schedulers, seeds, scale,
    #: num_wavefronts, metrics, baseline, config-as-dict-or-None).
    campaign: Dict[str, Any]
    #: Content-hash identity of each spec, in spec order.
    spec_keys: List[str]
    #: Shard placement: batches[i] lists the spec indices of task i.
    batches: List[List[int]]
    #: Claim/attempt audit, task id -> summary (written back by merge).
    attempts: Dict[str, Any] = field(default_factory=dict)
    version: int = MANIFEST_VERSION

    def build_specs(self) -> List[Dict[str, Any]]:
        """The deterministic spec list this campaign runs.

        Rebuilt from the definition on every load, so broker, workers
        and merge all agree on spec identity without shipping specs
        around — the spec_keys double-check it.
        """
        campaign = self.campaign
        config = campaign.get("config")
        specs = sweep_specs(
            campaign["workloads"],
            campaign["schedulers"],
            seeds=range(int(campaign["seeds"])),
            config=config_from_dict(config) if config is not None else None,
            num_wavefronts=int(campaign["num_wavefronts"]),
            scale=float(campaign["scale"]),
            metrics=bool(campaign.get("metrics", False)),
        )
        keys = [spec_key(spec) for spec in specs]
        if keys != self.spec_keys:
            raise ValueError(
                "manifest spec_keys do not match the specs rebuilt from its "
                "campaign definition — the manifest was edited or the spec "
                "construction changed; refusing to run the wrong sweep"
            )
        return specs

    def task_id(self, batch_index: int) -> str:
        return f"batch-{batch_index:05d}"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "format": MANIFEST_FORMAT,
            "version": self.version,
            "campaign": self.campaign,
            "spec_keys": list(self.spec_keys),
            "batches": [list(batch) for batch in self.batches],
            "attempts": self.attempts,
        }


def plan_campaign(
    workloads: List[str],
    schedulers: List[str],
    seeds: int,
    scale: float,
    num_wavefronts: int,
    metrics: bool = False,
    baseline: str = "fcfs",
    config=None,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> CampaignManifest:
    """Shard a sweep definition into a manifest.

    Placement is contiguous round-robin-free chunking in spec order:
    deterministic, and neighbouring specs (same workload/scheduler,
    different seeds) share warm OS caches on whichever worker claims
    the shard.
    """
    if seeds <= 0:
        raise ValueError(f"seeds must be positive, got {seeds}")
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    campaign = {
        "workloads": list(workloads),
        "schedulers": list(schedulers),
        "seeds": int(seeds),
        "scale": float(scale),
        "num_wavefronts": int(num_wavefronts),
        "metrics": bool(metrics),
        "baseline": baseline,
        "config": config_to_dict(config) if config is not None else None,
    }
    specs = sweep_specs(
        campaign["workloads"],
        campaign["schedulers"],
        seeds=range(seeds),
        config=config,
        num_wavefronts=num_wavefronts,
        scale=scale,
        metrics=metrics,
    )
    keys = [spec_key(spec) for spec in specs]
    indices = list(range(len(specs)))
    batches = [
        indices[start:start + batch_size]
        for start in range(0, len(indices), batch_size)
    ]
    return CampaignManifest(campaign=campaign, spec_keys=keys, batches=batches)


def save_manifest(
    path: Union[str, Path], manifest: CampaignManifest
) -> None:
    atomic_write_json(Path(path), manifest.as_dict())


def load_manifest(path: Union[str, Path]) -> CampaignManifest:
    try:
        payload = json.loads(Path(path).read_text())
    except OSError as exc:
        raise FileNotFoundError(
            f"no campaign manifest at {path} — run `repro service init` "
            f"(or `repro service run`) first"
        ) from exc
    if payload.get("format") != MANIFEST_FORMAT:
        raise ValueError(f"{path} is not a campaign manifest")
    if payload.get("version") != MANIFEST_VERSION:
        raise ValueError(
            f"manifest version {payload.get('version')} unsupported "
            f"(this build reads version {MANIFEST_VERSION})"
        )
    return CampaignManifest(
        campaign=payload["campaign"],
        spec_keys=list(payload["spec_keys"]),
        batches=[list(batch) for batch in payload["batches"]],
        attempts=dict(payload.get("attempts", {})),
    )


def manifest_path(campaign_dir: Union[str, Path]) -> Path:
    return Path(campaign_dir) / "manifest.json"


def queue_root(campaign_dir: Union[str, Path]) -> Path:
    return Path(campaign_dir) / "queue"


def checkpoints_dir(campaign_dir: Union[str, Path]) -> Path:
    return Path(campaign_dir) / "checkpoints"


def shards_dir(campaign_dir: Union[str, Path]) -> Path:
    return Path(campaign_dir) / "shards"


def report_dir(campaign_dir: Union[str, Path]) -> Path:
    return Path(campaign_dir) / "report"
