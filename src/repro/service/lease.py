"""Lease and heartbeat sidecar files for the filesystem work queue.

A claimed task is *owned* only as long as its lease file stays fresh.
The owner rewrites the lease (atomically — unique temp name + rename)
every ``heartbeat_seconds``; anyone else — the broker loop, an idle
worker — may reap a lease whose last beat is older than the TTL and
return the task to the pending queue.  Ownership is therefore a
property of the filesystem, not of any process: a ``kill -9``'d worker
simply stops beating, and its work is re-queued to whoever is left.

Wall-clock timestamps live only in these sidecars (and in telemetry);
they never reach a simulation, so chaos in the delivery layer cannot
perturb simulated results.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Optional, Union


@dataclass
class Lease:
    """Who owns a claimed task, and when they last proved to be alive."""

    task_id: str
    worker: str
    pid: int
    claimed_t: float
    beat_t: float
    attempt: int = 1

    def age(self, now: Optional[float] = None) -> float:
        """Seconds since the last heartbeat."""
        return (time.time() if now is None else now) - self.beat_t

    def is_stale(self, ttl_seconds: float, now: Optional[float] = None) -> bool:
        return self.age(now) > ttl_seconds


def atomic_write_json(path: Union[str, Path], payload: dict) -> None:
    """Write ``payload`` as JSON via a uniquely-named temp + rename.

    The temp name carries pid and a uuid so concurrent writers of the
    *same* target can never tear each other's write-then-rename; the
    rename is atomic on POSIX, so readers see either the old file or the
    new one, never a torn half-write.
    """
    path = Path(path)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.{uuid.uuid4().hex}.tmp")
    data = json.dumps(payload, sort_keys=True)
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def write_lease(path: Union[str, Path], lease: Lease) -> None:
    atomic_write_json(path, asdict(lease))


def read_lease(path: Union[str, Path]) -> Optional[Lease]:
    """The lease at ``path``, or None when missing/unreadable.

    A torn or vanished lease reads as *absent* — the reaper treats an
    absent lease on a leased task as maximally stale, which errs toward
    re-queueing (safe: execution is idempotent via the checkpoint
    store), never toward losing the task.
    """
    try:
        return Lease(**json.loads(Path(path).read_text()))
    except (OSError, ValueError, TypeError):
        return None
