"""A durable, daemon-free work queue made of directories and renames.

Layout under the queue root (all four are plain directories)::

    pending/<task_id>.json   tasks nobody owns yet
    leased/<task_id>.json    tasks claimed by a worker
    leases/<task_id>.json    heartbeat sidecar for each leased task
    done/<task_id>.json      terminal records (completed or abandoned)

The only coordination primitive is ``os.rename`` within one filesystem:
claiming a task renames its file from ``pending/`` to ``leased/``, and
exactly one of any number of concurrent claimants wins (the losers get
``FileNotFoundError`` and move on).  That works on a single box and on
a shared filesystem alike — no broker daemon, no locks, no sockets.

Crash-recovery rules are scan-based and idempotent, so *anyone* may run
:meth:`FileWorkQueue.reap` at any time (workers do, before claiming):

* leased task whose lease heartbeat is older than the TTL → the owner
  is presumed dead; the task goes back to ``pending/`` with its attempt
  history extended (elastic retry on another worker);
* task present in both ``done/`` and ``leased/`` → the owner died after
  recording completion; the lease is garbage-collected;
* task present in both ``pending/`` and ``leased/`` → a requeue was
  interrupted between rename and cleanup; the leased copy is stale and
  dropped;
* task claimed more than ``max_attempts`` times → retired to ``done/``
  as *abandoned* instead of looping through the queue forever (a spec
  that hard-kills every worker that touches it must not wedge the
  campaign).

Task files are JSON dicts with at least ``{"id": ...}``; the queue adds
``attempts`` (times claimed) and ``history`` (one entry per lifecycle
transition, wall-clock timestamps included — delivery bookkeeping never
touches simulated state).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.service.lease import Lease, atomic_write_json, read_lease, write_lease

#: A worker that misses heartbeats for this long forfeits its lease.
DEFAULT_LEASE_TTL_SECONDS = 30.0

#: Claim budget per task before the reaper retires it as abandoned.
DEFAULT_MAX_ATTEMPTS = 5


class FileWorkQueue:
    """The four-directory queue; every method is safe to call from any
    process at any time (crashes between steps are covered by reap)."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.pending_dir = self.root / "pending"
        self.leased_dir = self.root / "leased"
        self.leases_dir = self.root / "leases"
        self.done_dir = self.root / "done"
        for directory in (
            self.pending_dir, self.leased_dir, self.leases_dir, self.done_dir
        ):
            directory.mkdir(parents=True, exist_ok=True)

    # -- enqueue / claim -------------------------------------------------

    def put(self, task: Dict[str, Any]) -> None:
        """Enqueue one task (idempotent: re-putting an id overwrites)."""
        task_id = task["id"]
        task.setdefault("attempts", 0)
        task.setdefault("history", [])
        atomic_write_json(self.pending_dir / f"{task_id}.json", task)

    def claim(self, worker: str) -> Optional[Dict[str, Any]]:
        """Claim one pending task, or None when nothing is claimable.

        Candidates are tried in sorted order, rotated by a hash of the
        worker name so a pack of workers starting together doesn't
        stampede the same file.  The atomic rename is the arbiter:
        losing a race is silent and the next candidate is tried.
        """
        names = sorted(path.name for path in self.pending_dir.glob("*.json"))
        if not names:
            return None
        start = hash(worker) % len(names)
        for name in names[start:] + names[:start]:
            pending = self.pending_dir / name
            leased = self.leased_dir / name
            try:
                os.rename(pending, leased)
            except FileNotFoundError:
                continue  # someone else won this one
            task = json.loads(leased.read_text())
            task["attempts"] = int(task.get("attempts", 0)) + 1
            now = time.time()
            task.setdefault("history", []).append(
                {"event": "claimed", "worker": worker, "t": now,
                 "attempt": task["attempts"]}
            )
            atomic_write_json(leased, task)
            write_lease(
                self.leases_dir / name,
                Lease(
                    task_id=task["id"], worker=worker, pid=os.getpid(),
                    claimed_t=now, beat_t=now, attempt=task["attempts"],
                ),
            )
            return task
        return None

    def heartbeat(self, task_id: str, worker: str) -> bool:
        """Refresh the lease; False means the lease is no longer ours
        (reaped from under us — the worker should stop working on it)."""
        lease = read_lease(self.leases_dir / f"{task_id}.json")
        if lease is None or lease.worker != worker:
            return False
        lease.beat_t = time.time()
        write_lease(self.leases_dir / f"{task_id}.json", lease)
        return True

    # -- terminal transitions -------------------------------------------

    def complete(self, task: Dict[str, Any], record: Dict[str, Any]) -> None:
        """Record a finished task and release its lease.

        The done record is written *before* the lease is dropped, so a
        crash mid-complete re-runs nothing: the reaper sees the done
        file and garbage-collects the leftover lease.
        """
        task_id = task["id"]
        atomic_write_json(
            self.done_dir / f"{task_id}.json",
            {"task": task, "record": record, "t": time.time()},
        )
        try:
            os.unlink(self.leased_dir / f"{task_id}.json")
        except FileNotFoundError:
            pass
        self._drop_lease(task_id)

    def requeue(self, task_id: str, reason: str,
                worker: Optional[str] = None) -> None:
        """Return a leased task to pending with its history extended."""
        leased = self.leased_dir / f"{task_id}.json"
        try:
            task = json.loads(leased.read_text())
        except (OSError, ValueError):
            return  # already moved by a concurrent reaper
        task.setdefault("history", []).append(
            {"event": "requeued", "reason": reason, "worker": worker,
             "t": time.time()}
        )
        atomic_write_json(self.pending_dir / f"{task_id}.json", task)
        self._drop_lease(task_id)
        # Remove the leased copy last: if we die first, the
        # pending+leased recovery rule discards it on the next reap.
        try:
            os.unlink(leased)
        except FileNotFoundError:
            pass

    def _abandon(self, task: Dict[str, Any], reason: str) -> None:
        atomic_write_json(
            self.done_dir / f"{task['id']}.json",
            {"task": task, "record": {"abandoned": True, "reason": reason},
             "t": time.time()},
        )
        try:
            os.unlink(self.leased_dir / f"{task['id']}.json")
        except FileNotFoundError:
            pass
        self._drop_lease(task["id"])

    def _drop_lease(self, task_id: str) -> None:
        try:
            os.unlink(self.leases_dir / f"{task_id}.json")
        except FileNotFoundError:
            pass

    # -- recovery --------------------------------------------------------

    def reap(
        self,
        ttl_seconds: float = DEFAULT_LEASE_TTL_SECONDS,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        now: Optional[float] = None,
    ) -> Tuple[List[str], List[str]]:
        """Expire stale leases; returns (requeued_ids, abandoned_ids).

        Cooperative and idempotent: run it from anywhere, as often as
        you like.  Two reapers racing on the same task resolve through
        the same atomic renames as everything else.
        """
        now = time.time() if now is None else now
        requeued: List[str] = []
        abandoned: List[str] = []
        for leased in sorted(self.leased_dir.glob("*.json")):
            task_id = leased.stem
            if (self.done_dir / leased.name).exists():
                # Owner died after recording completion: lease is junk.
                try:
                    os.unlink(leased)
                except FileNotFoundError:
                    pass
                self._drop_lease(task_id)
                continue
            if (self.pending_dir / leased.name).exists():
                # Interrupted requeue: the pending copy is authoritative.
                try:
                    os.unlink(leased)
                except FileNotFoundError:
                    pass
                self._drop_lease(task_id)
                continue
            lease = read_lease(self.leases_dir / leased.name)
            if lease is None:
                # Claim interrupted before the sidecar landed (or the
                # sidecar was torn): fall back to the leased file's own
                # mtime so a *live* claimant gets its grace period.
                try:
                    beat = leased.stat().st_mtime
                except OSError:
                    continue  # vanished mid-scan
                stale = (now - beat) > ttl_seconds
                owner = None
            else:
                stale = lease.is_stale(ttl_seconds, now)
                owner = lease.worker
            if not stale:
                continue
            try:
                task = json.loads(leased.read_text())
            except (OSError, ValueError):
                continue
            if int(task.get("attempts", 0)) >= max_attempts:
                self._abandon(
                    task,
                    f"lease expired after {task.get('attempts')} claim(s); "
                    f"max_attempts={max_attempts} exhausted",
                )
                abandoned.append(task_id)
            else:
                self.requeue(task_id, "lease expired", worker=owner)
                requeued.append(task_id)
        return requeued, abandoned

    # -- inspection ------------------------------------------------------

    def counts(self) -> Dict[str, int]:
        return {
            "pending": len(list(self.pending_dir.glob("*.json"))),
            "leased": len(list(self.leased_dir.glob("*.json"))),
            "done": len(list(self.done_dir.glob("*.json"))),
        }

    def drained(self) -> bool:
        """True when no task is pending or leased (all work is done)."""
        counts = self.counts()
        return counts["pending"] == 0 and counts["leased"] == 0

    def done_records(self) -> Dict[str, Dict[str, Any]]:
        """Every terminal record, keyed by task id."""
        records: Dict[str, Dict[str, Any]] = {}
        for path in sorted(self.done_dir.glob("*.json")):
            try:
                records[path.stem] = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
        return records

    def pending_tasks(self) -> Dict[str, Dict[str, Any]]:
        """Every unclaimed task, keyed by task id (for status/resume)."""
        tasks: Dict[str, Dict[str, Any]] = {}
        for path in sorted(self.pending_dir.glob("*.json")):
            try:
                tasks[path.stem] = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
        return tasks
