"""Small statistics helpers: bucketed histograms."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


class BucketHistogram:
    """Counts samples into labelled, inclusive integer ranges.

    Used for the paper's Fig 3 ("number of memory accesses for page
    walks per instruction", buckets 1-16, 17-32, ... 81-256).
    """

    def __init__(self, buckets: Sequence[Tuple[int, int]]) -> None:
        if not buckets:
            raise ValueError("at least one bucket is required")
        for low, high in buckets:
            if low > high:
                raise ValueError(f"bucket ({low}, {high}) is inverted")
        self._buckets = list(buckets)
        self._counts = [0] * len(buckets)
        self.total = 0
        self.out_of_range = 0

    def add(self, value: int) -> None:
        """Record one sample."""
        self.total += 1
        for index, (low, high) in enumerate(self._buckets):
            if low <= value <= high:
                self._counts[index] += 1
                return
        self.out_of_range += 1

    def counts(self) -> List[int]:
        return list(self._counts)

    def fractions(self) -> List[float]:
        """Per-bucket fraction of all recorded samples."""
        if self.total == 0:
            return [0.0] * len(self._buckets)
        return [count / self.total for count in self._counts]

    def labels(self) -> List[str]:
        return [f"{low}-{high}" for low, high in self._buckets]

    def as_dict(self) -> Dict[str, float]:
        return dict(zip(self.labels(), self.fractions()))
