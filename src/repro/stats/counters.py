"""Small statistics helpers: bucketed histograms."""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Sequence, Tuple


class BucketHistogram:
    """Counts samples into labelled, inclusive integer ranges.

    Used for the paper's Fig 3 ("number of memory accesses for page
    walks per instruction", buckets 1-16, 17-32, ... 81-256).

    When the buckets are sorted and non-overlapping (the usual case),
    ``add`` locates the bucket by binary search over the lower bounds;
    otherwise it falls back to a linear scan in declaration order, which
    preserves first-match semantics for overlapping buckets.
    """

    def __init__(self, buckets: Sequence[Tuple[int, int]]) -> None:
        if not buckets:
            raise ValueError("at least one bucket is required")
        for low, high in buckets:
            if low > high:
                raise ValueError(f"bucket ({low}, {high}) is inverted")
        # Normalised to tuples so merges compare equal regardless of
        # whether bounds arrived as tuples or (JSON) lists.
        self._buckets = [(low, high) for low, high in buckets]
        self._counts = [0] * len(buckets)
        self.total = 0
        self.out_of_range = 0
        self._sorted = all(
            self._buckets[i][1] < self._buckets[i + 1][0]
            for i in range(len(self._buckets) - 1)
        )
        self._lows = [low for low, _ in self._buckets] if self._sorted else None

    def add(self, value: int) -> None:
        """Record one sample."""
        self.total += 1
        if self._lows is not None:
            index = bisect_right(self._lows, value) - 1
            if index >= 0 and value <= self._buckets[index][1]:
                self._counts[index] += 1
                return
            self.out_of_range += 1
            return
        for index, (low, high) in enumerate(self._buckets):
            if low <= value <= high:
                self._counts[index] += 1
                return
        self.out_of_range += 1

    def merge(self, other: "BucketHistogram") -> None:
        """Fold ``other``'s samples into this histogram in place.

        Both histograms must have been built over identical buckets —
        merging differently-shaped histograms would silently misfile
        counts, so it raises :class:`ValueError` instead.
        """
        if self._buckets != other._buckets:
            raise ValueError(
                f"cannot merge histograms with different buckets: "
                f"{self._buckets} vs {other._buckets}"
            )
        for index, count in enumerate(other._counts):
            self._counts[index] += count
        self.total += other.total
        self.out_of_range += other.out_of_range

    @classmethod
    def from_counts(
        cls,
        buckets: Sequence[Tuple[int, int]],
        counts: Sequence[int],
        out_of_range: int = 0,
    ) -> "BucketHistogram":
        """Rebuild a histogram from an exported (buckets, counts) pair.

        The inverse of dumping ``bucket_bounds()``/``counts()`` to JSON,
        used when merging archived per-run registries across a sweep.
        """
        histogram = cls(buckets)
        if len(counts) != len(histogram._counts):
            raise ValueError(
                f"{len(counts)} counts for {len(histogram._counts)} buckets"
            )
        histogram._counts = [int(count) for count in counts]
        histogram.out_of_range = int(out_of_range)
        histogram.total = sum(histogram._counts) + histogram.out_of_range
        return histogram

    def quantiles(self, qs: Sequence[float]) -> List[float]:
        """Estimated quantile values from the bucketed counts.

        The true samples are gone — only per-bucket counts remain — so
        each quantile is reconstructed by locating the bucket holding
        the target rank and interpolating linearly inside it (samples
        are assumed uniform within a bucket, the standard estimator for
        pre-bucketed data).  Out-of-range samples are excluded: they
        have no reconstructable value.

        Edge cases, pinned by tests: a single sample interpolates
        within its bucket (``q=0`` gives the bucket's low bound, ``q=1``
        its high bound); empty buckets are skipped, never divided by;
        a histogram with no in-range samples raises :class:`ValueError`
        (there is no distribution to summarise).
        """
        in_range = self.total - self.out_of_range
        if in_range <= 0:
            raise ValueError("quantiles of a histogram with no in-range samples")
        for q in qs:
            if not 0.0 <= q <= 1.0:
                raise ValueError(f"quantile {q} outside 0..1")
        out: List[float] = []
        for q in qs:
            rank = q * in_range
            cumulative = 0
            value: float = float(self._buckets[-1][1])
            for (low, high), count in zip(self._buckets, self._counts):
                if count == 0:
                    continue
                if rank <= cumulative + count:
                    fraction = (rank - cumulative) / count
                    value = low + fraction * (high - low)
                    break
                cumulative += count
            out.append(value)
        return out

    def cdf_points(self) -> List[Tuple[int, float]]:
        """The empirical CDF as ``(bucket upper bound, cumulative fraction)``.

        One point per *declared* bucket (empty buckets repeat the
        previous cumulative fraction, keeping the x-axis complete for
        plotting).  Fractions are over in-range samples; a histogram
        with no in-range samples yields all-zero fractions rather than
        raising, so an idle instrument still exports a valid — flat —
        curve.
        """
        in_range = self.total - self.out_of_range
        points: List[Tuple[int, float]] = []
        cumulative = 0
        for (low, high), count in zip(self._buckets, self._counts):
            cumulative += count
            fraction = cumulative / in_range if in_range > 0 else 0.0
            points.append((high, fraction))
        return points

    def bucket_bounds(self) -> List[Tuple[int, int]]:
        """The (low, high) bucket ranges, in declaration order."""
        return [tuple(bucket) for bucket in self._buckets]

    def counts(self) -> List[int]:
        return list(self._counts)

    def fractions(self) -> List[float]:
        """Per-bucket fraction of all recorded samples."""
        if self.total == 0:
            return [0.0] * len(self._buckets)
        return [count / self.total for count in self._counts]

    def labels(self) -> List[str]:
        return [f"{low}-{high}" for low, high in self._buckets]

    def as_dict(self) -> Dict[str, float]:
        return dict(zip(self.labels(), self.fractions()))
