"""One stable number formatter for every rendered report surface.

Markdown fleet reports, figure CSVs, the HTML campaign report and the
bench-gate text all used to format numbers with ad-hoc f-strings
(``:.3f`` here, ``:.4g`` there).  ``%g``-style formats switch to
scientific notation for tiny magnitudes — a sweep whose geomean stdev
is ``3e-07`` rendered as ``3e-07`` in one table and ``0.000`` in the
next — and every new surface invented its own precision.  Rendered
reports are diffed byte-for-byte by the determinism gates, so *one*
formatter owns the rules:

* fixed-point decimal, **never** scientific notation;
* a bounded number of significant decimals, trailing zeros trimmed;
* integers (and integral floats) render without a decimal point;
* ``None``/NaN/inf render as explicit placeholders instead of
  propagating junk into a table.

Python 3 float repr is already platform-independent (shortest repr of
the IEEE-754 double), so routing every surface through this module
makes the rendered bytes a function of the data alone.
"""

from __future__ import annotations

import math
from typing import Any, Optional

#: Placeholder for absent values in rendered tables.
MISSING = "—"


def format_number(
    value: Any,
    decimals: int = 6,
    thousands: bool = False,
) -> str:
    """Render one number in stable fixed-point decimal.

    ``decimals`` bounds the digits kept after the point (trailing
    zeros are trimmed, so ``1.5`` stays ``1.5``, not ``1.500000``).
    ``thousands`` adds ``,`` group separators to the integer part —
    cycle counts read better with them, ratios without.
    """
    if value is None:
        return MISSING
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return f"{value:,d}" if thousands else str(value)
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if value == int(value) and abs(value) < 1e15:
            return format_number(int(value), thousands=thousands)
        text = f"{value:,.{decimals}f}" if thousands else f"{value:.{decimals}f}"
        text = text.rstrip("0").rstrip(".")
        # Everything below the kept precision collapses to plain zero,
        # never "-0" or "0." fragments.
        if text in ("", "-", "-0"):
            return "0"
        return text
    return str(value)


def format_ratio(value: Optional[float], decimals: int = 3) -> str:
    """Speedups / fractions: fixed 3-decimal default, still exponent-free."""
    return format_number(value, decimals=decimals)


def format_count(value: Optional[float]) -> str:
    """Cycle/event counts: integer rendering with thousands separators."""
    if value is None:
        return MISSING
    if isinstance(value, float):
        value = int(round(value))
    return format_number(value, thousands=True)
