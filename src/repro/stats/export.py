"""Result export and distribution helpers.

``SimulationResult`` objects flatten to plain dictionaries / JSON so
experiment campaigns can be archived and post-processed outside Python
(the benchmark harness stores one JSON per regenerated figure when asked
to).  ``percentiles`` summarises latency distributions without pulling
in numpy for the common case.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Union

from repro.stats.metrics import SimulationResult


#: Default report points: the tail matters in walk-latency studies, so
#: p99.9 ships alongside the usual median/tail trio.
DEFAULT_PERCENTILE_POINTS: Sequence[float] = (50, 90, 99, 99.9)


def percentiles(
    samples: Iterable[float], points: Sequence[float] = DEFAULT_PERCENTILE_POINTS
) -> Dict[float, float]:
    """Empirical percentiles by linear interpolation.

    Raises :class:`ValueError` on an empty sample set or out-of-range
    points.
    """
    values = sorted(samples)
    if not values:
        raise ValueError("percentiles of an empty sample set")
    out: Dict[float, float] = {}
    if len(values) == 1:
        # A single sample IS every percentile; skipping the interpolation
        # avoids a low==high index aliasing that silently returned the
        # sample via two different code paths.
        only = values[0]
        for point in points:
            if not 0 <= point <= 100:
                raise ValueError(f"percentile {point} outside 0..100")
            out[point] = only
        return out
    last = len(values) - 1
    for point in points:
        if not 0 <= point <= 100:
            raise ValueError(f"percentile {point} outside 0..100")
        position = point / 100 * last
        low = int(position)
        high = min(low + 1, last)
        fraction = position - low
        out[point] = values[low] * (1 - fraction) + values[high] * fraction
    return out


def walk_latency_percentiles(
    records, points: Sequence[float] = DEFAULT_PERCENTILE_POINTS
) -> Dict[float, float]:
    """Percentiles of every IOMMU-serviced walk latency in a run."""
    samples: List[int] = []
    for record in records:
        samples.extend(record.walk_latencies)
    if not samples:
        return {point: 0.0 for point in points}
    return percentiles(samples, points)


def result_to_dict(result: SimulationResult) -> Dict[str, object]:
    """Flatten a result to JSON-serialisable primitives."""
    data = asdict(result)
    data["latency_gap"] = result.latency_gap
    return data


def save_results(
    results: Union[SimulationResult, Sequence[SimulationResult]],
    path: Union[str, Path],
) -> None:
    """Write one or more results to ``path`` as a JSON document."""
    if isinstance(results, SimulationResult):
        results = [results]
    document = {
        "format": "repro-results",
        "version": 1,
        "results": [result_to_dict(result) for result in results],
    }
    Path(path).write_text(json.dumps(document, indent=2, default=str))


def load_results(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Read a results document written by :func:`save_results`.

    Returns plain dictionaries (not :class:`SimulationResult` objects):
    archived results are data for analysis, not live objects.
    """
    document = json.loads(Path(path).read_text())
    if document.get("format") != "repro-results":
        raise ValueError(f"{path} is not a repro-results file")
    return list(document["results"])
