"""Result export and distribution helpers.

``SimulationResult`` objects flatten to plain dictionaries / JSON so
experiment campaigns can be archived and post-processed outside Python
(the benchmark harness stores one JSON per regenerated figure when asked
to).  ``percentiles`` summarises latency distributions without pulling
in numpy for the common case.

This module also owns the **unified benchmark report schema** every
``BENCH_*.json`` file shares.  Each benchmark harness used to capture
its own ad-hoc environment block (or none); :func:`write_bench_report`
wraps a benchmark's payload in one envelope —

.. code-block:: json

    {"format": "repro-bench", "version": 1, "bench": "hotpath",
     "generated_at": "2026-01-01T00:00:00+00:00",
     "environment": {"python": "...", "platform": "...", ...},
     "data": { ... benchmark-specific ... }}

— so the regression gate (:mod:`repro.obs.regress`) can load any bench
file the same way and diff ``data`` without guessing at its provenance.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from dataclasses import asdict
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, Iterable, List, Sequence, Union

from repro.stats.metrics import SimulationResult

#: Identity of the unified benchmark report envelope.
BENCH_FORMAT = "repro-bench"
BENCH_VERSION = 1


#: Default report points: the tail matters in walk-latency studies, so
#: p99.9 ships alongside the usual median/tail trio.
DEFAULT_PERCENTILE_POINTS: Sequence[float] = (50, 90, 99, 99.9)


def percentiles(
    samples: Iterable[float], points: Sequence[float] = DEFAULT_PERCENTILE_POINTS
) -> Dict[float, float]:
    """Empirical percentiles by linear interpolation.

    Raises :class:`ValueError` on an empty sample set or out-of-range
    points.
    """
    values = sorted(samples)
    if not values:
        raise ValueError("percentiles of an empty sample set")
    out: Dict[float, float] = {}
    if len(values) == 1:
        # A single sample IS every percentile; skipping the interpolation
        # avoids a low==high index aliasing that silently returned the
        # sample via two different code paths.
        only = values[0]
        for point in points:
            if not 0 <= point <= 100:
                raise ValueError(f"percentile {point} outside 0..100")
            out[point] = only
        return out
    last = len(values) - 1
    for point in points:
        if not 0 <= point <= 100:
            raise ValueError(f"percentile {point} outside 0..100")
        position = point / 100 * last
        low = int(position)
        high = min(low + 1, last)
        fraction = position - low
        out[point] = values[low] * (1 - fraction) + values[high] * fraction
    return out


def walk_latency_percentiles(
    records, points: Sequence[float] = DEFAULT_PERCENTILE_POINTS
) -> Dict[float, float]:
    """Percentiles of every IOMMU-serviced walk latency in a run."""
    samples: List[int] = []
    for record in records:
        samples.extend(record.walk_latencies)
    if not samples:
        return {point: 0.0 for point in points}
    return percentiles(samples, points)


def result_to_dict(result: SimulationResult) -> Dict[str, object]:
    """Flatten a result to JSON-serialisable primitives."""
    data = asdict(result)
    data["latency_gap"] = result.latency_gap
    return data


def save_results(
    results: Union[SimulationResult, Sequence[SimulationResult]],
    path: Union[str, Path],
) -> None:
    """Write one or more results to ``path`` as a JSON document."""
    if isinstance(results, SimulationResult):
        results = [results]
    document = {
        "format": "repro-results",
        "version": 1,
        "results": [result_to_dict(result) for result in results],
    }
    Path(path).write_text(json.dumps(document, indent=2, default=str))


def bench_environment() -> Dict[str, Any]:
    """The machine/interpreter block every bench report carries.

    Informational provenance, never part of result identity: the
    regression gate compares ``data`` only and reports environment
    drift as context.
    """
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "processor": platform.processor(),
        "cpu_count": os.cpu_count(),
        "argv": list(sys.argv),
    }


def write_bench_report(
    bench: str, data: Dict[str, Any], path: Union[str, Path]
) -> Dict[str, Any]:
    """Write one benchmark payload in the unified ``BENCH_*`` envelope.

    Returns the full document (envelope + payload) so harnesses can
    print exactly what they wrote.
    """
    document: Dict[str, Any] = {
        "format": BENCH_FORMAT,
        "version": BENCH_VERSION,
        "bench": bench,
        "generated_at": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "environment": bench_environment(),
        "data": data,
    }
    Path(path).write_text(json.dumps(document, indent=2) + "\n")
    return document


def load_bench_report(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a ``BENCH_*.json`` file, tolerating the pre-envelope shape.

    Legacy files (raw payload, no envelope) come back wrapped in a
    minimal envelope with ``bench=None`` so downstream code always sees
    one schema.
    """
    document = json.loads(Path(path).read_text())
    if document.get("format") == BENCH_FORMAT:
        if "data" not in document:
            raise ValueError(f"{path} has the bench envelope but no data")
        return document
    return {
        "format": BENCH_FORMAT,
        "version": 0,
        "bench": None,
        "generated_at": None,
        "environment": {},
        "data": document,
    }


def load_results(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Read a results document written by :func:`save_results`.

    Returns plain dictionaries (not :class:`SimulationResult` objects):
    archived results are data for analysis, not live objects.
    """
    document = json.loads(Path(path).read_text())
    if document.get("format") != "repro-results":
        raise ValueError(f"{path} is not a repro-results file")
    return list(document["results"])
