"""Statistics: counters, histograms and derived per-run metrics."""

from repro.stats.counters import BucketHistogram
from repro.stats.metrics import (
    FIG3_BUCKETS,
    SimulationResult,
    geometric_mean,
    instruction_walk_histogram,
    latency_gap_stats,
)

__all__ = [
    "FIG3_BUCKETS",
    "BucketHistogram",
    "SimulationResult",
    "geometric_mean",
    "instruction_walk_histogram",
    "latency_gap_stats",
]
