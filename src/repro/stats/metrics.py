"""Derived, per-run metrics matching the paper's reported quantities."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.stats.counters import BucketHistogram

#: Fig 3's x-axis buckets: memory accesses for page walks per instruction.
FIG3_BUCKETS: Tuple[Tuple[int, int], ...] = (
    (1, 16),
    (17, 32),
    (33, 48),
    (49, 64),
    (65, 80),
    (81, 256),
)


def geometric_mean(values: Iterable[float]) -> float:
    """The geometric mean (the paper's average for speedups)."""
    values = list(values)
    if not values:
        raise ValueError("geometric mean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def instruction_walk_histogram(records) -> BucketHistogram:
    """Fig 3: bucket instructions by their total page-walk memory accesses.

    Instructions that required no page-table walk are excluded, as in the
    paper ("we excluded instructions that did not request any page table
    walks").
    """
    histogram = BucketHistogram(FIG3_BUCKETS)
    for record in records:
        if record.walk_accesses > 0:
            histogram.add(record.walk_accesses)
    return histogram


def latency_gap_stats(records) -> Tuple[float, float]:
    """Fig 6/10: mean latency of the first- and last-completed walk.

    Only instructions with at least two IOMMU-serviced walks are eligible
    (a single walk cannot interleave with itself).  Returns
    ``(mean_first, mean_last)`` in cycles; ``(0, 0)`` when no instruction
    qualifies.
    """
    first_total = 0
    last_total = 0
    count = 0
    for record in records:
        latencies = record.walk_latencies
        if len(latencies) < 2:
            continue
        first_total += min(latencies)
        last_total += max(latencies)
        count += 1
    if count == 0:
        return 0.0, 0.0
    return first_total / count, last_total / count


@dataclass
class SimulationResult:
    """Everything one simulation run reports.

    The experiment harness compares these across schedulers to regenerate
    the paper's figures.
    """

    workload: str
    scheduler: str
    total_cycles: int
    instructions: int
    wavefronts: int
    #: Sum of per-CU execution-stage stall cycles (Fig 9).
    stall_cycles: int
    #: Page-table walks dispatched to walkers (Fig 11 — TLB miss count).
    walks_dispatched: int
    #: Total page-table memory reads performed by walkers.
    walk_memory_accesses: int
    #: Fraction of multi-walk instructions with interleaved dispatch (Fig 5).
    interleaved_fraction: float
    #: Mean latency of first-completed walk per multi-walk instruction (Fig 6).
    first_walk_latency: float
    #: Mean latency of last-completed walk per multi-walk instruction (Fig 6).
    last_walk_latency: float
    #: Mean distinct wavefronts touching the GPU L2 TLB per epoch (Fig 12).
    wavefronts_per_epoch: float
    #: Fig 3 histogram: fraction of instructions per walk-work bucket.
    walk_work_fractions: List[float] = field(default_factory=list)
    #: Raw component statistics for drill-down (TLB/PWC/DRAM/cache rates).
    detail: Dict[str, object] = field(default_factory=dict)

    @property
    def latency_gap(self) -> float:
        """Mean last-minus-first walk latency per instruction (Fig 10)."""
        return self.last_walk_latency - self.first_walk_latency

    def speedup_over(self, baseline: "SimulationResult") -> float:
        """Speedup of this run relative to ``baseline`` (cycles ratio)."""
        if self.total_cycles <= 0:
            raise ValueError("run has no cycles")
        return baseline.total_cycles / self.total_cycles

    def summary(self) -> str:
        """A one-line human-readable digest."""
        return (
            f"{self.workload:>4s}/{self.scheduler:<6s} "
            f"cycles={self.total_cycles:>12,d} "
            f"walks={self.walks_dispatched:>8,d} "
            f"stall={self.stall_cycles:>12,d} "
            f"interleaved={self.interleaved_fraction:5.1%}"
        )
