"""Multi-application (shared-GPU) experiments: throughput and QoS.

The paper's conclusion invites follow-on work on page-walk scheduling
"for both performance and QoS", citing the memory-controller fairness
literature (ATLAS, STFM, PAR-BS).  This module provides the harness:
run several applications concurrently on one simulated GPU — their
wavefronts share the CUs round-robin and their translation streams
contend in the IOMMU — and report the standard multi-programme metrics:

* per-app **slowdown**: shared-run completion time / solo completion;
* **fairness**: min slowdown / max slowdown (1.0 = perfectly fair);
* **system throughput (STP)**: Σ 1/slowdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.config import SystemConfig, baseline_config
from repro.experiments.runner import MAX_CYCLES, build_system, run_simulation
from repro.workloads.base import Workload
from repro.workloads.registry import get_workload


@dataclass
class MultiAppResult:
    """Metrics of one shared-GPU run."""

    scheduler: str
    total_cycles: int
    #: Per-app completion time in the shared run (cycles).
    app_cycles: Dict[int, int]
    #: Per-app solo completion time (cycles), same config and trace.
    solo_cycles: Dict[int, int]
    workloads: List[str] = field(default_factory=list)

    @property
    def slowdowns(self) -> Dict[int, float]:
        return {
            app: self.app_cycles[app] / self.solo_cycles[app]
            for app in self.app_cycles
        }

    @property
    def fairness(self) -> float:
        """Min/max slowdown ratio; 1.0 means all apps suffer equally."""
        values = list(self.slowdowns.values())
        return min(values) / max(values)

    @property
    def system_throughput(self) -> float:
        """STP = Σ 1/slowdown (upper bound: the number of apps)."""
        return sum(1.0 / s for s in self.slowdowns.values())

    def summary(self) -> str:
        slowdowns = ", ".join(
            f"app{app}({name})={self.slowdowns[app]:.2f}x"
            for app, name in zip(sorted(self.app_cycles), self.workloads)
        )
        return (
            f"{self.scheduler:<9} cycles={self.total_cycles:>10,} "
            f"fairness={self.fairness:.3f} STP={self.system_throughput:.3f} "
            f"[{slowdowns}]"
        )


def _resolve(workload: Union[str, Workload], scale: float, seed: int) -> Workload:
    if isinstance(workload, Workload):
        return workload
    return get_workload(workload, scale=scale, seed=seed)


def run_multi_simulation(
    workloads: Sequence[Union[str, Workload]],
    config: Optional[SystemConfig] = None,
    scheduler: Optional[str] = None,
    wavefronts_per_app: int = 32,
    scale: float = 0.5,
    seed: int = 0,
    max_cycles: int = MAX_CYCLES,
) -> MultiAppResult:
    """Run several applications concurrently and compute QoS metrics.

    Each app contributes ``wavefronts_per_app`` wavefronts; dispatch
    interleaves apps round-robin so they contend from the start.  Solo
    baselines (for slowdowns) run each app alone under the same
    configuration and scheduler.
    """
    if len(workloads) < 2:
        raise ValueError("a multi-app run needs at least two workloads")
    config = config or baseline_config()
    if scheduler is not None:
        config = config.with_scheduler(scheduler, seed=seed)

    benches = [_resolve(w, scale, seed) for w in workloads]
    traces_per_app = [
        bench.build_trace(
            num_wavefronts=wavefronts_per_app,
            wavefront_size=config.gpu.wavefront_size,
        )
        for bench in benches
    ]

    # Interleave apps round-robin in dispatch order.
    interleaved, app_ids = [], []
    for slot in range(wavefronts_per_app):
        for app, traces in enumerate(traces_per_app):
            interleaved.append(traces[slot])
            app_ids.append(app)

    system = build_system(config)
    system.gpu.dispatch(interleaved, app_ids=app_ids)
    system.simulator.run(until=max_cycles)
    if not system.gpu.finished:
        raise RuntimeError("shared run did not finish within the cycle budget")

    solo = {
        app: run_simulation(
            bench,
            config=config,
            num_wavefronts=wavefronts_per_app,
            scale=scale,
            seed=seed,
        ).total_cycles
        for app, bench in enumerate(benches)
    }
    assert system.gpu.completion_time is not None
    return MultiAppResult(
        scheduler=system.iommu.scheduler.name,
        total_cycles=system.gpu.completion_time,
        app_cycles=dict(system.gpu.app_completion_time),
        solo_cycles=solo,
        workloads=[bench.abbrev for bench in benches],
    )


def qos_comparison(
    workloads: Sequence[Union[str, Workload]],
    schedulers: Sequence[str] = ("fcfs", "simt", "fairshare"),
    config: Optional[SystemConfig] = None,
    wavefronts_per_app: int = 32,
    scale: float = 0.5,
    seed: int = 0,
) -> Dict[str, MultiAppResult]:
    """Run the same co-schedule under several walk schedulers."""
    return {
        name: run_multi_simulation(
            workloads,
            config=config,
            scheduler=name,
            wavefronts_per_app=wavefronts_per_app,
            scale=scale,
            seed=seed,
        )
        for name in schedulers
    }
