"""Build a simulated system, run a workload on it, collect the metrics.

This is the library's main entry point::

    from repro import run_simulation

    result = run_simulation("MVT", scheduler="simt")
    print(result.summary())
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.config import SystemConfig, baseline_config
from repro.core.schedulers import WalkScheduler
from repro.engine.simulator import Simulator
from repro.gpu.gpu import GPU
from repro.memory.subsystem import MemorySubsystem
from repro.mmu.geometry import geometry_by_name
from repro.mmu.iommu import IOMMU
from repro.mmu.page_table import FrameAllocator, PageTable
from repro.stats.export import walk_latency_percentiles
from repro.stats.metrics import (
    SimulationResult,
    instruction_walk_histogram,
    latency_gap_stats,
)
from repro.workloads.base import Workload
from repro.workloads.registry import get_workload

#: Default number of wavefronts simulated per run: 2 waves of the
#: baseline GPU's 32 resident slots, so slot back-fill is exercised and
#: no single wavefront's tail dominates total cycles.
DEFAULT_WAVEFRONTS = 64

#: Safety valve: a run that exceeds this many cycles has almost certainly
#: deadlocked (a model bug), so fail loudly instead of spinning.
MAX_CYCLES = 2_000_000_000


@dataclass
class System:
    """The wired-together simulated machine."""

    simulator: Simulator
    config: SystemConfig
    page_table: PageTable
    memory: MemorySubsystem
    iommu: IOMMU
    gpu: GPU


def build_system(
    config: Optional[SystemConfig] = None,
    scheduler: Optional[WalkScheduler] = None,
) -> System:
    """Construct and wire every hardware model from a configuration.

    ``scheduler`` overrides the configuration's policy with a concrete
    :class:`~repro.core.schedulers.WalkScheduler` instance — used for
    policies outside the registry (e.g. the naive reference twins in
    :mod:`repro.core.reference`).
    """
    config = config or baseline_config()
    geometry = geometry_by_name(config.page_size)
    simulator = Simulator()
    page_table = PageTable(FrameAllocator(), geometry=geometry)
    memory = MemorySubsystem(simulator, config)
    iommu = IOMMU(
        simulator,
        config.iommu,
        page_table,
        page_table_read=memory.page_table_read,
        scheduler=scheduler,
        geometry=geometry,
    )
    gpu = GPU(simulator, config, memory, iommu)
    gpu.page_table = page_table
    return System(
        simulator=simulator,
        config=config,
        page_table=page_table,
        memory=memory,
        iommu=iommu,
        gpu=gpu,
    )


def _resolve_workload(
    workload: Union[str, Workload], scale: float, seed: int
) -> Workload:
    if isinstance(workload, Workload):
        return workload
    return get_workload(workload, scale=scale, seed=seed)


def run_simulation(
    workload: Union[str, Workload],
    config: Optional[SystemConfig] = None,
    scheduler: Optional[Union[str, WalkScheduler]] = None,
    num_wavefronts: int = DEFAULT_WAVEFRONTS,
    scale: float = 1.0,
    seed: int = 0,
    max_cycles: int = MAX_CYCLES,
) -> SimulationResult:
    """Simulate ``workload`` to completion and return its metrics.

    ``workload`` is a Table II abbreviation ("MVT") or a
    :class:`~repro.workloads.base.Workload` instance.  ``scheduler``
    overrides the configuration's walk-scheduling policy — either a
    registry name or a :class:`~repro.core.schedulers.WalkScheduler`
    instance (e.g. a naive reference twin).
    """
    config = config or baseline_config()
    scheduler_instance: Optional[WalkScheduler] = None
    if isinstance(scheduler, WalkScheduler):
        scheduler_instance = scheduler
    elif scheduler is not None:
        config = config.with_scheduler(scheduler, seed=seed)
    bench = _resolve_workload(workload, scale=scale, seed=seed)
    system = build_system(config, scheduler=scheduler_instance)

    traces = bench.build_trace(
        num_wavefronts=num_wavefronts,
        wavefront_size=config.gpu.wavefront_size,
    )
    system.gpu.dispatch(traces)
    wall_start = time.perf_counter()
    system.simulator.run(until=max_cycles)
    wall_seconds = time.perf_counter() - wall_start
    if not system.gpu.finished:
        raise RuntimeError(
            f"simulation of {bench.abbrev} did not finish within "
            f"{max_cycles} cycles ({system.simulator.pending_events} events pending)"
        )
    result = collect_result(system, bench)
    events = system.simulator.events_processed
    result.detail["engine"] = {
        "events_processed": events,
        "wall_seconds": wall_seconds,
        "events_per_sec": events / wall_seconds if wall_seconds > 0 else 0.0,
    }
    return result


def collect_result(system: System, workload: Workload) -> SimulationResult:
    """Assemble a :class:`SimulationResult` from a finished system."""
    gpu = system.gpu
    iommu = system.iommu
    records = gpu.instruction_records
    first_latency, last_latency = latency_gap_stats(records)
    histogram = instruction_walk_histogram(records)
    assert gpu.completion_time is not None
    return SimulationResult(
        workload=workload.abbrev,
        scheduler=iommu.scheduler.name,
        total_cycles=gpu.completion_time,
        instructions=len(records),
        wavefronts=gpu.wavefronts_launched,
        stall_cycles=gpu.total_stall_cycles,
        walks_dispatched=iommu.walks_dispatched,
        walk_memory_accesses=sum(w.memory_accesses for w in iommu.walkers),
        interleaved_fraction=iommu.interleaved_instruction_fraction(),
        first_walk_latency=first_latency,
        last_walk_latency=last_latency,
        wavefronts_per_epoch=gpu.mean_wavefronts_per_epoch,
        walk_work_fractions=histogram.fractions(),
        detail={
            "iommu": iommu.stats(),
            "memory": system.memory.stats(),
            "gpu_l2_tlb": gpu.l2_tlb.stats(),
            "mapped_pages": system.page_table.mapped_pages,
            "walk_latency_percentiles": walk_latency_percentiles(records),
        },
    )


def _run_one_spec(spec: Mapping[str, Any]) -> SimulationResult:
    """Top-level trampoline so run specs can cross a process boundary."""
    return run_simulation(**spec)


def run_many(
    specs: Sequence[Mapping[str, Any]],
    jobs: Optional[int] = None,
) -> List[SimulationResult]:
    """Run many simulations, optionally across worker processes.

    Each spec is a mapping of :func:`run_simulation` keyword arguments.
    With ``jobs`` > 1 the runs fan out over a
    :class:`~concurrent.futures.ProcessPoolExecutor`; each worker builds
    its own system from the (picklable) spec, so results are identical
    to the serial path — simulations share no mutable state.  Results
    come back in spec order either way.
    """
    specs = list(specs)
    if jobs is None or jobs <= 1 or len(specs) <= 1:
        return [_run_one_spec(spec) for spec in specs]
    with ProcessPoolExecutor(max_workers=min(jobs, len(specs))) as pool:
        return list(pool.map(_run_one_spec, specs))


def compare_schedulers(
    workload: Union[str, Workload],
    schedulers: Sequence[str] = ("fcfs", "simt"),
    config: Optional[SystemConfig] = None,
    num_wavefronts: int = DEFAULT_WAVEFRONTS,
    scale: float = 1.0,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> Dict[str, SimulationResult]:
    """Run the same workload under several schedulers.

    Each run gets a freshly-built system and an identical trace, so the
    only difference between results is the walk-scheduling policy.
    ``jobs`` > 1 runs the schedulers in parallel worker processes (one
    per scheduler, capped at ``jobs``); results are identical to the
    serial path.
    """
    specs = [
        {
            "workload": workload,
            "config": config,
            "scheduler": name,
            "num_wavefronts": num_wavefronts,
            "scale": scale,
            "seed": seed,
        }
        for name in schedulers
    ]
    results = run_many(specs, jobs=jobs)
    return dict(zip(schedulers, results))
