"""Build a simulated system, run a workload on it, collect the metrics.

This is the library's main entry point::

    from repro import run_simulation

    result = run_simulation("MVT", scheduler="simt")
    print(result.summary())

Sweeps run through :func:`run_many` (results, raising on the first
failure) or :func:`run_many_resilient` (one :class:`RunOutcome` per
spec: per-job worker processes, timeouts, bounded retry with
decorrelated-jitter backoff, crash isolation and optional on-disk
checkpointing — one dying worker loses one job, never the sweep).
The durable multi-process layer above this lives in
:mod:`repro.service`.
"""

from __future__ import annotations

import os
import random
import threading
import time
import traceback as traceback_module
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.config import SystemConfig, baseline_config
from repro.core.schedulers import WalkScheduler, available_schedulers
from repro.engine.checkpoint import (
    CheckpointError,
    load_checkpoint_file,
    save_checkpoint_file,
)
from repro.engine.simulator import Simulator
from repro.gpu.gpu import GPU
from repro.memory.subsystem import MemorySubsystem
from repro.mmu.geometry import geometry_by_name
from repro.mmu.iommu import IOMMU
from repro.mmu.page_table import FrameAllocator, PageTable
from repro.obs.fleet import FleetTelemetry
from repro.obs.metrics import (
    DEFAULT_SAMPLE_INTERVAL_EVENTS,
    MetricsRegistry,
    finalize_standard_metrics,
    install_standard_metrics,
)
from repro.obs.profiler import PhaseProfiler
from repro.obs.trace import TraceConfig, Tracer, build_tracer
from repro.resilience.faults import build_injector
from repro.resilience.outcomes import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMEOUT,
    CheckpointStore,
    RunOutcome,
    SpecExecutionError,
    describe_spec,
)
from repro.resilience.watchdog import (
    DEFAULT_CHECK_INTERVAL_EVENTS,
    Watchdog,
    WatchdogError,
)
from repro.stats.export import walk_latency_percentiles
from repro.stats.metrics import (
    SimulationResult,
    instruction_walk_histogram,
    latency_gap_stats,
)
from repro.workloads.base import Workload
from repro.workloads.registry import get_workload

#: Default number of wavefronts simulated per run: 2 waves of the
#: baseline GPU's 32 resident slots, so slot back-fill is exercised and
#: no single wavefront's tail dominates total cycles.
DEFAULT_WAVEFRONTS = 64

#: Safety valve: a run that exceeds this many cycles has almost certainly
#: deadlocked (a model bug), so fail loudly instead of spinning.
MAX_CYCLES = 2_000_000_000

#: Default base delay for the resilient sweep's retry backoff (seconds).
RETRY_BACKOFF_SECONDS = 0.25

#: Ceiling on any single retry delay (seconds).
RETRY_BACKOFF_CAP_SECONDS = 30.0


@dataclass
class System:
    """The wired-together simulated machine."""

    simulator: Simulator
    config: SystemConfig
    page_table: PageTable
    memory: MemorySubsystem
    iommu: IOMMU
    gpu: GPU
    #: Lifecycle tracer when the system was built with a
    #: :class:`~repro.obs.trace.TraceConfig`; None otherwise.
    tracer: Optional[Tracer] = None
    #: Wall-clock phase profiler when built with ``profile=True``.
    profiler: Optional[PhaseProfiler] = None


def build_system(
    config: Optional[SystemConfig] = None,
    scheduler: Optional[WalkScheduler] = None,
    trace: Optional[TraceConfig] = None,
    profile: bool = False,
) -> System:
    """Construct and wire every hardware model from a configuration.

    ``scheduler`` overrides the configuration's policy with a concrete
    :class:`~repro.core.schedulers.WalkScheduler` instance — used for
    policies outside the registry (e.g. the naive reference twins in
    :mod:`repro.core.reference`).

    When the configuration carries a non-empty
    :class:`~repro.resilience.faults.FaultPlan`, a fault injector is
    wired through the IOMMU, walkers and memory subsystem and its timed
    faults are armed on the simulator clock.  Without one, every hook
    stays None and the models run their original fast paths.

    ``trace`` wires a :class:`~repro.obs.trace.Tracer` through every
    model (same injector pattern: ``trace=None`` keeps every hook None
    and the hot paths untouched).  ``profile=True`` attaches a
    :class:`~repro.obs.profiler.PhaseProfiler` that apportions wall
    time between the scheduler's select and the memory model.
    """
    config = config or baseline_config()
    geometry = geometry_by_name(config.page_size)
    simulator = Simulator()
    injector = build_injector(config.faults)
    tracer = build_tracer(trace)
    profiler = PhaseProfiler() if profile else None
    page_table = PageTable(FrameAllocator(), geometry=geometry)
    memory = MemorySubsystem(
        simulator, config, injector=injector, tracer=tracer, profiler=profiler
    )
    iommu = IOMMU(
        simulator,
        config.iommu,
        page_table,
        page_table_read=memory.page_table_read,
        scheduler=scheduler,
        geometry=geometry,
        injector=injector,
        tracer=tracer,
        profiler=profiler,
    )
    gpu = GPU(simulator, config, memory, iommu, tracer=tracer)
    gpu.page_table = page_table
    system = System(
        simulator=simulator,
        config=config,
        page_table=page_table,
        memory=memory,
        iommu=iommu,
        gpu=gpu,
        tracer=tracer,
        profiler=profiler,
    )
    if injector is not None:
        injector.tracer = tracer
        injector.arm(system)
    return system


def _resolve_workload(
    workload: Union[str, Workload], scale: float, seed: int
) -> Workload:
    if isinstance(workload, Workload):
        return workload
    return get_workload(workload, scale=scale, seed=seed)


def _validate_run_args(
    scheduler: Optional[Union[str, WalkScheduler]],
    num_wavefronts: int,
    scale: float,
    max_cycles: int,
    watchdog_cycles: Optional[int],
    trace: Optional[TraceConfig] = None,
    trace_path: Optional[str] = None,
    trace_jsonl_path: Optional[str] = None,
    metrics_interval_events: int = DEFAULT_SAMPLE_INTERVAL_EVENTS,
) -> None:
    """API-boundary validation: bad inputs fail here with a clear
    ``ValueError``, not cycles later inside a hardware model."""
    if num_wavefronts <= 0:
        raise ValueError(f"num_wavefronts must be positive, got {num_wavefronts}")
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    if max_cycles <= 0:
        raise ValueError(f"max_cycles must be positive, got {max_cycles}")
    if isinstance(scheduler, str) and scheduler not in available_schedulers():
        raise ValueError(
            f"unknown scheduler {scheduler!r}; "
            f"available: {', '.join(available_schedulers())}"
        )
    if watchdog_cycles is not None and watchdog_cycles <= 0:
        raise ValueError(
            f"watchdog_cycles must be positive, got {watchdog_cycles}"
        )
    if trace is not None and not isinstance(trace, TraceConfig):
        raise ValueError(
            f"trace must be a TraceConfig or None, got {type(trace).__name__}"
        )
    if trace is None and (trace_path or trace_jsonl_path):
        raise ValueError(
            "trace_path/trace_jsonl_path need trace=TraceConfig(...) to "
            "produce anything; pass a trace configuration"
        )
    if metrics_interval_events <= 0:
        raise ValueError(
            f"metrics_interval_events must be positive, "
            f"got {metrics_interval_events}"
        )


# ----------------------------------------------------------------------
# In-run checkpointing
# ----------------------------------------------------------------------


def snapshot_system(system: System) -> Dict[str, Any]:
    """Gather every component's plain-data state into one dict.

    The dict must be pickled in a *single* pass (see
    :mod:`repro.engine.checkpoint`): walk-buffer entries, in-flight
    requests and instruction records are shared by identity between the
    component states and the event-queue payloads.
    """
    state: Dict[str, Any] = {
        "simulator": system.simulator.snapshot(),
        "page_table": system.page_table.snapshot(),
        "memory": system.memory.snapshot(),
        "iommu": system.iommu.snapshot(),
        "gpu": system.gpu.snapshot(),
    }
    if system.iommu.injector is not None:
        state["injector"] = system.iommu.injector.snapshot()
    if system.tracer is not None:
        state["tracer"] = system.tracer.snapshot()
    return state


def restore_system(system: System, state: Dict[str, Any]) -> None:
    """Adopt a :func:`snapshot_system` dict into a freshly built system.

    The system must have been built from the checkpoint's own config
    (same component shapes); monitors must already be installed in the
    same order as the checkpointing run, because the simulator restores
    their countdowns positionally.
    """
    system.simulator.restore(state["simulator"])
    system.page_table.restore(state["page_table"])
    system.memory.restore(state["memory"])
    system.iommu.restore(state["iommu"])
    system.gpu.restore(state["gpu"])
    if "injector" in state:
        if system.iommu.injector is None:
            raise CheckpointError(
                "checkpoint carries fault-injector state but the rebuilt "
                "system has no injector (config mismatch)"
            )
        system.iommu.injector.restore(state["injector"])
    if "tracer" in state:
        if system.tracer is None:
            raise CheckpointError(
                "checkpoint carries tracer state but the rebuilt system "
                "has no tracer (pass the same trace configuration)"
            )
        system.tracer.restore(state["tracer"])


def _checkpoint_state(
    system: System,
    watchdog: Optional[Watchdog],
    registry: Optional[MetricsRegistry],
) -> Dict[str, Any]:
    state = {"system": snapshot_system(system)}
    if watchdog is not None:
        state["watchdog"] = watchdog.snapshot()
    if registry is not None:
        state["metrics"] = registry.snapshot()
    return state


def _write_run_checkpoint(
    path: str,
    system: System,
    watchdog: Optional[Watchdog],
    registry: Optional[MetricsRegistry],
    meta: Dict[str, Any],
) -> None:
    save_checkpoint_file(
        path,
        system.config,
        _checkpoint_state(system, watchdog, registry),
        meta=dict(
            meta,
            cycle=system.simulator.now,
            events_processed=system.simulator.events_processed,
        ),
    )


def run_simulation(
    workload: Union[str, Workload],
    config: Optional[SystemConfig] = None,
    scheduler: Optional[Union[str, WalkScheduler]] = None,
    num_wavefronts: int = DEFAULT_WAVEFRONTS,
    scale: float = 1.0,
    seed: int = 0,
    max_cycles: int = MAX_CYCLES,
    watchdog_cycles: Optional[int] = None,
    watchdog_interval_events: int = DEFAULT_CHECK_INTERVAL_EVENTS,
    trace: Optional[TraceConfig] = None,
    trace_path: Optional[str] = None,
    trace_jsonl_path: Optional[str] = None,
    metrics: bool = False,
    metrics_interval_events: int = DEFAULT_SAMPLE_INTERVAL_EVENTS,
    profile: bool = False,
    checkpoint_every: Optional[int] = None,
    checkpoint_path: Optional[str] = None,
) -> SimulationResult:
    """Simulate ``workload`` to completion and return its metrics.

    ``workload`` is a Table II abbreviation ("MVT") or a
    :class:`~repro.workloads.base.Workload` instance.  ``scheduler``
    overrides the configuration's walk-scheduling policy — either a
    registry name or a :class:`~repro.core.schedulers.WalkScheduler`
    instance (e.g. a naive reference twin).

    ``watchdog_cycles`` enables the forward-progress watchdog: if no
    instruction retires for that many cycles — or a conservation
    invariant breaks — the run fails with a
    :class:`~repro.resilience.watchdog.WatchdogError` carrying a full
    :class:`~repro.resilience.watchdog.DeadlockDiagnosis` instead of
    spinning until ``max_cycles``.

    Observability (all off by default, zero-overhead when off):

    * ``trace`` — a :class:`~repro.obs.trace.TraceConfig`; records walk
      and instruction lifecycle events into a ring buffer.  The trace
      summary lands in ``result.detail["trace"]``; ``trace_path`` also
      writes a Chrome/Perfetto ``trace_event`` JSON file and
      ``trace_jsonl_path`` a JSON-lines dump.  Timestamps are simulation
      cycles, so traces are deterministic.
    * ``metrics=True`` — samples a live :class:`MetricsRegistry`
      (pending-walk depth, walker occupancy, scheduler counters, DRAM
      queue depth) every ``metrics_interval_events`` fired events;
      dumped into ``result.detail["metrics"]``.
    * ``profile=True`` — wall-clock phase profiler; its report lands in
      ``result.detail["profile"]``.

    In-run checkpointing: ``checkpoint_every=N`` dumps the complete
    simulation state to ``checkpoint_path`` every N fired events (and on
    a watchdog trip), so :func:`resume_simulation` can continue the run
    bit-identically after an interruption.
    """
    _validate_run_args(
        scheduler, num_wavefronts, scale, max_cycles, watchdog_cycles,
        trace=trace, trace_path=trace_path, trace_jsonl_path=trace_jsonl_path,
        metrics_interval_events=metrics_interval_events,
    )
    if checkpoint_every is not None:
        if checkpoint_every <= 0:
            raise ValueError(
                f"checkpoint_every must be positive, got {checkpoint_every}"
            )
        if not checkpoint_path:
            raise ValueError("checkpoint_every needs a checkpoint_path")
        if isinstance(scheduler, WalkScheduler):
            raise ValueError(
                "in-run checkpointing needs a registry scheduler name "
                "(a resume rebuilds the scheduler from the config)"
            )
        if profile:
            raise ValueError(
                "in-run checkpointing and profile=True are mutually "
                "exclusive (wall-clock phase totals cannot be resumed)"
            )
    config = config or baseline_config()
    scheduler_instance: Optional[WalkScheduler] = None
    if isinstance(scheduler, WalkScheduler):
        scheduler_instance = scheduler
    elif scheduler is not None:
        config = config.with_scheduler(scheduler, seed=seed)
    bench = _resolve_workload(workload, scale=scale, seed=seed)
    system = build_system(
        config, scheduler=scheduler_instance, trace=trace, profile=profile
    )

    watchdog: Optional[Watchdog] = None
    if watchdog_cycles is not None:
        watchdog = Watchdog(
            system,
            stall_cycles=watchdog_cycles,
            check_interval_events=watchdog_interval_events,
        )
        watchdog.install()

    registry: Optional[MetricsRegistry] = None
    if metrics:
        registry = MetricsRegistry()
        system.simulator.add_monitor(
            install_standard_metrics(system, registry), metrics_interval_events
        )

    meta: Dict[str, Any] = {
        "workload": bench.abbrev,
        "num_wavefronts": num_wavefronts,
        "scale": scale,
        "seed": seed,
        "max_cycles": max_cycles,
        "watchdog_cycles": watchdog_cycles,
        "watchdog_interval_events": watchdog_interval_events,
        "metrics": metrics,
        "metrics_interval_events": metrics_interval_events,
        "trace": trace,
    }
    if checkpoint_every is not None:
        system.simulator.add_monitor(
            lambda: _write_run_checkpoint(
                checkpoint_path, system, watchdog, registry, meta
            ),
            checkpoint_every,
        )

    traces = bench.build_trace(
        num_wavefronts=num_wavefronts,
        wavefront_size=config.gpu.wavefront_size,
    )
    system.gpu.dispatch(traces)
    wall_start = time.perf_counter()
    try:
        system.simulator.run(until=max_cycles)
    except WatchdogError:
        _dump_crash_checkpoint(checkpoint_path, system, watchdog, registry, meta)
        raise
    wall_seconds = time.perf_counter() - wall_start
    return _finish_run(
        system, bench.abbrev, watchdog, registry, wall_seconds, max_cycles,
        trace=trace, trace_path=trace_path, trace_jsonl_path=trace_jsonl_path,
        checkpoint_path=checkpoint_path, checkpoint_meta=meta,
    )


def _dump_crash_checkpoint(
    checkpoint_path: Optional[str],
    system: System,
    watchdog: Optional[Watchdog],
    registry: Optional[MetricsRegistry],
    meta: Dict[str, Any],
) -> None:
    """Best-effort checkpoint next to a watchdog diagnosis.

    Never masks the diagnosis: serialisation problems are swallowed —
    the caller is already raising the real error.
    """
    if checkpoint_path is None:
        return
    try:
        _write_run_checkpoint(checkpoint_path, system, watchdog, registry, meta)
    except Exception:
        pass


def _finish_run(
    system: System,
    abbrev: str,
    watchdog: Optional[Watchdog],
    registry: Optional[MetricsRegistry],
    wall_seconds: float,
    max_cycles: int,
    trace: Optional[TraceConfig] = None,
    trace_path: Optional[str] = None,
    trace_jsonl_path: Optional[str] = None,
    checkpoint_path: Optional[str] = None,
    checkpoint_meta: Optional[Dict[str, Any]] = None,
) -> SimulationResult:
    """Shared post-run path: completion checks, result assembly, exports."""
    if not system.gpu.finished:
        drained = system.simulator.pending_events == 0
        reason = (
            f"event queue drained at cycle {system.simulator.now:,d} "
            f"with work outstanding (deadlock)"
            if drained
            else f"still running after max_cycles={max_cycles:,d}"
        )
        if watchdog is not None:
            diagnosis = watchdog.diagnose(reason)
            _dump_crash_checkpoint(
                checkpoint_path, system, watchdog, registry,
                checkpoint_meta or {},
            )
            raise WatchdogError(diagnosis)
        raise RuntimeError(
            f"simulation of {abbrev} did not finish: {reason} "
            f"({system.simulator.pending_events} events pending; pass "
            f"watchdog_cycles= for a structured diagnosis)"
        )
    if watchdog is not None:
        # Success path: one last conservation sweep so silent model bugs
        # cannot hide behind a run that happened to terminate.
        watchdog.final_check()
    result = collect_result(system, abbrev)
    events = system.simulator.events_processed
    result.detail["engine"] = {
        "events_processed": events,
        "wall_seconds": wall_seconds,
        "events_per_sec": events / wall_seconds if wall_seconds > 0 else 0.0,
    }
    if system.iommu.injector is not None:
        result.detail["faults"] = system.iommu.injector.stats()
    tracer = system.tracer
    if tracer is not None:
        trace_detail: Dict[str, Any] = tracer.summary()
        if trace_path:
            tracer.write_chrome(trace_path)
            trace_detail["chrome_path"] = trace_path
        if trace_jsonl_path:
            tracer.write_jsonl(trace_jsonl_path)
            trace_detail["jsonl_path"] = trace_jsonl_path
        if trace is not None and trace.embed_events:
            trace_detail["events"] = tracer.events()
        result.detail["trace"] = trace_detail
    if registry is not None:
        finalize_standard_metrics(system, registry)
        result.detail["metrics"] = registry.as_dict()
    if system.profiler is not None:
        result.detail["profile"] = system.profiler.report(wall_seconds)
    return result


def resume_simulation(
    checkpoint_path: str,
    max_cycles: Optional[int] = None,
    checkpoint_every: Optional[int] = None,
    trace_path: Optional[str] = None,
    trace_jsonl_path: Optional[str] = None,
) -> SimulationResult:
    """Continue an interrupted run from an in-run checkpoint.

    Rebuilds the system from the checkpoint's own config, re-installs
    the same monitors in the same order, restores every component's
    state — including the pending event queue — and runs to completion.
    The returned result is bit-identical (up to wall-clock fields) to
    the result the uninterrupted run would have produced.

    ``checkpoint_every`` re-arms periodic checkpointing on the resumed
    run, overwriting ``checkpoint_path`` — the resumed run checkpoints
    on the *same* event cadence as the original (the monitor's countdown
    is part of the checkpoint), so chains of interruptions compose.
    """
    payload = load_checkpoint_file(checkpoint_path)
    config: SystemConfig = payload["config"]
    meta: Dict[str, Any] = payload["meta"]
    state: Dict[str, Any] = payload["state"]

    system = build_system(config, trace=meta.get("trace"))

    watchdog: Optional[Watchdog] = None
    if meta.get("watchdog_cycles") is not None:
        watchdog = Watchdog(
            system,
            stall_cycles=meta["watchdog_cycles"],
            check_interval_events=meta.get(
                "watchdog_interval_events", DEFAULT_CHECK_INTERVAL_EVENTS
            ),
        )
        watchdog.install()

    registry: Optional[MetricsRegistry] = None
    if meta.get("metrics"):
        registry = MetricsRegistry()
        system.simulator.add_monitor(
            install_standard_metrics(system, registry),
            meta.get("metrics_interval_events", DEFAULT_SAMPLE_INTERVAL_EVENTS),
        )

    if checkpoint_every is not None:
        if checkpoint_every <= 0:
            raise ValueError(
                f"checkpoint_every must be positive, got {checkpoint_every}"
            )
        system.simulator.add_monitor(
            lambda: _write_run_checkpoint(
                checkpoint_path, system, watchdog, registry, meta
            ),
            checkpoint_every,
        )

    # Restore AFTER the monitors exist: the simulator re-applies their
    # saved countdowns positionally.
    restore_system(system, state["system"])
    if watchdog is not None and "watchdog" in state:
        watchdog.restore(state["watchdog"])
    if registry is not None and "metrics" in state:
        registry.restore(state["metrics"])

    run_until = max_cycles if max_cycles is not None else meta["max_cycles"]
    wall_start = time.perf_counter()
    try:
        system.simulator.run(until=run_until)
    except WatchdogError:
        _dump_crash_checkpoint(checkpoint_path, system, watchdog, registry, meta)
        raise
    wall_seconds = time.perf_counter() - wall_start
    trace_cfg = meta.get("trace")
    return _finish_run(
        system, meta["workload"], watchdog, registry, wall_seconds, run_until,
        trace=trace_cfg, trace_path=trace_path,
        trace_jsonl_path=trace_jsonl_path,
        checkpoint_path=checkpoint_path, checkpoint_meta=meta,
    )


def collect_result(
    system: System, workload: Union[str, Workload]
) -> SimulationResult:
    """Assemble a :class:`SimulationResult` from a finished system.

    ``workload`` is the executed workload or just its abbreviation (all
    the result needs) — resumed runs only carry the latter.
    """
    gpu = system.gpu
    iommu = system.iommu
    records = gpu.instruction_records
    first_latency, last_latency = latency_gap_stats(records)
    histogram = instruction_walk_histogram(records)
    assert gpu.completion_time is not None
    return SimulationResult(
        workload=getattr(workload, "abbrev", workload),
        scheduler=iommu.scheduler.name,
        total_cycles=gpu.completion_time,
        instructions=len(records),
        wavefronts=gpu.wavefronts_launched,
        stall_cycles=gpu.total_stall_cycles,
        walks_dispatched=iommu.walks_dispatched,
        walk_memory_accesses=sum(w.memory_accesses for w in iommu.walkers),
        interleaved_fraction=iommu.interleaved_instruction_fraction(),
        first_walk_latency=first_latency,
        last_walk_latency=last_latency,
        wavefronts_per_epoch=gpu.mean_wavefronts_per_epoch,
        walk_work_fractions=histogram.fractions(),
        detail={
            "iommu": iommu.stats(),
            "memory": system.memory.stats(),
            "gpu_l2_tlb": gpu.l2_tlb.stats(),
            "mapped_pages": system.page_table.mapped_pages,
            "walk_latency_percentiles": walk_latency_percentiles(records),
        },
    )


def _run_one_spec(spec: Mapping[str, Any]) -> SimulationResult:
    """Top-level trampoline so run specs can cross a process boundary.

    A spec carrying in-run checkpoint arguments resumes from its
    checkpoint file when one exists (a previous attempt died mid-run);
    otherwise it starts from the beginning.  An unreadable checkpoint —
    e.g. the previous owner was SIGKILLed mid-dump on a filesystem
    where the dump wasn't yet atomic-renamed, or the file predates the
    current format — is discarded and the run restarts from scratch:
    losing progress beats wedging the spec forever.
    """
    path = spec.get("checkpoint_path")
    if path and spec.get("checkpoint_every") and os.path.exists(path):
        try:
            return resume_simulation(
                path, checkpoint_every=spec["checkpoint_every"]
            )
        except CheckpointError:
            try:
                os.unlink(path)
            except OSError:
                pass
    return run_simulation(**spec)


# ----------------------------------------------------------------------
# Resilient sweep execution
# ----------------------------------------------------------------------


def _spec_worker(
    conn, spec: Mapping[str, Any], heartbeat_seconds: Optional[float] = None
) -> None:
    """Child-process entry: run one spec, ship the verdict up the pipe.

    With ``heartbeat_seconds`` set (fleet telemetry enabled), a daemon
    thread periodically piggybacks ``("hb", {...})`` liveness pings on
    the same result pipe; the parent relays them to the
    :class:`~repro.obs.fleet.FleetTelemetry` collector.  Heartbeats are
    wall-clock bookkeeping around the simulation, never inside it, so
    results stay bit-identical with telemetry on or off.
    """
    send_lock = threading.Lock()
    stop_beating: Optional[threading.Event] = None
    if heartbeat_seconds is not None:
        stop_beating = threading.Event()
        started = time.monotonic()

        def beat() -> None:
            while not stop_beating.wait(heartbeat_seconds):
                try:
                    with send_lock:
                        conn.send(
                            (
                                "hb",
                                {
                                    "pid": os.getpid(),
                                    "elapsed_seconds": round(
                                        time.monotonic() - started, 3
                                    ),
                                },
                            )
                        )
                except Exception:
                    return  # pipe gone: the parent stopped listening

        threading.Thread(target=beat, daemon=True).start()
    try:
        result = _run_one_spec(spec)
        if stop_beating is not None:
            stop_beating.set()
        with send_lock:
            conn.send(("ok", result))
    except BaseException as exc:  # report *everything*, then die quietly
        if stop_beating is not None:
            stop_beating.set()
        try:
            with send_lock:
                conn.send(
                    (
                        "error",
                        type(exc).__name__,
                        str(exc),
                        traceback_module.format_exc(),
                    )
                )
        except Exception:
            pass
    finally:
        conn.close()


class _LiveJob:
    """One spec attempt currently running in a child process."""

    __slots__ = ("index", "spec", "attempt", "process", "conn", "deadline", "started")

    def __init__(self, index, spec, attempt, process, conn, deadline, started):
        self.index = index
        self.spec = spec
        self.attempt = attempt
        self.process = process
        self.conn = conn
        self.deadline = deadline
        self.started = started


def _backoff_delay(
    previous: float,
    base: float,
    cap: float = RETRY_BACKOFF_CAP_SECONDS,
    rng: Optional[random.Random] = None,
) -> float:
    """Decorrelated-jitter retry delay: ``min(cap, U(base, 3*prev))``.

    Flat exponential backoff retries in lockstep: every spec re-queued
    off one dead worker would wake at the same instant and stampede the
    shared checkpoint directory (and, at service scale, the queue's
    rename hot path).  Decorrelated jitter spreads the herd — each delay
    is drawn from a range that grows with the *previous* delay, so
    consecutive failures still back off exponentially on average while
    never synchronising.  Wall-clock only; simulated results are
    untouched.
    """
    draw = (rng.uniform if rng is not None else random.uniform)(
        base, max(base, previous * 3.0)
    )
    return min(cap, draw)


def run_many_resilient(
    specs: Sequence[Mapping[str, Any]],
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: int = 0,
    backoff_seconds: float = RETRY_BACKOFF_SECONDS,
    checkpoint: Optional[str] = None,
    telemetry: Optional[FleetTelemetry] = None,
    inrun_checkpoint_every: Optional[int] = None,
) -> List[RunOutcome]:
    """Run every spec, absorbing crashes; one :class:`RunOutcome` each.

    * ``jobs`` > 1 runs specs in parallel worker processes (one process
      per job, so a crash or OOM-kill takes down exactly one attempt).
    * ``timeout`` bounds each attempt in wall-clock seconds; an overdue
      worker is terminated and the job marked/retried.
    * ``retries`` re-runs a failed/crashed/timed-out job up to that many
      extra attempts, with decorrelated-jitter backoff from
      ``backoff_seconds`` (delays grow exponentially on average but are
      randomised so a batch of re-queued jobs never retries in
      lockstep).
    * ``checkpoint`` names a directory where successful results persist;
      a re-invocation with the same specs resumes from completed jobs.
    * ``inrun_checkpoint_every`` (needs ``checkpoint``) makes each run
      dump its full simulation state every N fired events into the
      checkpoint directory; a retry after a timeout or crash then
      *resumes from the middle* instead of starting the simulation over.
      Results are bit-identical to an uninterrupted run.
    * ``telemetry`` is a :class:`~repro.obs.fleet.FleetTelemetry`
      collector: every spec start/finish/retry/timeout — plus worker
      heartbeats on the process path — is reported as it happens.
      Telemetry observes the sweep from outside the simulations, so
      results are bit-identical with it on or off.

    Outcomes come back in spec order.  Serial runs without a timeout
    execute in-process (identical to :func:`run_simulation` in a loop);
    any parallelism or timeout switches to child processes — results are
    identical either way because workers run the same deterministic
    code on the same picklable specs.
    """
    if retries < 0:
        raise ValueError(f"retries must be non-negative, got {retries}")
    if timeout is not None and timeout <= 0:
        raise ValueError(f"timeout must be positive, got {timeout}")
    specs = [dict(spec) for spec in specs]
    outcomes: List[Optional[RunOutcome]] = [None] * len(specs)
    store = CheckpointStore(checkpoint) if checkpoint else None

    inrun_paths: List[Optional[str]] = [None] * len(specs)
    if inrun_checkpoint_every is not None:
        if inrun_checkpoint_every <= 0:
            raise ValueError(
                f"inrun_checkpoint_every must be positive, "
                f"got {inrun_checkpoint_every}"
            )
        if store is None:
            raise ValueError(
                "inrun_checkpoint_every needs checkpoint= (a directory to "
                "keep the in-run state files in)"
            )
        inrun_paths = [str(store.inrun_path(spec)) for spec in specs]
    # The executed spec may carry extra in-run checkpoint arguments; the
    # *original* spec stays the identity for describe/store keying.
    exec_specs = [
        dict(spec, checkpoint_every=inrun_checkpoint_every, checkpoint_path=path)
        if path is not None
        else spec
        for spec, path in zip(specs, inrun_paths)
    ]

    todo: List[int] = []
    for index, spec in enumerate(specs):
        if store is not None:
            cached = store.load(spec)
            if cached is not None:
                outcomes[index] = RunOutcome(
                    index=index,
                    spec_summary=describe_spec(spec),
                    status=STATUS_OK,
                    result=cached,
                    attempts=0,
                    from_checkpoint=True,
                )
                continue
        todo.append(index)

    if telemetry is not None:
        telemetry.sweep_started(
            total=len(specs),
            jobs=1 if jobs is None else max(1, jobs),
            checkpointed=len(specs) - len(todo),
        )
        for index, outcome in enumerate(outcomes):
            if outcome is not None:
                telemetry.spec_finished(outcome)

    if todo:
        # Asking for jobs > 1 is asking for isolation, even on a single
        # remaining spec — never let a crashing job share our process.
        max_workers = 1 if jobs is None else max(1, jobs)
        use_processes = (jobs is not None and jobs > 1) or timeout is not None
        if use_processes:
            _run_in_processes(
                specs, exec_specs, inrun_paths, todo, outcomes, max_workers,
                timeout, retries, backoff_seconds, store, telemetry,
            )
        else:
            _run_in_process(
                specs, exec_specs, inrun_paths, todo, outcomes, retries,
                backoff_seconds, store, telemetry,
            )

    if telemetry is not None:
        telemetry.sweep_finished()
    assert all(outcome is not None for outcome in outcomes)
    return outcomes  # type: ignore[return-value]


def _finish_ok(
    outcomes, store, specs, index, result, attempt, started, telemetry=None,
    inrun_path=None,
) -> None:
    outcomes[index] = RunOutcome(
        index=index,
        spec_summary=describe_spec(specs[index]),
        status=STATUS_OK,
        result=result,
        attempts=attempt,
        elapsed_seconds=time.monotonic() - started,
    )
    if store is not None:
        store.store(specs[index], result)
    if inrun_path is not None:
        # The run finished; its mid-run state file is no longer needed.
        try:
            os.unlink(inrun_path)
        except OSError:
            pass
    if telemetry is not None:
        telemetry.spec_finished(outcomes[index])


def _run_in_process(
    specs, exec_specs, inrun_paths, todo, outcomes, retries, backoff_seconds,
    store, telemetry=None,
) -> None:
    """Serial fallback: same retry semantics, no process isolation."""
    for index in todo:
        started = time.monotonic()
        previous_delay = backoff_seconds
        for attempt in range(1, retries + 2):
            if telemetry is not None:
                telemetry.spec_started(
                    index, describe_spec(specs[index]), attempt
                )
            try:
                result = _run_one_spec(exec_specs[index])
            except Exception as exc:
                if attempt <= retries:
                    delay = _backoff_delay(previous_delay, backoff_seconds)
                    previous_delay = delay
                    if telemetry is not None:
                        telemetry.spec_retry(
                            index, describe_spec(specs[index]), attempt,
                            STATUS_FAILED, type(exc).__name__, str(exc),
                            delay,
                        )
                    time.sleep(delay)
                    continue
                outcomes[index] = RunOutcome(
                    index=index,
                    spec_summary=describe_spec(specs[index]),
                    status=STATUS_FAILED,
                    error=str(exc),
                    error_type=type(exc).__name__,
                    traceback=traceback_module.format_exc(),
                    attempts=attempt,
                    elapsed_seconds=time.monotonic() - started,
                )
                if telemetry is not None:
                    telemetry.spec_finished(outcomes[index])
                break
            else:
                _finish_ok(
                    outcomes, store, specs, index, result, attempt, started,
                    telemetry, inrun_path=inrun_paths[index],
                )
                break


def _run_in_processes(
    specs, exec_specs, inrun_paths, todo, outcomes, max_workers, timeout,
    retries, backoff_seconds, store, telemetry=None,
) -> None:
    """Process-per-job executor: crash isolation, timeouts, retries."""
    import multiprocessing as mp
    from multiprocessing.connection import wait as conn_wait

    ctx = mp.get_context()
    #: (ready_time, index, attempt) waiting to launch.
    queued: List[tuple] = [(0.0, index, 1) for index in todo]
    live: List[_LiveJob] = []
    #: First-attempt start per index, for elapsed accounting.
    first_started: Dict[int, float] = {}
    #: Last backoff delay per index, feeding the decorrelated jitter.
    last_delay: Dict[int, float] = {}
    heartbeat_seconds = (
        telemetry.heartbeat_seconds if telemetry is not None else None
    )

    def launch(index: int, attempt: int) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_spec_worker,
            args=(child_conn, exec_specs[index], heartbeat_seconds),
            daemon=True,
        )
        process.start()
        child_conn.close()
        now = time.monotonic()
        first_started.setdefault(index, now)
        live.append(
            _LiveJob(
                index=index,
                spec=specs[index],
                attempt=attempt,
                process=process,
                conn=parent_conn,
                deadline=(now + timeout) if timeout is not None else None,
                started=now,
            )
        )
        if telemetry is not None:
            telemetry.spec_started(index, describe_spec(specs[index]), attempt)

    def settle(job: _LiveJob, status: str, error_type, error, tb) -> None:
        """A job attempt ended badly: retry within budget or record it."""
        if job.attempt <= retries:
            delay = _backoff_delay(
                last_delay.get(job.index, backoff_seconds), backoff_seconds
            )
            last_delay[job.index] = delay
            queued.append((time.monotonic() + delay, job.index, job.attempt + 1))
            if telemetry is not None:
                telemetry.spec_retry(
                    job.index, describe_spec(job.spec), job.attempt,
                    status, error_type, error, delay,
                )
            return
        outcomes[job.index] = RunOutcome(
            index=job.index,
            spec_summary=describe_spec(job.spec),
            status=status,
            error=error,
            error_type=error_type,
            traceback=tb,
            attempts=job.attempt,
            elapsed_seconds=time.monotonic() - first_started[job.index],
        )
        if telemetry is not None:
            telemetry.spec_finished(outcomes[job.index])

    def reap(job: _LiveJob) -> None:
        live.remove(job)
        job.conn.close()
        job.process.join(timeout=5)
        if job.process.is_alive():  # terminate() ignored; escalate
            job.process.kill()
            job.process.join(timeout=5)

    try:
        while queued or live:
            now = time.monotonic()
            # Launch everything ready while worker slots are free.
            queued.sort()
            while queued and len(live) < max_workers and queued[0][0] <= now:
                _, index, attempt = queued.pop(0)
                launch(index, attempt)

            if not live:
                # Only backoff-delayed retries remain: sleep to the next.
                if queued:
                    time.sleep(max(0.0, queued[0][0] - time.monotonic()))
                continue

            # Wake on the first message, the nearest deadline, or the
            # nearest queued retry becoming ready.
            wake_at = [job.deadline for job in live if job.deadline is not None]
            if queued and len(live) < max_workers:
                wake_at.append(queued[0][0])
            wait_timeout = None
            if wake_at:
                wait_timeout = max(0.0, min(wake_at) - time.monotonic())
            ready = conn_wait([job.conn for job in live], timeout=wait_timeout)

            for conn in ready:
                job = next(j for j in live if j.conn is conn)
                try:
                    message = conn.recv()
                except EOFError:
                    # The worker died without reporting: crash isolation.
                    reap(job)
                    code = job.process.exitcode
                    settle(
                        job,
                        STATUS_FAILED,
                        "WorkerCrash",
                        f"worker process died with exit code {code}",
                        None,
                    )
                    continue
                if message[0] == "hb":
                    # Liveness ping piggybacked on the result pipe; the
                    # worker is still running, so keep it live.
                    if telemetry is not None:
                        telemetry.heartbeat(job.index, job.attempt, message[1])
                    continue
                reap(job)
                if message[0] == "ok":
                    _finish_ok(
                        outcomes, store, specs, job.index, message[1],
                        job.attempt, first_started[job.index], telemetry,
                        inrun_path=inrun_paths[job.index],
                    )
                else:
                    _, error_type, error, tb = message
                    settle(job, STATUS_FAILED, error_type, error, tb)

            # Enforce deadlines on whoever is still running.
            if timeout is not None:
                now = time.monotonic()
                for job in [j for j in live if j.deadline is not None and j.deadline <= now]:
                    job.process.terminate()
                    reap(job)
                    if telemetry is not None:
                        telemetry.spec_timeout(
                            job.index, describe_spec(job.spec), job.attempt,
                            timeout,
                        )
                    settle(
                        job,
                        STATUS_TIMEOUT,
                        "Timeout",
                        f"exceeded {timeout:g}s wall-clock budget",
                        None,
                    )
    finally:
        for job in live:
            job.process.terminate()
            job.conn.close()
            job.process.join(timeout=5)
            if job.process.is_alive():
                job.process.kill()


def run_many(
    specs: Sequence[Mapping[str, Any]],
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: int = 0,
    checkpoint: Optional[str] = None,
    return_outcomes: bool = False,
    telemetry: Optional[FleetTelemetry] = None,
    inrun_checkpoint_every: Optional[int] = None,
) -> Union[List[SimulationResult], List[RunOutcome]]:
    """Run many simulations, optionally across worker processes.

    Each spec is a mapping of :func:`run_simulation` keyword arguments.
    With ``jobs`` > 1 the runs fan out over per-job worker processes;
    each worker builds its own system from the (picklable) spec, so
    results are identical to the serial path — simulations share no
    mutable state.  Results come back in spec order either way.

    By default this returns plain :class:`SimulationResult`\\ s and
    raises :class:`~repro.resilience.outcomes.SpecExecutionError` —
    naming the failing spec and attaching the worker traceback — if any
    job ultimately fails.  Pass ``return_outcomes=True`` (or use
    :func:`run_many_resilient` directly) to receive one
    :class:`~repro.resilience.outcomes.RunOutcome` per spec instead,
    with failures recorded rather than raised.  ``timeout``, ``retries``,
    ``checkpoint`` and ``telemetry`` are forwarded to the resilient
    executor.
    """
    outcomes = run_many_resilient(
        specs, jobs=jobs, timeout=timeout, retries=retries,
        checkpoint=checkpoint, telemetry=telemetry,
        inrun_checkpoint_every=inrun_checkpoint_every,
    )
    if return_outcomes:
        return outcomes
    for outcome in outcomes:
        if not outcome.ok:
            raise SpecExecutionError(outcome)
    return [outcome.result for outcome in outcomes]


def scheduler_sweep_specs(
    workload: Union[str, Workload],
    schedulers: Sequence[str],
    config: Optional[SystemConfig] = None,
    num_wavefronts: int = DEFAULT_WAVEFRONTS,
    scale: float = 1.0,
    seed: int = 0,
) -> List[Dict[str, Any]]:
    """One :func:`run_simulation` spec per scheduler, identical otherwise."""
    return [
        {
            "workload": workload,
            "config": config,
            "scheduler": name,
            "num_wavefronts": num_wavefronts,
            "scale": scale,
            "seed": seed,
        }
        for name in schedulers
    ]


def compare_schedulers(
    workload: Union[str, Workload],
    schedulers: Sequence[str] = ("fcfs", "simt"),
    config: Optional[SystemConfig] = None,
    num_wavefronts: int = DEFAULT_WAVEFRONTS,
    scale: float = 1.0,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> Dict[str, SimulationResult]:
    """Run the same workload under several schedulers.

    Each run gets a freshly-built system and an identical trace, so the
    only difference between results is the walk-scheduling policy.
    ``jobs`` > 1 runs the schedulers in parallel worker processes (one
    per scheduler, capped at ``jobs``); results are identical to the
    serial path.
    """
    specs = scheduler_sweep_specs(
        workload,
        schedulers,
        config=config,
        num_wavefronts=num_wavefronts,
        scale=scale,
        seed=seed,
    )
    results = run_many(specs, jobs=jobs)
    return dict(zip(schedulers, results))
