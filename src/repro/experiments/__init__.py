"""Experiment harness: one entry point per paper figure and table."""

from repro.experiments.runner import (
    build_system,
    compare_schedulers,
    run_simulation,
)
from repro.experiments.multitenancy import (
    MultiAppResult,
    qos_comparison,
    run_multi_simulation,
)
from repro.experiments import figures
from repro.experiments import report

__all__ = [
    "MultiAppResult",
    "build_system",
    "compare_schedulers",
    "figures",
    "qos_comparison",
    "report",
    "run_multi_simulation",
    "run_simulation",
]
