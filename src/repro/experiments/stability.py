"""Seed-stability analysis: are the reported speedups robust?

A single-seed speedup can be a fluke of one trace.  This module re-runs
a workload/scheduler comparison across several seeds (each seed
re-generates the synthetic trace *and* re-seeds the random scheduler
where applicable) and summarises the distribution, so benches and papers
built on this repository can quote mean ± spread instead of a point
estimate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from repro.config import SystemConfig
from repro.experiments.runner import compare_schedulers
from repro.workloads.base import Workload


@dataclass
class StabilityReport:
    """Distribution of a speedup across seeds."""

    workload: str
    numerator: str
    denominator: str
    speedups: List[float]

    @property
    def mean(self) -> float:
        return sum(self.speedups) / len(self.speedups)

    @property
    def stdev(self) -> float:
        if len(self.speedups) < 2:
            return 0.0
        mean = self.mean
        variance = sum((s - mean) ** 2 for s in self.speedups) / (
            len(self.speedups) - 1
        )
        return math.sqrt(variance)

    @property
    def spread(self) -> float:
        """Max − min speedup across seeds."""
        return max(self.speedups) - min(self.speedups)

    def consistent_direction(self, threshold: float = 1.0) -> bool:
        """True when every seed lands on the same side of ``threshold``."""
        above = [s > threshold for s in self.speedups]
        return all(above) or not any(above)

    def summary(self) -> str:
        return (
            f"{self.workload}: {self.numerator}/{self.denominator} = "
            f"{self.mean:.3f} ± {self.stdev:.3f} "
            f"(n={len(self.speedups)}, spread={self.spread:.3f})"
        )


def seed_stability(
    workload: Union[str, Workload],
    seeds: Sequence[int] = (0, 1, 2),
    numerator: str = "simt",
    denominator: str = "fcfs",
    config: Optional[SystemConfig] = None,
    num_wavefronts: int = 32,
    scale: float = 0.25,
) -> StabilityReport:
    """Measure ``numerator``-over-``denominator`` speedup across seeds.

    Pass the workload by *name* to re-generate its trace per seed; a
    :class:`Workload` instance pins the trace, so only scheduler
    randomness (the random policy's RNG) varies across seeds.
    """
    if not seeds:
        raise ValueError("at least one seed is required")
    speedups: List[float] = []
    for seed in seeds:
        results = compare_schedulers(
            workload,
            schedulers=(denominator, numerator),
            config=config,
            num_wavefronts=num_wavefronts,
            scale=scale,
            seed=seed,
        )
        speedups.append(results[numerator].speedup_over(results[denominator]))
    name = workload if isinstance(workload, str) else workload.abbrev
    return StabilityReport(
        workload=name,
        numerator=numerator,
        denominator=denominator,
        speedups=speedups,
    )
