"""Plain-text rendering of experiment results, in the paper's shape.

These renderers take the dicts produced by
:mod:`repro.experiments.figures` and print aligned rows/series so a
terminal diff against the paper's figures is easy.  They are also what
the benchmark harness prints after each run.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence


def render_series(
    title: str,
    series: Mapping[str, float],
    value_label: str = "value",
    bars: bool = False,
    bar_width: int = 40,
) -> str:
    """One row per key: ``MVT   1.23`` (optionally with an ASCII bar)."""
    lines = [title, "=" * len(title)]
    width = max((len(str(key)) for key in series), default=4)
    lines.append(f"{'workload':<{width}}  {value_label}")
    peak = max(series.values(), default=0.0)
    for key, value in series.items():
        row = f"{str(key):<{width}}  {value:8.3f}"
        if bars and peak > 0:
            row += "  " + "█" * max(0, round(value / peak * bar_width))
        lines.append(row)
    return "\n".join(lines)


def render_grouped(
    title: str,
    grouped: Mapping[str, Mapping[str, float]],
    columns: Sequence[str] = (),
) -> str:
    """One row per outer key, one column per inner key."""
    lines = [title, "=" * len(title)]
    keys = list(grouped)
    if not keys:
        return "\n".join(lines + ["(no data)"])
    columns = list(columns) or list(grouped[keys[0]])
    width = max(len(str(k)) for k in keys)
    col_width = max(10, max(len(c) for c in columns) + 2)
    header = f"{'workload':<{width}}" + "".join(
        f"{c:>{col_width}}" for c in columns
    )
    lines.append(header)
    for key in keys:
        row = f"{str(key):<{width}}" + "".join(
            f"{grouped[key].get(c, float('nan')):>{col_width}.3f}" for c in columns
        )
        lines.append(row)
    return "\n".join(lines)


def render_table1(rows: Mapping[str, str]) -> str:
    """Table I in the paper's two-column layout."""
    lines = ["Table I: The baseline system configuration.", ""]
    width = max(len(k) for k in rows)
    for key, value in rows.items():
        lines.append(f"{key:<{width}}  {value}")
    return "\n".join(lines)


def render_table2(rows: List[Dict[str, object]]) -> str:
    """Table II: benchmark name, description and footprints."""
    lines = ["Table II: GPU benchmarks for our study.", ""]
    header = (
        f"{'Abbrev':<7}{'Suite':<11}{'Irregular':<10}"
        f"{'Paper MB':>10}{'Model MB':>10}  Description"
    )
    lines.append(header)
    for row in rows:
        lines.append(
            f"{row['abbrev']:<7}{row['suite']:<11}"
            f"{'yes' if row['irregular'] else 'no':<10}"
            f"{row['paper_footprint_mb']:>10.2f}"
            f"{row['modelled_footprint_mb']:>10.2f}  {row['description']}"
        )
    return "\n".join(lines)
