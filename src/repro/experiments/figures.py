"""One function per figure/table of the paper's evaluation.

Each ``fig*`` function runs the simulations it needs and returns plain
data (dicts keyed by workload abbreviation) shaped like the paper's
figure.  Rendering to text lives in :mod:`repro.experiments.report`; the
benchmark harness under ``benchmarks/`` calls these functions and prints
the same rows/series the paper reports.

Runs are memoised per (workload, scheduler, config-knobs, scale, seed)
within the process, because several figures share the same FCFS/SIMT
pairs (Figs 8–12 all reuse them).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import SystemConfig, baseline_config
from repro.experiments.runner import run_simulation
from repro.stats.metrics import FIG3_BUCKETS, SimulationResult, geometric_mean
from repro.workloads.registry import (
    IRREGULAR_WORKLOADS,
    REGULAR_WORKLOADS,
    all_workloads,
)

#: The four applications the paper uses for its motivation figures (2-6).
MOTIVATION_WORKLOADS: Tuple[str, ...] = ("MVT", "ATX", "BIC", "GEV")

#: Default run size for figure regeneration.
DEFAULT_SCALE = 1.0
DEFAULT_WAVEFRONTS = 64


@lru_cache(maxsize=None)
def _run(
    workload: str,
    scheduler: str,
    scale: float,
    num_wavefronts: int,
    seed: int,
    l2_tlb_entries: Optional[int] = None,
    num_walkers: Optional[int] = None,
    buffer_entries: Optional[int] = None,
) -> SimulationResult:
    config: SystemConfig = baseline_config()
    if l2_tlb_entries is not None:
        config = config.with_l2_tlb_entries(l2_tlb_entries)
    if num_walkers is not None:
        config = config.with_walkers(num_walkers)
    if buffer_entries is not None:
        config = config.with_iommu_buffer(buffer_entries)
    return run_simulation(
        workload,
        config=config,
        scheduler=scheduler,
        num_wavefronts=num_wavefronts,
        scale=scale,
        seed=seed,
    )


def clear_run_cache() -> None:
    """Drop memoised simulation results (tests use this for isolation)."""
    _run.cache_clear()


# ----------------------------------------------------------------------
# Motivation figures (Section III)
# ----------------------------------------------------------------------


def fig2_scheduler_impact(
    scale: float = DEFAULT_SCALE,
    num_wavefronts: int = DEFAULT_WAVEFRONTS,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Fig 2: speedup of Random/FCFS/SIMT-aware, normalised to Random.

    Returns ``{workload: {"random": 1.0, "fcfs": ..., "simt": ...}}``.
    """
    out: Dict[str, Dict[str, float]] = {}
    for workload in MOTIVATION_WORKLOADS:
        runs = {
            name: _run(workload, name, scale, num_wavefronts, seed)
            for name in ("random", "fcfs", "simt")
        }
        base = runs["random"]
        out[workload] = {
            name: result.speedup_over(base) for name, result in runs.items()
        }
    return out


def fig3_walk_work_distribution(
    scale: float = DEFAULT_SCALE,
    num_wavefronts: int = DEFAULT_WAVEFRONTS,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Fig 3: per-instruction page-walk memory-access distribution (FCFS).

    Returns ``{workload: {"1-16": f, ..., "81-256": f}}`` — the fraction
    of (walk-generating) SIMD instructions per work bucket.
    """
    labels = [f"{low}-{high}" for low, high in FIG3_BUCKETS]
    out: Dict[str, Dict[str, float]] = {}
    for workload in MOTIVATION_WORKLOADS:
        result = _run(workload, "fcfs", scale, num_wavefronts, seed)
        out[workload] = dict(zip(labels, result.walk_work_fractions))
    return out


def fig5_interleaving(
    scale: float = DEFAULT_SCALE,
    num_wavefronts: int = DEFAULT_WAVEFRONTS,
    seed: int = 0,
) -> Dict[str, float]:
    """Fig 5: fraction of multi-walk instructions with interleaved walks."""
    return {
        workload: _run(workload, "fcfs", scale, num_wavefronts, seed).interleaved_fraction
        for workload in MOTIVATION_WORKLOADS
    }


def fig6_first_last_latency(
    scale: float = DEFAULT_SCALE,
    num_wavefronts: int = DEFAULT_WAVEFRONTS,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Fig 6: first- vs last-completed walk latency, normalised to first."""
    out: Dict[str, Dict[str, float]] = {}
    for workload in MOTIVATION_WORKLOADS:
        result = _run(workload, "fcfs", scale, num_wavefronts, seed)
        first = result.first_walk_latency or 1.0
        out[workload] = {
            "first_completed": 1.0,
            "last_completed": result.last_walk_latency / first,
        }
    return out


# ----------------------------------------------------------------------
# Main results (Section V-B)
# ----------------------------------------------------------------------


def _fcfs_simt_pairs(
    workloads: Sequence[str], scale: float, num_wavefronts: int, seed: int
) -> Dict[str, Tuple[SimulationResult, SimulationResult]]:
    return {
        workload: (
            _run(workload, "fcfs", scale, num_wavefronts, seed),
            _run(workload, "simt", scale, num_wavefronts, seed),
        )
        for workload in workloads
    }


def _with_group_means(values: Dict[str, float]) -> Dict[str, float]:
    """Append the paper's per-group geometric means to a result row."""
    out = dict(values)
    irregular = [values[w] for w in IRREGULAR_WORKLOADS if w in values]
    regular = [values[w] for w in REGULAR_WORKLOADS if w in values]
    if irregular:
        out["Mean(irregular)"] = geometric_mean(irregular)
    if regular:
        out["Mean(regular)"] = geometric_mean(regular)
    return out


def fig8_speedup(
    scale: float = DEFAULT_SCALE,
    num_wavefronts: int = DEFAULT_WAVEFRONTS,
    seed: int = 0,
    workloads: Sequence[str] = IRREGULAR_WORKLOADS + REGULAR_WORKLOADS,
) -> Dict[str, float]:
    """Fig 8: speedup of SIMT-aware over FCFS for all twelve workloads."""
    pairs = _fcfs_simt_pairs(workloads, scale, num_wavefronts, seed)
    return _with_group_means(
        {w: simt.speedup_over(fcfs) for w, (fcfs, simt) in pairs.items()}
    )


def fig9_stall_cycles(
    scale: float = DEFAULT_SCALE,
    num_wavefronts: int = DEFAULT_WAVEFRONTS,
    seed: int = 0,
    workloads: Sequence[str] = IRREGULAR_WORKLOADS + REGULAR_WORKLOADS,
) -> Dict[str, float]:
    """Fig 9: CU execution-stage stall cycles, SIMT-aware over FCFS."""
    pairs = _fcfs_simt_pairs(workloads, scale, num_wavefronts, seed)
    return _with_group_means(
        {
            w: (simt.stall_cycles / fcfs.stall_cycles if fcfs.stall_cycles else 1.0)
            for w, (fcfs, simt) in pairs.items()
        }
    )


def fig10_latency_gap(
    scale: float = DEFAULT_SCALE,
    num_wavefronts: int = DEFAULT_WAVEFRONTS,
    seed: int = 0,
    workloads: Sequence[str] = IRREGULAR_WORKLOADS,
) -> Dict[str, float]:
    """Fig 10: first/last walk latency gap, SIMT-aware normalised to FCFS."""
    pairs = _fcfs_simt_pairs(workloads, scale, num_wavefronts, seed)
    out: Dict[str, float] = {}
    for w, (fcfs, simt) in pairs.items():
        out[w] = simt.latency_gap / fcfs.latency_gap if fcfs.latency_gap else 1.0
    out["Mean"] = geometric_mean(list(out.values()))
    return out


def fig11_walk_count(
    scale: float = DEFAULT_SCALE,
    num_wavefronts: int = DEFAULT_WAVEFRONTS,
    seed: int = 0,
    workloads: Sequence[str] = IRREGULAR_WORKLOADS,
) -> Dict[str, float]:
    """Fig 11: page-table walks performed, SIMT-aware normalised to FCFS."""
    pairs = _fcfs_simt_pairs(workloads, scale, num_wavefronts, seed)
    out = {
        w: simt.walks_dispatched / fcfs.walks_dispatched
        for w, (fcfs, simt) in pairs.items()
    }
    out["Mean"] = geometric_mean(list(out.values()))
    return out


def fig12_active_wavefronts(
    scale: float = DEFAULT_SCALE,
    num_wavefronts: int = DEFAULT_WAVEFRONTS,
    seed: int = 0,
    workloads: Sequence[str] = IRREGULAR_WORKLOADS,
) -> Dict[str, float]:
    """Fig 12: distinct wavefronts per GPU-L2-TLB epoch, SIMT over FCFS."""
    pairs = _fcfs_simt_pairs(workloads, scale, num_wavefronts, seed)
    out: Dict[str, float] = {}
    for w, (fcfs, simt) in pairs.items():
        out[w] = (
            simt.wavefronts_per_epoch / fcfs.wavefronts_per_epoch
            if fcfs.wavefronts_per_epoch
            else 1.0
        )
    out["Mean"] = geometric_mean(list(out.values()))
    return out


def translation_overhead(
    scale: float = DEFAULT_SCALE,
    num_wavefronts: int = DEFAULT_WAVEFRONTS,
    seed: int = 0,
    workloads: Sequence[str] = IRREGULAR_WORKLOADS + REGULAR_WORKLOADS,
) -> Dict[str, float]:
    """§I motivation: slowdown due to address translation alone.

    Ratio of each workload's FCFS runtime to its runtime under an oracle
    MMU (zero-cost, never-missing translation).  The study the paper
    builds on (Vesely et al., ISPASS 2016) reports up to 3.7-4× for
    irregular GPU applications on real hardware.
    """
    from dataclasses import replace as _replace

    out: Dict[str, float] = {}
    for workload in workloads:
        real = _run(workload, "fcfs", scale, num_wavefronts, seed)
        ideal_config = _replace(baseline_config(), perfect_translation=True)
        ideal = run_simulation(
            workload,
            config=ideal_config,
            num_wavefronts=num_wavefronts,
            scale=scale,
            seed=seed,
        )
        out[workload] = real.total_cycles / ideal.total_cycles
    return out


# ----------------------------------------------------------------------
# Sensitivity studies (Section V-B2)
# ----------------------------------------------------------------------

#: Fig 13 variants: (GPU L2 TLB entries, walker count).
FIG13_VARIANTS: Dict[str, Tuple[int, int]] = {
    "a_1024tlb_8walkers": (1024, 8),
    "b_512tlb_16walkers": (512, 16),
    "c_1024tlb_16walkers": (1024, 16),
}


def fig13_sensitivity(
    variant: str,
    scale: float = DEFAULT_SCALE,
    num_wavefronts: int = DEFAULT_WAVEFRONTS,
    seed: int = 0,
    workloads: Sequence[str] = IRREGULAR_WORKLOADS,
) -> Dict[str, float]:
    """Fig 13a/b/c: SIMT-over-FCFS speedup with bigger TLB / more walkers."""
    try:
        l2_entries, walkers = FIG13_VARIANTS[variant]
    except KeyError:
        raise ValueError(
            f"unknown variant {variant!r}; one of {sorted(FIG13_VARIANTS)}"
        ) from None
    out: Dict[str, float] = {}
    for w in workloads:
        fcfs = _run(w, "fcfs", scale, num_wavefronts, seed, l2_entries, walkers)
        simt = _run(w, "simt", scale, num_wavefronts, seed, l2_entries, walkers)
        out[w] = simt.speedup_over(fcfs)
    out["Mean"] = geometric_mean(list(out.values()))
    return out


def fig14_buffer_size(
    buffer_entries: int,
    scale: float = DEFAULT_SCALE,
    num_wavefronts: int = DEFAULT_WAVEFRONTS,
    seed: int = 0,
    workloads: Sequence[str] = IRREGULAR_WORKLOADS,
) -> Dict[str, float]:
    """Fig 14: SIMT-over-FCFS speedup at a given IOMMU buffer size."""
    if buffer_entries <= 0:
        raise ValueError("buffer size must be positive")
    out: Dict[str, float] = {}
    for w in workloads:
        fcfs = _run(
            w, "fcfs", scale, num_wavefronts, seed, buffer_entries=buffer_entries
        )
        simt = _run(
            w, "simt", scale, num_wavefronts, seed, buffer_entries=buffer_entries
        )
        out[w] = simt.speedup_over(fcfs)
    out["Mean"] = geometric_mean(list(out.values()))
    return out


# ----------------------------------------------------------------------
# Tables
# ----------------------------------------------------------------------


def table1_configuration() -> Dict[str, str]:
    """Table I: the baseline system configuration, as labelled rows."""
    config = baseline_config()
    gpu, dram, iommu = config.gpu, config.dram, config.iommu
    return {
        "GPU": (
            f"{gpu.clock_ghz:g}GHz, {gpu.num_cus} CUs, "
            f"{gpu.simd_units_per_cu} SIMD per CU, "
            f"{gpu.simd_width} SIMD width, {gpu.wavefront_size} threads per wavefront"
        ),
        "L1 Data Cache": (
            f"{config.l1_cache.size_bytes // 1024}KB, "
            f"{config.l1_cache.associativity}-way, {config.l1_cache.line_size}B block"
        ),
        "L2 Data Cache": (
            f"{config.l2_cache.size_bytes // (1024 * 1024)}MB, "
            f"{config.l2_cache.associativity}-way, {config.l2_cache.line_size}B block"
        ),
        "L1 TLB": f"{config.gpu_l1_tlb.entries} entries, Fully-associative",
        "L2 TLB": (
            f"{config.gpu_l2_tlb.entries} entries, "
            f"{config.gpu_l2_tlb.associativity}-way set associative"
        ),
        "IOMMU": (
            f"{iommu.buffer_entries} buffer entries, {iommu.num_walkers} page table "
            f"walkers, {iommu.l1_tlb.entries}/{iommu.l2_tlb.entries} entries for "
            f"IOMMU L1/L2 TLB, {iommu.scheduler.upper()} scheduling of page walks"
        ),
        "DRAM": (
            f"DDR3-1600, {dram.channels} channel, {dram.banks_per_rank} banks per "
            f"rank, {dram.ranks_per_channel} ranks per channel"
        ),
    }


def table2_workloads(scale: float = 1.0) -> List[Dict[str, object]]:
    """Table II: benchmarks with paper-reported and modelled footprints."""
    rows: List[Dict[str, object]] = []
    for workload in all_workloads(scale=scale):
        rows.append(
            {
                "abbrev": workload.abbrev,
                "name": workload.name,
                "description": workload.description,
                "suite": workload.suite,
                "irregular": workload.irregular,
                "paper_footprint_mb": workload.nominal_footprint_mb,
                "modelled_footprint_mb": round(workload.modelled_footprint_mb, 2),
            }
        )
    return rows
