"""The hardware coalescer.

When a wavefront executes a SIMD memory instruction, each active lane
produces a virtual address.  The coalescer merges lane accesses that fall
on the same cache line into one cache access, and accesses that fall on
the same page into one address-translation request (paper steps 1–2).

For a regular, unit-stride instruction all 64 lanes collapse to a handful
of lines on one page; for a fully divergent instruction nothing merges
and a single instruction needs up to 64 translations — the divergence the
paper's scheduler exists to manage.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.config import LINE_SIZE
from repro.mmu.address import vpn_of


class CoalescedInstruction:
    """The coalescer's output for one SIMD memory instruction."""

    __slots__ = ("lines_by_page", "num_lanes")

    def __init__(self, lines_by_page: Dict[int, List[int]], num_lanes: int) -> None:
        #: vpn -> unique line-aligned virtual addresses on that page,
        #: in first-touch lane order.
        self.lines_by_page = lines_by_page
        self.num_lanes = num_lanes

    @property
    def num_pages(self) -> int:
        """Distinct pages touched — the instruction's translation demand."""
        return len(self.lines_by_page)

    @property
    def num_lines(self) -> int:
        """Distinct cache lines touched — the instruction's access count."""
        return sum(len(lines) for lines in self.lines_by_page.values())


def coalesce(lane_addresses: Iterable[int]) -> CoalescedInstruction:
    """Merge per-lane addresses into per-page, per-line unique accesses."""
    lines_by_page: Dict[int, List[int]] = {}
    seen_lines: Dict[int, None] = {}
    num_lanes = 0
    for address in lane_addresses:
        num_lanes += 1
        line_address = (address // LINE_SIZE) * LINE_SIZE
        if line_address in seen_lines:
            continue
        seen_lines[line_address] = None
        lines_by_page.setdefault(vpn_of(address), []).append(line_address)
    return CoalescedInstruction(lines_by_page, num_lanes)
