"""The top-level GPU model: CU array, shared L2 TLB, wavefront dispatch.

Wavefront traces are dispatched to CU slots round-robin; when a resident
wavefront retires, the next queued trace takes its slot (modelling the
hardware workgroup dispatcher keeping CUs occupied).  The simulation ends
when every trace has executed to completion.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Set

from repro.config import SystemConfig
from repro.engine.simulator import Simulator
from repro.gpu.cu import ComputeUnit
from repro.gpu.wavefront import InstructionRecord, Wavefront
from repro.memory.subsystem import MemorySubsystem
from repro.mmu.geometry import geometry_by_name
from repro.mmu.iommu import IOMMU
from repro.mmu.tlb import TLB

#: Fig 12 epoch length: distinct wavefronts are counted per this many
#: GPU L2 TLB accesses.
L2_TLB_EPOCH_ACCESSES = 1024


class GPU:
    """The simulated GPU: compute side plus its shared L2 TLB."""

    def __init__(
        self,
        simulator: Simulator,
        config: SystemConfig,
        memory: MemorySubsystem,
        iommu: IOMMU,
        tracer=None,
    ) -> None:
        self.sim = simulator
        self.config = config
        self.memory = memory
        self.iommu = iommu
        self.geometry = geometry_by_name(config.page_size)
        #: Set by the system builder; used only in perfect-translation
        #: (oracle MMU) runs.
        self.page_table = None
        #: Optional :class:`~repro.obs.trace.Tracer` (job spans, CU stalls).
        self.tracer = tracer
        self.cus: List[ComputeUnit] = [
            ComputeUnit(cu_id, simulator, config, tracer=tracer)
            for cu_id in range(config.gpu.num_cus)
        ]
        self.l2_tlb = TLB(config.gpu_l2_tlb, name="gpu_l2_tlb")
        if tracer is not None:
            now = lambda: simulator.now  # noqa: E731 - tiny clock closure
            self.l2_tlb.attach_tracer(tracer, now)
            for cu in self.cus:
                cu.l1_tlb.attach_tracer(tracer, now)

        self.instruction_records: List[InstructionRecord] = []
        #: Dynamic instructions retired so far — the watchdog's
        #: forward-progress signal (a healthy run retires continuously).
        self.instructions_retired = 0
        self._instruction_counter = 0
        self._wavefront_counter = 0
        self._pending_traces: Deque = deque()
        self._running_wavefronts = 0
        self._wavefront_cu: Dict[int, int] = {}
        self._app_remaining: Dict[int, int] = {}
        #: Cycle at which each application's last wavefront retired.
        self.app_completion_time: Dict[int, int] = {}

        # Fig 12: distinct wavefronts touching the L2 TLB per epoch.
        self._epoch_accesses = 0
        self._epoch_wavefronts: Set[int] = set()
        self.wavefronts_per_epoch: List[int] = []

        # The shared L2 TLB is a single ported structure: it serves one
        # lookup per cycle.  Concurrent wavefronts' request streams queue
        # here and emerge *multiplexed* — the source of the page-walk
        # interleaving the paper measures in Fig 5.
        self._l2_tlb_next_free = 0

        self.completion_time: Optional[int] = None

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def next_instruction_id(self) -> int:
        """Allocate the next global dynamic-instruction number."""
        uid = self._instruction_counter
        self._instruction_counter += 1
        return uid

    def dispatch(self, traces: Sequence, app_ids: Optional[Sequence[int]] = None) -> None:
        """Queue wavefront traces and fill every CU slot (staggered).

        ``app_ids`` optionally tags each trace with its owning
        application (multi-tenant runs); defaults to app 0 for all.
        """
        if not traces:
            raise ValueError("cannot dispatch an empty workload")
        if app_ids is None:
            app_ids = [0] * len(traces)
        if len(app_ids) != len(traces):
            raise ValueError("app_ids must match traces one-to-one")
        for trace, app_id in zip(traces, app_ids):
            self._pending_traces.append((trace, app_id))
            self._app_remaining[app_id] = self._app_remaining.get(app_id, 0) + 1
        slots = self.config.gpu.wavefront_slots_per_cu
        stagger = self.config.gpu.dispatch_stagger_cycles
        launch_index = 0
        for _ in range(slots):
            for cu in self.cus:
                if not self._pending_traces:
                    return
                trace, app_id = self._pending_traces.popleft()
                delay = launch_index * stagger
                launch_index += 1
                self._running_wavefronts += 1  # reserved before start
                self.sim.after(
                    delay,
                    lambda trace=trace, app_id=app_id, cu_id=cu.cu_id: (
                        self._start_reserved(trace, cu_id, app_id)
                    ),
                )

    def _start_reserved(self, trace, cu_id: int, app_id: int) -> None:
        """Launch a wavefront whose running-count slot was pre-reserved."""
        self._running_wavefronts -= 1
        self._launch(trace, cu_id, app_id)

    def _launch(self, trace, cu_id: int, app_id: int = 0) -> None:
        wavefront = Wavefront(
            self._wavefront_counter, cu_id, trace, self, app_id=app_id
        )
        self._wavefront_counter += 1
        self._wavefront_cu[wavefront.wavefront_id] = cu_id
        self._running_wavefronts += 1
        self.cus[cu_id].wavefront_arrived(active=True)
        wavefront.start()

    def wavefront_finished(self, wavefront: Wavefront) -> None:
        """A wavefront retired its last instruction; backfill its slot."""
        cu_id = wavefront.cu_id
        self.cus[cu_id].wavefront_departed(was_active=not wavefront.blocked)
        self._running_wavefronts -= 1
        remaining = self._app_remaining.get(wavefront.app_id, 0) - 1
        self._app_remaining[wavefront.app_id] = remaining
        if remaining == 0:
            self.app_completion_time[wavefront.app_id] = self.sim.now
        if self._pending_traces:
            trace, app_id = self._pending_traces.popleft()
            self._launch(trace, cu_id, app_id)
        elif self._running_wavefronts == 0:
            self.completion_time = self.sim.now
            for cu in self.cus:
                cu.finalize()

    def note_instruction_retired(self) -> None:
        """Record one dynamic instruction retiring (watchdog heartbeat)."""
        self.instructions_retired += 1

    @property
    def finished(self) -> bool:
        return self.completion_time is not None

    @property
    def running_wavefronts(self) -> int:
        """Wavefronts currently resident (including reserved slots)."""
        return self._running_wavefronts

    @property
    def wavefronts_launched(self) -> int:
        return self._wavefront_counter

    # ------------------------------------------------------------------
    # Shared L2 TLB
    # ------------------------------------------------------------------

    def l2_tlb_port_delay(self) -> int:
        """Reserve the next free L2 TLB port slot; returns the extra wait.

        Models single-lookup-per-cycle throughput: the caller should add
        the returned delay (0 when the port is idle) on top of the TLB's
        hit latency.
        """
        now = self.sim.now
        start = max(now, self._l2_tlb_next_free)
        self._l2_tlb_next_free = start + 1.0 / self.config.gpu.l2_tlb_lookups_per_cycle
        return int(start) - now

    def l2_tlb_lookup(self, vpn: int, wavefront_id: int) -> Optional[int]:
        """Look up the shared L2 TLB, recording epoch statistics (Fig 12)."""
        self._epoch_wavefronts.add(wavefront_id)
        self._epoch_accesses += 1
        if self._epoch_accesses >= L2_TLB_EPOCH_ACCESSES:
            self.wavefronts_per_epoch.append(len(self._epoch_wavefronts))
            self._epoch_wavefronts.clear()
            self._epoch_accesses = 0
        return self.l2_tlb.lookup(vpn)

    def l2_tlb_fill(self, vpn: int, pfn: int) -> None:
        """Install a translation returned by the IOMMU."""
        self.l2_tlb.insert(vpn, pfn)

    def oracle_translate(self, vpn: int) -> int:
        """Zero-latency translation for perfect-translation runs."""
        if self.page_table is None:
            raise RuntimeError(
                "perfect_translation requires the system builder to attach "
                "a page table to the GPU"
            )
        return self.page_table.translate(vpn)

    # ------------------------------------------------------------------
    # Aggregate statistics
    # ------------------------------------------------------------------

    @property
    def total_stall_cycles(self) -> int:
        return sum(cu.stall_cycles for cu in self.cus)

    @property
    def mean_wavefronts_per_epoch(self) -> float:
        epochs = self.wavefronts_per_epoch
        if not epochs:
            # Fewer than one full epoch of accesses: fall back to the
            # partial epoch so short runs still report a value.
            return float(len(self._epoch_wavefronts)) if self._epoch_wavefronts else 0.0
        return sum(epochs) / len(epochs)
