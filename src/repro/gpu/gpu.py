"""The top-level GPU model: CU array, shared L2 TLB, wavefront dispatch.

Wavefront traces are dispatched to CU slots round-robin; when a resident
wavefront retires, the next queued trace takes its slot (modelling the
hardware workgroup dispatcher keeping CUs occupied).  The simulation ends
when every trace has executed to completion.

The GPU owns the ``gpu.*`` / ``wf.*`` event kinds: wavefront events carry
a wavefront id and are routed through the live-wavefront registry, so
event payloads stay plain data and the whole event queue can be pickled
into a checkpoint.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Set

from repro.config import SystemConfig
from repro.core.request import TranslationRequest
from repro.engine.simulator import Simulator
from repro.gpu.cu import ComputeUnit
from repro.gpu.wavefront import InstructionRecord, Wavefront, _InflightInstruction
from repro.memory.subsystem import MemorySubsystem
from repro.mmu.geometry import geometry_by_name
from repro.mmu.iommu import IOMMU
from repro.mmu.tlb import TLB

#: Fig 12 epoch length: distinct wavefronts are counted per this many
#: GPU L2 TLB accesses.
L2_TLB_EPOCH_ACCESSES = 1024


class GPU:
    """The simulated GPU: compute side plus its shared L2 TLB."""

    def __init__(
        self,
        simulator: Simulator,
        config: SystemConfig,
        memory: MemorySubsystem,
        iommu: IOMMU,
        tracer=None,
    ) -> None:
        self.sim = simulator
        self.config = config
        self.memory = memory
        self.iommu = iommu
        self.geometry = geometry_by_name(config.page_size)
        #: Set by the system builder; used only in perfect-translation
        #: (oracle MMU) runs.
        self.page_table = None
        #: Optional :class:`~repro.obs.trace.Tracer` (job spans, CU stalls).
        self.tracer = tracer
        self.cus: List[ComputeUnit] = [
            ComputeUnit(cu_id, simulator, config, tracer=tracer)
            for cu_id in range(config.gpu.num_cus)
        ]
        self.l2_tlb = TLB(config.gpu_l2_tlb, name="gpu_l2_tlb")
        if tracer is not None:
            now = lambda: simulator.now  # noqa: E731 - tiny clock closure
            self.l2_tlb.attach_tracer(tracer, now)
            for cu in self.cus:
                cu.l1_tlb.attach_tracer(tracer, now)

        self.instruction_records: List[InstructionRecord] = []
        #: Dynamic instructions retired so far — the watchdog's
        #: forward-progress signal (a healthy run retires continuously).
        self.instructions_retired = 0
        self._instruction_counter = 0
        self._wavefront_counter = 0
        self._pending_traces: Deque = deque()
        self._running_wavefronts = 0
        self._wavefront_cu: Dict[int, int] = {}
        self._app_remaining: Dict[int, int] = {}
        #: Cycle at which each application's last wavefront retired.
        self.app_completion_time: Dict[int, int] = {}
        #: Live (launched, unretired) wavefronts, routing target for
        #: ``wf.*`` events.
        self._wavefronts: Dict[int, Wavefront] = {}

        # Fig 12: distinct wavefronts touching the L2 TLB per epoch.
        self._epoch_accesses = 0
        self._epoch_wavefronts: Set[int] = set()
        self.wavefronts_per_epoch: List[int] = []

        # The shared L2 TLB is a single ported structure: it serves one
        # lookup per cycle.  Concurrent wavefronts' request streams queue
        # here and emerge *multiplexed* — the source of the page-walk
        # interleaving the paper measures in Fig 5.
        self._l2_tlb_next_free = 0

        self.completion_time: Optional[int] = None

        simulator.register("gpu.start", self._start_reserved)
        simulator.register("wf.issue", self._wf_issue)
        simulator.register("wf.xlate", self._wf_translate)
        simulator.register("wf.l2", self._wf_l2_lookup)
        simulator.register("wf.data", self._wf_data)
        simulator.register("wf.install", self._wf_install)
        simulator.register("wf.line", self._wf_line)
        simulator.register("iommu.xlate", self._iommu_translate)
        # Batch handlers for the hottest wavefront kinds: one engine call
        # per same-cycle run, payloads processed strictly in order.
        simulator.register_batch("wf.issue", self._wf_issue_batch)
        simulator.register_batch("wf.xlate", self._wf_translate_batch)
        simulator.register_batch("wf.l2", self._wf_l2_lookup_batch)
        simulator.register_batch("wf.data", self._wf_data_batch)
        simulator.register_batch("wf.install", self._wf_install_batch)
        simulator.register_batch("wf.line", self._wf_line_batch)
        simulator.register_batch("iommu.xlate", self._iommu_translate_batch)
        # Translations without a per-request callback come back here.
        iommu.reply_to = self._translation_done

    # ------------------------------------------------------------------
    # Event routing (wf.* kinds → live wavefront objects)
    # ------------------------------------------------------------------

    def _wf_issue(self, wavefront_id: int) -> None:
        self._wavefronts[wavefront_id]._issue_now()

    def _wf_translate(
        self, wavefront_id: int, vpn: int, lines, inflight: _InflightInstruction
    ) -> None:
        self._wavefronts[wavefront_id]._translate_page(vpn, lines, inflight)

    def _wf_l2_lookup(
        self, wavefront_id: int, vpn: int, lines, inflight: _InflightInstruction
    ) -> None:
        self._wavefronts[wavefront_id]._l2_tlb_lookup(vpn, lines, inflight)

    def _wf_data(
        self, wavefront_id: int, pfn: int, lines, inflight: _InflightInstruction
    ) -> None:
        self._wavefronts[wavefront_id]._data_phase(pfn, lines, inflight)

    def _wf_install(
        self,
        wavefront_id: int,
        vpn: int,
        pfn: int,
        lines,
        inflight: _InflightInstruction,
    ) -> None:
        self._wavefronts[wavefront_id]._install_and_access(
            vpn, pfn, lines, inflight
        )

    def _wf_line(self, wavefront_id: int, inflight: _InflightInstruction) -> None:
        self._wavefronts[wavefront_id]._line_complete(inflight)

    def _iommu_translate(self, request: TranslationRequest) -> None:
        self.iommu.translate(request)

    # Batch twins of the routing trampolines above.  Each processes its
    # payload list in order, hoisting the registry lookup out of the
    # engine loop; ``wf.line`` — the single hottest kind — additionally
    # inlines ``Wavefront._line_complete``'s fast path (decrement, still
    # outstanding, done).

    def _wf_issue_batch(self, payloads) -> None:
        wavefronts = self._wavefronts
        for (wavefront_id,) in payloads:
            wavefronts[wavefront_id]._issue_now()

    def _wf_translate_batch(self, payloads) -> None:
        wavefronts = self._wavefronts
        for wavefront_id, vpn, lines, inflight in payloads:
            wavefronts[wavefront_id]._translate_page(vpn, lines, inflight)

    def _wf_l2_lookup_batch(self, payloads) -> None:
        wavefronts = self._wavefronts
        for wavefront_id, vpn, lines, inflight in payloads:
            wavefronts[wavefront_id]._l2_tlb_lookup(vpn, lines, inflight)

    def _wf_data_batch(self, payloads) -> None:
        wavefronts = self._wavefronts
        for wavefront_id, pfn, lines, inflight in payloads:
            wavefronts[wavefront_id]._data_phase(pfn, lines, inflight)

    def _wf_install_batch(self, payloads) -> None:
        wavefronts = self._wavefronts
        for wavefront_id, vpn, pfn, lines, inflight in payloads:
            wavefronts[wavefront_id]._install_and_access(
                vpn, pfn, lines, inflight
            )

    def _wf_line_batch(self, payloads) -> None:
        wavefronts = self._wavefronts
        for wavefront_id, inflight in payloads:
            remaining = inflight.outstanding_lines - 1
            inflight.outstanding_lines = remaining
            if remaining <= 0:
                wavefronts[wavefront_id]._instruction_complete(inflight)

    def _iommu_translate_batch(self, payloads) -> None:
        translate = self.iommu.translate
        for (request,) in payloads:
            translate(request)

    def _translation_done(self, request: TranslationRequest, pfn: int) -> None:
        """IOMMU reply sink for requests carrying plain-data context."""
        lines, inflight = request.context
        self._wavefronts[request.wavefront_id]._iommu_reply(
            request, pfn, lines, inflight
        )

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def next_instruction_id(self) -> int:
        """Allocate the next global dynamic-instruction number."""
        uid = self._instruction_counter
        self._instruction_counter += 1
        return uid

    def dispatch(self, traces: Sequence, app_ids: Optional[Sequence[int]] = None) -> None:
        """Queue wavefront traces and fill every CU slot (staggered).

        ``app_ids`` optionally tags each trace with its owning
        application (multi-tenant runs); defaults to app 0 for all.
        """
        if not traces:
            raise ValueError("cannot dispatch an empty workload")
        if app_ids is None:
            app_ids = [0] * len(traces)
        if len(app_ids) != len(traces):
            raise ValueError("app_ids must match traces one-to-one")
        for trace, app_id in zip(traces, app_ids):
            self._pending_traces.append((trace, app_id))
            self._app_remaining[app_id] = self._app_remaining.get(app_id, 0) + 1
        slots = self.config.gpu.wavefront_slots_per_cu
        stagger = self.config.gpu.dispatch_stagger_cycles
        launch_index = 0
        for _ in range(slots):
            for cu in self.cus:
                if not self._pending_traces:
                    return
                trace, app_id = self._pending_traces.popleft()
                delay = launch_index * stagger
                launch_index += 1
                self._running_wavefronts += 1  # reserved before start
                self.sim.post(delay, "gpu.start", trace, cu.cu_id, app_id)

    def _start_reserved(self, trace, cu_id: int, app_id: int) -> None:
        """Launch a wavefront whose running-count slot was pre-reserved."""
        self._running_wavefronts -= 1
        self._launch(trace, cu_id, app_id)

    def _launch(self, trace, cu_id: int, app_id: int = 0) -> None:
        wavefront = Wavefront(
            self._wavefront_counter, cu_id, trace, self, app_id=app_id
        )
        self._wavefront_counter += 1
        self._wavefront_cu[wavefront.wavefront_id] = cu_id
        self._wavefronts[wavefront.wavefront_id] = wavefront
        self._running_wavefronts += 1
        self.cus[cu_id].wavefront_arrived(active=True)
        wavefront.start()

    def wavefront_finished(self, wavefront: Wavefront) -> None:
        """A wavefront retired its last instruction; backfill its slot."""
        cu_id = wavefront.cu_id
        self.cus[cu_id].wavefront_departed(was_active=not wavefront.blocked)
        self._running_wavefronts -= 1
        self._wavefronts.pop(wavefront.wavefront_id, None)
        remaining = self._app_remaining.get(wavefront.app_id, 0) - 1
        self._app_remaining[wavefront.app_id] = remaining
        if remaining == 0:
            self.app_completion_time[wavefront.app_id] = self.sim.now
        if self._pending_traces:
            trace, app_id = self._pending_traces.popleft()
            self._launch(trace, cu_id, app_id)
        elif self._running_wavefronts == 0:
            self.completion_time = self.sim.now
            for cu in self.cus:
                cu.finalize()

    def note_instruction_retired(self) -> None:
        """Record one dynamic instruction retiring (watchdog heartbeat)."""
        self.instructions_retired += 1

    @property
    def finished(self) -> bool:
        return self.completion_time is not None

    @property
    def running_wavefronts(self) -> int:
        """Wavefronts currently resident (including reserved slots)."""
        return self._running_wavefronts

    @property
    def wavefronts_launched(self) -> int:
        return self._wavefront_counter

    # ------------------------------------------------------------------
    # Shared L2 TLB
    # ------------------------------------------------------------------

    def l2_tlb_port_delay(self) -> int:
        """Reserve the next free L2 TLB port slot; returns the extra wait.

        Models single-lookup-per-cycle throughput: the caller should add
        the returned delay (0 when the port is idle) on top of the TLB's
        hit latency.
        """
        now = self.sim.now
        start = max(now, self._l2_tlb_next_free)
        self._l2_tlb_next_free = start + 1.0 / self.config.gpu.l2_tlb_lookups_per_cycle
        return int(start) - now

    def l2_tlb_lookup(self, vpn: int, wavefront_id: int) -> Optional[int]:
        """Look up the shared L2 TLB, recording epoch statistics (Fig 12)."""
        self._epoch_wavefronts.add(wavefront_id)
        self._epoch_accesses += 1
        if self._epoch_accesses >= L2_TLB_EPOCH_ACCESSES:
            self.wavefronts_per_epoch.append(len(self._epoch_wavefronts))
            self._epoch_wavefronts.clear()
            self._epoch_accesses = 0
        return self.l2_tlb.lookup(vpn)

    def l2_tlb_fill(self, vpn: int, pfn: int) -> None:
        """Install a translation returned by the IOMMU."""
        self.l2_tlb.insert(vpn, pfn)

    def oracle_translate(self, vpn: int) -> int:
        """Zero-latency translation for perfect-translation runs."""
        if self.page_table is None:
            raise RuntimeError(
                "perfect_translation requires the system builder to attach "
                "a page table to the GPU"
            )
        return self.page_table.translate(vpn)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Full compute-side state.

        Instruction records and in-flight contexts are pickled as the
        objects themselves (they are plain slotted data); the combined
        checkpoint pickle keeps their identity shared with the event
        payloads that reference them.
        """
        return {
            "instruction_records": list(self.instruction_records),
            "instructions_retired": self.instructions_retired,
            "instruction_counter": self._instruction_counter,
            "wavefront_counter": self._wavefront_counter,
            "pending_traces": list(self._pending_traces),
            "running_wavefronts": self._running_wavefronts,
            "wavefront_cu": dict(self._wavefront_cu),
            "app_remaining": dict(self._app_remaining),
            "app_completion_time": dict(self.app_completion_time),
            "epoch_accesses": self._epoch_accesses,
            "epoch_wavefronts": list(self._epoch_wavefronts),
            "wavefronts_per_epoch": list(self.wavefronts_per_epoch),
            "l2_tlb_next_free": self._l2_tlb_next_free,
            "completion_time": self.completion_time,
            "l2_tlb": self.l2_tlb.snapshot(),
            "cus": [cu.snapshot() for cu in self.cus],
            "wavefronts": [wf.snapshot() for wf in self._wavefronts.values()],
        }

    def restore(self, state: dict) -> None:
        self.instruction_records = list(state["instruction_records"])
        self.instructions_retired = state["instructions_retired"]
        self._instruction_counter = state["instruction_counter"]
        self._wavefront_counter = state["wavefront_counter"]
        self._pending_traces = deque(state["pending_traces"])
        self._running_wavefronts = state["running_wavefronts"]
        self._wavefront_cu = dict(state["wavefront_cu"])
        self._app_remaining = dict(state["app_remaining"])
        self.app_completion_time = dict(state["app_completion_time"])
        self._epoch_accesses = state["epoch_accesses"]
        self._epoch_wavefronts = set(state["epoch_wavefronts"])
        self.wavefronts_per_epoch = list(state["wavefronts_per_epoch"])
        self._l2_tlb_next_free = state["l2_tlb_next_free"]
        self.completion_time = state["completion_time"]
        self.l2_tlb.restore(state["l2_tlb"])
        for cu, dump in zip(self.cus, state["cus"]):
            cu.restore(dump)
        self._wavefronts = {}
        for dump in state["wavefronts"]:
            wavefront = Wavefront(
                dump["wavefront_id"],
                dump["cu_id"],
                dump["trace"],
                self,
                app_id=dump["app_id"],
            )
            wavefront.restore(dump)
            self._wavefronts[wavefront.wavefront_id] = wavefront

    # ------------------------------------------------------------------
    # Aggregate statistics
    # ------------------------------------------------------------------

    @property
    def total_stall_cycles(self) -> int:
        return sum(cu.stall_cycles for cu in self.cus)

    @property
    def mean_wavefronts_per_epoch(self) -> float:
        epochs = self.wavefronts_per_epoch
        if not epochs:
            # Fewer than one full epoch of accesses: fall back to the
            # partial epoch so short runs still report a value.
            return float(len(self._epoch_wavefronts)) if self._epoch_wavefronts else 0.0
        return sum(epochs) / len(epochs)
