"""A compute unit: wavefront slots, a private L1 TLB, stall accounting.

The paper's Fig 9 metric is "GPU stall cycles in the execution stage":
cycles during which a CU cannot execute any instruction because none are
ready.  We track it by counting, per CU, the time intervals in which
every resident wavefront is blocked waiting on memory.
"""

from __future__ import annotations

from typing import Dict

from repro.config import SystemConfig
from repro.engine.simulator import Simulator
from repro.mmu.tlb import TLB


class ComputeUnit:
    """One CU: a private L1 TLB and stall bookkeeping for its wavefronts."""

    def __init__(
        self,
        cu_id: int,
        simulator: Simulator,
        config: SystemConfig,
        tracer=None,
    ) -> None:
        self.cu_id = cu_id
        self._sim = simulator
        self.l1_tlb = TLB(config.gpu_l1_tlb, name=f"gpu_l1_tlb[{cu_id}]")
        #: Optional :class:`~repro.obs.trace.Tracer` (stall-interval spans).
        self.tracer = tracer
        self._resident = 0
        self._active = 0
        self._last_change = 0
        self.stall_cycles = 0
        self.busy_until = 0

    @property
    def resident_wavefronts(self) -> int:
        return self._resident

    @property
    def active_wavefronts(self) -> int:
        return self._active

    def _accumulate(self) -> None:
        now = self._sim.now
        if self._resident > 0 and self._active == 0:
            self.stall_cycles += now - self._last_change
            if (
                self.tracer is not None
                and self.tracer.cat_cu
                and now > self._last_change
            ):
                self.tracer.cu_stall(self.cu_id, self._last_change, now)
        self._last_change = now

    def wavefront_arrived(self, active: bool = True) -> None:
        """A wavefront became resident on this CU."""
        self._accumulate()
        self._resident += 1
        if active:
            self._active += 1

    def wavefront_departed(self, was_active: bool) -> None:
        """A resident wavefront retired its last instruction."""
        self._accumulate()
        self._resident -= 1
        if was_active:
            self._active -= 1
        if self._resident < 0 or self._active < 0:
            raise RuntimeError(f"CU {self.cu_id} wavefront accounting underflow")
        self.busy_until = self._sim.now

    def wavefront_blocked(self) -> None:
        """A resident wavefront started waiting on memory."""
        self._accumulate()
        self._active -= 1
        if self._active < 0:
            raise RuntimeError(f"CU {self.cu_id} active-count underflow")

    def wavefront_unblocked(self) -> None:
        """A resident wavefront's memory instruction completed."""
        self._accumulate()
        self._active += 1
        if self._active > self._resident:
            raise RuntimeError(f"CU {self.cu_id} active-count overflow")

    def finalize(self) -> None:
        """Close the last accounting interval at end of simulation."""
        self._accumulate()

    def snapshot(self) -> Dict[str, object]:
        return {
            "resident": self._resident,
            "active": self._active,
            "last_change": self._last_change,
            "stall_cycles": self.stall_cycles,
            "busy_until": self.busy_until,
            "l1_tlb": self.l1_tlb.snapshot(),
        }

    def restore(self, state: Dict[str, object]) -> None:
        self._resident = state["resident"]
        self._active = state["active"]
        self._last_change = state["last_change"]
        self.stall_cycles = state["stall_cycles"]
        self.busy_until = state["busy_until"]
        self.l1_tlb.restore(state["l1_tlb"])

    def stats(self) -> Dict[str, float]:
        return {
            "stall_cycles": self.stall_cycles,
            "l1_tlb": self.l1_tlb.stats(),
        }
