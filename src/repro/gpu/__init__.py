"""GPU SIMT execution substrate: coalescer, wavefronts, CUs, top level."""

from repro.gpu.coalescer import CoalescedInstruction, coalesce
from repro.gpu.cu import ComputeUnit
from repro.gpu.wavefront import InstructionRecord, Wavefront
from repro.gpu.gpu import GPU

__all__ = [
    "GPU",
    "CoalescedInstruction",
    "ComputeUnit",
    "InstructionRecord",
    "Wavefront",
    "coalesce",
]
