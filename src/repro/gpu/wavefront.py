"""Wavefront execution: the SIMT lockstep state machine.

A wavefront issues SIMD memory instructions in order, one every
``issue_gap_cycles``, and may keep up to ``max_outstanding_memops`` of
them in flight (GPUs hide memory latency by issuing ahead until a
hardware limit or dependence stalls the wavefront).  An individual
instruction retires only when *every* coalesced access has both
translated and fetched its data — the lockstep property that makes the
latency of the *last* page walk, not the first, determine forward
progress (paper §III-B).

A wavefront is *blocked* (for CU stall accounting) while it cannot issue:
either its in-flight window is full or it has drained its trace but still
has instructions outstanding.

All deferred work is posted as tagged events (``wf.*`` kinds, routed by
the GPU's wavefront registry) carrying only plain data and the in-flight
instruction context — never closures — so a mid-run checkpoint can pickle
the event queue wholesale.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.request import TranslationRequest
from repro.gpu.coalescer import coalesce
from repro.mmu.address import PAGE_SHIFT

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.gpu.gpu import GPU


class InstructionRecord:
    """Per-dynamic-instruction statistics used by the paper's figures."""

    __slots__ = (
        "instruction_id",
        "wavefront_id",
        "issue_time",
        "complete_time",
        "num_pages",
        "num_lines",
        "walk_requests",
        "walk_latencies",
        "walk_accesses",
    )

    def __init__(
        self, instruction_id: int, wavefront_id: int, issue_time: int
    ) -> None:
        self.instruction_id = instruction_id
        self.wavefront_id = wavefront_id
        self.issue_time = issue_time
        self.complete_time: Optional[int] = None
        self.num_pages = 0
        self.num_lines = 0
        #: Translation requests that missed the GPU TLBs (sent to IOMMU).
        self.walk_requests = 0
        #: End-to-end latency of each IOMMU-serviced translation.
        self.walk_latencies: List[int] = []
        #: Total page-table memory accesses performed for this instruction.
        self.walk_accesses = 0

    @property
    def latency(self) -> Optional[int]:
        if self.complete_time is None:
            return None
        return self.complete_time - self.issue_time


class _InflightInstruction:
    """Execution context of one issued-but-unretired memory instruction.

    Instances travel inside event payloads; pickling the combined
    checkpoint state in one pass preserves their shared identity across
    the several events that reference the same in-flight instruction.
    """

    __slots__ = ("record", "outstanding_lines")

    def __init__(self, record: InstructionRecord, outstanding_lines: int) -> None:
        self.record = record
        self.outstanding_lines = outstanding_lines


class Wavefront:
    """One wavefront executing a trace of SIMD memory instructions."""

    def __init__(
        self, wavefront_id: int, cu_id: int, trace, gpu: "GPU", app_id: int = 0
    ) -> None:
        self.wavefront_id = wavefront_id
        self.cu_id = cu_id
        self.app_id = app_id
        self._trace = trace
        self._gpu = gpu
        self._pc = 0
        self._outstanding = 0
        self._issue_pending = False
        self.done = False
        #: True while the wavefront cannot issue (for CU stall accounting).
        self.blocked = False

    # ------------------------------------------------------------------
    # Issue control
    # ------------------------------------------------------------------

    @property
    def _window_full(self) -> bool:
        return self._outstanding >= self._gpu.config.gpu.max_outstanding_memops

    def start(self) -> None:
        """Begin execution (wavefront just became resident, active)."""
        self._issue_now()

    def _set_blocked(self, blocked: bool) -> None:
        if blocked == self.blocked:
            return
        self.blocked = blocked
        cu = self._gpu.cus[self.cu_id]
        if blocked:
            cu.wavefront_blocked()
        else:
            cu.wavefront_unblocked()

    def _schedule_issue(self, delay: int) -> None:
        if self._issue_pending:
            return
        self._issue_pending = True
        self._gpu.sim.post(delay, "wf.issue", self.wavefront_id)

    def _issue_now(self) -> None:
        self._issue_pending = False
        if self.done or self._pc >= len(self._trace):
            return
        if self._window_full:
            # Re-triggered from _instruction_complete when a slot frees.
            self._set_blocked(True)
            return
        self._issue_instruction(self._trace[self._pc])
        self._pc += 1
        if self._pc >= len(self._trace) or self._window_full:
            self._set_blocked(True)
        else:
            self._schedule_issue(self._gpu.config.gpu.issue_gap_cycles)

    # ------------------------------------------------------------------
    # One instruction
    # ------------------------------------------------------------------

    def _issue_instruction(self, lane_addresses) -> None:
        gpu = self._gpu
        record = InstructionRecord(
            instruction_id=gpu.next_instruction_id(),
            wavefront_id=self.wavefront_id,
            issue_time=gpu.sim.now,
        )
        gpu.instruction_records.append(record)

        access = coalesce(lane_addresses)
        record.num_pages = access.num_pages
        record.num_lines = access.num_lines

        if access.num_lines == 0:
            # A no-op instruction (all lanes inactive): retires instantly
            # and never occupies an in-flight slot.
            record.complete_time = gpu.sim.now
            gpu.note_instruction_retired()
            return

        self._outstanding += 1
        inflight = _InflightInstruction(record, access.num_lines)
        # Regroup the coalescer's per-4KB-page line lists into translation
        # units (identical under 4 KB pages; 512 pages merge per unit
        # under 2 MB large pages).
        unit_shift = gpu.geometry.page_shift - PAGE_SHIFT
        groups: Dict[int, List[int]] = {}
        for page_vpn, lines in access.lines_by_page.items():
            groups.setdefault(page_vpn >> unit_shift, []).extend(lines)
        # The coalescer/L1-TLB port handles a few unique pages per cycle,
        # so a divergent instruction's translation requests trickle out
        # over several cycles rather than appearing as one atomic burst.
        per_cycle = gpu.config.gpu.coalescer_pages_per_cycle
        for index, (vpn, lines) in enumerate(groups.items()):
            gpu.sim.post(
                index // per_cycle,
                "wf.xlate",
                self.wavefront_id,
                vpn,
                lines,
                inflight,
            )

    # ------------------------------------------------------------------
    # Translation (paper steps 3-4: GPU TLB hierarchy)
    # ------------------------------------------------------------------

    def _translate_page(
        self, vpn: int, lines: List[int], inflight: _InflightInstruction
    ) -> None:
        gpu = self._gpu
        if gpu.config.perfect_translation:
            # Oracle MMU: the mapping is free and immediate.  Used to
            # isolate translation overhead (paper §I motivation).
            self._data_phase(gpu.oracle_translate(vpn), lines, inflight)
            return
        cu = gpu.cus[self.cu_id]
        pfn = cu.l1_tlb.lookup(vpn)
        if pfn is not None:
            gpu.sim.post(
                gpu.config.gpu_l1_tlb.hit_latency,
                "wf.data",
                self.wavefront_id,
                pfn,
                lines,
                inflight,
            )
            return
        # Miss: queue on the shared L2 TLB's single lookup port.  The
        # port wait multiplexes concurrent wavefronts' request streams.
        port_wait = gpu.l2_tlb_port_delay()
        gpu.sim.post(
            port_wait + gpu.config.gpu_l2_tlb.hit_latency,
            "wf.l2",
            self.wavefront_id,
            vpn,
            lines,
            inflight,
        )

    def _l2_tlb_lookup(
        self, vpn: int, lines: List[int], inflight: _InflightInstruction
    ) -> None:
        gpu = self._gpu
        pfn = gpu.l2_tlb_lookup(vpn, self.wavefront_id)
        if pfn is not None:
            gpu.cus[self.cu_id].l1_tlb.insert(vpn, pfn)
            self._data_phase(pfn, lines, inflight)
            return
        record = inflight.record
        record.walk_requests += 1
        tracer = gpu.tracer
        if tracer is not None and tracer.cat_job:
            tracer.job_walk_issue(record.instruction_id, gpu.sim.now)
        request = TranslationRequest(
            vpn=vpn,
            instruction_id=record.instruction_id,
            wavefront_id=self.wavefront_id,
            cu_id=self.cu_id,
            issue_time=gpu.sim.now,
            app_id=self.app_id,
        )
        # No reply closure: the IOMMU routes the reply through its
        # ``reply_to`` sink (the GPU), which recovers the continuation
        # from this plain-data context.
        request.context = (lines, inflight)
        gpu.sim.post(
            gpu.config.iommu.request_latency, "iommu.xlate", request
        )

    def _iommu_reply(
        self,
        request: TranslationRequest,
        pfn: int,
        lines: List[int],
        inflight: _InflightInstruction,
    ) -> None:
        gpu = self._gpu
        response_latency = gpu.config.iommu.response_latency
        request.complete_time = gpu.sim.now + response_latency
        record = inflight.record
        record.walk_latencies.append(request.complete_time - request.issue_time)
        record.walk_accesses += request.walk_accesses
        tracer = gpu.tracer
        if tracer is not None and tracer.cat_job:
            tracer.job_walk_complete(record.instruction_id, request.complete_time)
        gpu.sim.post(
            response_latency,
            "wf.install",
            self.wavefront_id,
            request.vpn,
            pfn,
            lines,
            inflight,
        )

    def _install_and_access(
        self, vpn: int, pfn: int, lines: List[int], inflight: _InflightInstruction
    ) -> None:
        gpu = self._gpu
        gpu.l2_tlb_fill(vpn, pfn)
        gpu.cus[self.cu_id].l1_tlb.insert(vpn, pfn)
        self._data_phase(pfn, lines, inflight)

    # ------------------------------------------------------------------
    # Data access (physical caches — translation must precede access)
    # ------------------------------------------------------------------

    def _data_phase(
        self, pfn: int, lines: List[int], inflight: _InflightInstruction
    ) -> None:
        gpu = self._gpu
        geometry = gpu.geometry
        frame_base = geometry.frame_base(pfn)
        offset = geometry.offset
        target = ("wf.line", self.wavefront_id, inflight)
        if len(lines) == 1:
            gpu.memory.data_access(
                self.cu_id, frame_base + offset(lines[0]), target
            )
            return
        gpu.memory.data_access_batch(
            self.cu_id,
            [frame_base + offset(line_va) for line_va in lines],
            target,
        )

    def _line_complete(self, inflight: _InflightInstruction) -> None:
        inflight.outstanding_lines -= 1
        if inflight.outstanding_lines > 0:
            return
        self._instruction_complete(inflight)

    # ------------------------------------------------------------------
    # Retire
    # ------------------------------------------------------------------

    def _instruction_complete(self, inflight: _InflightInstruction) -> None:
        gpu = self._gpu
        record = inflight.record
        record.complete_time = gpu.sim.now
        tracer = gpu.tracer
        if tracer is not None and tracer.cat_job:
            tracer.job_retired(
                gpu.sim.now, self.cu_id, record.instruction_id,
                record.wavefront_id, record.issue_time,
                record.walk_accesses, record.walk_requests, record.num_pages,
            )
        gpu.note_instruction_retired()
        self._outstanding -= 1
        if self._pc >= len(self._trace):
            if self._outstanding == 0:
                self._retire()
            return
        # A slot freed: the wavefront can issue again.
        self._set_blocked(False)
        self._schedule_issue(gpu.config.gpu.issue_gap_cycles)

    def _retire(self) -> None:
        self.done = True
        self._set_blocked(False)
        self._gpu.wavefront_finished(self)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-data execution state; the GPU rebuilds the object."""
        return {
            "wavefront_id": self.wavefront_id,
            "cu_id": self.cu_id,
            "app_id": self.app_id,
            "trace": self._trace,
            "pc": self._pc,
            "outstanding": self._outstanding,
            "issue_pending": self._issue_pending,
            "done": self.done,
            "blocked": self.blocked,
        }

    def restore(self, state: dict) -> None:
        self._pc = state["pc"]
        self._outstanding = state["outstanding"]
        self._issue_pending = state["issue_pending"]
        self.done = state["done"]
        # Set directly, not via _set_blocked: the CU's active/resident
        # counters are restored separately from its own snapshot.
        self.blocked = state["blocked"]
