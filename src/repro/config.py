"""System configuration for the GPU address-translation simulator.

Every structure the paper parameterises (Table I of the paper) has a
dataclass here.  The defaults reproduce the paper's baseline system:

======================  =====================================================
GPU                     2 GHz, 8 CUs, 4 SIMD units per CU, 16-wide SIMD,
                        64 workitems per wavefront
L1 data cache           32 KB, 16-way, 64 B lines (per CU)
L2 data cache           4 MB, 16-way, 64 B lines (shared)
GPU L1 TLB              32 entries, fully associative (per CU)
GPU L2 TLB              512 entries, 16-way set associative (shared)
IOMMU                   256 buffer entries, 8 page table walkers,
                        32/256-entry L1/L2 TLBs, FCFS walk scheduling
DRAM                    DDR3-1600 (800 MHz bus), 2 channels, 2 ranks per
                        channel, 16 banks per rank
======================  =====================================================

All latencies are expressed in GPU cycles (2 GHz unless configured
otherwise).  Configurations are plain frozen-ish dataclasses: construct a
new one (or use :func:`dataclasses.replace`) rather than mutating in place
mid-simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.resilience.faults import FaultPlan

#: Size of a small (base) page in bytes.  The paper uses x86-64 4 KB pages.
PAGE_SIZE = 4096

#: Number of bits used to index one level of the 4-level radix page table.
BITS_PER_LEVEL = 9

#: Number of levels in an x86-64-style page table.
PAGE_TABLE_LEVELS = 4

#: Cache line size in bytes.
LINE_SIZE = 64

#: Width of the instruction ID tag attached to walk requests (paper: 20 bits).
INSTRUCTION_ID_BITS = 20


@dataclass
class GPUConfig:
    """Compute-side organisation of the GPU (paper Table I, "GPU" row)."""

    clock_ghz: float = 2.0
    num_cus: int = 8
    simd_units_per_cu: int = 4
    simd_width: int = 16
    wavefront_size: int = 64
    #: Number of wavefronts that can be resident on a CU at once.  Each
    #: resident wavefront is an independent stream of SIMD instructions.
    wavefront_slots_per_cu: int = 4
    #: Cycles between consecutive instruction issues from one wavefront
    #: (models the compute/decode gap between memory instructions).
    issue_gap_cycles: int = 20
    #: Memory instructions a wavefront may have in flight at once.  The
    #: paper's execution model (its Fig 4: ``load A`` immediately followed
    #: by ``use A``) stalls a wavefront on each memory instruction, i.e. a
    #: window of 1.  Deeper windows overlap per-instruction walk bursts —
    #: raising interleaving — but also break the paper's premise that an
    #: instruction's last walk gates wavefront progress, which makes
    #: per-instruction SJF scoring counterproductive (see the
    #: window-depth ablation bench).
    max_outstanding_memops: int = 1
    #: Unique-page translation requests the per-CU coalescer/L1-TLB port
    #: can emit per cycle.  A divergent instruction's requests trickle
    #: out over ``num_pages / coalescer_pages_per_cycle`` cycles.
    coalescer_pages_per_cycle: int = 1
    #: Lookups the shared GPU L2 TLB can serve per cycle (its port is
    #: where concurrent wavefronts' request streams multiplex).
    l2_tlb_lookups_per_cycle: int = 1
    #: Cycles between consecutive wavefront launches when filling the
    #: initial CU slots.  The hardware workgroup dispatcher trickles work
    #: onto the GPU; launching everything at cycle 0 would create an
    #: artificial synchronized burst of cold-TLB misses.
    dispatch_stagger_cycles: int = 50

    @property
    def total_wavefront_slots(self) -> int:
        return self.num_cus * self.wavefront_slots_per_cu


@dataclass
class CacheConfig:
    """A set-associative cache (GPU L1/L2 data caches)."""

    size_bytes: int
    associativity: int
    line_size: int = LINE_SIZE
    hit_latency: int = 0

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_size

    @property
    def num_sets(self) -> int:
        return max(1, self.num_lines // self.associativity)

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("cache size must be positive")
        if self.associativity <= 0:
            raise ValueError("associativity must be positive")
        if self.size_bytes % self.line_size != 0:
            raise ValueError("cache size must be a multiple of the line size")


@dataclass
class TLBConfig:
    """A TLB level.

    ``associativity=None`` means fully associative (a single set).
    """

    entries: int
    associativity: Optional[int] = None
    hit_latency: int = 1

    def __post_init__(self) -> None:
        if self.entries <= 0:
            raise ValueError("TLB must have at least one entry")
        if self.associativity is not None:
            if self.associativity <= 0:
                raise ValueError("associativity must be positive")
            if self.entries % self.associativity != 0:
                raise ValueError("entries must divide evenly into sets")

    @property
    def num_sets(self) -> int:
        if self.associativity is None:
            return 1
        return self.entries // self.associativity


@dataclass
class PWCConfig:
    """Page walk caches: one small cache per upper page-table level.

    The IOMMU caches translations for the top three levels of the
    four-level page table (paper §II-B).  ``entries_per_level`` is the
    capacity of each per-level cache.
    """

    entries_per_level: int = 16
    associativity: int = 4
    #: Enable the paper's 2-bit saturating counters that steer replacement
    #: away from entries pending requests were scored against (§IV).
    counter_guard: bool = True
    counter_bits: int = 2

    def __post_init__(self) -> None:
        if self.entries_per_level % self.associativity != 0:
            raise ValueError("PWC entries must divide evenly into sets")


@dataclass
class IOMMUConfig:
    """The IOMMU: TLBs, pending-walk buffer and the walker pool."""

    buffer_entries: int = 256
    num_walkers: int = 8
    l1_tlb: TLBConfig = field(default_factory=lambda: TLBConfig(entries=32))
    l2_tlb: TLBConfig = field(
        default_factory=lambda: TLBConfig(entries=256, associativity=8)
    )
    pwc: PWCConfig = field(default_factory=PWCConfig)
    #: Scheduling policy for pending page walks.  One of the names
    #: registered in :mod:`repro.core.schedulers` ("fcfs", "random",
    #: "sjf", "batch", "simt").
    scheduler: str = "fcfs"
    #: Aging threshold: a pending request bypassed by more than this many
    #: younger requests is prioritised unconditionally.  The paper uses
    #: two million on full-length gem5 runs; our traces are roughly three
    #: orders of magnitude shorter, so the default scales accordingly
    #: (the ratio of threshold to total walk count is comparable).
    aging_threshold: int = 2_000
    #: Seed for the random scheduler.
    scheduler_seed: int = 0
    #: Same-page walk merging across instructions (an MSHR-style feature
    #: the paper does not describe).  One of:
    #:
    #: * ``"off"``      — every buffered request walks independently;
    #: * ``"inflight"`` — a request whose page is already being walked
    #:   joins that walk (pure dedup; scheduler-neutral);
    #: * ``"full"``     — additionally merge with *pending* buffered
    #:   walks.  This disproportionately benefits slow schedulers: the
    #:   longer a walk sits pending, the more sharers it captures — see
    #:   the coalescing ablation bench.
    coalesce_walks: str = "inflight"
    #: Extension (paper related work: inter-core cooperative TLB
    #: prefetchers): after a demand walk for page *p* completes, walk
    #: page *p+1* opportunistically — only on an otherwise-idle walker,
    #: never displacing demand traffic — and fill the IOMMU L2 TLB.
    prefetch_next_page: bool = False
    #: Cycles the scheduler spends scanning the pending-walk buffer per
    #: selection (paper §IV "Design Subtleties": every buffered request
    #: has already missed the whole TLB hierarchy, so a few scan cycles
    #: add little delay — the scan-latency ablation bench verifies it).
    scan_latency_cycles: int = 0
    #: Fixed latency (cycles) for a translation that hits in an IOMMU TLB.
    tlb_hit_latency: int = 20
    #: Latency for a GPU-TLB-miss request to travel to the IOMMU.
    request_latency: int = 100
    #: Latency for a completed translation to travel back to the GPU.
    response_latency: int = 100


@dataclass
class DRAMConfig:
    """A simplified DDR3-1600-style DRAM timing model.

    Latencies are in GPU cycles.  The defaults approximate DDR3-1600 at a
    2 GHz GPU clock: ~15 ns CAS / RCD / RP ≈ 30 GPU cycles each.
    """

    channels: int = 2
    ranks_per_channel: int = 2
    banks_per_rank: int = 16
    row_size_bytes: int = 2048
    #: Column access latency (row-buffer hit).
    t_cas: int = 30
    #: Activate latency (row-buffer miss adds t_rp + t_rcd).
    t_rcd: int = 30
    #: Precharge latency.
    t_rp: int = 30
    #: Data-transfer occupancy of a bank per access.
    t_burst: int = 8
    #: Front-end model: "reservation" (lightweight, per-bank FIFO) or a
    #: queued controller with request scheduling ("fcfs" / "frfcfs" /
    #: "sms" — see :mod:`repro.memory.controller`).
    controller: str = "reservation"
    #: SMS-style batch former ("sms" controller only): consecutive
    #: same-source requests a bank serves before re-arbitrating between
    #: page-walk and data traffic.
    sms_batch_cap: int = 4

    @property
    def total_banks(self) -> int:
        return self.channels * self.ranks_per_channel * self.banks_per_rank


@dataclass
class SystemConfig:
    """Top-level configuration: the whole simulated machine (Table I)."""

    #: Translation granularity: "4K" base pages (the paper's baseline) or
    #: "2M" large pages (its §VI discussion).
    page_size: str = "4K"
    #: Oracle mode: translations resolve instantly and never miss —
    #: isolates address-translation overhead (the paper's motivating
    #: up-to-4x slowdowns are measured against exactly this ideal).
    perfect_translation: bool = False
    gpu: GPUConfig = field(default_factory=GPUConfig)
    l1_cache: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=32 * 1024, associativity=16, hit_latency=4
        )
    )
    l2_cache: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=4 * 1024 * 1024, associativity=16, hit_latency=30
        )
    )
    gpu_l1_tlb: TLBConfig = field(default_factory=lambda: TLBConfig(entries=32))
    gpu_l2_tlb: TLBConfig = field(
        default_factory=lambda: TLBConfig(entries=512, associativity=16, hit_latency=10)
    )
    iommu: IOMMUConfig = field(default_factory=IOMMUConfig)
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    #: Deterministic fault-injection plan (resilience testing).  ``None``
    #: — or a plan with no events — means the fault-free fast path, which
    #: is bit-identical to a build without the resilience subsystem.
    faults: Optional["FaultPlan"] = None

    def with_scheduler(self, name: str, seed: int = 0) -> "SystemConfig":
        """Return a copy of this configuration using walk scheduler ``name``."""
        return replace(
            self, iommu=replace(self.iommu, scheduler=name, scheduler_seed=seed)
        )

    def with_l2_tlb_entries(self, entries: int) -> "SystemConfig":
        """Return a copy with a resized GPU shared L2 TLB (Fig 13 sweeps)."""
        return replace(self, gpu_l2_tlb=replace(self.gpu_l2_tlb, entries=entries))

    def with_walkers(self, num_walkers: int) -> "SystemConfig":
        """Return a copy with a different page-table walker count (Fig 13)."""
        return replace(self, iommu=replace(self.iommu, num_walkers=num_walkers))

    def with_iommu_buffer(self, entries: int) -> "SystemConfig":
        """Return a copy with a different IOMMU buffer size (Fig 14)."""
        return replace(self, iommu=replace(self.iommu, buffer_entries=entries))

    def with_page_size(self, page_size: str) -> "SystemConfig":
        """Return a copy mapping memory with "4K" or "2M" pages (§VI)."""
        if page_size.upper() not in ("4K", "2M"):
            raise ValueError(f"unsupported page size {page_size!r}")
        return replace(self, page_size=page_size.upper())

    def with_faults(self, plan: Optional["FaultPlan"]) -> "SystemConfig":
        """Return a copy running under fault-injection plan ``plan``."""
        return replace(self, faults=plan)

    def with_dram_controller(self, controller: str) -> "SystemConfig":
        """Return a copy using DRAM front end ``controller``
        ("reservation", or a queued policy: "fcfs" / "frfcfs" / "sms")."""
        return replace(self, dram=replace(self.dram, controller=controller))


def baseline_config(scheduler: str = "fcfs") -> SystemConfig:
    """The paper's Table I baseline system with the given walk scheduler."""
    return SystemConfig().with_scheduler(scheduler)
