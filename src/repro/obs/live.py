"""Live sweep dashboard: tail fleet telemetry JSONL, serve progress.

:class:`~repro.obs.fleet.FleetTelemetry` already streams every sweep
event to a JSONL log — ``repro fleet-report --fleet-log`` writes one
file, a ``repro service`` campaign writes one per shard claim under
``shards/``.  This module turns those append-only logs into a live
view with no dependencies beyond the stdlib:

* :func:`read_fleet_events` — a tolerant JSONL tailer (a partially
  written last line, the normal state of a log being appended to, is
  skipped rather than fatal);
* :func:`progress_snapshot` — a **pure** reduction of events into the
  dashboard state: per-spec progress, running specs with heartbeat
  staleness, retry/timeout tallies, throughput and ETA.  Pure means
  the tests feed synthetic events and a fixed ``now`` and assert on
  the exact snapshot — the HTTP layer adds nothing but transport;
* :func:`serve_dashboard` — ``http.server.ThreadingHTTPServer``
  serving a self-refreshing page at ``/`` and the snapshot at
  ``/data.json``.

Start it against a running campaign::

    python -m repro report --serve out/campaign --port 8080

The server re-reads the logs on every poll, so it can be attached and
detached at any point in the campaign's life, including after a crash.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

#: A worker heartbeat older than this is flagged stale — the cadence in
#: the runner is seconds, so a minute of silence means a wedged or dead
#: worker, not a slow one.
STALE_HEARTBEAT_SECONDS = 60.0

_FINAL_EVENTS = ("spec_finished",)


def _number(value: Any, default: float = 0.0) -> float:
    """Tolerant numeric coercion for fields read from live JSONL.

    A log being appended to can surface records whose numeric fields
    are missing, null, or (after a torn write that still parsed) the
    wrong type; the dashboard must degrade, never crash.
    """
    if isinstance(value, bool):  # bool is an int subclass; reject it
        return default
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value)
        except ValueError:
            return default
    return default


def _opt_number(value: Any) -> Optional[float]:
    """Like :func:`_number` but None when the field is absent/garbage."""
    if isinstance(value, bool) or value is None:
        return None
    coerced = _number(value, default=float("nan"))
    return None if coerced != coerced else coerced


def discover_logs(path: Union[str, Path]) -> List[Path]:
    """Every telemetry JSONL under a campaign dir (or the file itself).

    A campaign directory contributes each shard's claim logs from
    ``shards/``; a plain path is taken as one fleet log.  Sorted for
    deterministic event ordering between equal timestamps.
    """
    path = Path(path)
    if path.is_dir():
        shards = path / "shards"
        root = shards if shards.is_dir() else path
        return sorted(candidate for candidate in root.glob("*.jsonl"))
    return [path]


def read_fleet_events(paths: Sequence[Union[str, Path]]) -> List[Dict[str, Any]]:
    """Parse telemetry JSONL logs into one time-ordered event list.

    Each event gains a ``source`` field (the log's stem) so per-shard
    spec indices never collide.  Unparseable lines — almost always the
    half-flushed tail of a live log — are dropped silently; the next
    poll will see them whole.
    """
    events: List[Dict[str, Any]] = []
    for path in paths:
        path = Path(path)
        if not path.exists():
            continue
        source = path.stem
        for line in path.read_text(errors="replace").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and "event" in record:
                record.setdefault("source", source)
                events.append(record)
    events.sort(
        key=lambda record: (
            _number(record.get("t")), str(record.get("source", ""))
        )
    )
    return events


def progress_snapshot(
    events: Sequence[Dict[str, Any]],
    total_specs: Optional[int] = None,
    now: Optional[float] = None,
) -> Dict[str, Any]:
    """Reduce telemetry events to the current campaign state.

    ``total_specs`` overrides the spec count (a service campaign knows
    it from the manifest; per-shard ``sweep_started`` totals are summed
    otherwise).  ``now`` anchors staleness/ETA math; it defaults to the
    newest event timestamp so a snapshot of a finished log is stable.
    """
    if now is None:
        now = max((_number(record.get("t")) for record in events), default=0.0)

    #: source -> latest sweep_started record (a resumed shard restarts
    #: its sweep; the latest announcement wins).
    sweeps: Dict[str, Dict[str, Any]] = {}
    #: (source, index) -> latest spec_finished record.
    finished: Dict[Tuple[str, int], Dict[str, Any]] = {}
    #: (source, index) -> latest spec_started record.
    started: Dict[Tuple[str, int], Dict[str, Any]] = {}
    #: (source, index) -> latest heartbeat record.
    heartbeats: Dict[Tuple[str, int], Dict[str, Any]] = {}
    retries = 0
    timeouts = 0
    sweep_done = set()

    for record in events:
        kind = record.get("event")
        source = str(record.get("source", ""))
        key = (source, int(_number(record.get("index"), -1)))
        if kind == "sweep_started":
            sweeps[source] = record
        elif kind == "spec_started":
            started[key] = record
        elif kind == "heartbeat":
            heartbeats[key] = record
        elif kind == "spec_retry":
            retries += 1
        elif kind == "spec_timeout":
            timeouts += 1
        elif kind == "spec_finished":
            finished[key] = record
        elif kind == "sweep_finished":
            sweep_done.add(source)

    if total_specs is None:
        total_specs = int(sum(
            _number(record.get("total")) for record in sweeps.values()
        )) or None

    status_counts: Dict[str, int] = {}
    durations: List[float] = []
    recent: List[Dict[str, Any]] = []
    for key, record in finished.items():
        status = str(record.get("status", "unknown"))
        status_counts[status] = status_counts.get(status, 0) + 1
        elapsed = record.get("elapsed_seconds")
        if isinstance(elapsed, (int, float)) and elapsed > 0:
            durations.append(float(elapsed))
        recent.append(
            {
                "source": key[0],
                "index": key[1],
                "spec": record.get("spec"),
                "status": status,
                "attempts": record.get("attempts"),
                "elapsed_seconds": elapsed,
                "t": record.get("t"),
            }
        )
    recent.sort(
        key=lambda row: (-_number(row["t"]), row["source"], row["index"])
    )

    running: List[Dict[str, Any]] = []
    for key, record in sorted(started.items()):
        if key in finished:
            continue
        beat = heartbeats.get(key)
        beat_t = _opt_number(beat.get("t")) if beat else None
        beat_age = (now - beat_t) if beat_t is not None else None
        start_t = _opt_number(record.get("t"))
        start_age = (now - start_t) if start_t is not None else None
        # A shard log that ends mid-line loses its newest heartbeat
        # record; the spec's own start time is then the best available
        # liveness signal, so staleness falls back to it rather than
        # reporting a silently-running worker as healthy forever.
        staleness_age = beat_age if beat_age is not None else start_age
        running.append(
            {
                "source": key[0],
                "index": key[1],
                "spec": record.get("spec"),
                "attempt": record.get("attempt"),
                "running_seconds": round(start_age, 1)
                if start_age is not None else None,
                "pid": beat.get("pid") if beat else None,
                "heartbeat_age_seconds": round(beat_age, 1)
                if beat_age is not None else None,
                "stale": bool(
                    staleness_age is not None
                    and staleness_age > STALE_HEARTBEAT_SECONDS
                ),
            }
        )

    done = len(finished)
    eta_seconds: Optional[float] = None
    # ETA needs at least one completed spec with a positive duration;
    # with zero completions there is nothing to extrapolate from, and
    # the guard keeps an empty `durations` (or a sweeps list with
    # no/zero jobs fields) from ever dividing by zero.
    if total_specs and durations and done < total_specs:
        mean = sum(durations) / len(durations)
        # Live specs drain in parallel; the observed concurrency is the
        # honest divisor (a finished campaign never reaches this branch).
        lanes = max(1, len(running)) if running else max(
            1,
            int(sum(
                _number(record.get("jobs"), 1) for record in sweeps.values()
            )),
        )
        eta_seconds = round(mean * (total_specs - done) / lanes, 1)

    return {
        "format": "repro-live-progress",
        "version": 1,
        "now": now,
        "total_specs": total_specs,
        "done": done,
        "status_counts": dict(sorted(status_counts.items())),
        "retries": retries,
        "timeouts": timeouts,
        "running": running,
        "recent": recent[:20],
        "stale_workers": sum(1 for row in running if row["stale"]),
        "sweeps_finished": len(sweep_done),
        "sources": len(sweeps) or len({r.get("source") for r in events if r}),
        "eta_seconds": eta_seconds,
        "complete": bool(total_specs and done >= total_specs),
    }


# ----------------------------------------------------------------------
# HTTP layer
# ----------------------------------------------------------------------

_PAGE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro — live sweep</title>
<style>
:root { --surface: #fcfcfb; --ink: #0b0b0b; --ink-2: #52514e;
        --line: #e8e7e3; --accent: #2a78d6; --bad: #e34948; }
@media (prefers-color-scheme: dark) {
  :root { --surface: #1a1a19; --ink: #f2f1ef; --ink-2: #b4b2ad;
          --line: #3a3936; }
}
body { background: var(--surface); color: var(--ink);
       font: 15px/1.5 system-ui, sans-serif;
       margin: 2rem auto; max-width: 60rem; padding: 0 1rem; }
.tiles { display: flex; flex-wrap: wrap; gap: 1rem; }
.tile { border: 1px solid var(--line); border-radius: 6px;
        min-width: 8rem; padding: 0.6rem 1rem; }
.tile b { display: block; font-size: 1.6rem; }
.tile span { color: var(--ink-2); font-size: 0.85rem; }
.bar { background: var(--line); border-radius: 4px; height: 10px;
       margin: 1.2rem 0; overflow: hidden; }
.bar div { background: var(--accent); height: 100%; width: 0; }
table { border-collapse: collapse; width: 100%; }
th, td { border-bottom: 1px solid var(--line); font-size: 0.9rem;
         padding: 0.25rem 0.75rem 0.25rem 0; text-align: left; }
.stale { color: var(--bad); font-weight: 600; }
h2 { margin-top: 2rem; }
#meta { color: var(--ink-2); font-size: 0.85rem; }
</style>
</head>
<body>
<h1>Live sweep progress</h1>
<p id="meta">waiting for first poll…</p>
<div class="tiles" id="tiles"></div>
<div class="bar"><div id="fill"></div></div>
<h2>Running</h2>
<table id="running"><thead><tr>
<th>shard</th><th>#</th><th>spec</th><th>attempt</th><th>running</th>
<th>pid</th><th>heartbeat</th></tr></thead><tbody></tbody></table>
<h2>Recent finishes</h2>
<table id="recent"><thead><tr>
<th>shard</th><th>#</th><th>spec</th><th>status</th><th>attempts</th>
<th>elapsed</th></tr></thead><tbody></tbody></table>
<script>
function tile(value, label) {
  return '<div class="tile"><b>' + value + '</b><span>' + label +
         '</span></div>';
}
function esc(value) {
  return String(value == null ? "—" : value).replace(/[&<>]/g, function (c) {
    return {"&": "&amp;", "<": "&lt;", ">": "&gt;"}[c];
  });
}
function fmtSeconds(s) {
  if (s == null) return "—";
  if (s < 120) return s.toFixed(0) + "s";
  return (s / 60).toFixed(1) + "m";
}
async function poll() {
  try {
    var data = await (await fetch("data.json")).json();
  } catch (err) {
    document.getElementById("meta").textContent = "poll failed: " + err;
    return;
  }
  var total = data.total_specs;
  var pct = total ? Math.round(100 * data.done / total) : 0;
  document.getElementById("fill").style.width = pct + "%";
  document.getElementById("meta").textContent =
    (total ? data.done + "/" + total + " specs (" + pct + "%)"
           : data.done + " specs finished") +
    (data.eta_seconds != null ? " — ETA " + fmtSeconds(data.eta_seconds) : "") +
    (data.complete ? " — complete" : "");
  var tiles =
    tile(data.done, "finished") +
    tile(data.running.length, "running") +
    tile(data.retries, "retries") +
    tile(data.timeouts, "timeouts") +
    tile(data.stale_workers, "stale workers");
  for (var status in data.status_counts) {
    tiles += tile(data.status_counts[status], status);
  }
  document.getElementById("tiles").innerHTML = tiles;
  document.querySelector("#running tbody").innerHTML = data.running.map(
    function (row) {
      var beat = row.heartbeat_age_seconds == null ? "—"
        : fmtSeconds(row.heartbeat_age_seconds) + " ago";
      return "<tr><td>" + esc(row.source) + "</td><td>" + esc(row.index) +
        "</td><td>" + esc(row.spec) + "</td><td>" + esc(row.attempt) +
        "</td><td>" + fmtSeconds(row.running_seconds) +
        "</td><td>" + esc(row.pid) + "</td><td" +
        (row.stale ? ' class="stale"' : "") + ">" + beat + "</td></tr>";
    }).join("");
  document.querySelector("#recent tbody").innerHTML = data.recent.map(
    function (row) {
      return "<tr><td>" + esc(row.source) + "</td><td>" + esc(row.index) +
        "</td><td>" + esc(row.spec) + "</td><td>" + esc(row.status) +
        "</td><td>" + esc(row.attempts) + "</td><td>" +
        fmtSeconds(row.elapsed_seconds) + "</td></tr>";
    }).join("");
}
poll();
setInterval(poll, 2000);
</script>
</body>
</html>
"""


class _DashboardHandler(BaseHTTPRequestHandler):
    """Serves the static page and the freshly recomputed snapshot."""

    server: "DashboardServer"

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        if self.path in ("/", "/index.html"):
            self._respond(200, "text/html; charset=utf-8", _PAGE)
        elif self.path in ("/data.json", "/data"):
            body = json.dumps(self.server.snapshot(), sort_keys=True)
            self._respond(200, "application/json", body)
        else:
            self._respond(404, "text/plain; charset=utf-8", "not found\n")

    def _respond(self, code: int, content_type: str, body: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format: str, *args: Any) -> None:
        pass  # the dashboard is the log; don't spam the terminal


class DashboardServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that re-reads the telemetry logs per poll."""

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        watch: Union[str, Path],
        total_specs: Optional[int] = None,
    ) -> None:
        super().__init__(address, _DashboardHandler)
        self.watch = Path(watch)
        self.total_specs = total_specs

    def snapshot(self) -> Dict[str, Any]:
        events = read_fleet_events(discover_logs(self.watch))
        return progress_snapshot(
            events, total_specs=self.total_specs, now=time.time()
        )


def campaign_total_specs(campaign_dir: Union[str, Path]) -> Optional[int]:
    """The authoritative spec count from a campaign manifest, if present."""
    manifest_path = Path(campaign_dir) / "manifest.json"
    if not manifest_path.exists():
        return None
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError:
        return None
    spec_keys = manifest.get("spec_keys")
    return len(spec_keys) if isinstance(spec_keys, list) else None


def serve_dashboard(
    watch: Union[str, Path],
    host: str = "127.0.0.1",
    port: int = 8377,
    total_specs: Optional[int] = None,
) -> DashboardServer:
    """Bind the dashboard server (caller drives ``serve_forever``).

    Returning the bound-but-idle server keeps this testable: tests bind
    port 0, hit :meth:`DashboardServer.snapshot` or one request, and
    shut down without threads outliving them.
    """
    if total_specs is None:
        watch_path = Path(watch)
        if watch_path.is_dir():
            total_specs = campaign_total_specs(watch_path)
    return DashboardServer((host, port), watch, total_specs=total_specs)
