"""A live metrics registry sampled on the simulator's monitor hook.

End-of-run aggregates (``IOMMU.stats()`` and friends) answer *what
happened*; the registry answers *when*: pending-buffer depth over time,
walker occupancy, PWC hit rate by level, DRAM queue depth, per-scheduler
bypass/aging counts — each sampled every N fired events alongside the
watchdog.  The whole registry serialises into
``SimulationResult.detail["metrics"]``, so a sweep's queue dynamics are
archived next to its cycle counts.

Instruments are deliberately tiny (no labels, no exposition format):

``Counter``
    Monotonic count; ``inc()``.

``Gauge``
    Point-in-time value; ``set()``.

``Histogram``
    Bucketed distribution over :class:`~repro.stats.counters.BucketHistogram`
    (bisect-indexed; mergeable across sweep workers).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.stats.counters import BucketHistogram

#: Default sampling cadence, in fired simulator events.
DEFAULT_SAMPLE_INTERVAL_EVENTS = 10_000

#: Buckets for the sampled pending-buffer depth distribution.
_DEPTH_BUCKETS: Tuple[Tuple[int, int], ...] = (
    (0, 0), (1, 4), (5, 16), (17, 64), (65, 256), (257, 4096),
)

#: Buckets for per-walk completion latency (cycles).  Log-spaced: walk
#: latencies span PWC hits (~tens of cycles) to full four-level walks
#: behind a contended DRAM queue (thousands).  The latency-CDF figure
#: reads this histogram back via ``BucketHistogram.cdf_points``, and
#: because the buckets are fixed the per-run histograms merge exactly
#: across a sweep.
WALK_LATENCY_BUCKETS: Tuple[Tuple[int, int], ...] = (
    (0, 49), (50, 99), (100, 199), (200, 399), (400, 799),
    (800, 1599), (1600, 3199), (3200, 6399), (6400, 12799),
    (12800, 25599), (25600, 102399),
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount


class Gauge:
    """A point-in-time value, with min/max watermarks."""

    __slots__ = ("name", "value", "min_value", "max_value", "samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Union[int, float] = 0
        self.min_value: Optional[Union[int, float]] = None
        self.max_value: Optional[Union[int, float]] = None
        self.samples = 0

    def set(self, value: Union[int, float]) -> None:
        self.value = value
        self.samples += 1
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value

    def merge(self, other: "Gauge") -> None:
        """Fold another run's watermarks into this gauge in place.

        Watermarks combine exactly (min of mins, max of maxes) and
        sample counts add; ``value`` becomes the merged-in gauge's last
        value — point-in-time values from different runs have no single
        truth, the watermarks are the cross-run signal.
        """
        if other.samples:
            self.value = other.value
        self.samples += other.samples
        if other.min_value is not None and (
            self.min_value is None or other.min_value < self.min_value
        ):
            self.min_value = other.min_value
        if other.max_value is not None and (
            self.max_value is None or other.max_value > self.max_value
        ):
            self.max_value = other.max_value


class MetricsRegistry:
    """Named counters, gauges and histograms plus a sampled time series.

    :meth:`sample` appends one row of every gauge's current value keyed
    by simulation cycle — the time-series backbone ("pending depth over
    time").  ``max_series_samples`` bounds memory on long runs by
    decimating: when full, every other row is dropped and the sampling
    stride doubles (the series stays evenly spaced).
    """

    def __init__(self, max_series_samples: int = 4_096) -> None:
        if max_series_samples <= 1:
            raise ValueError(
                f"max_series_samples must be > 1, got {max_series_samples}"
            )
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, BucketHistogram] = {}
        self._max_series = max_series_samples
        self._series_stride = 1
        self._series_skip = 0
        #: One row per kept sample: (cycle, {gauge name: value}).
        self.series: List[Tuple[int, Dict[str, Union[int, float]]]] = []
        self.samples_taken = 0

    # -- instrument accessors (create on first use) --------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, buckets: Sequence[Tuple[int, int]] = _DEPTH_BUCKETS
    ) -> BucketHistogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = BucketHistogram(buckets)
        return instrument

    # -- sampling -------------------------------------------------------

    def sample(self, cycle: int) -> None:
        """Record one time-series row of every gauge's current value."""
        self.samples_taken += 1
        self._series_skip += 1
        if self._series_skip < self._series_stride:
            return
        self._series_skip = 0
        row = {name: gauge.value for name, gauge in self._gauges.items()}
        self.series.append((cycle, row))
        if len(self.series) >= self._max_series:
            self.series = self.series[::2]
            self._series_stride *= 2

    # -- merging (cross-run aggregation) --------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another run's registry into this one in place.

        Built for sweep aggregation: counters add, gauge watermarks
        combine (:meth:`Gauge.merge`), histograms merge bucket-by-bucket
        via :meth:`BucketHistogram.merge` (raising :class:`ValueError`
        on shape mismatch — never silently misfiling counts), and
        instruments present only in ``other`` are copied in.  The
        sampled time series is deliberately *not* concatenated: cycle
        axes from different runs don't compose, so the merged registry
        keeps only this registry's own series.
        """
        for name, counter in other._counters.items():
            self.counter(name).inc(counter.value)
        for name, gauge in other._gauges.items():
            self.gauge(name).merge(gauge)
        for name, histogram in other._histograms.items():
            mine = self._histograms.get(name)
            if mine is None:
                self._histograms[name] = BucketHistogram.from_counts(
                    histogram.bucket_bounds(),
                    histogram.counts(),
                    histogram.out_of_range,
                )
            else:
                mine.merge(histogram)
        self.samples_taken += other.samples_taken

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "MetricsRegistry":
        """Rebuild a registry from an :meth:`as_dict` dump.

        The inverse of export, up to the decimated series (restored
        as-is).  Lets archived per-run dumps — e.g. each sweep result's
        ``detail["metrics"]`` — be re-materialised and merged.
        """
        registry = cls()
        for name, value in data.get("counters", {}).items():
            registry.counter(name).inc(int(value))
        for name, dump in data.get("gauges", {}).items():
            gauge = registry.gauge(name)
            gauge.value = dump["value"]
            gauge.min_value = dump.get("min")
            gauge.max_value = dump.get("max")
            gauge.samples = int(dump.get("samples", 0))
        for name, dump in data.get("histograms", {}).items():
            registry._histograms[name] = BucketHistogram.from_counts(
                [tuple(bucket) for bucket in dump["buckets"]],
                dump["counts"],
                dump.get("out_of_range", 0),
            )
        for row in data.get("series", []):
            row = dict(row)
            cycle = row.pop("cycle")
            registry.series.append((cycle, row))
        registry.samples_taken = int(data.get("samples_taken", 0))
        return registry

    # -- checkpointing ---------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Exact registry state, including the decimation stride/skip
        that :meth:`as_dict` does not carry (resume must keep sampling
        on the same cadence)."""
        return {
            "counters": {
                name: counter.value for name, counter in self._counters.items()
            },
            "gauges": {
                name: (gauge.value, gauge.min_value, gauge.max_value, gauge.samples)
                for name, gauge in self._gauges.items()
            },
            "histograms": {
                name: (
                    histogram.bucket_bounds(),
                    histogram.counts(),
                    histogram.out_of_range,
                )
                for name, histogram in self._histograms.items()
            },
            "series": list(self.series),
            "series_stride": self._series_stride,
            "series_skip": self._series_skip,
            "samples_taken": self.samples_taken,
        }

    def restore(self, state: Dict[str, object]) -> None:
        self._counters = {}
        for name, value in state["counters"].items():
            counter = self.counter(name)
            counter.value = value
        self._gauges = {}
        for name, dump in state["gauges"].items():
            gauge = self.gauge(name)
            gauge.value, gauge.min_value, gauge.max_value, gauge.samples = dump
        self._histograms = {}
        for name, (bounds, counts, out_of_range) in state["histograms"].items():
            self._histograms[name] = BucketHistogram.from_counts(
                bounds, counts, out_of_range
            )
        self.series = list(state["series"])
        self._series_stride = state["series_stride"]
        self._series_skip = state["series_skip"]
        self.samples_taken = state["samples_taken"]

    # -- export ---------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """The whole registry as JSON-serialisable primitives."""
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: {
                    "value": gauge.value,
                    "min": gauge.min_value,
                    "max": gauge.max_value,
                    "samples": gauge.samples,
                }
                for name, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "buckets": [
                        list(bucket) for bucket in histogram.bucket_bounds()
                    ],
                    "labels": histogram.labels(),
                    "counts": histogram.counts(),
                    "total": histogram.total,
                    "out_of_range": histogram.out_of_range,
                }
                for name, histogram in sorted(self._histograms.items())
            },
            "series": [
                {"cycle": cycle, **row} for cycle, row in self.series
            ],
            "samples_taken": self.samples_taken,
        }


def install_standard_metrics(system, registry: MetricsRegistry) -> Callable[[], None]:
    """Wire the standard pipeline gauges; returns the sampler callback.

    The callback is meant for :meth:`Simulator.add_monitor`: each firing
    refreshes every gauge from live model state, feeds the depth
    histograms, and appends one time-series row.  It reads state only —
    attaching it never changes simulation behaviour.
    """
    iommu = system.iommu
    gpu = system.gpu
    memory = system.memory
    simulator = system.simulator

    pending = registry.gauge("iommu.pending_walks")
    overflow = registry.gauge("iommu.overflow_queued")
    busy_walkers = registry.gauge("iommu.busy_walkers")
    depth_histogram = registry.histogram("iommu.pending_depth")
    retired = registry.gauge("gpu.instructions_retired")
    running = registry.gauge("gpu.running_wavefronts")
    dram_queue = registry.gauge("dram.queued_requests")

    scheduler = iommu.scheduler
    walkers = iommu.walkers
    controller = memory.controller

    def sample() -> None:
        now = simulator.now
        depth = len(iommu.buffer)
        pending.set(depth)
        depth_histogram.add(depth)
        overflow.set(iommu.overflow_queued)
        busy_walkers.set(sum(1 for walker in walkers if walker.is_busy))
        retired.set(gpu.instructions_retired)
        running.set(gpu.running_wavefronts)
        if controller is not None:
            dram_queue.set(controller.queued_requests)
        # Scheduler-policy observability: bypass/aging and SJF-vs-batch
        # pick counts, for the policies that keep them.
        aging = getattr(scheduler, "aging", None)
        if aging is not None:
            registry.gauge("scheduler.aging_promotions").set(aging.promotions)
        batch_hits = getattr(scheduler, "batch_hits", None)
        if batch_hits is not None:
            registry.gauge("scheduler.batch_hits").set(batch_hits)
            registry.gauge("scheduler.sjf_picks").set(scheduler.sjf_picks)
        registry.sample(now)

    return sample


def finalize_standard_metrics(system, registry: MetricsRegistry) -> None:
    """Fold end-of-run totals into the registry's counters.

    Sampled gauges show dynamics; these counters pin the final tallies
    (PWC hit rate by level, TLB hits, walk counts) so a metrics dump is
    self-contained without cross-referencing ``detail["iommu"]``.
    """
    iommu = system.iommu
    registry.counter("iommu.requests").inc(iommu.requests)
    registry.counter("iommu.tlb_hits").inc(iommu.tlb_hits)
    registry.counter("iommu.walks_dispatched").inc(iommu.walks_dispatched)
    registry.counter("iommu.walks_completed").inc(iommu.walks_completed())
    for level, stats in sorted(iommu.pwc.stats().items()):
        registry.counter(f"pwc.{level}.hits").inc(stats["hits"])
        registry.counter(f"pwc.{level}.misses").inc(stats["misses"])
    for name, tlb in (("iommu_l1", iommu.l1_tlb), ("iommu_l2", iommu.l2_tlb),
                      ("gpu_l2", system.gpu.l2_tlb)):
        registry.counter(f"tlb.{name}.hits").inc(tlb.hits)
        registry.counter(f"tlb.{name}.misses").inc(tlb.misses)
    for walker in iommu.walkers:
        registry.counter("walker.busy_cycles").inc(walker.busy_cycles)
        registry.counter("walker.memory_accesses").inc(walker.memory_accesses)
    # Walk-stage attribution counters (see docs/OBSERVABILITY.md,
    # "Latency attribution"): aggregate cycle totals per lifecycle
    # stage, kept always-on by the engine so blame summaries and the
    # blame figure family work from a metrics-only campaign with no
    # tracing at all.  The DRAM split comes from the reservation
    # model's page-table-read accounting; under the queued controller
    # those three counters stay zero (the per-walk trace path still
    # attributes them exactly).
    memory = system.memory
    row_cycles = (
        memory.pt_read_cycles - memory.pt_queue_cycles - memory.pt_pad_cycles
    )
    registry.counter("walk.stage.enqueue_wait_cycles").inc(
        iommu.total_overflow_wait
    )
    registry.counter("walk.stage.queue_wait_cycles").inc(
        iommu.total_queue_wait
    )
    registry.counter("walk.stage.service_cycles").inc(
        iommu.total_service_time
    )
    registry.counter("walk.stage.dram_bank_queue_cycles").inc(
        memory.pt_queue_cycles
    )
    registry.counter("walk.stage.dram_row_cycles").inc(row_cycles)
    registry.counter("walk.stage.fault_pad_cycles").inc(
        memory.pt_pad_cycles
    )
    registry.counter("walk.stage.deliver_hold_cycles").inc(
        sum(walker.held_cycles for walker in iommu.walkers)
    )
    # Per-walk completion latencies, bucketed for the latency-CDF
    # figure.  Fed once at end of run from the instruction records (the
    # same source as detail["walk_latency_percentiles"]), so the
    # histogram is exact, not sampled.
    latency_histogram = registry.histogram(
        "walk.latency_cycles", WALK_LATENCY_BUCKETS
    )
    for record in system.gpu.instruction_records:
        for latency in record.walk_latencies:
            latency_histogram.add(latency)
