"""Benchmark regression gating: committed baselines vs current numbers.

The perf story of this repo lives in the ``BENCH_*.json`` files —
the scheduler hot path (``hotpath``), the tracing overhead guard
(``tracing_overhead``), the fleet sweep bench (``fleet``), the
event-core bench (``event_core``), the figure pipeline (``figures``)
and the walk-latency attribution bench (``attrib``) — all written in
the unified envelope from :mod:`repro.stats.export`.  This
module turns them into a *gate*: load the committed baseline, load the
current numbers, compare each watched metric under a configurable
relative threshold, and fail loudly (nonzero exit via ``python -m
repro bench-check``) when a number moved the wrong way.

Metric semantics:

* ``higher`` — bigger is better (throughput, speedup).  Regression
  when ``current < baseline * (1 - threshold)``.
* ``lower`` — smaller is better (overhead ratios).  Regression when
  ``current > baseline * (1 + threshold)``.
* ``exact`` — must compare equal (correctness booleans like
  ``identical_results``); any difference is a regression.

Wall-clock benches are noisy, so thresholds for them are deliberately
loose and CI runs the gate warn-only until tuned; the deterministic
fleet-sweep metrics (cycle counts, geomean speedups) get tight
thresholds because any drift there is a real behaviour change.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.stats.export import load_bench_report
from repro.stats.formatting import format_number

#: bench name -> expected file name (repo root and baseline dir).
BENCH_FILES: Dict[str, str] = {
    "hotpath": "BENCH_hotpath.json",
    "tracing_overhead": "BENCH_tracing_overhead.json",
    "fleet": "BENCH_fleet.json",
    "event_core": "BENCH_event_core.json",
    "figures": "BENCH_figures.json",
    "attrib": "BENCH_attrib.json",
    "zoo": "BENCH_zoo.json",
}

#: The ``python -m repro bench-check`` exit-code contract, stable for
#: CI and the HTML report to consume:
#:
#: * ``EXIT_OK`` (0) — every watched metric within threshold.  Benches
#:   *missing* on either side still exit 0 (reported as ``missing``),
#:   so the gate can be adopted incrementally.
#: * ``EXIT_REGRESSION`` (1) — at least one metric regressed.
#:   ``--warn-only`` converts this to 0 at the process level while the
#:   JSON report keeps the honest ``ok: false`` + ``exit_code: 1``.
#:
#: Usage errors surface as argparse's own exit 2.
EXIT_OK = 0
EXIT_REGRESSION = 1

#: Default directory of committed baselines, relative to the repo root.
DEFAULT_BASELINE_DIR = "benchmarks/baselines"


@dataclass(frozen=True)
class MetricSpec:
    """One watched metric: where it lives and how it may move."""

    bench: str
    #: Dotted path into the bench payload (``data``), e.g.
    #: ``"end_to_end.speedup"``.
    path: str
    #: ``higher`` / ``lower`` / ``exact`` (see module docstring).
    direction: str
    #: Maximum tolerated relative drift in the bad direction
    #: (ignored for ``exact``).
    threshold: float = 0.0

    @property
    def name(self) -> str:
        return f"{self.bench}:{self.path}"


#: The default gate.  Wall-clock metrics (selects/sec, event rates,
#: paired slowdowns) get loose thresholds; deterministic simulation
#: quantities get tight ones.
DEFAULT_METRICS: Tuple[MetricSpec, ...] = (
    # Hot path: the indexed scheduler must stay decisively faster than
    # its naive twin, and results must stay bit-identical.
    MetricSpec("hotpath", "select_throughput.occupancy_256.speedup",
               "higher", 0.30),
    MetricSpec("hotpath", "end_to_end.speedup", "higher", 0.30),
    MetricSpec("hotpath", "end_to_end.identical_results", "exact"),
    # Tracing: the wired-but-disabled path must stay (nearly) free.
    MetricSpec("tracing_overhead", "measurement.slowdown_vs_untraced.inert",
               "lower", 0.08),
    MetricSpec("tracing_overhead", "measurement.identical_results", "exact"),
    # Fleet: telemetry must stay (nearly) free on the sweep path, and
    # the deterministic sweep numbers must not drift at all.
    MetricSpec("fleet", "overhead.slowdown_with_telemetry", "lower", 0.08),
    MetricSpec("fleet", "overhead.identical_results", "exact"),
    MetricSpec("fleet", "sweep.speedup_vs_fcfs.simt.geomean", "higher", 0.02),
    MetricSpec("fleet", "sweep.total_cycles_by_group", "exact"),
    # Event core: the calendar queue must keep beating the heap on the
    # tie-heavy regime, and batch dispatch must keep beating the scalar
    # loop on a same-cycle-heavy stream.
    MetricSpec("event_core", "queue_ops.dense.speedup", "higher", 0.30),
    MetricSpec("event_core", "dispatch.batch_speedup", "higher", 0.30),
    # Figure pipeline: specs/CSVs/HTML must stay byte-identical across
    # worker counts, and the registry must not silently shrink.
    MetricSpec("figures", "determinism.identical_figures_across_jobs", "exact"),
    MetricSpec("figures", "determinism.identical_html_across_jobs", "exact"),
    MetricSpec("figures", "registry.figure_count", "exact"),
    # Attribution: blame reports must stay byte-identical across worker
    # counts and every walk must reconcile; the sweep spec is fixed, so
    # the attributed walk count is an exact committed number.  The
    # matcher's throughput gets a loose wall-clock gate.
    MetricSpec("attrib", "measurement.determinism.identical_blame_across_jobs",
               "exact"),
    MetricSpec("attrib", "measurement.attribution.reconciliation_failures",
               "exact"),
    MetricSpec("attrib", "measurement.attribution.walks_attributed", "exact"),
    MetricSpec("attrib", "measurement.analysis.events_per_cpu_sec",
               "higher", 0.50),
    # Scheduler zoo: the whole bench is one deterministic sweep, so the
    # per-group cycle and walk-traffic numbers are exact committed
    # facts; the zoo families must also keep beating (or at worst
    # matching) the fcfs baseline within a tight band, and the
    # comparison charts must keep plotting every policy.
    MetricSpec("zoo", "sweep.total_cycles_by_group", "exact"),
    MetricSpec("zoo", "sweep.walk_accesses_by_group", "exact"),
    MetricSpec("zoo", "sweep.speedup_vs_fcfs.wasp.geomean", "higher", 0.02),
    MetricSpec("zoo", "sweep.speedup_vs_fcfs.iru.geomean", "higher", 0.02),
    MetricSpec("zoo", "sweep.speedup_vs_fcfs.mosaic.geomean", "higher", 0.02),
    MetricSpec("zoo", "sms.total_cycles_by_case", "exact"),
    MetricSpec("zoo", "sms.sms_walk_reads_by_workload", "exact"),
    MetricSpec("zoo", "figures.rows_by_figure", "exact"),
)

#: Row statuses, in decreasing severity.
STATUS_REGRESSION = "regression"
STATUS_MISSING = "missing"
STATUS_IMPROVED = "improved"
STATUS_OK = "ok"


def get_path(data: Any, dotted: str) -> Any:
    """Resolve ``"a.b.c"`` inside nested mappings; None when absent."""
    node = data
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def compare_metric(
    spec: MetricSpec, baseline: Any, current: Any
) -> Dict[str, Any]:
    """One gate row: the metric, both values, drift, and a verdict."""
    row: Dict[str, Any] = {
        "metric": spec.name,
        "direction": spec.direction,
        "threshold": spec.threshold,
        "baseline": baseline,
        "current": current,
    }
    if baseline is None or current is None:
        row["status"] = STATUS_MISSING
        return row
    if spec.direction == "exact":
        row["status"] = STATUS_OK if current == baseline else STATUS_REGRESSION
        return row
    baseline = float(baseline)
    current = float(current)
    change = (current - baseline) / baseline if baseline else 0.0
    row["relative_change"] = round(change, 4)
    if spec.direction == "higher":
        if current < baseline * (1.0 - spec.threshold):
            row["status"] = STATUS_REGRESSION
        else:
            row["status"] = STATUS_IMPROVED if change > 0 else STATUS_OK
    elif spec.direction == "lower":
        if current > baseline * (1.0 + spec.threshold):
            row["status"] = STATUS_REGRESSION
        else:
            row["status"] = STATUS_IMPROVED if change < 0 else STATUS_OK
    else:
        raise ValueError(f"unknown direction {spec.direction!r}")
    return row


def check_benches(
    baseline_dir: Union[str, Path] = DEFAULT_BASELINE_DIR,
    current_dir: Union[str, Path] = ".",
    metrics: Sequence[MetricSpec] = DEFAULT_METRICS,
    benches: Optional[Dict[str, str]] = None,
) -> Dict[str, Any]:
    """Compare every watched metric; returns the gate report.

    A bench file absent on *either* side marks its metrics ``missing``
    — reported, but not a regression, so the gate can be adopted before
    every bench has a committed baseline.  ``report["ok"]`` is False
    iff at least one metric regressed.
    """
    benches = dict(BENCH_FILES if benches is None else benches)
    baseline_dir = Path(baseline_dir)
    current_dir = Path(current_dir)
    docs: Dict[str, Tuple[Optional[Dict], Optional[Dict]]] = {}
    for bench, filename in sorted(benches.items()):
        docs[bench] = (
            _load_optional(baseline_dir / filename),
            _load_optional(current_dir / filename),
        )
    rows: List[Dict[str, Any]] = []
    for spec in metrics:
        if spec.bench not in docs:
            continue
        baseline_doc, current_doc = docs[spec.bench]
        rows.append(
            compare_metric(
                spec,
                get_path(baseline_doc["data"], spec.path)
                if baseline_doc else None,
                get_path(current_doc["data"], spec.path)
                if current_doc else None,
            )
        )
    regressions = [row for row in rows if row["status"] == STATUS_REGRESSION]
    return {
        "format": "repro-bench-check",
        "version": 1,
        "baseline_dir": str(baseline_dir),
        "current_dir": str(current_dir),
        "ok": not regressions,
        "regressions": len(regressions),
        "missing": sum(1 for row in rows if row["status"] == STATUS_MISSING),
        "rows": rows,
    }


def _load_optional(path: Path) -> Optional[Dict[str, Any]]:
    if not path.exists():
        return None
    try:
        return load_bench_report(path)
    except (ValueError, json.JSONDecodeError) as exc:
        raise ValueError(f"unreadable bench file {path}: {exc}") from exc


def render_check(report: Dict[str, Any]) -> str:
    """Human-readable gate verdict, one line per watched metric."""
    lines: List[str] = []
    for row in report["rows"]:
        change = row.get("relative_change")
        drift = (
            f" ({'+' if change >= 0 else ''}"
            f"{format_number(change * 100, decimals=1)}%)"
            if isinstance(change, float) else ""
        )
        lines.append(
            f"{row['status']:>10s}  {row['metric']}  "
            f"baseline={_fmt(row['baseline'])} "
            f"current={_fmt(row['current'])}{drift}"
        )
    verdict = "PASS" if report["ok"] else (
        f"FAIL: {report['regressions']} metric(s) regressed"
    )
    lines.append(
        f"bench-check {verdict} "
        f"({len(report['rows'])} checked, {report['missing']} missing) "
        f"[baseline={report['baseline_dir']} current={report['current_dir']}]"
    )
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, dict):
        return f"<{len(value)} keys>"
    # The stable fixed-point formatter: no scientific notation, so the
    # rendered gate text is byte-identical across platforms (tiny drift
    # values used to flip to "3e-07" under the old %.4g).
    return format_number(value, decimals=4)
