"""The figure registry: fleet reports in, Vega-Lite specs + CSVs out.

A merged sweep report (:func:`repro.obs.aggregate.fleet_report`) holds
everything the paper's evaluation charts need — per-run cycles, stalls,
walk counts, latency shape, geomean speedups, merged metric histograms
— but as JSON nobody can *see*.  This module is the registry pattern
from ProjectScylla's ``generate_figures.py``: figure names map to
generator functions over tidy rows, and each figure is emitted as

* ``<name>.vl.json`` — a Vega-Lite v5 spec (open it in any Vega
  editor, embed it in the HTML campaign report, or hand it to CI);
* ``<name>.csv`` — the companion tidy data the spec references.

No display stack is imported — matplotlib-free by design, the specs
*are* the figures — and the output is deterministic: rows derive only
from the report's deterministic view, every reduction iterates in
sorted order, numbers render through
:mod:`repro.stats.formatting`, and specs serialise with sorted keys.
``jobs=1`` and ``jobs=16`` sweeps of the same specs produce
byte-identical figures, which the figure pipeline bench and
``tests/test_obs_figures.py`` both pin.

Registered figures (``python -m repro figures --list``):

======================  ================================================
``fig2_scheduler_impact``  speedup vs baseline per workload × scheduler
``fig6_first_last_latency``  first/last walk-latency dumbbells (Fig 6)
``fig8_speedup``        per-workload + GEOMEAN speedup bars (Fig 8)
``fig9_stalls``         CU stall cycles normalised to baseline (Fig 9)
``fig10_latency_gap``   last-first walk latency gap, normalised (Fig 10)
``fig11_walk_count``    page walks dispatched, normalised (Fig 11)
``fig13_sensitivity``   geomean speedup vs wavefront count (Fig 13)
``fig14_sensitivity``   geomean speedup vs footprint scale (Fig 14)
``scheduler_comparison``  normalised-runtime heatmap, any scheduler set
``latency_cdf``         walk-latency CDF per scheduler (needs --metrics)
``blame_stage_share``   stacked walk-stage shares per scheduler (--metrics)
``blame_waterfall``     cumulative per-walk stage waterfall (--metrics)
======================  ================================================

Multiple campaign reports can be loaded side by side (each tagged with
a campaign label), which turns the sensitivity figures into true
multi-point series; a single report still emits every figure with one
point per axis value.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.obs.aggregate import deterministic_view
from repro.obs.metrics import MetricsRegistry
from repro.stats.counters import BucketHistogram
from repro.stats.formatting import format_number
from repro.stats.metrics import geometric_mean

VEGA_LITE_SCHEMA = "https://vega.github.io/schema/vega-lite/v5.json"

#: Categorical series palette (validated reference palette, light-mode
#: steps; see docs/OBSERVABILITY.md).  Slots are assigned to scheduler
#: names in sorted order — fixed assignment, never cycled — so the same
#: scheduler wears the same hue in every figure of a campaign.
CATEGORICAL_PALETTE: Tuple[str, ...] = (
    "#2a78d6",  # blue
    "#eb6834",  # orange
    "#1baf7a",  # aqua
    "#eda100",  # yellow
    "#e87ba4",  # magenta
    "#008300",  # green
    "#4a3aa7",  # violet
    "#e34948",  # red
)

#: Single-hue sequential ramp (light→dark blue) for magnitude encodings.
SEQUENTIAL_RANGE: Tuple[str, ...] = ("#cde2fb", "#86b6ef", "#3987e5", "#1c5cab", "#0d366b")

#: Shared Vega-Lite theme: recessive grid and axes, thin rounded bars.
_VEGA_CONFIG: Dict[str, Any] = {
    "axis": {
        "domainColor": "#d6d5d0",
        "gridColor": "#e8e7e3",
        "labelColor": "#52514e",
        "tickColor": "#d6d5d0",
        "titleColor": "#0b0b0b",
    },
    "background": "#fcfcfb",
    "bar": {"cornerRadiusEnd": 2},
    "legend": {"labelColor": "#52514e", "titleColor": "#0b0b0b"},
    "view": {"stroke": None},
}

#: Synthetic workload label for the cross-workload geomean bar (Fig 8).
GEOMEAN_LABEL = "GEOMEAN"


class FigureSkipped(Exception):
    """A figure generator declining its input (missing columns/metrics).

    Skipping is an expected outcome, not an error: a campaign without
    ``--metrics`` has no latency histograms, so ``latency_cdf`` reports
    *why* it was skipped instead of emitting an empty chart.
    """


@dataclass
class Figure:
    """One generated figure: tidy rows plus the Vega-Lite spec."""

    name: str
    title: str
    description: str
    columns: List[str]
    rows: List[Dict[str, Any]]
    spec: Dict[str, Any]

    def csv(self) -> str:
        """The companion CSV, rendered through the stable formatter."""
        lines = [",".join(self.columns)]
        for row in self.rows:
            lines.append(
                ",".join(_csv_cell(row.get(column)) for column in self.columns)
            )
        return "\n".join(lines) + "\n"

    def spec_json(self) -> str:
        return json.dumps(self.spec, indent=2, sort_keys=True) + "\n"


@dataclass(frozen=True)
class FigureDef:
    """A registry entry: the name, what it shows, and its generator."""

    name: str
    title: str
    description: str
    build: Callable[["CampaignData"], Figure]


#: The registry.  Ordered dict in registration order; ``--list`` and
#: the HTML report iterate it in this order.
FIGURES: Dict[str, FigureDef] = {}


def register_figure(name: str, title: str, description: str):
    """Class ProjectScylla-style registration decorator."""

    def wrap(builder: Callable[["CampaignData"], Figure]):
        if name in FIGURES:
            raise ValueError(f"figure {name!r} registered twice")
        FIGURES[name] = FigureDef(name, title, description, builder)
        return builder

    return wrap


def figure_names() -> List[str]:
    return list(FIGURES)


# ----------------------------------------------------------------------
# Campaign data: tidy rows from one or more fleet reports
# ----------------------------------------------------------------------


@dataclass
class CampaignData:
    """Tidy per-run rows (plus merged metrics) from ≥1 fleet reports.

    Rows are built from each report's *deterministic view* — wall-clock
    and delivery-layer fields never reach a figure — and tagged with a
    ``campaign`` label column so several campaigns (say, a
    wavefront-count sensitivity series) plot side by side.
    """

    rows: List[Dict[str, Any]]
    baseline: str
    labels: List[str]
    #: scheduler -> merged MetricsRegistry dump, across all campaigns.
    metrics_by_scheduler: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    @classmethod
    def from_reports(
        cls,
        reports: Sequence[Tuple[str, Mapping[str, Any]]],
        baseline: Optional[str] = None,
    ) -> "CampaignData":
        if not reports:
            raise ValueError("at least one fleet report is required")
        rows: List[Dict[str, Any]] = []
        labels: List[str] = []
        merged_metrics: Dict[str, MetricsRegistry] = {}
        for label, report in reports:
            if report.get("format") != "repro-fleet-report":
                raise ValueError(
                    f"campaign {label!r} is not a fleet report "
                    f"(format={report.get('format')!r})"
                )
            labels.append(label)
            view = deterministic_view(dict(report))
            for run in view.get("runs", []):
                row = dict(run)
                row["campaign"] = label
                rows.append(row)
            for scheduler, dump in sorted(
                view.get("metrics_by_scheduler", {}).items()
            ):
                registry = merged_metrics.setdefault(scheduler, MetricsRegistry())
                registry.merge(MetricsRegistry.from_dict(dump))
        if baseline is None:
            baseline = str(reports[0][1].get("baseline_scheduler", "fcfs"))
        metrics = {
            scheduler: registry.as_dict()
            for scheduler, registry in sorted(merged_metrics.items())
        }
        return cls(
            rows=rows, baseline=baseline, labels=labels,
            metrics_by_scheduler=metrics,
        )

    # -- derived views --------------------------------------------------

    def schedulers(self) -> List[str]:
        return sorted({row["scheduler"] for row in self.rows})

    def workloads(self) -> List[str]:
        return sorted({row["workload"] for row in self.rows})

    def require_columns(self, columns: Sequence[str], figure: str) -> None:
        if not self.rows:
            raise FigureSkipped("the report has no successful runs")
        missing = [c for c in columns if c not in self.rows[0]]
        if missing:
            raise FigureSkipped(
                f"report rows lack column(s) {', '.join(missing)} "
                f"(regenerate the report with this repo version)"
            )

    def speedup_samples(
        self, axis: Optional[str] = None
    ) -> List[Tuple[Tuple[Any, ...], str, str, float]]:
        """Paired per-(campaign, workload, seed) speedups vs baseline.

        Returns ``(axis_key, workload, scheduler, speedup)`` samples in
        deterministic order; ``axis`` names an extra row column (e.g.
        ``wavefronts``) carried through for sensitivity figures.
        """
        cases: Dict[Tuple[Any, ...], Dict[str, Dict[str, Any]]] = {}
        for row in self.rows:
            key = (row["campaign"], row["workload"], row["seed"])
            cases.setdefault(key, {})[row["scheduler"]] = row
        samples: List[Tuple[Tuple[Any, ...], str, str, float]] = []
        for key in sorted(cases, key=lambda k: tuple(map(str, k))):
            by_scheduler = cases[key]
            base = by_scheduler.get(self.baseline)
            if base is None or base["total_cycles"] <= 0:
                continue
            for scheduler in sorted(by_scheduler):
                if scheduler == self.baseline:
                    continue
                row = by_scheduler[scheduler]
                if row["total_cycles"] <= 0:
                    continue
                axis_key = (row.get(axis),) if axis else ()
                samples.append(
                    (
                        axis_key,
                        row["workload"],
                        scheduler,
                        base["total_cycles"] / row["total_cycles"],
                    )
                )
        return samples

    def mean_by(
        self, value: str, keys: Sequence[str]
    ) -> Dict[Tuple[Any, ...], float]:
        """Mean of a row column, grouped by ``keys``, in sorted order."""
        groups: Dict[Tuple[Any, ...], List[float]] = {}
        for row in self.rows:
            groups.setdefault(
                tuple(row[k] for k in keys), []
            ).append(float(row[value]))
        return {
            key: sum(values) / len(values)
            for key, values in sorted(
                groups.items(), key=lambda kv: tuple(map(str, kv[0]))
            )
        }

    def scheduler_histogram(self, name: str) -> Dict[str, BucketHistogram]:
        """Per-scheduler merged :class:`BucketHistogram` by metric name."""
        out: Dict[str, BucketHistogram] = {}
        for scheduler, dump in sorted(self.metrics_by_scheduler.items()):
            histogram = dump.get("histograms", {}).get(name)
            if histogram is None:
                continue
            out[scheduler] = BucketHistogram.from_counts(
                [tuple(bucket) for bucket in histogram["buckets"]],
                histogram["counts"],
                histogram.get("out_of_range", 0),
            )
        return out


# ----------------------------------------------------------------------
# Spec construction helpers
# ----------------------------------------------------------------------


def scheduler_color(schedulers: Sequence[str]) -> Dict[str, Any]:
    """Fixed-order categorical color: sorted schedulers → palette slots."""
    domain = sorted(schedulers)
    if len(domain) > len(CATEGORICAL_PALETTE):
        raise FigureSkipped(
            f"{len(domain)} schedulers exceed the {len(CATEGORICAL_PALETTE)}"
            f"-slot categorical palette; split the campaign"
        )
    return {
        "field": "scheduler",
        "type": "nominal",
        "title": "scheduler",
        "scale": {"domain": domain, "range": list(CATEGORICAL_PALETTE[: len(domain)])},
    }


def base_spec(
    name: str,
    title: str,
    width: int = 420,
    height: int = 260,
) -> Dict[str, Any]:
    """The envelope every figure spec shares (CSV url, theme, size)."""
    return {
        "$schema": VEGA_LITE_SCHEMA,
        "config": dict(_VEGA_CONFIG),
        "data": {"format": {"type": "csv"}, "url": f"{name}.csv"},
        "description": title,
        "height": height,
        "title": title,
        "width": width,
    }


def _csv_cell(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, str):
        if any(ch in value for ch in ',"\n'):
            return '"' + value.replace('"', '""') + '"'
        return value
    return format_number(value)


def _round(value: float) -> float:
    return round(float(value), 6)


# ----------------------------------------------------------------------
# Registered figures
# ----------------------------------------------------------------------


@register_figure(
    "fig2_scheduler_impact",
    "Scheduler impact: speedup vs baseline per workload",
    "Paper Fig. 2 — how much the walk scheduler alone moves end-to-end "
    "runtime; every scheduler's per-workload geomean speedup over the "
    "baseline, baseline shown at 1.0.",
)
def fig2_scheduler_impact(data: CampaignData) -> Figure:
    data.require_columns(["total_cycles"], "fig2_scheduler_impact")
    samples = data.speedup_samples()
    if not samples:
        raise FigureSkipped("no (workload, seed) pair has a healthy baseline run")
    grouped: Dict[Tuple[str, str], List[float]] = {}
    for _axis, workload, scheduler, speedup in samples:
        grouped.setdefault((workload, scheduler), []).append(speedup)
    rows = [
        {"workload": workload, "scheduler": data.baseline, "speedup": 1.0}
        for workload in data.workloads()
    ]
    for (workload, scheduler), values in sorted(grouped.items()):
        rows.append(
            {
                "workload": workload,
                "scheduler": scheduler,
                "speedup": _round(geometric_mean(values)),
            }
        )
    rows.sort(key=lambda r: (r["workload"], r["scheduler"]))
    spec = base_spec("fig2_scheduler_impact", "Fig 2 — scheduler impact")
    spec["mark"] = {"type": "bar"}
    spec["encoding"] = {
        "color": scheduler_color(data.schedulers()),
        "x": {"field": "workload", "type": "nominal", "title": "workload"},
        "xOffset": {"field": "scheduler", "sort": sorted(data.schedulers())},
        "y": {
            "field": "speedup",
            "type": "quantitative",
            "title": f"speedup vs {data.baseline}",
        },
    }
    definition = FIGURES["fig2_scheduler_impact"]
    return Figure(
        name=definition.name,
        title=definition.title,
        description=definition.description,
        columns=["workload", "scheduler", "speedup"],
        rows=rows,
        spec=spec,
    )


@register_figure(
    "fig6_first_last_latency",
    "First vs last walk latency per instruction",
    "Paper Fig. 6 — mean latency of the first- and last-completing walk "
    "of multi-walk instructions; the vertical span is the window an "
    "instruction stays blocked after its first translation returned.",
)
def fig6_first_last_latency(data: CampaignData) -> Figure:
    data.require_columns(
        ["first_walk_latency", "last_walk_latency"], "fig6_first_last_latency"
    )
    first = data.mean_by("first_walk_latency", ("workload", "scheduler"))
    last = data.mean_by("last_walk_latency", ("workload", "scheduler"))
    rows = [
        {
            "workload": workload,
            "scheduler": scheduler,
            "first_walk_latency": _round(first_value),
            "last_walk_latency": _round(last[(workload, scheduler)]),
        }
        for (workload, scheduler), first_value in first.items()
    ]
    spec = base_spec("fig6_first_last_latency", "Fig 6 — first vs last walk latency")
    color = scheduler_color(data.schedulers())
    shared_x = {"field": "workload", "type": "nominal", "title": "workload"}
    offset = {"field": "scheduler", "sort": sorted(data.schedulers())}
    spec["layer"] = [
        {
            "mark": {"type": "rule", "strokeWidth": 2},
            "encoding": {
                "color": color,
                "x": shared_x,
                "xOffset": offset,
                "y": {
                    "field": "first_walk_latency",
                    "type": "quantitative",
                    "title": "walk latency (cycles)",
                },
                "y2": {"field": "last_walk_latency"},
            },
        },
        {
            "mark": {"type": "point", "filled": True, "size": 60},
            "encoding": {
                "color": color,
                "x": shared_x,
                "xOffset": offset,
                "y": {"field": "first_walk_latency", "type": "quantitative"},
            },
        },
        {
            "mark": {"type": "point", "filled": True, "size": 60},
            "encoding": {
                "color": color,
                "x": shared_x,
                "xOffset": offset,
                "y": {"field": "last_walk_latency", "type": "quantitative"},
            },
        },
    ]
    definition = FIGURES["fig6_first_last_latency"]
    return Figure(
        name=definition.name,
        title=definition.title,
        description=definition.description,
        columns=[
            "workload", "scheduler", "first_walk_latency", "last_walk_latency",
        ],
        rows=rows,
        spec=spec,
    )


@register_figure(
    "fig8_speedup",
    "Speedup over baseline, per workload plus GEOMEAN",
    "Paper Fig. 8 — the headline chart: per-workload geomean speedup of "
    "every non-baseline scheduler, with the cross-workload GEOMEAN bar "
    "the paper quotes (+30% for SIMT-aware over FCFS).",
)
def fig8_speedup(data: CampaignData) -> Figure:
    data.require_columns(["total_cycles"], "fig8_speedup")
    samples = data.speedup_samples()
    if not samples:
        raise FigureSkipped("no (workload, seed) pair has a healthy baseline run")
    per_workload: Dict[Tuple[str, str], List[float]] = {}
    per_scheduler: Dict[str, List[float]] = {}
    for _axis, workload, scheduler, speedup in samples:
        per_workload.setdefault((workload, scheduler), []).append(speedup)
        per_scheduler.setdefault(scheduler, []).append(speedup)
    rows = [
        {
            "workload": workload,
            "scheduler": scheduler,
            "speedup": _round(geometric_mean(values)),
        }
        for (workload, scheduler), values in sorted(per_workload.items())
    ]
    for scheduler, values in sorted(per_scheduler.items()):
        rows.append(
            {
                "workload": GEOMEAN_LABEL,
                "scheduler": scheduler,
                "speedup": _round(geometric_mean(values)),
            }
        )
    workload_order = data.workloads() + [GEOMEAN_LABEL]
    schedulers = sorted(per_scheduler)
    spec = base_spec("fig8_speedup", "Fig 8 — speedup over baseline")
    spec["mark"] = {"type": "bar"}
    spec["encoding"] = {
        "color": scheduler_color(schedulers),
        "x": {
            "field": "workload",
            "type": "nominal",
            "sort": workload_order,
            "title": "workload",
        },
        "xOffset": {"field": "scheduler", "sort": schedulers},
        "y": {
            "field": "speedup",
            "type": "quantitative",
            "title": f"speedup vs {data.baseline}",
        },
    }
    definition = FIGURES["fig8_speedup"]
    return Figure(
        name=definition.name,
        title=definition.title,
        description=definition.description,
        columns=["workload", "scheduler", "speedup"],
        rows=rows,
        spec=spec,
    )


def _normalised_figure(
    name: str, value_column: str, axis_title: str, data: CampaignData
) -> Figure:
    """Shared shape of Figs 9/10/11: per-group mean normalised to baseline.

    Workloads whose baseline mean is zero get a null value (the spec
    drops nulls) — a tiny sweep with no stalls must not divide by zero
    or silently change the chart's meaning.
    """
    data.require_columns([value_column], name)
    means = data.mean_by(value_column, ("workload", "scheduler"))
    rows: List[Dict[str, Any]] = []
    for workload in data.workloads():
        base = means.get((workload, data.baseline))
        for scheduler in data.schedulers():
            if scheduler == data.baseline:
                continue
            value = means.get((workload, scheduler))
            if value is None:
                continue
            normalised = (
                _round(value / base) if base else None
            )
            rows.append(
                {
                    "workload": workload,
                    "scheduler": scheduler,
                    value_column: _round(value),
                    "normalised": normalised,
                }
            )
    if not any(row["normalised"] is not None for row in rows):
        raise FigureSkipped(
            f"every workload's baseline {value_column} is zero — nothing to normalise"
        )
    definition = FIGURES[name]
    spec = base_spec(name, definition.title)
    spec["mark"] = {"type": "bar"}
    spec["encoding"] = {
        "color": scheduler_color(
            [s for s in data.schedulers() if s != data.baseline]
        ),
        "x": {"field": "workload", "type": "nominal", "title": "workload"},
        "xOffset": {
            "field": "scheduler",
            "sort": [s for s in data.schedulers() if s != data.baseline],
        },
        "y": {
            "field": "normalised",
            "type": "quantitative",
            "title": axis_title,
        },
    }
    return Figure(
        name=definition.name,
        title=definition.title,
        description=definition.description,
        columns=["workload", "scheduler", value_column, "normalised"],
        rows=rows,
        spec=spec,
    )


@register_figure(
    "fig9_stalls",
    "CU stall cycles, normalised to baseline",
    "Paper Fig. 9 — execution-stage stall cycles under each scheduler "
    "relative to the baseline scheduler (lower is better).",
)
def fig9_stalls(data: CampaignData) -> Figure:
    return _normalised_figure(
        "fig9_stalls", "stall_cycles",
        "stall cycles (baseline = 1)", data,
    )


@register_figure(
    "fig10_latency_gap",
    "Walk-latency gap, normalised to baseline",
    "Paper Figs. 6/10 — the last-minus-first walk latency gap per "
    "multi-walk instruction, normalised to the baseline scheduler; the "
    "quantity SIMT-aware scheduling exists to shrink.",
)
def fig10_latency_gap(data: CampaignData) -> Figure:
    return _normalised_figure(
        "fig10_latency_gap", "latency_gap",
        "latency gap (baseline = 1)", data,
    )


@register_figure(
    "fig11_walk_count",
    "Page walks dispatched, normalised to baseline",
    "Paper Fig. 11 — page-table walks dispatched under each scheduler "
    "relative to baseline; scheduling changes TLB-miss interleaving and "
    "therefore the walk count itself.",
)
def fig11_walk_count(data: CampaignData) -> Figure:
    return _normalised_figure(
        "fig11_walk_count", "walks_dispatched",
        "walks dispatched (baseline = 1)", data,
    )


def _sensitivity_figure(name: str, axis: str, axis_title: str, data: CampaignData) -> Figure:
    data.require_columns([axis, "total_cycles"], name)
    samples = data.speedup_samples(axis=axis)
    if not samples:
        raise FigureSkipped("no (workload, seed) pair has a healthy baseline run")
    grouped: Dict[Tuple[Any, str], List[float]] = {}
    for axis_key, _workload, scheduler, speedup in samples:
        grouped.setdefault((axis_key[0], scheduler), []).append(speedup)
    rows = [
        {
            axis: axis_value,
            "scheduler": scheduler,
            "speedup": _round(geometric_mean(values)),
        }
        for (axis_value, scheduler), values in sorted(
            grouped.items(), key=lambda kv: (str(kv[0][0]), kv[0][1])
        )
    ]
    schedulers = sorted({row["scheduler"] for row in rows})
    definition = FIGURES[name]
    spec = base_spec(name, definition.title)
    spec["mark"] = {"type": "line", "point": {"filled": True, "size": 70}, "strokeWidth": 2}
    spec["encoding"] = {
        "color": scheduler_color(schedulers),
        "x": {"field": axis, "type": "ordinal", "title": axis_title},
        "y": {
            "field": "speedup",
            "type": "quantitative",
            "title": f"geomean speedup vs {data.baseline}",
        },
    }
    return Figure(
        name=definition.name,
        title=definition.title,
        description=definition.description,
        columns=[axis, "scheduler", "speedup"],
        rows=rows,
        spec=spec,
    )


@register_figure(
    "fig13_sensitivity",
    "Sensitivity: geomean speedup vs wavefront count",
    "Paper Fig. 13's shape over the campaign's swept axis — geomean "
    "speedup per scheduler as concurrency (wavefronts) grows; feed "
    "several campaign reports to widen the axis.",
)
def fig13_sensitivity(data: CampaignData) -> Figure:
    return _sensitivity_figure(
        "fig13_sensitivity", "wavefronts", "wavefronts per run", data
    )


@register_figure(
    "fig14_sensitivity",
    "Sensitivity: geomean speedup vs footprint scale",
    "Paper Fig. 14's shape over the campaign's swept axis — geomean "
    "speedup per scheduler as the workload footprint scale grows; feed "
    "several campaign reports to widen the axis.",
)
def fig14_sensitivity(data: CampaignData) -> Figure:
    return _sensitivity_figure(
        "fig14_sensitivity", "scale", "workload scale", data
    )


@register_figure(
    "scheduler_comparison",
    "Normalised runtime heatmap, workload × scheduler",
    "Generic scheduler-comparison chart for any policy zoo: mean total "
    "cycles normalised to the baseline scheduler per workload (lower / "
    "lighter is better), one cell per workload × scheduler.",
)
def scheduler_comparison(data: CampaignData) -> Figure:
    data.require_columns(["total_cycles"], "scheduler_comparison")
    means = data.mean_by("total_cycles", ("workload", "scheduler"))
    rows: List[Dict[str, Any]] = []
    for workload in data.workloads():
        base = means.get((workload, data.baseline))
        if not base:
            continue
        for scheduler in data.schedulers():
            value = means.get((workload, scheduler))
            if value is None:
                continue
            rows.append(
                {
                    "workload": workload,
                    "scheduler": scheduler,
                    "mean_total_cycles": _round(value),
                    "normalised_runtime": _round(value / base),
                }
            )
    if not rows:
        raise FigureSkipped("no workload has a baseline run to normalise against")
    spec = base_spec("scheduler_comparison", "Scheduler comparison — normalised runtime")
    spec["mark"] = {"type": "rect"}
    spec["encoding"] = {
        "color": {
            "field": "normalised_runtime",
            "type": "quantitative",
            "title": "runtime vs baseline",
            "scale": {"range": list(SEQUENTIAL_RANGE)},
        },
        "x": {"field": "scheduler", "type": "nominal", "sort": data.schedulers()},
        "y": {"field": "workload", "type": "nominal", "sort": data.workloads()},
    }
    definition = FIGURES["scheduler_comparison"]
    return Figure(
        name=definition.name,
        title=definition.title,
        description=definition.description,
        columns=["workload", "scheduler", "mean_total_cycles", "normalised_runtime"],
        rows=rows,
        spec=spec,
    )


@register_figure(
    "zoo_walk_traffic",
    "Walk traffic vs baseline, per scheduler family",
    "Scheduler-zoo comparison chart: page-walk memory accesses per "
    "workload normalised to the baseline scheduler.  The zoo families "
    "move this in opposite directions — WaSP's distance-ahead prefetch "
    "adds speculative walks, IRU's pending-buffer reordering merges "
    "divergent same-page walks away, and Mosaic's region TLB bypasses "
    "the walk machinery entirely — so traffic, not runtime, is where "
    "the families are told apart.",
)
def zoo_walk_traffic(data: CampaignData) -> Figure:
    data.require_columns(["walk_memory_accesses"], "zoo_walk_traffic")
    means = data.mean_by("walk_memory_accesses", ("workload", "scheduler"))
    rows: List[Dict[str, Any]] = []
    for workload in data.workloads():
        base = means.get((workload, data.baseline))
        if not base:
            continue
        for scheduler in data.schedulers():
            value = means.get((workload, scheduler))
            if value is None:
                continue
            rows.append(
                {
                    "workload": workload,
                    "scheduler": scheduler,
                    "mean_walk_accesses": _round(value),
                    "normalised_traffic": _round(value / base),
                }
            )
    if not rows:
        raise FigureSkipped(
            "no workload has a baseline run to normalise walk traffic against"
        )
    schedulers = data.schedulers()
    spec = base_spec("zoo_walk_traffic", "Zoo — walk traffic vs baseline")
    spec["mark"] = {"type": "bar"}
    spec["encoding"] = {
        "color": scheduler_color(schedulers),
        "x": {
            "field": "workload",
            "type": "nominal",
            "sort": data.workloads(),
            "title": "workload",
        },
        "xOffset": {"field": "scheduler", "sort": schedulers},
        "y": {
            "field": "normalised_traffic",
            "type": "quantitative",
            "title": f"walk accesses vs {data.baseline}",
        },
    }
    definition = FIGURES["zoo_walk_traffic"]
    return Figure(
        name=definition.name,
        title=definition.title,
        description=definition.description,
        columns=[
            "workload", "scheduler", "mean_walk_accesses",
            "normalised_traffic",
        ],
        rows=rows,
        spec=spec,
    )


@register_figure(
    "latency_cdf",
    "Walk-latency CDF per scheduler",
    "Cumulative distribution of per-walk completion latency from the "
    "merged metrics histograms (campaigns run with --metrics); the "
    "bucketed CDF exported by BucketHistogram.cdf_points.",
)
def latency_cdf(data: CampaignData) -> Figure:
    histograms = data.scheduler_histogram("walk.latency_cycles")
    if not histograms:
        raise FigureSkipped(
            "no walk.latency_cycles histograms in the report — rerun the "
            "campaign with --metrics"
        )
    rows: List[Dict[str, Any]] = []
    for scheduler, histogram in sorted(histograms.items()):
        for upper, fraction in histogram.cdf_points():
            rows.append(
                {
                    "scheduler": scheduler,
                    "latency_cycles": upper,
                    "cdf": _round(fraction),
                }
            )
    spec = base_spec("latency_cdf", "Walk-latency CDF")
    spec["mark"] = {"type": "line", "interpolate": "monotone", "strokeWidth": 2}
    spec["encoding"] = {
        "color": scheduler_color(sorted(histograms)),
        "x": {
            "field": "latency_cycles",
            "type": "quantitative",
            "title": "walk latency (cycles)",
        },
        "y": {
            "field": "cdf",
            "type": "quantitative",
            "title": "fraction of walks",
            "scale": {"domain": [0, 1]},
        },
    }
    definition = FIGURES["latency_cdf"]
    return Figure(
        name=definition.name,
        title=definition.title,
        description=definition.description,
        columns=["scheduler", "latency_cycles", "cdf"],
        rows=rows,
        spec=spec,
    )


def _stage_color(stages: Sequence[str]) -> Dict[str, Any]:
    """Fixed stage → palette-slot assignment, in pipeline order.

    Unlike :func:`scheduler_color` the domain is the attribution stage
    taxonomy (``repro.obs.attrib.STAGES``), ordered as the walk pipeline
    runs, so 'queue_wait' wears the same hue in every blame chart.
    """
    from repro.obs.attrib import STAGES

    domain = [stage for stage in STAGES if stage in set(stages)]
    return {
        "field": "stage",
        "type": "nominal",
        "title": "stage",
        "scale": {
            "domain": domain,
            "range": [
                CATEGORICAL_PALETTE[STAGES.index(stage) % len(CATEGORICAL_PALETTE)]
                for stage in domain
            ],
        },
    }


def _blame_summary(data: CampaignData, figure: str) -> Dict[str, Dict[str, Any]]:
    from repro.obs.attrib import stage_summary

    summary = stage_summary(data.metrics_by_scheduler)
    if not summary:
        raise FigureSkipped(
            f"no walk.stage.* counters in the report — rerun the campaign "
            f"with --metrics (figure {figure})"
        )
    return summary


@register_figure(
    "blame_stage_share",
    "Walk-latency blame: stage share per scheduler",
    "Where walk cycles went under each scheduler — the always-on "
    "walk.stage.* counters stacked as shares of total attributed cycles "
    "(paper Figs. 9-11 territory: queueing delay vs DRAM service vs "
    "overflow wait). Tracing-free; any --metrics campaign has it.",
)
def blame_stage_share(data: CampaignData) -> Figure:
    from repro.obs.attrib import STAGES

    summary = _blame_summary(data, "blame_stage_share")
    rows: List[Dict[str, Any]] = []
    for scheduler in sorted(summary):
        entry = summary[scheduler]
        for order, stage in enumerate(STAGES):
            if stage not in entry["stage_cycles"]:
                continue
            rows.append(
                {
                    "scheduler": scheduler,
                    "stage": stage,
                    "order": order,
                    "cycles": entry["stage_cycles"][stage],
                    "share": _round(entry["stage_shares"][stage]),
                }
            )
    spec = base_spec("blame_stage_share", "Blame — walk-stage shares")
    spec["mark"] = {"type": "bar"}
    spec["encoding"] = {
        "color": _stage_color([row["stage"] for row in rows]),
        "order": {"field": "order", "type": "quantitative"},
        "x": {
            "field": "scheduler",
            "type": "nominal",
            "sort": sorted(summary),
            "title": "scheduler",
        },
        "y": {
            "field": "share",
            "type": "quantitative",
            "title": "share of attributed walk cycles",
            "scale": {"domain": [0, 1]},
        },
    }
    definition = FIGURES["blame_stage_share"]
    return Figure(
        name=definition.name,
        title=definition.title,
        description=definition.description,
        columns=["scheduler", "stage", "order", "cycles", "share"],
        rows=rows,
        spec=spec,
    )


@register_figure(
    "blame_waterfall",
    "Walk-latency blame: per-walk critical-path waterfall",
    "The mean walk's life as a waterfall: cumulative cycles per stage in "
    "pipeline order (created -> overflow wait -> scheduler queue -> DRAM "
    "bank queue -> row access -> fault pad -> delivery hold), one track "
    "per scheduler. Stage widths are walk.stage.* cycles divided by "
    "completed walks.",
)
def blame_waterfall(data: CampaignData) -> Figure:
    from repro.obs.attrib import STAGES

    summary = _blame_summary(data, "blame_waterfall")
    rows: List[Dict[str, Any]] = []
    for scheduler in sorted(summary):
        entry = summary[scheduler]
        per_walk = entry.get("per_walk")
        if not per_walk:
            continue
        cursor = 0.0
        for order, stage in enumerate(STAGES):
            width = per_walk.get(stage)
            if width is None:
                continue
            rows.append(
                {
                    "scheduler": scheduler,
                    "stage": stage,
                    "order": order,
                    "start": _round(cursor),
                    "end": _round(cursor + width),
                    "cycles": _round(width),
                }
            )
            cursor += width
    if not rows:
        raise FigureSkipped(
            "no iommu.walks_completed counter to normalise per walk — "
            "rerun the campaign with --metrics"
        )
    spec = base_spec("blame_waterfall", "Blame — mean-walk stage waterfall")
    spec["mark"] = {"type": "bar"}
    spec["encoding"] = {
        "color": _stage_color([row["stage"] for row in rows]),
        "x": {
            "field": "start",
            "type": "quantitative",
            "title": "cycles into the mean walk",
        },
        "x2": {"field": "end"},
        "y": {
            "field": "scheduler",
            "type": "nominal",
            "sort": sorted(summary),
            "title": "scheduler",
        },
    }
    definition = FIGURES["blame_waterfall"]
    return Figure(
        name=definition.name,
        title=definition.title,
        description=definition.description,
        columns=["scheduler", "stage", "order", "start", "end", "cycles"],
        rows=rows,
        spec=spec,
    )


# ----------------------------------------------------------------------
# Validation, generation, emission
# ----------------------------------------------------------------------


def _encoding_fields(spec_or_layer: Mapping[str, Any]) -> List[str]:
    fields = []
    for channel in spec_or_layer.get("encoding", {}).values():
        field_name = channel.get("field") if isinstance(channel, Mapping) else None
        if field_name:
            fields.append(field_name)
    return fields


def validate_figure(figure: Figure) -> List[str]:
    """Structural validity of one figure; returns problems (empty = ok).

    Not a full Vega-Lite schema check (that needs the JS toolchain) but
    everything the pipeline can get wrong: envelope fields, the CSV
    url/spec name agreement, marks present, and every encoded field
    actually existing in the emitted columns.
    """
    problems: List[str] = []
    spec = figure.spec
    if spec.get("$schema") != VEGA_LITE_SCHEMA:
        problems.append("spec $schema is not Vega-Lite v5")
    data = spec.get("data", {})
    if data.get("url") != f"{figure.name}.csv":
        problems.append(f"spec data.url must be {figure.name}.csv")
    units = spec.get("layer", [spec])
    for unit in units:
        if "mark" not in unit:
            problems.append("spec unit has no mark")
        for field_name in _encoding_fields(unit):
            if field_name not in figure.columns:
                problems.append(
                    f"encoded field {field_name!r} missing from CSV columns"
                )
    if not figure.rows:
        problems.append("figure has no data rows")
    for row in figure.rows:
        for column in row:
            if column not in figure.columns:
                problems.append(f"row key {column!r} missing from columns")
                break
    return problems


def build_figures(
    data: CampaignData, names: Optional[Sequence[str]] = None
) -> Tuple[List[Figure], Dict[str, str]]:
    """Run the registry; returns (built figures, skipped name → reason)."""
    selected = list(names) if names else figure_names()
    unknown = [name for name in selected if name not in FIGURES]
    if unknown:
        raise ValueError(
            f"unknown figure(s) {', '.join(unknown)}; "
            f"known: {', '.join(figure_names())}"
        )
    figures: List[Figure] = []
    skipped: Dict[str, str] = {}
    for name in selected:
        try:
            figures.append(FIGURES[name].build(data))
        except FigureSkipped as why:
            skipped[name] = str(why)
    return figures, skipped


def emit_figures(
    data: CampaignData,
    out_dir: Union[str, Path],
    names: Optional[Sequence[str]] = None,
    strict: bool = True,
) -> Dict[str, Any]:
    """Build, validate and write every figure; returns the manifest.

    Writes ``<name>.vl.json`` + ``<name>.csv`` per figure and one
    ``figures.json`` manifest listing what was written, what was
    skipped and why — the HTML report and the CI job both read it.
    ``strict`` turns any structural validation problem into a
    :class:`ValueError` (CI wants loud), otherwise problems are
    recorded in the manifest.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    figures, skipped = build_figures(data, names)
    written: List[Dict[str, Any]] = []
    for figure in figures:
        problems = validate_figure(figure)
        if problems and strict:
            raise ValueError(
                f"figure {figure.name} failed validation: {'; '.join(problems)}"
            )
        spec_path = out_dir / f"{figure.name}.vl.json"
        csv_path = out_dir / f"{figure.name}.csv"
        spec_path.write_text(figure.spec_json())
        csv_path.write_text(figure.csv())
        written.append(
            {
                "name": figure.name,
                "title": figure.title,
                "rows": len(figure.rows),
                "spec": spec_path.name,
                "csv": csv_path.name,
                "problems": problems,
            }
        )
    manifest = {
        "format": "repro-figures",
        "version": 1,
        "baseline": data.baseline,
        "campaigns": list(data.labels),
        "figures": written,
        "skipped": dict(sorted(skipped.items())),
    }
    (out_dir / "figures.json").write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    )
    return manifest


# ----------------------------------------------------------------------
# Input loading (CLI + service merge)
# ----------------------------------------------------------------------


def load_campaign_input(path: Union[str, Path]) -> Tuple[str, Dict[str, Any], Optional[Dict[str, Any]]]:
    """Resolve one CLI input into ``(label, report, manifest-or-None)``.

    Accepts either a campaign directory (reads
    ``report/fleet_report.json`` as written by ``repro service merge``,
    plus ``manifest.json`` for the attempt audit) or a bare fleet
    report JSON file (as written by ``repro fleet-report``).
    """
    path = Path(path)
    if path.is_dir():
        report_path = path / "report" / "fleet_report.json"
        if not report_path.exists():
            raise FileNotFoundError(
                f"{report_path} not found — run `python -m repro service "
                f"merge {path}` first (or pass a fleet_report.json file)"
            )
        report = json.loads(report_path.read_text())
        manifest_path = path / "manifest.json"
        manifest = (
            json.loads(manifest_path.read_text())
            if manifest_path.exists() else None
        )
        return path.name, report, manifest
    report = json.loads(path.read_text())
    return path.stem, report, None
